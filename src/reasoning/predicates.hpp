// Directional spatial predicates over MBRs — the vocabulary of queries like
// the paper's introduction example: "find all images which icon A locates at
// the left side and icon B locates at the right".
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "core/be_string.hpp"
#include "geometry/rect.hpp"

namespace bes {

enum class spatial_predicate : std::uint8_t {
  left_of,        // a entirely left of b: a.x.hi <= b.x.lo
  right_of,       // mirror
  above,          // a entirely above b: a.y.lo >= b.y.hi
  below,          // mirror
  inside,         // b contains a
  contains,       // a contains b
  overlaps,       // MBRs share a point
  disjoint_from,  // they do not
  meets_x,        // a.x.hi == b.x.lo (edge-to-edge horizontally)
  meets_y,        // a.y.hi == b.y.lo (a directly below, touching)
  same_place,     // identical MBRs
};

inline constexpr int spatial_predicate_count = 11;

[[nodiscard]] bool holds(spatial_predicate p, const rect& a,
                         const rect& b) noexcept;

// Canonical name used by the query language ("left-of", "inside", ...).
[[nodiscard]] std::string_view to_string(spatial_predicate p) noexcept;
// Inverse parse; nullopt for unknown names.
[[nodiscard]] std::optional<spatial_predicate> predicate_from_name(
    std::string_view name) noexcept;

// Spatial reasoning from the REPRESENTATION alone (no MBRs): the pairwise
// relation of two uniquely-occurring symbols recovered from a 2D BE-string
// via rank intervals. Returns nullopt if either symbol does not occur
// exactly once per axis. Rank space preserves every Allen relation, so
// predicates evaluated on these intervals agree with the geometric truth
// except for the coordinate-metric ones (meets_*), which rank space also
// preserves (coincident boundaries share a rank).
struct be_pair_relation {
  rect a;  // rank-space boxes
  rect b;
};
[[nodiscard]] std::optional<be_pair_relation> rank_boxes(
    const be_string2d& strings, symbol_id a, symbol_id b);

}  // namespace bes
