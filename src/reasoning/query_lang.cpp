#include "reasoning/query_lang.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

namespace bes {

std::vector<std::string> spatial_query::variables() const {
  std::vector<std::string> out;
  auto note = [&](const std::string& name) {
    if (std::find(out.begin(), out.end(), name) == out.end()) {
      out.push_back(name);
    }
  };
  for (const query_clause& clause : clauses) {
    note(clause.subject);
    note(clause.object);
  }
  return out;
}

spatial_query parse_query(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::vector<std::string> words;
  std::string word;
  while (in >> word) words.push_back(word);

  spatial_query query;
  std::size_t i = 0;
  while (i < words.size()) {
    if (i + 3 > words.size()) {
      throw std::invalid_argument(
          "parse_query: incomplete clause near '" + words[i] + "'");
    }
    query_clause clause;
    clause.subject = words[i];
    const auto predicate = predicate_from_name(words[i + 1]);
    if (!predicate) {
      throw std::invalid_argument("parse_query: unknown predicate '" +
                                  words[i + 1] + "'");
    }
    clause.predicate = *predicate;
    clause.object = words[i + 2];
    if (clause.subject == clause.object) {
      throw std::invalid_argument(
          "parse_query: clause relates '" + clause.subject + "' to itself");
    }
    query.clauses.push_back(std::move(clause));
    i += 3;
    if (i < words.size()) {
      if (words[i] != "&" && words[i] != "and") {
        throw std::invalid_argument("parse_query: expected '&' or 'and', got '" +
                                    words[i] + "'");
      }
      ++i;
      if (i == words.size()) {
        throw std::invalid_argument("parse_query: dangling conjunction");
      }
    }
  }
  if (query.clauses.empty()) {
    throw std::invalid_argument("parse_query: empty query");
  }
  return query;
}

namespace {

struct assignment_search {
  const spatial_query* query;
  const symbolic_image* image;
  // Per variable: candidate icon indices (instances of the symbol).
  std::vector<std::vector<std::size_t>> candidates;
  std::vector<std::size_t> variable_of_name;  // parallel to variables list
  std::vector<int> chosen;                    // icon index per variable, -1 unset
  std::map<std::string, std::size_t> variable_index;
  std::size_t best = 0;

  std::size_t satisfied_with(const std::vector<int>& binding) const {
    std::size_t n = 0;
    for (const query_clause& clause : query->clauses) {
      const int a = binding[variable_index.at(clause.subject)];
      const int b = binding[variable_index.at(clause.object)];
      if (a < 0 || b < 0 || a == b) continue;
      if (holds(clause.predicate,
                image->icons()[static_cast<std::size_t>(a)].mbr,
                image->icons()[static_cast<std::size_t>(b)].mbr)) {
        ++n;
      }
    }
    return n;
  }

  void descend(std::size_t variable) {
    if (variable == candidates.size()) {
      best = std::max(best, satisfied_with(chosen));
      return;
    }
    // Leaving the variable unbound is allowed (its clauses just fail): this
    // makes partial satisfaction well-defined when a symbol is absent.
    chosen[variable] = -1;
    descend(variable + 1);
    for (std::size_t icon_index : candidates[variable]) {
      // Injectivity across bound variables.
      bool taken = false;
      for (std::size_t v = 0; v < variable; ++v) {
        if (chosen[v] == static_cast<int>(icon_index)) {
          taken = true;
          break;
        }
      }
      if (taken) continue;
      chosen[variable] = static_cast<int>(icon_index);
      descend(variable + 1);
      if (best == query->clauses.size()) return;  // cannot improve
    }
    chosen[variable] = -1;
  }
};

}  // namespace

std::size_t satisfied_clauses(const spatial_query& query,
                              const symbolic_image& image,
                              const alphabet& names) {
  const std::vector<std::string> variables = query.variables();
  assignment_search search;
  search.query = &query;
  search.image = &image;
  search.candidates.resize(variables.size());
  search.chosen.assign(variables.size(), -1);
  for (std::size_t v = 0; v < variables.size(); ++v) {
    search.variable_index[variables[v]] = v;
    if (!names.knows(variables[v])) continue;  // unknown symbol: no instances
    const symbol_id symbol = names.id_of(variables[v]);
    for (std::size_t i = 0; i < image.size(); ++i) {
      if (image.icons()[i].symbol == symbol) {
        search.candidates[v].push_back(i);
      }
    }
  }
  search.descend(0);
  return search.best;
}

bool matches(const spatial_query& query, const symbolic_image& image,
             const alphabet& names) {
  return satisfied_clauses(query, image, names) == query.clauses.size();
}

std::vector<structured_result> search_structured(const image_database& db,
                                                 const spatial_query& query,
                                                 bool only_full) {
  std::vector<structured_result> out;
  for (const db_record& rec : db.records()) {
    structured_result result;
    result.id = rec.id;
    result.total = query.clauses.size();
    result.satisfied = satisfied_clauses(query, rec.image, db.symbols());
    if (only_full && result.satisfied != result.total) continue;
    out.push_back(result);
  }
  std::sort(out.begin(), out.end(),
            [](const structured_result& a, const structured_result& b) {
              if (a.satisfied != b.satisfied) return a.satisfied > b.satisfied;
              return a.id < b.id;
            });
  return out;
}

}  // namespace bes
