// Allen interval algebra: relation SETS and composition.
//
// The paper's keyword list includes "spatial reasoning"; this module supplies
// the algebraic core — given r(a,b) and r(b,c), the set of relations possible
// between a and c. The composition table is COMPUTED by exhaustive
// enumeration over a small integer domain (any triple of relations is
// realizable with at most 6 distinct coordinates, so a domain of 8 points is
// complete), which makes it correct by construction instead of a 169-entry
// hand-maintained table.
#pragma once

#include <cstdint>

#include "geometry/allen.hpp"

namespace bes {

// A set of Allen relations as a 13-bit mask (bit i = relation i).
using relation_set = std::uint16_t;

inline constexpr relation_set empty_relation_set = 0;
inline constexpr relation_set full_relation_set = (1u << allen_relation_count) - 1;

[[nodiscard]] constexpr relation_set singleton(allen_relation r) noexcept {
  return static_cast<relation_set>(1u << static_cast<unsigned>(r));
}

[[nodiscard]] constexpr bool contains(relation_set set,
                                      allen_relation r) noexcept {
  return (set & singleton(r)) != 0;
}

[[nodiscard]] constexpr int count(relation_set set) noexcept {
  int n = 0;
  for (relation_set bits = set; bits != 0; bits &= bits - 1) ++n;
  return n;
}

// All relations possible between a and c given r(a,b) and r(b,c).
[[nodiscard]] relation_set compose(allen_relation ab,
                                   allen_relation bc) noexcept;

// Set-valued composition: union over all pairs.
[[nodiscard]] relation_set compose(relation_set ab, relation_set bc) noexcept;

// The converse set: { inverse(r) : r in set }.
[[nodiscard]] relation_set converse(relation_set set) noexcept;

// Comma-separated relation names, e.g. "{before, meets}".
[[nodiscard]] std::string to_string(relation_set set);

}  // namespace bes
