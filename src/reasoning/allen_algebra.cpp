#include "reasoning/allen_algebra.hpp"

#include <array>
#include <vector>

namespace bes {

namespace {

// Builds the 13x13 composition table by enumerating all interval triples
// over a domain of 8 points. Completeness: any consistent configuration of
// three intervals uses at most 6 distinct endpoint coordinates, so every
// realizable (r(a,b), r(b,c), r(a,c)) combination appears within the domain.
std::array<std::array<relation_set, allen_relation_count>,
           allen_relation_count>
build_table() {
  std::array<std::array<relation_set, allen_relation_count>,
             allen_relation_count>
      table{};
  std::vector<interval> intervals;
  constexpr int domain = 8;
  for (int lo = 0; lo < domain; ++lo) {
    for (int hi = lo + 1; hi <= domain; ++hi) {
      intervals.push_back(interval{lo, hi});
    }
  }
  for (interval a : intervals) {
    for (interval b : intervals) {
      const auto ab = static_cast<unsigned>(classify(a, b));
      for (interval c : intervals) {
        const auto bc = static_cast<unsigned>(classify(b, c));
        table[ab][bc] |= singleton(classify(a, c));
      }
    }
  }
  return table;
}

}  // namespace

relation_set compose(allen_relation ab, allen_relation bc) noexcept {
  static const auto table = build_table();
  return table[static_cast<unsigned>(ab)][static_cast<unsigned>(bc)];
}

relation_set compose(relation_set ab, relation_set bc) noexcept {
  relation_set out = empty_relation_set;
  for (int i = 0; i < allen_relation_count; ++i) {
    const auto ri = static_cast<allen_relation>(i);
    if (!contains(ab, ri)) continue;
    for (int j = 0; j < allen_relation_count; ++j) {
      const auto rj = static_cast<allen_relation>(j);
      if (!contains(bc, rj)) continue;
      out |= compose(ri, rj);
    }
  }
  return out;
}

relation_set converse(relation_set set) noexcept {
  relation_set out = empty_relation_set;
  for (int i = 0; i < allen_relation_count; ++i) {
    const auto r = static_cast<allen_relation>(i);
    if (contains(set, r)) out |= singleton(inverse(r));
  }
  return out;
}

std::string to_string(relation_set set) {
  std::string out = "{";
  bool first = true;
  for (int i = 0; i < allen_relation_count; ++i) {
    const auto r = static_cast<allen_relation>(i);
    if (!contains(set, r)) continue;
    if (!first) out += ", ";
    out += to_string(r);
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace bes
