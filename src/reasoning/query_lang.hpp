// A small textual spatial-query language over icon symbols — the paper's
// introduction scenario made executable:
//
//     "find all images which icon A locates at the left side and icon B
//      locates at the right"
//
//         =>   search_structured(db, parse_query("A left-of B"))
//
// Grammar (whitespace-separated):
//     query  := clause ( ("&" | "and") clause )*
//     clause := SYMBOL PREDICATE SYMBOL
//     PREDICATE := left-of | right-of | above | below | inside | contains
//                | overlaps | disjoint-from | meets-x | meets-y | same-place
//
// Each SYMBOL names an icon class; a clause holds on an image if SOME
// instance assignment satisfies it. Across clauses the assignment must be
// consistent (the same name binds the same instance) and injective.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "db/database.hpp"
#include "reasoning/predicates.hpp"

namespace bes {

struct query_clause {
  std::string subject;
  spatial_predicate predicate = spatial_predicate::overlaps;
  std::string object;

  friend bool operator==(const query_clause&, const query_clause&) = default;
};

struct spatial_query {
  std::vector<query_clause> clauses;

  // Distinct symbol names referenced, in order of first appearance.
  [[nodiscard]] std::vector<std::string> variables() const;
};

// Throws std::invalid_argument with a position-annotated message on syntax
// errors or unknown predicates.
[[nodiscard]] spatial_query parse_query(std::string_view text);

// Number of clauses satisfiable simultaneously by the best consistent,
// injective assignment of names to icon instances (exhaustive backtracking;
// intended for queries over a handful of variables).
[[nodiscard]] std::size_t satisfied_clauses(const spatial_query& query,
                                            const symbolic_image& image,
                                            const alphabet& names);

// True iff every clause is satisfied by one assignment.
[[nodiscard]] bool matches(const spatial_query& query,
                           const symbolic_image& image, const alphabet& names);

struct structured_result {
  image_id id = 0;
  std::size_t satisfied = 0;
  std::size_t total = 0;

  friend bool operator==(const structured_result&,
                         const structured_result&) = default;
};

// Ranks database images by satisfied-clause count (desc, ties by id).
// `only_full` keeps exact matches only.
[[nodiscard]] std::vector<structured_result> search_structured(
    const image_database& db, const spatial_query& query,
    bool only_full = false);

}  // namespace bes
