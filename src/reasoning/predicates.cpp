#include "reasoning/predicates.hpp"

#include "baselines/b_string.hpp"

namespace bes {

bool holds(spatial_predicate p, const rect& a, const rect& b) noexcept {
  switch (p) {
    case spatial_predicate::left_of: return a.x.hi <= b.x.lo;
    case spatial_predicate::right_of: return b.x.hi <= a.x.lo;
    case spatial_predicate::above: return a.y.lo >= b.y.hi;
    case spatial_predicate::below: return b.y.lo >= a.y.hi;
    case spatial_predicate::inside: return contains(b, a);
    case spatial_predicate::contains: return contains(a, b);
    case spatial_predicate::overlaps: return overlaps(a, b);
    case spatial_predicate::disjoint_from: return !overlaps(a, b);
    case spatial_predicate::meets_x: return a.x.hi == b.x.lo;
    case spatial_predicate::meets_y: return a.y.hi == b.y.lo;
    case spatial_predicate::same_place: return a == b;
  }
  return false;
}

std::string_view to_string(spatial_predicate p) noexcept {
  switch (p) {
    case spatial_predicate::left_of: return "left-of";
    case spatial_predicate::right_of: return "right-of";
    case spatial_predicate::above: return "above";
    case spatial_predicate::below: return "below";
    case spatial_predicate::inside: return "inside";
    case spatial_predicate::contains: return "contains";
    case spatial_predicate::overlaps: return "overlaps";
    case spatial_predicate::disjoint_from: return "disjoint-from";
    case spatial_predicate::meets_x: return "meets-x";
    case spatial_predicate::meets_y: return "meets-y";
    case spatial_predicate::same_place: return "same-place";
  }
  return "?";
}

std::optional<spatial_predicate> predicate_from_name(
    std::string_view name) noexcept {
  for (int i = 0; i < spatial_predicate_count; ++i) {
    const auto p = static_cast<spatial_predicate>(i);
    if (to_string(p) == name) return p;
  }
  return std::nullopt;
}

std::optional<be_pair_relation> rank_boxes(const be_string2d& strings,
                                           symbol_id a, symbol_id b) {
  const auto find_unique = [](const std::vector<std::pair<symbol_id, interval>>&
                                  intervals,
                              symbol_id wanted) -> std::optional<interval> {
    std::optional<interval> found;
    for (const auto& [symbol, span] : intervals) {
      if (symbol != wanted) continue;
      if (found) return std::nullopt;  // ambiguous: multiple instances
      found = span;
    }
    return found;
  };
  const auto x_intervals = rank_intervals(strings.x);
  const auto y_intervals = rank_intervals(strings.y);
  const auto ax = find_unique(x_intervals, a);
  const auto ay = find_unique(y_intervals, a);
  const auto bx = find_unique(x_intervals, b);
  const auto by = find_unique(y_intervals, b);
  if (!ax || !ay || !bx || !by) return std::nullopt;
  return be_pair_relation{rect{*ax, *ay}, rect{*bx, *by}};
}

}  // namespace bes
