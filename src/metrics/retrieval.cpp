#include "metrics/retrieval.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

namespace bes {

namespace {

bool is_relevant(std::uint32_t id, std::span<const std::uint32_t> relevant) {
  return std::binary_search(relevant.begin(), relevant.end(), id);
}

}  // namespace

double precision_at_k(std::span<const std::uint32_t> ranked,
                      std::span<const std::uint32_t> relevant, std::size_t k) {
  if (k == 0) return 0.0;
  const std::size_t depth = std::min(k, ranked.size());
  std::size_t hits = 0;
  for (std::size_t i = 0; i < depth; ++i) {
    hits += is_relevant(ranked[i], relevant) ? 1 : 0;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double recall_at_k(std::span<const std::uint32_t> ranked,
                   std::span<const std::uint32_t> relevant, std::size_t k) {
  if (relevant.empty()) return 0.0;
  const std::size_t depth = std::min(k, ranked.size());
  std::size_t hits = 0;
  for (std::size_t i = 0; i < depth; ++i) {
    hits += is_relevant(ranked[i], relevant) ? 1 : 0;
  }
  return static_cast<double>(hits) / static_cast<double>(relevant.size());
}

double average_precision(std::span<const std::uint32_t> ranked,
                         std::span<const std::uint32_t> relevant) {
  if (relevant.empty()) return 0.0;
  double sum = 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (is_relevant(ranked[i], relevant)) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  return sum / static_cast<double>(relevant.size());
}

double ndcg_at_k(std::span<const std::uint32_t> ranked,
                 std::span<const std::uint32_t> relevant, std::size_t k) {
  if (relevant.empty() || k == 0) return 0.0;
  const std::size_t depth = std::min(k, ranked.size());
  double dcg = 0.0;
  for (std::size_t i = 0; i < depth; ++i) {
    if (is_relevant(ranked[i], relevant)) {
      dcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
    }
  }
  double ideal = 0.0;
  const std::size_t ideal_depth = std::min(k, relevant.size());
  for (std::size_t i = 0; i < ideal_depth; ++i) {
    ideal += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  return ideal == 0.0 ? 0.0 : dcg / ideal;
}

double reciprocal_rank(std::span<const std::uint32_t> ranked,
                       std::span<const std::uint32_t> relevant) {
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (is_relevant(ranked[i], relevant)) {
      return 1.0 / static_cast<double>(i + 1);
    }
  }
  return 0.0;
}

// ---------------------------------------------------------------- graded

namespace {

double gain_of(int grade) noexcept {
  return grade <= 0 ? 0.0 : std::exp2(static_cast<double>(grade)) - 1.0;
}

}  // namespace

int grade_of(std::uint32_t id, std::span<const graded_doc> graded) {
  const auto it = std::lower_bound(
      graded.begin(), graded.end(), id,
      [](const graded_doc& d, std::uint32_t key) { return d.id < key; });
  if (it == graded.end() || it->id != id) return 0;
  return std::max(0, it->grade);
}

std::vector<std::uint32_t> relevant_ids(std::span<const graded_doc> graded) {
  std::vector<std::uint32_t> out;
  for (const graded_doc& d : graded) {
    if (d.grade > 0) out.push_back(d.id);
  }
  return out;
}

double ndcg_at_k(std::span<const std::uint32_t> ranked,
                 std::span<const graded_doc> graded, std::size_t k) {
  if (k == 0) return 0.0;
  // Ideal DCG: the gains sorted descending, cut at k. An all-zero-grade
  // judgment list leaves ideal == 0; return 0 rather than 0/0.
  std::vector<double> gains;
  gains.reserve(graded.size());
  for (const graded_doc& d : graded) {
    if (d.grade > 0) gains.push_back(gain_of(d.grade));
  }
  std::sort(gains.begin(), gains.end(), std::greater<>());
  double ideal = 0.0;
  for (std::size_t i = 0; i < std::min(k, gains.size()); ++i) {
    ideal += gains[i] / std::log2(static_cast<double>(i) + 2.0);
  }
  if (ideal == 0.0) return 0.0;
  double dcg = 0.0;
  for (std::size_t i = 0; i < std::min(k, ranked.size()); ++i) {
    dcg += gain_of(grade_of(ranked[i], graded)) /
           std::log2(static_cast<double>(i) + 2.0);
  }
  return dcg / ideal;
}

double reciprocal_rank(std::span<const std::uint32_t> ranked,
                       std::span<const graded_doc> graded) {
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (grade_of(ranked[i], graded) > 0) {
      return 1.0 / static_cast<double>(i + 1);
    }
  }
  return 0.0;
}

}  // namespace bes
