#include "metrics/retrieval.hpp"

#include <algorithm>
#include <cmath>

namespace bes {

namespace {

bool is_relevant(std::uint32_t id, std::span<const std::uint32_t> relevant) {
  return std::binary_search(relevant.begin(), relevant.end(), id);
}

}  // namespace

double precision_at_k(std::span<const std::uint32_t> ranked,
                      std::span<const std::uint32_t> relevant, std::size_t k) {
  if (k == 0) return 0.0;
  const std::size_t depth = std::min(k, ranked.size());
  std::size_t hits = 0;
  for (std::size_t i = 0; i < depth; ++i) {
    hits += is_relevant(ranked[i], relevant) ? 1 : 0;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double recall_at_k(std::span<const std::uint32_t> ranked,
                   std::span<const std::uint32_t> relevant, std::size_t k) {
  if (relevant.empty()) return 0.0;
  const std::size_t depth = std::min(k, ranked.size());
  std::size_t hits = 0;
  for (std::size_t i = 0; i < depth; ++i) {
    hits += is_relevant(ranked[i], relevant) ? 1 : 0;
  }
  return static_cast<double>(hits) / static_cast<double>(relevant.size());
}

double average_precision(std::span<const std::uint32_t> ranked,
                         std::span<const std::uint32_t> relevant) {
  if (relevant.empty()) return 0.0;
  double sum = 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (is_relevant(ranked[i], relevant)) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  return sum / static_cast<double>(relevant.size());
}

double ndcg_at_k(std::span<const std::uint32_t> ranked,
                 std::span<const std::uint32_t> relevant, std::size_t k) {
  if (relevant.empty() || k == 0) return 0.0;
  const std::size_t depth = std::min(k, ranked.size());
  double dcg = 0.0;
  for (std::size_t i = 0; i < depth; ++i) {
    if (is_relevant(ranked[i], relevant)) {
      dcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
    }
  }
  double ideal = 0.0;
  const std::size_t ideal_depth = std::min(k, relevant.size());
  for (std::size_t i = 0; i < ideal_depth; ++i) {
    ideal += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  return ideal == 0.0 ? 0.0 : dcg / ideal;
}

double reciprocal_rank(std::span<const std::uint32_t> ranked,
                       std::span<const std::uint32_t> relevant) {
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (is_relevant(ranked[i], relevant)) {
      return 1.0 / static_cast<double>(i + 1);
    }
  }
  return 0.0;
}

}  // namespace bes
