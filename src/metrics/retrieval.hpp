// Rank-quality metrics for the retrieval experiments (binary relevance).
#pragma once

#include <cstdint>
#include <span>

namespace bes {

// `ranked`: result ids in rank order. `relevant`: the relevant ids (sorted
// ascending). All metrics return 0 for empty inputs rather than dividing by
// zero.

[[nodiscard]] double precision_at_k(std::span<const std::uint32_t> ranked,
                                    std::span<const std::uint32_t> relevant,
                                    std::size_t k);

[[nodiscard]] double recall_at_k(std::span<const std::uint32_t> ranked,
                                 std::span<const std::uint32_t> relevant,
                                 std::size_t k);

// Mean of precision@rank over the ranks of relevant hits, divided by
// |relevant| (standard AP).
[[nodiscard]] double average_precision(std::span<const std::uint32_t> ranked,
                                       std::span<const std::uint32_t> relevant);

// Binary-gain nDCG@k.
[[nodiscard]] double ndcg_at_k(std::span<const std::uint32_t> ranked,
                               std::span<const std::uint32_t> relevant,
                               std::size_t k);

// 1/rank of the first relevant hit (0 if none).
[[nodiscard]] double reciprocal_rank(std::span<const std::uint32_t> ranked,
                                     std::span<const std::uint32_t> relevant);

}  // namespace bes
