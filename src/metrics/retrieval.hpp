// Rank-quality metrics for the retrieval experiments (binary and graded
// relevance).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace bes {

// `ranked`: result ids in rank order. `relevant`: the relevant ids (sorted
// ascending). All metrics return 0 for degenerate inputs — empty rankings,
// empty relevance sets, and all-zero-grade judgment lists — rather than
// dividing by zero.

[[nodiscard]] double precision_at_k(std::span<const std::uint32_t> ranked,
                                    std::span<const std::uint32_t> relevant,
                                    std::size_t k);

[[nodiscard]] double recall_at_k(std::span<const std::uint32_t> ranked,
                                 std::span<const std::uint32_t> relevant,
                                 std::size_t k);

// Mean of precision@rank over the ranks of relevant hits, divided by
// |relevant| (standard AP).
[[nodiscard]] double average_precision(std::span<const std::uint32_t> ranked,
                                       std::span<const std::uint32_t> relevant);

// Binary-gain nDCG@k.
[[nodiscard]] double ndcg_at_k(std::span<const std::uint32_t> ranked,
                               std::span<const std::uint32_t> relevant,
                               std::size_t k);

// 1/rank of the first relevant hit (0 if none).
[[nodiscard]] double reciprocal_rank(std::span<const std::uint32_t> ranked,
                                     std::span<const std::uint32_t> relevant);

// ---------------------------------------------------------------------------
// Graded relevance (the eval harness's ground truth: distortion tiers map to
// grades, grade 0 / absent = irrelevant).

// One relevance judgment. Lists passed to the graded metrics must be sorted
// by id ascending with unique ids; grades are clamped below at 0.
struct graded_doc {
  std::uint32_t id = 0;
  int grade = 0;

  friend bool operator==(const graded_doc&, const graded_doc&) = default;
};

// Grade of `id` in a sorted judgment list (0 when absent).
[[nodiscard]] int grade_of(std::uint32_t id,
                           std::span<const graded_doc> graded);

// The ids with grade > 0 (sorted) — adapts a graded judgment list to the
// binary metrics above.
[[nodiscard]] std::vector<std::uint32_t> relevant_ids(
    std::span<const graded_doc> graded);

// Graded nDCG@k with exponential gain (2^grade - 1) and log2(rank+1)
// discount. An all-zero-grade (or empty) judgment list has ideal DCG 0 and
// returns 0, never NaN.
[[nodiscard]] double ndcg_at_k(std::span<const std::uint32_t> ranked,
                               std::span<const graded_doc> graded,
                               std::size_t k);

// 1/rank of the first hit with grade > 0; 0 when no ranked document has a
// positive grade.
[[nodiscard]] double reciprocal_rank(std::span<const std::uint32_t> ranked,
                                     std::span<const graded_doc> graded);

}  // namespace bes
