#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/table.hpp"

namespace bes {

double sample_stats::mean() const {
  if (samples_.empty()) throw std::invalid_argument("sample_stats: empty");
  double sum = 0.0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double sample_stats::min() const {
  if (samples_.empty()) throw std::invalid_argument("sample_stats: empty");
  return *std::min_element(samples_.begin(), samples_.end());
}

double sample_stats::max() const {
  if (samples_.empty()) throw std::invalid_argument("sample_stats: empty");
  return *std::max_element(samples_.begin(), samples_.end());
}

double sample_stats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double sum = 0.0;
  for (double v : samples_) sum += (v - m) * (v - m);
  return std::sqrt(sum / static_cast<double>(samples_.size() - 1));
}

double sample_stats::percentile(double p) const {
  if (samples_.empty()) throw std::invalid_argument("sample_stats: empty");
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("sample_stats: percentile out of range");
  }
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

std::string sample_stats::summary(int digits) const {
  if (samples_.empty()) return "n=0";
  return "n=" + std::to_string(samples_.size()) +
         " mean=" + fmt_double(mean(), digits) +
         " p50=" + fmt_double(percentile(50), digits) +
         " p95=" + fmt_double(percentile(95), digits) +
         " max=" + fmt_double(max(), digits);
}

}  // namespace bes
