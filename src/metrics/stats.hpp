// Latency/size sample aggregation for the benchmark harnesses.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace bes {

class sample_stats {
 public:
  void add(double value) { samples_.push_back(value); }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double stddev() const;
  // Nearest-rank percentile; p in [0, 100]. Throws std::invalid_argument on
  // bad p or empty sample set.
  [[nodiscard]] double percentile(double p) const;

  // "n=40 mean=1.23 p50=1.11 p95=2.01 max=3.33" (units are the caller's).
  [[nodiscard]] std::string summary(int digits = 3) const;

 private:
  std::vector<double> samples_;
};

}  // namespace bes
