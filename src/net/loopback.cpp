#include "net/loopback.hpp"

namespace bes::net {

loopback_cluster::loopback_cluster(const sharded_database& sharded,
                                   const server_options& server_opts,
                                   const coordinator_options& coord_opts) {
  std::vector<endpoint> endpoints;
  servers_.reserve(sharded.shard_count());
  endpoints.reserve(sharded.shard_count());
  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    const auto& ids = sharded.shard_global_ids(s);
    auto server = std::make_unique<shard_server>(
        sharded.shard_db(s),
        std::vector<image_id>(ids.begin(), ids.end()),
        static_cast<std::uint32_t>(s), server_opts);
    endpoints.push_back({"127.0.0.1", server->port()});
    servers_.push_back(std::move(server));
  }
  coordinator_ = std::make_unique<coordinator>(std::move(endpoints),
                                               coord_opts);
}

}  // namespace bes::net
