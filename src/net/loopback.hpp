// Loopback cluster: one shard_server per partition of an in-memory
// sharded_database plus a coordinator wired to their ephemeral ports — the
// whole scatter/gather stack exercised over real sockets inside one
// process. This is the equivalence-test harness (remote answers must be
// bit-identical to sharded_database::search) and doubles as the
// multi-process stress rig: tests stop individual servers mid-flight to
// rehearse partition loss.
#pragma once

#include <memory>
#include <vector>

#include "db/shard.hpp"
#include "net/coordinator.hpp"
#include "net/server.hpp"

namespace bes::net {

class loopback_cluster {
 public:
  // Borrows `sharded` (must outlive the cluster): each server scans
  // sharded.shard_db(s) and reports sharded.shard_global_ids(s) ids.
  explicit loopback_cluster(const sharded_database& sharded,
                            const server_options& server_opts = {},
                            const coordinator_options& coord_opts = {});

  [[nodiscard]] coordinator& front() noexcept { return *coordinator_; }
  [[nodiscard]] std::size_t server_count() const noexcept {
    return servers_.size();
  }
  [[nodiscard]] shard_server& server(std::size_t s) { return *servers_.at(s); }

  // Kills one shard server (partition loss). The coordinator is told
  // nothing — it finds out the way it would in production.
  void stop_server(std::size_t s) { servers_.at(s)->stop(); }

 private:
  std::vector<std::unique_ptr<shard_server>> servers_;
  std::unique_ptr<coordinator> coordinator_;
};

}  // namespace bes::net
