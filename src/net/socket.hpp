// Thin RAII layer over POSIX TCP sockets — just what the query service
// needs: a loopback/LAN listener with a pollable accept, and a stream
// socket with deadline-aware exact reads. No frameworks, no global state;
// SIGPIPE is avoided per send (MSG_NOSIGNAL), not via process signal
// masks, so the library composes with whatever the host process does.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace bes::net {

// Every socket/framing/protocol failure derives from this.
class net_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

using net_clock = std::chrono::steady_clock;
using net_time = net_clock::time_point;

// "No deadline": comparisons still work, poll timeouts saturate.
[[nodiscard]] constexpr net_time no_deadline() noexcept {
  return net_time::max();
}
[[nodiscard]] inline net_time deadline_in(unsigned ms) noexcept {
  return ms == 0 ? no_deadline() : net_clock::now() + std::chrono::milliseconds(ms);
}

// A connected stream socket. Move-only; the destructor closes.
class tcp_socket {
 public:
  tcp_socket() = default;               // invalid (fd -1)
  explicit tcp_socket(int fd) : fd_(fd) {}
  ~tcp_socket();

  tcp_socket(tcp_socket&& other) noexcept;
  tcp_socket& operator=(tcp_socket&& other) noexcept;
  tcp_socket(const tcp_socket&) = delete;
  tcp_socket& operator=(const tcp_socket&) = delete;

  // Connects to host:port (numeric IPv4, e.g. "127.0.0.1"), failing after
  // `timeout_ms`. Throws net_error on refusal/timeout.
  [[nodiscard]] static tcp_socket connect(const std::string& host,
                                          std::uint16_t port,
                                          unsigned timeout_ms);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  void close() noexcept;
  // Half-closes both directions without releasing the fd — unblocks a
  // thread parked in read_exact from another thread (close() alone races
  // with fd reuse). Safe to call repeatedly.
  void shutdown_both() noexcept;

  // Writes all `size` bytes; throws net_error on any failure (including
  // the peer closing mid-write).
  void send_all(const void* data, std::size_t size);

  // Reads exactly `size` bytes. Returns false iff the peer closed cleanly
  // BEFORE the first byte (caller decides if that is a protocol error);
  // throws net_error on mid-buffer EOF, I/O failure, or `deadline` passing.
  [[nodiscard]] bool read_exact(void* data, std::size_t size,
                                net_time deadline);

 private:
  int fd_ = -1;
};

// A listening socket bound to an interface address (default loopback).
// Port 0 binds an ephemeral port; port() reports the real one.
class tcp_listener {
 public:
  explicit tcp_listener(std::uint16_t port,
                        const std::string& bind_host = "127.0.0.1");
  ~tcp_listener();

  tcp_listener(const tcp_listener&) = delete;
  tcp_listener& operator=(const tcp_listener&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  // Waits up to `timeout_ms` for one connection. Returns an invalid socket
  // on timeout or after close(); throws net_error on listener failure.
  [[nodiscard]] tcp_socket accept(unsigned timeout_ms);

  void close() noexcept;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace bes::net
