#include "net/coordinator.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "db/scan.hpp"
#include "net/framing.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace bes::net {

namespace {

// Admission control: at most `slots` queries in flight at once; the rest
// wait here instead of piling frames onto the links.
class admission_gate {
 public:
  explicit admission_gate(unsigned slots) : free_(slots == 0 ? 1 : slots) {}

  void acquire() {
    std::unique_lock lock(m_);
    cv_.wait(lock, [this] { return free_ > 0; });
    --free_;
  }
  void release() {
    {
      std::lock_guard lock(m_);
      ++free_;
    }
    cv_.notify_one();
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  unsigned free_;
};

struct gate_slot {
  admission_gate& gate;
  explicit gate_slot(admission_gate& g) : gate(g) { gate.acquire(); }
  ~gate_slot() { gate.release(); }
};

shard_scan_state to_scan_state(query_status status) noexcept {
  switch (status) {
    case query_status::ok: return shard_scan_state::ok;
    case query_status::expired: return shard_scan_state::expired;
    case query_status::failed: return shard_scan_state::failed;
    case query_status::rejected: return shard_scan_state::rejected;
  }
  return shard_scan_state::failed;
}

unsigned remaining_ms(net_time deadline) noexcept {
  if (deadline == no_deadline()) return 0;  // wire 0 = no server-side budget
  const auto now = net_clock::now();
  if (deadline <= now) return 1;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
          .count();
  return static_cast<unsigned>(std::min<long long>(ms, 0xFFFFFFFFll));
}

}  // namespace

// ---------------------------------------------------------------------------
// Internal state

// One query's gather. `outstanding` starts at the shard count and each shard
// resolves EXACTLY once — by result, link death, unreachability, or the
// coordinator's own deadline sweep — so `outstanding == 0` means every
// partition is accounted for, never merely "none scattered yet".
//
// Lock ordering (strict): gather::m may be held while taking a link's write
// mutex (the gossip path). NOTHING holding a link's state mutex ever waits
// on a gather — readers erase the pending entry under the link state mutex,
// RELEASE it, and only then touch the gather.
struct gather_state {
  gather_state(const query_options& opts, std::size_t shards,
               double floor_seed)
      : options(opts),
        outstanding(shards),
        floor(std::max(opts.min_score, floor_seed)),
        resolved(shards, false) {
    statuses.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      statuses.push_back({static_cast<std::uint32_t>(s), shard_scan_state::ok});
    }
  }

  std::mutex m;
  std::condition_variable cv;
  query_options options;
  std::uint64_t query_id = 0;
  std::size_t outstanding;
  // Running merged top-k: sorted by detail::result_better, truncated to
  // top_k. Per-shard answers are each ranked top-k lists, so maintaining
  // the sorted-truncated union IS the exact global answer at every moment.
  std::vector<query_result> merged;
  double floor;  // admissible global pruning floor; only ever rises
  // Union collection for the coordinator cache: when `collect` is set,
  // every per-shard result lands in `all` BEFORE the running merge
  // truncates — the union is what a cached entry stores, since the global
  // top-k of ANY smaller k is a subset of it.
  bool collect = false;
  std::vector<query_result> all;
  std::vector<shard_scan_status> statuses;
  std::vector<bool> resolved;
  search_stats agg;
  bool degraded = false;
};

struct coordinator::impl {
  struct link {
    endpoint ep;
    std::uint32_t shard = 0;
    std::mutex state_m;  // guards connect/reconnect and the pending map
    std::atomic<bool> alive{false};
    tcp_socket sock;
    std::mutex write_m;  // leaf lock: serializes whole frames on sock
    std::thread reader;
    std::unordered_map<std::uint64_t, std::shared_ptr<gather_state>> pending;
  };

  coordinator_options options;
  std::vector<std::unique_ptr<link>> links;
  std::atomic<std::uint64_t> next_query_id{1};
  admission_gate gate;
  std::unique_ptr<result_cache> cache;  // null when cache_entries == 0

  impl(std::vector<endpoint> shards, const coordinator_options& opts)
      : options(opts), gate(opts.max_inflight) {
    links.reserve(shards.size());
    for (std::size_t s = 0; s < shards.size(); ++s) {
      auto l = std::make_unique<link>();
      l->ep = std::move(shards[s]);
      l->shard = static_cast<std::uint32_t>(s);
      links.push_back(std::move(l));
    }
    if (opts.cache_entries > 0) {
      result_cache_options copts;
      copts.capacity = opts.cache_entries;
      cache = std::make_unique<result_cache>(copts);
    }
  }

  ~impl() {
    for (const auto& l : links) {
      std::unique_lock lock(l->state_m);
      l->sock.shutdown_both();
      std::thread reader = std::move(l->reader);
      lock.unlock();
      if (reader.joinable()) reader.join();
    }
  }

  // Connects (or reconnects) a link; returns false when the shard is
  // unreachable. Holds the link's state mutex for the whole handshake so
  // concurrent searches share one connection attempt.
  bool ensure_link(link& l) {
    std::lock_guard lock(l.state_m);
    if (l.alive.load(std::memory_order_relaxed)) return true;
    if (l.reader.joinable()) l.reader.join();  // reap the dead reader
    try {
      tcp_socket sock =
          tcp_socket::connect(l.ep.host, l.ep.port, options.connect_timeout_ms);
      write_frame(sock, encode(hello_msg{}));
      std::optional<frame> reply =
          read_frame(sock, deadline_in(options.connect_timeout_ms));
      if (!reply) throw net_error("net: server closed during handshake");
      const hello_ok_msg ok = decode_hello_ok(*reply);
      if (ok.version != protocol_version) {
        throw net_error("net: protocol version mismatch");
      }
      {
        // write_m too: a stale sender from a previous incarnation must not
        // be mid-send while the socket is swapped under it.
        std::lock_guard wlock(l.write_m);
        l.sock = std::move(sock);
      }
      l.alive.store(true, std::memory_order_relaxed);
      l.reader = std::thread([this, &l] { reader_loop(l); });
      return true;
    } catch (const net_error&) {
      return false;
    }
  }

  void reader_loop(link& l) {
    try {
      while (true) {
        std::optional<frame> f = read_frame(l.sock, no_deadline());
        if (!f) break;
        if (f->type == frame_type::pong) continue;
        if (f->type == frame_type::result) {
          result_msg msg = decode_result(*f);
          if (auto g = take_pending(l, msg.query_id)) {
            on_result(*g, l.shard, std::move(msg));
          }
          continue;
        }
        if (f->type == frame_type::error) {
          const error_msg msg = decode_error(*f);
          if (msg.query_id == 0) break;  // connection-scoped: link poisoned
          if (auto g = take_pending(l, msg.query_id)) {
            resolve_shard(*g, l.shard, shard_scan_state::failed);
          }
          continue;
        }
        break;  // anything else is a protocol violation; drop the link
      }
    } catch (const net_error&) {
      // Includes frame_error: a corrupt or byzantine stream ends the link;
      // the sweep below resolves its pending queries as failed rather than
      // letting them hang until their deadlines.
    }
    fail_link(l);
  }

  // Marks the link dead and fails every query still waiting on it.
  void fail_link(link& l) {
    std::unordered_map<std::uint64_t, std::shared_ptr<gather_state>> orphans;
    {
      std::lock_guard lock(l.state_m);
      l.alive.store(false, std::memory_order_relaxed);
      l.sock.shutdown_both();
      orphans.swap(l.pending);
    }
    for (const auto& [id, g] : orphans) {
      resolve_shard(*g, l.shard, shard_scan_state::failed);
    }
  }

  // Removes and returns the gather waiting on (link, query_id); nullptr if
  // none (already answered, cancelled, or timed out — late frames drop).
  [[nodiscard]] std::shared_ptr<gather_state> take_pending(
      link& l, std::uint64_t query_id) {
    std::lock_guard lock(l.state_m);
    const auto it = l.pending.find(query_id);
    if (it == l.pending.end()) return nullptr;
    std::shared_ptr<gather_state> g = std::move(it->second);
    l.pending.erase(it);
    return g;
  }

  // Best-effort frame send; a dead link is the reader's problem.
  void try_send(link& l, const frame& f) noexcept {
    try {
      std::lock_guard lock(l.write_m);
      write_frame(l.sock, f);
    } catch (const net_error&) {
    }
  }

  void resolve_shard(gather_state& g, std::uint32_t shard,
                     shard_scan_state state) {
    {
      std::lock_guard lock(g.m);
      resolve_locked(g, shard, state);
    }
    g.cv.notify_all();
  }

  // Caller holds g.m. Idempotent per shard.
  void resolve_locked(gather_state& g, std::uint32_t shard,
                      shard_scan_state state) {
    if (g.resolved[shard]) return;
    g.resolved[shard] = true;
    g.statuses[shard].state = state;
    if (state != shard_scan_state::ok) g.degraded = true;
    --g.outstanding;
  }

  void on_result(gather_state& g, std::uint32_t shard, result_msg&& msg) {
    {
      std::lock_guard lock(g.m);
      if (g.resolved[shard]) return;  // deadline sweep got there first
      resolve_locked(g, shard, to_scan_state(msg.status));
      g.agg.scanned += msg.stats.scanned;
      g.agg.scored += msg.stats.scored;
      g.agg.pruned += msg.stats.pruned;
      g.agg.band_rejected += msg.stats.band_rejected;
      g.agg.candidates_generated += msg.stats.candidates_generated;
      // ok and expired both contribute results (expired's are partial —
      // the degraded flag already says so); failed/rejected carry none.
      if (!msg.results.empty()) {
        if (g.collect) {
          g.all.insert(g.all.end(), msg.results.begin(), msg.results.end());
        }
        g.merged.insert(g.merged.end(), msg.results.begin(),
                        msg.results.end());
        std::sort(g.merged.begin(), g.merged.end(), detail::result_better);
        if (g.options.top_k > 0 && g.merged.size() > g.options.top_k) {
          g.merged.resize(g.options.top_k);
        }
      }
      // With k results gathered, their k-th score floors every candidate
      // not yet seen ANYWHERE (it would need to beat k known rivals), so
      // it is admissible for every shard still scanning — gossip it.
      if (g.options.top_k > 0 && g.merged.size() == g.options.top_k &&
          g.merged.back().score > g.floor) {
        g.floor = g.merged.back().score;
        if (options.gossip && !options.sequential_scatter) {
          const frame f = encode(threshold_msg{g.query_id, g.floor});
          for (const auto& l : links) {
            // A shard the query frame has not reached yet just ignores the
            // unknown id — and will see the floor inside its query anyway.
            if (!g.resolved[l->shard] &&
                l->alive.load(std::memory_order_relaxed)) {
              try_send(*l, f);
            }
          }
        }
      }
    }
    g.cv.notify_all();
  }

  remote_result run_search(const be_string2d& query,
                           std::span<const symbol_id> query_symbols,
                           const query_options& qopts, double floor_seed,
                           std::vector<query_result>* union_out) {
    if (links.empty()) {
      throw std::invalid_argument("coordinator: no shard endpoints");
    }
    gate_slot slot(gate);
    auto g = std::make_shared<gather_state>(qopts, links.size(), floor_seed);
    g->collect = union_out != nullptr;
    g->query_id = next_query_id.fetch_add(1, std::memory_order_relaxed);
    const net_time deadline = deadline_in(options.default_deadline_ms);

    if (options.sequential_scatter) {
      run_sequential(g, query, query_symbols, qopts, deadline);
    } else {
      run_scattered(g, query, query_symbols, qopts, deadline);
    }

    remote_result out;
    std::lock_guard lock(g->m);
    out.results = std::move(g->merged);
    out.stats = std::move(g->agg);
    out.stats.degraded = g->degraded;
    out.stats.shard_statuses = std::move(g->statuses);
    if (union_out != nullptr) *union_out = std::move(g->all);
    return out;
  }

  // The cached front door search()/search_batch() go through. A full hit
  // serves from the stored union without touching a socket; a partial hit
  // (request deeper than the stored gather) re-scatters with the gossip
  // floor pre-seeded from the cached k-th score — admissible, because k
  // genuine record scores sit at or above it — and counts as a delta
  // refresh. Only non-degraded gathers are stored.
  remote_result run_cached(const be_string2d& query,
                           std::span<const symbol_id> query_symbols,
                           const query_options& qopts) {
    if (cache == nullptr) {
      return run_search(query, query_symbols, qopts, qopts.min_score, nullptr);
    }
    const cache_key key = make_cache_key(
        query, query_symbols, qopts, cache_scope::remote,
        static_cast<std::uint32_t>(links.size()), /*ring_replicas=*/0,
        /*key_top_k=*/false);
    double floor_seed = qopts.min_score;
    bool partial = false;
    if (std::optional<cache_entry> entry = cache->find(key)) {
      std::vector<query_result> stored = std::move(entry->results);
      from_canonical_frame(stored, key.canon);
      const bool serveable =
          entry->gathered_k == 0 ||
          (qopts.top_k != 0 && qopts.top_k <= entry->gathered_k);
      if (serveable) {
        cache->note_hit();
        remote_result out;
        out.results = detail::rank_results(std::move(stored), qopts);
        out.stats.cache_hits = 1;
        return out;
      }
      partial = true;
      if (options.gossip && qopts.top_k != 0 &&
          stored.size() >= qopts.top_k) {
        std::sort(stored.begin(), stored.end(), detail::result_better);
        floor_seed = std::max(floor_seed, stored[qopts.top_k - 1].score);
      }
    }

    std::vector<query_result> gathered;
    remote_result out =
        run_search(query, query_symbols, qopts, floor_seed, &gathered);
    if (partial) {
      cache->note_delta_refresh(out.stats.scored);
      out.stats.cache_delta_refreshes = 1;
      out.stats.cache_delta_rescored = out.stats.scored;
    } else {
      cache->note_miss();
      out.stats.cache_misses = 1;
    }
    if (!out.stats.degraded) {
      cache_entry fresh;
      fresh.results = std::move(gathered);
      to_canonical_frame(fresh.results, key.canon);
      fresh.gathered_k = qopts.top_k;
      fresh.complete = qopts.top_k == 0;
      cache->put(key, std::move(fresh));
    }
    return out;
  }

  [[nodiscard]] query_msg base_query(const gather_state& g,
                                     const be_string2d& query,
                                     std::span<const symbol_id> query_symbols,
                                     const query_options& qopts) const {
    query_msg qm;
    qm.query_id = g.query_id;
    qm.options = qopts;
    qm.query = query;
    qm.query_symbols.assign(query_symbols.begin(), query_symbols.end());
    qm.floor = qopts.min_score;
    return qm;
  }

  void run_scattered(const std::shared_ptr<gather_state>& g,
                     const be_string2d& query,
                     std::span<const symbol_id> query_symbols,
                     const query_options& qopts, net_time deadline) {
    query_msg qm = base_query(*g, query, query_symbols, qopts);
    qm.deadline_ms = remaining_ms(deadline);

    // Scatter. Shards that cannot even be reached resolve as failed
    // immediately; the rest owe us a result frame.
    for (const auto& l : links) {
      if (!ensure_link(*l)) {
        resolve_shard(*g, l->shard, shard_scan_state::failed);
        continue;
      }
      {
        std::lock_guard lock(l->state_m);
        if (!l->alive.load(std::memory_order_relaxed)) {
          resolve_shard(*g, l->shard, shard_scan_state::failed);
          continue;
        }
        l->pending.emplace(g->query_id, g);
      }
      if (options.gossip) {
        // A shard scattered late starts with whatever floor the early
        // answers already established.
        std::lock_guard lock(g->m);
        qm.floor = g->floor;
      }
      bool sent = true;
      try {
        std::lock_guard lock(l->write_m);
        write_frame(l->sock, encode(qm));
      } catch (const net_error&) {
        sent = false;
      }
      if (!sent && take_pending(*l, g->query_id)) {
        resolve_shard(*g, l->shard, shard_scan_state::failed);
      }
    }

    // Gather until every shard is accounted for or the deadline passes.
    std::unique_lock lock(g->m);
    const auto all_in = [&] { return g->outstanding == 0; };
    if (deadline == no_deadline()) {
      g->cv.wait(lock, all_in);
      return;
    }
    if (g->cv.wait_until(lock, deadline, all_in)) return;

    // Deadline: cancel stragglers (best effort) and strike them from the
    // pending maps so a late answer is dropped, not merged. The gather
    // lock is released first — link mutexes are never taken under it
    // except on the leaf write path.
    lock.unlock();
    const frame cancel = encode(cancel_msg{g->query_id});
    for (const auto& l : links) {
      if (take_pending(*l, g->query_id)) {
        try_send(*l, cancel);
      }
    }
    lock.lock();
    for (const auto& l : links) {
      resolve_locked(*g, l->shard, shard_scan_state::timed_out);
    }
  }

  // Shard-by-shard scatter: each QUERY frame carries the floor the previous
  // shards' answers established, so pruning is deterministic run to run —
  // the mode the gossip-effectiveness test pins down. No THRESHOLD frames:
  // by the time a shard scans, its floor already rode in on the query.
  void run_sequential(const std::shared_ptr<gather_state>& g,
                      const be_string2d& query,
                      std::span<const symbol_id> query_symbols,
                      const query_options& qopts, net_time deadline) {
    query_msg qm = base_query(*g, query, query_symbols, qopts);

    for (const auto& l : links) {
      if (deadline != no_deadline() && net_clock::now() >= deadline) {
        resolve_shard(*g, l->shard, shard_scan_state::timed_out);
        continue;
      }
      if (!ensure_link(*l)) {
        resolve_shard(*g, l->shard, shard_scan_state::failed);
        continue;
      }
      {
        std::lock_guard lock(l->state_m);
        if (!l->alive.load(std::memory_order_relaxed)) {
          resolve_shard(*g, l->shard, shard_scan_state::failed);
          continue;
        }
        l->pending.emplace(g->query_id, g);
      }
      if (options.gossip) {
        std::lock_guard lock(g->m);
        qm.floor = g->floor;
      }
      qm.deadline_ms = remaining_ms(deadline);
      bool sent = true;
      try {
        std::lock_guard lock(l->write_m);
        write_frame(l->sock, encode(qm));
      } catch (const net_error&) {
        sent = false;
      }
      if (!sent) {
        if (take_pending(*l, g->query_id)) {
          resolve_shard(*g, l->shard, shard_scan_state::failed);
        }
        continue;
      }
      std::unique_lock lock(g->m);
      const auto answered = [&] { return g->resolved[l->shard]; };
      bool got;
      if (deadline == no_deadline()) {
        g->cv.wait(lock, answered);
        got = true;
      } else {
        got = g->cv.wait_until(lock, deadline, answered);
      }
      if (!got) {
        lock.unlock();
        if (take_pending(*l, g->query_id)) {
          try_send(*l, encode(cancel_msg{g->query_id}));
        }
        lock.lock();
        resolve_locked(*g, l->shard, shard_scan_state::timed_out);
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Public surface

coordinator::coordinator(std::vector<endpoint> shards,
                         const coordinator_options& options)
    : impl_(std::make_unique<impl>(std::move(shards), options)) {}

coordinator::~coordinator() = default;

std::size_t coordinator::shard_count() const noexcept {
  return impl_->links.size();
}

remote_result coordinator::search(const be_string2d& query,
                                  std::span<const symbol_id> query_symbols,
                                  const query_options& options) {
  return impl_->run_cached(query, query_symbols, options);
}

std::vector<remote_result> coordinator::search_batch(
    std::span<const be_string2d> queries,
    std::span<const std::vector<symbol_id>> query_symbols,
    const query_options& options) {
  if (queries.size() != query_symbols.size()) {
    throw std::invalid_argument("coordinator: spans of unequal length");
  }
  std::vector<remote_result> results(queries.size());
  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
      impl_->options.max_inflight == 0 ? 1 : impl_->options.max_inflight,
      queries.size()));
  if (workers <= 1) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      results[i] = impl_->run_cached(queries[i], query_symbols[i], options);
    }
    return results;
  }
  std::atomic<std::size_t> cursor{0};
  std::mutex error_m;
  std::exception_ptr first_error;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      while (true) {
        const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= queries.size()) return;
        try {
          results[i] = impl_->run_cached(queries[i], query_symbols[i], options);
        } catch (...) {
          std::lock_guard lock(error_m);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

std::vector<std::string> coordinator::fetch_symbols() {
  std::vector<std::string> best;
  bool reached = false;
  for (const auto& l : impl_->links) {
    try {
      tcp_socket sock = tcp_socket::connect(
          l->ep.host, l->ep.port, impl_->options.connect_timeout_ms);
      const net_time deadline = deadline_in(impl_->options.connect_timeout_ms);
      write_frame(sock, encode(hello_msg{}));
      std::optional<frame> reply = read_frame(sock, deadline);
      if (!reply) continue;
      (void)decode_hello_ok(*reply);
      write_frame(sock, frame{frame_type::symbols_req, {}});
      std::optional<frame> symbols = read_frame(sock, deadline);
      if (!symbols) continue;
      symbols_msg msg = decode_symbols(*symbols);
      reached = true;
      // Shard alphabets are prefixes of the master; the longest IS the
      // master (the same invariant shard_storage's open path relies on).
      if (msg.names.size() > best.size()) best = std::move(msg.names);
    } catch (const net_error&) {
    }
  }
  if (!reached) throw net_error("net: no shard server reachable");
  return best;
}

result_cache_stats coordinator::cache_stats() const noexcept {
  if (impl_->cache == nullptr) return {};
  return impl_->cache->stats();
}

void coordinator::invalidate_cache() noexcept {
  if (impl_->cache != nullptr) impl_->cache->clear();
}

void coordinator::shutdown_servers() {
  for (const auto& l : impl_->links) {
    try {
      tcp_socket sock = tcp_socket::connect(
          l->ep.host, l->ep.port, impl_->options.connect_timeout_ms);
      write_frame(sock, encode(hello_msg{}));
      std::optional<frame> reply =
          read_frame(sock, deadline_in(impl_->options.connect_timeout_ms));
      if (!reply) continue;
      (void)decode_hello_ok(*reply);
      write_frame(sock, frame{frame_type::shutdown, {}});
    } catch (const net_error&) {
    }
  }
}

}  // namespace bes::net
