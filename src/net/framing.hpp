// Length-prefixed, CRC32-checked frames — the wire unit of the query
// service. Same integrity discipline as BSEG1 records: every header and
// every payload carries a CRC32, and the header CRC is verified BEFORE the
// declared payload length is trusted, so a flipped length byte can never
// drive a multi-gigabyte allocation or a bottomless read.
//
//   offset  size  field
//   ------  ----  -----------------------------------------------
//        0     4  type          (u32 LE, frame_type)
//        4     4  payload_bytes (u32 LE)
//        8     4  payload_crc32 (u32 LE, CRC of the payload bytes)
//       12     4  header_crc32  (u32 LE, CRC of bytes [0, 12))
//       16     …  payload
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "net/socket.hpp"

namespace bes::net {

// Raised on any framing violation (bad CRC, oversized length, unknown
// type). Distinct from net_error so callers can tell "the link died" from
// "the peer sent garbage" — the latter poisons the connection but not the
// process.
class frame_error : public net_error {
 public:
  using net_error::net_error;
};

enum class frame_type : std::uint32_t {
  hello = 1,        // client → server: magic + protocol version
  hello_ok = 2,     // server → client: version + shard identity
  query = 3,        // client → server: encoded query + options + floor
  threshold = 4,    // client → server: gossiped global k-th score
  cancel = 5,       // client → server: abandon a query (deadline passed)
  result = 6,       // server → client: status + results + stats
  error = 7,        // server → client: per-query or connection error text
  ping = 8,         // either direction: liveness probe
  pong = 9,         // reply to ping
  shutdown = 10,    // client → server: stop serving after this connection
  symbols_req = 11, // client → server: request the shard's symbol table
  symbols = 12,     // server → client: symbol names, alphabet order
};

[[nodiscard]] std::string_view to_string(frame_type type) noexcept;
[[nodiscard]] bool known_frame_type(std::uint32_t raw) noexcept;

inline constexpr std::size_t frame_header_bytes = 16;

// Largest payload either side will accept. Generous for result sets
// (64 MiB ≈ 4M results) yet small enough that a corrupt-but-CRC-valid
// length cannot exhaust memory.
inline constexpr std::uint32_t default_max_payload = 64u << 20;

struct frame {
  frame_type type = frame_type::ping;
  std::vector<std::uint8_t> payload;
};

// Serializes header + payload into one contiguous buffer (one send_all —
// keeps frames atomic relative to other writers holding the same mutex).
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const frame& f);

void write_frame(tcp_socket& sock, const frame& f);

// Reads one whole frame. Returns nullopt iff the peer closed cleanly on a
// frame boundary. Throws frame_error on corruption (bad header/payload CRC,
// payload_bytes > max_payload, unknown type) and net_error on I/O failure
// or `deadline` passing.
[[nodiscard]] std::optional<frame> read_frame(
    tcp_socket& sock, net_time deadline,
    std::uint32_t max_payload = default_max_payload);

}  // namespace bes::net
