#include "net/protocol.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "geometry/dihedral.hpp"

namespace bes::net {

namespace {

// Token wire form (u32): the dummy token is all-ones; a boundary token is
// (symbol << 1) | kind. Symbols therefore must fit 31 bits, which every
// real alphabet does by ~nine orders of magnitude.
constexpr std::uint32_t wire_dummy = 0xFFFFFFFFu;
constexpr std::uint32_t max_wire_symbol = 0x7FFFFFFEu;

std::uint32_t encode_token(token t) {
  if (t.is_dummy()) return wire_dummy;
  if (t.symbol() > max_wire_symbol) {
    throw frame_error("protocol: symbol id too large for wire");
  }
  return (t.symbol() << 1) |
         static_cast<std::uint32_t>(t.kind() == boundary_kind::end ? 1 : 0);
}

token decode_token(std::uint32_t raw) {
  if (raw == wire_dummy) return token::dummy();
  return token::boundary(raw >> 1, (raw & 1) != 0 ? boundary_kind::end
                                                  : boundary_kind::begin);
}

[[noreturn]] void reject(const char* what) {
  throw frame_error(std::string("protocol: ") + what);
}

void expect_type(const frame& f, frame_type t) {
  if (f.type != t) {
    reject("frame type mismatch");
  }
}

}  // namespace

std::string_view to_string(query_status status) noexcept {
  switch (status) {
    case query_status::ok: return "ok";
    case query_status::expired: return "expired";
    case query_status::failed: return "failed";
    case query_status::rejected: return "rejected";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// payload_writer

void payload_writer::u8(std::uint8_t v) { buf_.push_back(v); }

void payload_writer::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
}

void payload_writer::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void payload_writer::f64(double v) {
  u64(std::bit_cast<std::uint64_t>(v));
}

void payload_writer::str(const std::string& s) {
  if (s.size() > std::numeric_limits<std::uint32_t>::max()) {
    reject("string too long");
  }
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void payload_writer::tokens(const std::vector<token>& ts) {
  u32(static_cast<std::uint32_t>(ts.size()));
  for (token t : ts) u32(encode_token(t));
}

void payload_writer::symbol_ids(const std::vector<symbol_id>& ids) {
  u32(static_cast<std::uint32_t>(ids.size()));
  for (symbol_id id : ids) u32(id);
}

// ---------------------------------------------------------------------------
// payload_reader

void payload_reader::need(std::size_t n) const {
  if (size_ - pos_ < n) reject("truncated payload");
}

std::uint8_t payload_reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t payload_reader::u32() {
  need(4);
  const std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) |
                          (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
                          (static_cast<std::uint32_t>(data_[pos_ + 2]) << 16) |
                          (static_cast<std::uint32_t>(data_[pos_ + 3]) << 24);
  pos_ += 4;
  return v;
}

std::uint64_t payload_reader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}

double payload_reader::f64() { return std::bit_cast<double>(u64()); }

std::string payload_reader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

std::vector<token> payload_reader::tokens() {
  const std::uint32_t n = u32();
  // 4 bytes per token must still fit in what remains — checked up front so a
  // corrupt count cannot drive a huge reserve.
  need(static_cast<std::size_t>(n) * 4);
  std::vector<token> ts;
  ts.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) ts.push_back(decode_token(u32()));
  return ts;
}

std::vector<symbol_id> payload_reader::symbol_ids() {
  const std::uint32_t n = u32();
  need(static_cast<std::size_t>(n) * 4);
  std::vector<symbol_id> ids;
  ids.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) ids.push_back(u32());
  return ids;
}

void payload_reader::expect_end() const {
  if (pos_ != size_) reject("trailing bytes in payload");
}

// ---------------------------------------------------------------------------
// Encoders

frame encode(const hello_msg& m) {
  payload_writer w;
  w.u32(m.magic);
  w.u32(m.version);
  return {frame_type::hello, std::move(w).take()};
}

frame encode(const hello_ok_msg& m) {
  payload_writer w;
  w.u32(m.version);
  w.u32(m.shard);
  w.u64(m.images);
  w.u64(m.symbols);
  return {frame_type::hello_ok, std::move(w).take()};
}

namespace {

void write_options(payload_writer& w, const query_options& o) {
  w.u64(o.top_k);
  w.f64(o.min_score);
  w.u8(o.transform_invariant ? 1 : 0);
  w.u8(o.use_index ? 1 : 0);
  w.u8(o.histogram_pruning ? 1 : 0);
  w.u32(o.threads);
  w.u8(static_cast<std::uint8_t>(o.similarity.norm));
  w.u8(o.similarity.exact_lcs ? 1 : 0);
}

bool read_flag(payload_reader& r) {
  const std::uint8_t v = r.u8();
  if (v > 1) reject("flag byte out of range");
  return v != 0;
}

query_options read_options(payload_reader& r) {
  query_options o;
  o.top_k = r.u64();
  o.min_score = r.f64();
  o.transform_invariant = read_flag(r);
  o.use_index = read_flag(r);
  o.histogram_pruning = read_flag(r);
  o.threads = r.u32();
  const std::uint8_t norm = r.u8();
  try {
    o.similarity.norm = checked_norm_kind(norm);
  } catch (const std::invalid_argument&) {
    reject("norm_kind out of range");
  }
  o.similarity.exact_lcs = read_flag(r);
  return o;
}

}  // namespace

frame encode(const query_msg& m) {
  payload_writer w;
  w.u64(m.query_id);
  w.u32(m.deadline_ms);
  w.f64(m.floor);
  write_options(w, m.options);
  w.tokens(m.query.x.tokens());
  w.tokens(m.query.y.tokens());
  w.symbol_ids(m.query_symbols);
  return {frame_type::query, std::move(w).take()};
}

frame encode(const threshold_msg& m) {
  payload_writer w;
  w.u64(m.query_id);
  w.f64(m.floor);
  return {frame_type::threshold, std::move(w).take()};
}

frame encode(const cancel_msg& m) {
  payload_writer w;
  w.u64(m.query_id);
  return {frame_type::cancel, std::move(w).take()};
}

frame encode(const result_msg& m) {
  payload_writer w;
  w.u64(m.query_id);
  w.u8(static_cast<std::uint8_t>(m.status));
  w.u32(static_cast<std::uint32_t>(m.results.size()));
  for (const query_result& r : m.results) {
    w.u32(r.id);
    w.f64(r.score);
    w.u8(static_cast<std::uint8_t>(r.transform));
  }
  w.u64(m.stats.scanned);
  w.u64(m.stats.scored);
  w.u64(m.stats.pruned);
  w.u64(m.stats.band_rejected);
  w.u64(m.stats.candidates_generated);
  return {frame_type::result, std::move(w).take()};
}

frame encode(const error_msg& m) {
  payload_writer w;
  w.u64(m.query_id);
  w.str(m.message);
  return {frame_type::error, std::move(w).take()};
}

frame encode(const symbols_msg& m) {
  payload_writer w;
  w.u32(static_cast<std::uint32_t>(m.names.size()));
  for (const std::string& name : m.names) w.str(name);
  return {frame_type::symbols, std::move(w).take()};
}

// ---------------------------------------------------------------------------
// Decoders

hello_msg decode_hello(const frame& f) {
  expect_type(f, frame_type::hello);
  payload_reader r(f.payload);
  hello_msg m;
  m.magic = r.u32();
  m.version = r.u32();
  r.expect_end();
  if (m.magic != protocol_magic) reject("bad magic");
  return m;
}

hello_ok_msg decode_hello_ok(const frame& f) {
  expect_type(f, frame_type::hello_ok);
  payload_reader r(f.payload);
  hello_ok_msg m;
  m.version = r.u32();
  m.shard = r.u32();
  m.images = r.u64();
  m.symbols = r.u64();
  r.expect_end();
  return m;
}

query_msg decode_query(const frame& f) {
  expect_type(f, frame_type::query);
  payload_reader r(f.payload);
  query_msg m;
  m.query_id = r.u64();
  m.deadline_ms = r.u32();
  m.floor = r.f64();
  m.options = read_options(r);
  m.query.x = axis_string(r.tokens());
  m.query.y = axis_string(r.tokens());
  m.query_symbols = r.symbol_ids();
  r.expect_end();
  return m;
}

threshold_msg decode_threshold(const frame& f) {
  expect_type(f, frame_type::threshold);
  payload_reader r(f.payload);
  threshold_msg m;
  m.query_id = r.u64();
  m.floor = r.f64();
  r.expect_end();
  return m;
}

cancel_msg decode_cancel(const frame& f) {
  expect_type(f, frame_type::cancel);
  payload_reader r(f.payload);
  cancel_msg m;
  m.query_id = r.u64();
  r.expect_end();
  return m;
}

result_msg decode_result(const frame& f) {
  expect_type(f, frame_type::result);
  payload_reader r(f.payload);
  result_msg m;
  m.query_id = r.u64();
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(query_status::rejected)) {
    reject("query_status out of range");
  }
  m.status = static_cast<query_status>(status);
  const std::uint32_t count = r.u32();
  m.results.reserve(std::min<std::uint32_t>(count, 1u << 20));
  for (std::uint32_t i = 0; i < count; ++i) {
    query_result qr;
    qr.id = r.u32();
    qr.score = r.f64();
    const std::uint8_t d = r.u8();
    if (d >= all_dihedral.size()) reject("dihedral out of range");
    qr.transform = static_cast<dihedral>(d);
    m.results.push_back(qr);
  }
  m.stats.scanned = r.u64();
  m.stats.scored = r.u64();
  m.stats.pruned = r.u64();
  m.stats.band_rejected = r.u64();
  m.stats.candidates_generated = r.u64();
  r.expect_end();
  return m;
}

error_msg decode_error(const frame& f) {
  expect_type(f, frame_type::error);
  payload_reader r(f.payload);
  error_msg m;
  m.query_id = r.u64();
  m.message = r.str();
  r.expect_end();
  return m;
}

symbols_msg decode_symbols(const frame& f) {
  expect_type(f, frame_type::symbols);
  payload_reader r(f.payload);
  symbols_msg m;
  const std::uint32_t count = r.u32();
  m.names.reserve(std::min<std::uint32_t>(count, 1u << 20));
  for (std::uint32_t i = 0; i < count; ++i) m.names.push_back(r.str());
  r.expect_end();
  return m;
}

}  // namespace bes::net
