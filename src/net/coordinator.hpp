// The scatter/gather coordinator: fans a query out to every shard server,
// gathers per-shard top-k answers, and merges them exactly as the
// in-process sharded search does (concat + rank). Two properties carry over
// from db/scan.hpp's admissibility argument:
//
//  * Correctness: each shard defends its own top-k, and the global top-k is
//    a subset of the union of per-shard top-ks, so the merge is
//    bit-identical to the unsharded scan — gossip or no gossip.
//  * Pruning: once the coordinator holds k gathered results, their k-th
//    score is an admissible floor for EVERY shard still scanning (any
//    candidate below it already has >= k better rivals in the union), so it
//    is gossiped to in-flight shards via THRESHOLD frames, shrinking their
//    remaining work without changing their answers.
//
// Failure policy: a shard that dies, hangs past the deadline, rejects, or
// expires mid-scan degrades the answer instead of sinking it — the merged
// result carries stats.degraded = true plus one shard_scan_status per shard
// saying exactly how each partition ended.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/be_string.hpp"
#include "db/query.hpp"
#include "db/result_cache.hpp"
#include "symbolic/alphabet.hpp"

namespace bes::net {

struct endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct coordinator_options {
  unsigned connect_timeout_ms = 2000;
  // Per-query budget (scatter to final gather); 0 = wait forever.
  unsigned default_deadline_ms = 30000;
  // Admission control: queries in flight through this coordinator at once;
  // also the worker count for search_batch.
  unsigned max_inflight = 4;
  // Gossip the running global k-th score to in-flight shards. Off: shards
  // prune only against their own local top-k (still exact, more work).
  bool gossip = true;
  // Scatter shard-by-shard instead of all-at-once, embedding the running
  // floor in each QUERY frame. Slower (no overlap) but every run prunes
  // identically — the mode the gossip-effectiveness tests pin down.
  bool sequential_scatter = false;
  // Coordinator-side result cache (db/result_cache.hpp): > 0 enables a
  // cache of that many entries, so a repeated query short-circuits before
  // touching any socket. Remote corpora are immutable while served, so
  // entries have no epoch cut; call invalidate_cache() when the fleet's
  // corpus or topology changes. Entries store the gathered per-shard UNION
  // (pre-truncation), keyed without top_k: one entry serves any request
  // whose top_k fits within the depth it was gathered at, and a deeper
  // request re-scatters with the gossip floor pre-seeded from the cached
  // k-th score (the THRESHOLD frames start a round ahead). Only
  // non-degraded answers are cached.
  std::size_t cache_entries = 0;
};

struct remote_result {
  std::vector<query_result> results;
  search_stats stats;
};

class coordinator {
 public:
  explicit coordinator(std::vector<endpoint> shards,
                       const coordinator_options& options = {});
  ~coordinator();

  coordinator(const coordinator&) = delete;
  coordinator& operator=(const coordinator&) = delete;

  [[nodiscard]] std::size_t shard_count() const noexcept;

  // Scatter/gather one query. Never throws on shard failure — degraded
  // answers carry the evidence in stats; throws std::invalid_argument only
  // on unusable arguments (no shards).
  [[nodiscard]] remote_result search(const be_string2d& query,
                                     std::span<const symbol_id> query_symbols,
                                     const query_options& options);

  // Batch: results[i] corresponds to queries[i]. Queries run through up to
  // max_inflight concurrent scatters; each query's merge is independent, so
  // results match per-query search() calls exactly.
  [[nodiscard]] std::vector<remote_result> search_batch(
      std::span<const be_string2d> queries,
      std::span<const std::vector<symbol_id>> query_symbols,
      const query_options& options);

  // The corpus alphabet: the longest symbol list any shard reports (shard
  // alphabets are prefixes of the master). Throws net_error if no shard is
  // reachable.
  [[nodiscard]] std::vector<std::string> fetch_symbols();

  // Asks every reachable shard server to stop (best effort).
  void shutdown_servers();

  // Counters of the coordinator-side cache (all zero when disabled).
  // Partial hits that re-scattered with a seeded floor count as
  // delta_refreshes, with delta_rescored totaling the records the re-scatter
  // scored.
  [[nodiscard]] result_cache_stats cache_stats() const noexcept;

  // Drops every cached entry. Call when the served corpus changes (reshard,
  // compaction, corpus swap) — remote entries carry no epoch cut to expire
  // them automatically.
  void invalidate_cache() noexcept;

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

}  // namespace bes::net
