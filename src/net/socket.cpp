#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <limits>
#include <utility>

namespace bes::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw net_error(std::string("net: ") + what + ": " + std::strerror(errno));
}

// Milliseconds until `deadline` clamped to poll()'s int argument; -1 when
// there is no deadline (block), 0 when it already passed.
int poll_timeout_ms(net_time deadline) {
  if (deadline == no_deadline()) return -1;
  const auto now = net_clock::now();
  if (deadline <= now) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
          .count();
  return static_cast<int>(
      std::min<long long>(ms + 1, std::numeric_limits<int>::max()));
}

// Waits for `events` on fd. Returns true when ready, false when the
// deadline passed first; throws on poll failure. EINTR retries.
bool wait_ready(int fd, short events, net_time deadline) {
  while (true) {
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, poll_timeout_ms(deadline));
    if (rc > 0) return true;
    if (rc == 0) {
      if (deadline != no_deadline() && net_clock::now() >= deadline)
        return false;
      continue;  // spurious zero from the +1 clamp; re-poll
    }
    if (errno == EINTR) continue;
    throw_errno("poll");
  }
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw net_error("net: bad IPv4 address '" + host + "'");
  }
  return addr;
}

void set_nodelay(int fd) noexcept {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

tcp_socket::~tcp_socket() { close(); }

tcp_socket::tcp_socket(tcp_socket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

tcp_socket& tcp_socket::operator=(tcp_socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void tcp_socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void tcp_socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

tcp_socket tcp_socket::connect(const std::string& host, std::uint16_t port,
                               unsigned timeout_ms) {
  const sockaddr_in addr = make_addr(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");
  tcp_socket sock(fd);  // owns fd from here; any throw below closes it

  // Non-blocking connect so the timeout is enforceable.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  if (rc != 0) {
    if (errno != EINPROGRESS) throw_errno("connect");
    if (!wait_ready(fd, POLLOUT, deadline_in(timeout_ms))) {
      throw net_error("net: connect timed out");
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      throw_errno("getsockopt");
    }
    if (err != 0) {
      errno = err;
      throw_errno("connect");
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking; reads use poll anyway
  set_nodelay(fd);
  return sock;
}

void tcp_socket::send_all(const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::send(fd_, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

bool tcp_socket::read_exact(void* data, std::size_t size, net_time deadline) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    if (!wait_ready(fd_, POLLIN, deadline)) {
      throw net_error("net: read deadline exceeded");
    }
    const ssize_t n = ::recv(fd_, p + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF on a frame boundary
      throw net_error("net: peer closed mid-read");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

tcp_listener::tcp_listener(std::uint16_t port, const std::string& bind_host) {
  const sockaddr_in addr = make_addr(bind_host, port);
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    errno = err;
    throw_errno("bind");
  }
  if (::listen(fd_, 64) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    errno = err;
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    errno = err;
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

tcp_listener::~tcp_listener() { close(); }

void tcp_listener::close() noexcept {
  if (fd_ >= 0) {
    // shutdown() first so a thread blocked in accept()'s poll wakes up.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

tcp_socket tcp_listener::accept(unsigned timeout_ms) {
  if (fd_ < 0) return tcp_socket{};
  bool ready;
  try {
    ready = wait_ready(fd_, POLLIN, deadline_in(timeout_ms));
  } catch (const net_error&) {
    // close() from another thread invalidates the fd mid-poll (EBADF);
    // report that as "no connection" like a timeout, not a hard error.
    if (fd_ < 0) return tcp_socket{};
    throw;
  }
  if (!ready) return tcp_socket{};
  const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED || errno == EINVAL ||
        errno == EBADF) {
      return tcp_socket{};  // raced with close() or an aborted handshake
    }
    throw_errno("accept");
  }
  set_nodelay(fd);
  return tcp_socket(fd);
}

}  // namespace bes::net
