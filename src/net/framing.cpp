#include "net/framing.hpp"

#include <cstring>

#include "util/checksum.hpp"

namespace bes::net {

namespace {

void put_u32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::string_view to_string(frame_type type) noexcept {
  switch (type) {
    case frame_type::hello: return "hello";
    case frame_type::hello_ok: return "hello_ok";
    case frame_type::query: return "query";
    case frame_type::threshold: return "threshold";
    case frame_type::cancel: return "cancel";
    case frame_type::result: return "result";
    case frame_type::error: return "error";
    case frame_type::ping: return "ping";
    case frame_type::pong: return "pong";
    case frame_type::shutdown: return "shutdown";
    case frame_type::symbols_req: return "symbols_req";
    case frame_type::symbols: return "symbols";
  }
  return "?";
}

bool known_frame_type(std::uint32_t raw) noexcept {
  return raw >= static_cast<std::uint32_t>(frame_type::hello) &&
         raw <= static_cast<std::uint32_t>(frame_type::symbols);
}

std::vector<std::uint8_t> encode_frame(const frame& f) {
  std::vector<std::uint8_t> buf(frame_header_bytes + f.payload.size());
  put_u32(buf.data(), static_cast<std::uint32_t>(f.type));
  put_u32(buf.data() + 4, static_cast<std::uint32_t>(f.payload.size()));
  put_u32(buf.data() + 8, crc32(f.payload.data(), f.payload.size()));
  put_u32(buf.data() + 12, crc32(buf.data(), 12));
  if (!f.payload.empty()) {
    std::memcpy(buf.data() + frame_header_bytes, f.payload.data(),
                f.payload.size());
  }
  return buf;
}

void write_frame(tcp_socket& sock, const frame& f) {
  const std::vector<std::uint8_t> buf = encode_frame(f);
  sock.send_all(buf.data(), buf.size());
}

std::optional<frame> read_frame(tcp_socket& sock, net_time deadline,
                                std::uint32_t max_payload) {
  std::uint8_t header[frame_header_bytes];
  if (!sock.read_exact(header, sizeof header, deadline)) return std::nullopt;

  // Header CRC first: until it passes, none of the other fields —
  // especially payload_bytes — may be believed.
  const std::uint32_t stated_header_crc = get_u32(header + 12);
  if (crc32(header, 12) != stated_header_crc) {
    throw frame_error("frame: header checksum mismatch");
  }
  const std::uint32_t raw_type = get_u32(header);
  const std::uint32_t payload_bytes = get_u32(header + 4);
  const std::uint32_t payload_crc = get_u32(header + 8);
  if (!known_frame_type(raw_type)) {
    throw frame_error("frame: unknown frame type " + std::to_string(raw_type));
  }
  if (payload_bytes > max_payload) {
    throw frame_error("frame: declared payload of " +
                      std::to_string(payload_bytes) + " bytes exceeds limit");
  }

  frame f;
  f.type = static_cast<frame_type>(raw_type);
  f.payload.resize(payload_bytes);
  if (payload_bytes > 0 &&
      !sock.read_exact(f.payload.data(), payload_bytes, deadline)) {
    throw net_error("net: peer closed mid-frame");
  }
  if (crc32(f.payload.data(), f.payload.size()) != payload_crc) {
    throw frame_error("frame: payload checksum mismatch");
  }
  return f;
}

}  // namespace bes::net
