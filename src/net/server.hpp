// The shard server: serves one partition of a sharded corpus over the frame
// protocol (net/framing.hpp, net/protocol.hpp). One accept thread, one
// reader + one executor thread per connection, and a bounded admission
// queue per connection — a full queue answers `rejected` immediately rather
// than letting latency pile up invisibly.
//
// Scans run CHUNKED: the executor hands `scan_chunk` candidate ids at a time
// to the same detail::scan_shard engine the in-process search uses, and
// between chunks it (a) folds the latest gossiped threshold into the scan's
// pruning floor and (b) checks the query's deadline/cancel poison flag.
// Chunking costs nothing in exactness — per-chunk top-k concat + re-rank
// equals the whole-scan top-k — and it is what makes a remote THRESHOLD
// frame actually shrink work mid-flight, and a CANCEL actually stop it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "db/database.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace bes::net {

struct server_options {
  std::uint16_t port = 0;        // 0 = ephemeral; shard_server::port() tells
  unsigned scan_threads = 1;     // worker threads per scan (caps wire value)
  std::size_t scan_chunk = 1024; // candidate ids per deadline/gossip check
  std::size_t max_queue = 16;    // admission: queued queries per connection
  std::uint32_t max_payload = default_max_payload;
  // Test hook: sleep this long before every chunk, making "the deadline
  // passes mid-scan" reproducible without a huge corpus.
  unsigned scan_delay_ms = 0;
};

// Serves one shard. The database reference must outlive the server;
// `global_ids` maps local record ids to corpus-global ids (results cross
// the wire already translated).
class shard_server {
 public:
  shard_server(const image_database& db, std::vector<image_id> global_ids,
               std::uint32_t shard_index, const server_options& options);
  ~shard_server();

  shard_server(const shard_server&) = delete;
  shard_server& operator=(const shard_server&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] std::uint32_t shard_index() const noexcept { return shard_; }

  // Asks every thread to wind down (closes the listener and all connection
  // sockets) without joining — safe from any thread, including a
  // connection's own reader (the SHUTDOWN frame path).
  void request_stop() noexcept;

  // request_stop() + join everything. NOT callable from a server thread.
  void stop();

  // Blocks until request_stop() has been called (serve CLI main loop).
  void wait_stop();

  // True once request_stop() has been called (poll-friendly counterpart of
  // wait_stop for loops that also watch signal flags).
  [[nodiscard]] bool stop_requested() const noexcept {
    return stop_.load(std::memory_order_relaxed);
  }

 private:
  struct pending_query;
  struct connection;

  void accept_loop();
  void reader_loop(const std::shared_ptr<connection>& conn);
  void executor_loop(const std::shared_ptr<connection>& conn);
  [[nodiscard]] result_msg run_query(connection& conn, pending_query& q);

  const image_database& db_;
  std::vector<image_id> global_ids_;
  std::uint32_t shard_;
  server_options options_;

  tcp_listener listener_;
  std::uint16_t port_ = 0;

  std::atomic<bool> stop_{false};
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;

  std::thread accept_thread_;
  std::mutex conns_mutex_;
  std::vector<std::shared_ptr<connection>> conns_;
};

}  // namespace bes::net
