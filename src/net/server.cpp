#include "net/server.hpp"

#include <chrono>
#include <deque>
#include <span>
#include <unordered_map>
#include <utility>

#include "db/scan.hpp"

namespace bes::net {

namespace {

// CAS-max on an atomic double: the floor only ever rises.
void raise_atomic(std::atomic<double>& target, double f) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (f > current && !target.compare_exchange_weak(
                            current, f, std::memory_order_relaxed)) {
  }
}

}  // namespace

// One query sitting in (or past) the admission queue. The reader thread
// updates floor/poisoned from THRESHOLD/CANCEL frames while the executor
// scans; both sides touch only atomics.
struct shard_server::pending_query {
  query_msg msg;
  net_time deadline = no_deadline();
  std::atomic<double> floor{0.0};
  std::atomic<bool> poisoned{false};
};

struct shard_server::connection {
  tcp_socket sock;
  // Serializes whole frames: the reader replies to ping/symbols/rejects
  // while the executor streams results on the same socket.
  std::mutex write_mutex;

  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<std::shared_ptr<pending_query>> queue;  // admission FIFO
  std::unordered_map<std::uint64_t, std::shared_ptr<pending_query>> pending;
  bool closing = false;

  std::thread reader;    // owns the connection lifecycle; joins executor
  std::thread executor;
};

shard_server::shard_server(const image_database& db,
                           std::vector<image_id> global_ids,
                           std::uint32_t shard_index,
                           const server_options& options)
    : db_(db),
      global_ids_(std::move(global_ids)),
      shard_(shard_index),
      options_(options),
      listener_(options.port) {
  port_ = listener_.port();
  accept_thread_ = std::thread([this] { accept_loop(); });
}

shard_server::~shard_server() { stop(); }

void shard_server::request_stop() noexcept {
  {
    std::lock_guard lock(stop_mutex_);
    if (stop_.exchange(true)) return;
  }
  stop_cv_.notify_all();
  listener_.close();
  std::lock_guard lock(conns_mutex_);
  for (const auto& conn : conns_) {
    conn->sock.shutdown_both();  // unblocks the reader's read_frame
    {
      std::lock_guard qlock(conn->queue_mutex);
      conn->closing = true;
      // Poison queued + in-flight queries so the executor drains fast.
      for (auto& [id, q] : conn->pending) q->poisoned.store(true);
    }
    conn->queue_cv.notify_all();
  }
}

void shard_server::stop() {
  request_stop();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::shared_ptr<connection>> conns;
  {
    std::lock_guard lock(conns_mutex_);
    conns.swap(conns_);
  }
  // The reader joins its executor before exiting, so joining readers here
  // tears the whole connection down.
  for (const auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }
}

void shard_server::wait_stop() {
  std::unique_lock lock(stop_mutex_);
  stop_cv_.wait(lock, [this] { return stop_.load(); });
}

void shard_server::accept_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    tcp_socket sock = listener_.accept(200);
    if (!sock.valid()) continue;  // timeout or listener closed
    auto conn = std::make_shared<connection>();
    conn->sock = std::move(sock);
    {
      std::lock_guard lock(conns_mutex_);
      if (stop_.load()) return;  // raced with request_stop: drop it
      conns_.push_back(conn);
    }
    conn->executor = std::thread([this, conn] { executor_loop(conn); });
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
  }
}

void shard_server::reader_loop(const std::shared_ptr<connection>& conn) {
  auto send = [&](const frame& f) {
    std::lock_guard lock(conn->write_mutex);
    try {
      write_frame(conn->sock, f);
    } catch (const net_error&) {
      // Peer gone; the next read notices and ends the connection.
    }
  };

  try {
    // The handshake authenticates intent, not identity: a stray client
    // speaking another protocol fails the magic check before anything else
    // is interpreted.
    std::optional<frame> first =
        read_frame(conn->sock, deadline_in(10000), options_.max_payload);
    if (!first || first->type != frame_type::hello) {
      throw frame_error("protocol: expected hello");
    }
    const hello_msg hello = decode_hello(*first);
    if (hello.version != protocol_version) {
      throw frame_error("protocol: version mismatch");
    }
    send(encode(hello_ok_msg{protocol_version, shard_,
                             static_cast<std::uint64_t>(db_.size()),
                             static_cast<std::uint64_t>(db_.symbols().size())}));

    while (!stop_.load(std::memory_order_relaxed)) {
      std::optional<frame> f =
          read_frame(conn->sock, no_deadline(), options_.max_payload);
      if (!f) break;  // clean EOF
      switch (f->type) {
        case frame_type::query: {
          auto q = std::make_shared<pending_query>();
          q->msg = decode_query(*f);
          q->deadline = deadline_in(q->msg.deadline_ms);
          q->floor.store(q->msg.floor, std::memory_order_relaxed);
          bool admitted = false;
          {
            std::lock_guard lock(conn->queue_mutex);
            if (!conn->closing && conn->queue.size() < options_.max_queue) {
              conn->queue.push_back(q);
              conn->pending.emplace(q->msg.query_id, q);
              admitted = true;
            }
          }
          if (admitted) {
            conn->queue_cv.notify_one();
          } else {
            result_msg rejected;
            rejected.query_id = q->msg.query_id;
            rejected.status = query_status::rejected;
            send(encode(rejected));
          }
          break;
        }
        case frame_type::threshold: {
          const threshold_msg m = decode_threshold(*f);
          std::lock_guard lock(conn->queue_mutex);
          const auto it = conn->pending.find(m.query_id);
          // A threshold for an already-answered query is a benign race.
          if (it != conn->pending.end()) {
            raise_atomic(it->second->floor, m.floor);
          }
          break;
        }
        case frame_type::cancel: {
          const cancel_msg m = decode_cancel(*f);
          std::lock_guard lock(conn->queue_mutex);
          const auto it = conn->pending.find(m.query_id);
          if (it != conn->pending.end()) {
            it->second->poisoned.store(true, std::memory_order_relaxed);
          }
          break;
        }
        case frame_type::ping:
          send(frame{frame_type::pong, {}});
          break;
        case frame_type::symbols_req:
          send(encode(symbols_msg{db_.symbols().names()}));
          break;
        case frame_type::shutdown:
          request_stop();
          break;
        default:
          throw frame_error("protocol: unexpected frame " +
                            std::string(to_string(f->type)));
      }
    }
  } catch (const frame_error& e) {
    // Garbage on the wire: tell the peer why (best effort), then hang up.
    // The connection is poisoned — re-synchronizing a byte stream after a
    // framing error is guesswork, and guesswork is how silently-wrong
    // results happen.
    send(encode(error_msg{0, e.what()}));
  } catch (const net_error&) {
    // Link died; nothing to report to anyone.
  }

  // Wind down this connection: wake the executor, let it finish the query
  // it is on (poisoned, so quickly), and join it.
  {
    std::lock_guard lock(conn->queue_mutex);
    conn->closing = true;
    for (auto& [id, q] : conn->pending) q->poisoned.store(true);
  }
  conn->queue_cv.notify_all();
  if (conn->executor.joinable()) conn->executor.join();
  conn->sock.close();
}

void shard_server::executor_loop(const std::shared_ptr<connection>& conn) {
  while (true) {
    std::shared_ptr<pending_query> q;
    {
      std::unique_lock lock(conn->queue_mutex);
      conn->queue_cv.wait(
          lock, [&] { return conn->closing || !conn->queue.empty(); });
      if (conn->queue.empty()) return;  // closing and drained
      q = std::move(conn->queue.front());
      conn->queue.pop_front();
    }

    result_msg out = run_query(*conn, *q);

    {
      std::lock_guard lock(conn->queue_mutex);
      conn->pending.erase(q->msg.query_id);
      if (conn->closing) continue;  // socket is going away; don't write
    }
    std::lock_guard lock(conn->write_mutex);
    try {
      write_frame(conn->sock, encode(out));
    } catch (const net_error&) {
      // Peer gone mid-answer; reader will notice and close.
    }
  }
}

result_msg shard_server::run_query(connection&, pending_query& q) {
  result_msg out;
  out.query_id = q.msg.query_id;

  query_options opts = q.msg.options;
  // The wire thread count is advisory; the server's own budget rules.
  opts.threads = options_.scan_threads;

  const auto expired = [&] {
    return q.poisoned.load(std::memory_order_relaxed) ||
           (q.deadline != no_deadline() && net_clock::now() >= q.deadline);
  };

  try {
    if (expired()) {
      out.status = query_status::expired;
      return out;
    }

    std::size_t generated = 0;
    const std::vector<image_id> ids =
        detail::scan_ids(db_, q.msg.query_symbols, opts, &generated);
    out.stats.candidates_generated = generated;

    // Server databases are static after load; the flat span mapping holds.
    const detail::id_map globals{.flat = global_ids_};
    const bool pruned = detail::pruning_applies(opts);
    // In pruned mode ONE shared top-k spans all chunks, so the k-th score
    // earned in chunk 0 keeps pruning chunk 9 — plus whatever floor the
    // coordinator gossips in between.
    detail::shared_topk shared(opts.top_k, opts.min_score);
    std::vector<query_result> parts;
    bool partial = false;

    const std::size_t chunk =
        options_.scan_chunk == 0 ? 1 : options_.scan_chunk;
    for (std::size_t begin = 0; begin < ids.size(); begin += chunk) {
      if (options_.scan_delay_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.scan_delay_ms));
      }
      if (expired()) {
        partial = true;
        break;
      }
      if (pruned) {
        shared.raise_floor(q.floor.load(std::memory_order_relaxed));
      }
      const std::size_t end = std::min(begin + chunk, ids.size());
      const std::span<const image_id> slice(ids.data() + begin, end - begin);
      search_stats cs;
      std::vector<query_result> part =
          detail::scan_shard(db_, q.msg.query, slice, globals, nullptr,
                             nullptr, opts, pruned ? &shared : nullptr, &cs);
      out.stats.scanned += cs.scanned;
      out.stats.scored += cs.scored;
      out.stats.pruned += cs.pruned;
      out.stats.band_rejected += cs.band_rejected;
      if (!pruned) {
        parts.insert(parts.end(), part.begin(), part.end());
      }
    }

    // Per-chunk ranked parts concatenate + re-rank to exactly the whole
    // scan's answer (each chunk keeps its own top-k, and the global top-k
    // is a subset of the union of per-chunk top-ks).
    out.results =
        pruned ? shared.take() : detail::rank_results(std::move(parts), opts);
    out.status = partial ? query_status::expired : query_status::ok;
  } catch (...) {
    out.results.clear();
    out.status = query_status::failed;
  }
  return out;
}

}  // namespace bes::net
