// Message bodies carried inside frames (net/framing.hpp): a tiny hand-rolled
// little-endian codec plus one struct per frame type. Everything decoded off
// the wire is validated — lengths are bounds-checked against the payload,
// enums are range-checked, and every decoder finishes with expect_end() so a
// short or padded payload is a frame_error, never silently-misread fields.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/be_string.hpp"
#include "db/query.hpp"
#include "net/framing.hpp"

namespace bes::net {

// 'BESQ' — rejects a stray client speaking some other protocol at the port.
inline constexpr std::uint32_t protocol_magic = 0x42455351;
inline constexpr std::uint32_t protocol_version = 1;

// ---------------------------------------------------------------------------
// Codec primitives

// Appends little-endian fields to a byte buffer.
class payload_writer {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void str(const std::string& s);              // u32 length + bytes
  void tokens(const std::vector<token>& ts);   // u32 count + u32 per token
  void symbol_ids(const std::vector<symbol_id>& ids);

  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

// Reads the same fields back, bounds-checked; throws frame_error on a
// truncated or over-long payload and on any out-of-range enum/token.
class payload_reader {
 public:
  explicit payload_reader(const std::vector<std::uint8_t>& payload)
      : data_(payload.data()), size_(payload.size()) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<token> tokens();
  [[nodiscard]] std::vector<symbol_id> symbol_ids();

  // Call after decoding a message: trailing bytes mean a version skew or
  // corruption that happened to pass the CRC — fail closed.
  void expect_end() const;

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Messages (one struct per frame type that has a payload)

struct hello_msg {
  std::uint32_t magic = protocol_magic;
  std::uint32_t version = protocol_version;
};

struct hello_ok_msg {
  std::uint32_t version = protocol_version;
  std::uint32_t shard = 0;   // which partition this server holds
  std::uint64_t images = 0;  // records in the shard
  std::uint64_t symbols = 0; // alphabet size the shard was encoded with
};

struct query_msg {
  std::uint64_t query_id = 0;
  std::uint32_t deadline_ms = 0;  // server-side budget; 0 = none
  double floor = 0.0;             // gossiped global k-th at send time
  query_options options;          // threads is advisory; the server re-caps
  be_string2d query;
  std::vector<symbol_id> query_symbols;
};

struct threshold_msg {
  std::uint64_t query_id = 0;
  double floor = 0.0;
};

struct cancel_msg {
  std::uint64_t query_id = 0;
};

// How the shard's side of one query ended (mirrors shard_scan_state minus
// the coordinator-only outcomes).
enum class query_status : std::uint8_t {
  ok = 0,        // complete scan, full per-shard top-k attached
  expired = 1,   // deadline/cancel hit mid-scan; attached results are partial
  failed = 2,    // scan threw; no results
  rejected = 3,  // admission queue full; no results
};

[[nodiscard]] std::string_view to_string(query_status status) noexcept;

struct result_msg {
  std::uint64_t query_id = 0;
  query_status status = query_status::ok;
  // Result ids are GLOBAL corpus ids (the server translates before sending).
  std::vector<query_result> results;
  // Core counters only (scanned/scored/pruned/band_rejected/generated);
  // plans and shard_statuses do not cross the wire.
  search_stats stats;
};

struct error_msg {
  std::uint64_t query_id = 0;  // 0 when the error is connection-scoped
  std::string message;
};

struct symbols_msg {
  std::vector<std::string> names;  // alphabet order (symbol_id == position)
};

// ---------------------------------------------------------------------------
// Encode to / decode from frames. Decoders validate exhaustively and throw
// frame_error on anything malformed.

[[nodiscard]] frame encode(const hello_msg& m);
[[nodiscard]] frame encode(const hello_ok_msg& m);
[[nodiscard]] frame encode(const query_msg& m);
[[nodiscard]] frame encode(const threshold_msg& m);
[[nodiscard]] frame encode(const cancel_msg& m);
[[nodiscard]] frame encode(const result_msg& m);
[[nodiscard]] frame encode(const error_msg& m);
[[nodiscard]] frame encode(const symbols_msg& m);

[[nodiscard]] hello_msg decode_hello(const frame& f);
[[nodiscard]] hello_ok_msg decode_hello_ok(const frame& f);
[[nodiscard]] query_msg decode_query(const frame& f);
[[nodiscard]] threshold_msg decode_threshold(const frame& f);
[[nodiscard]] cancel_msg decode_cancel(const frame& f);
[[nodiscard]] result_msg decode_result(const frame& f);
[[nodiscard]] error_msg decode_error(const frame& f);
[[nodiscard]] symbols_msg decode_symbols(const frame& f);

}  // namespace bes::net
