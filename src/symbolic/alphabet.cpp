#include "symbolic/alphabet.hpp"

#include <cctype>
#include <stdexcept>

namespace bes {

bool valid_symbol_name(std::string_view name) noexcept {
  if (name.empty()) return false;
  for (unsigned char c : name) {
    if (std::isspace(c) != 0) return false;
    if (c == ':' || c == ',' || c == '(' || c == ')') return false;
  }
  // The bare token "E" is reserved for the dummy object in serialized form.
  return name != "E";
}

symbol_id alphabet::intern(std::string_view name) {
  if (auto it = ids_.find(std::string(name)); it != ids_.end()) {
    return it->second;
  }
  if (!valid_symbol_name(name)) {
    throw std::invalid_argument("alphabet: invalid symbol name '" +
                                std::string(name) + "'");
  }
  const auto id = static_cast<symbol_id>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

symbol_id alphabet::id_of(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) {
    throw std::out_of_range("alphabet: unknown symbol '" + std::string(name) +
                            "'");
  }
  return it->second;
}

bool alphabet::knows(std::string_view name) const noexcept {
  return ids_.find(std::string(name)) != ids_.end();
}

const std::string& alphabet::name_of(symbol_id id) const {
  if (id >= names_.size()) {
    throw std::out_of_range("alphabet: id out of range: " + std::to_string(id));
  }
  return names_[id];
}

}  // namespace bes
