// Symbolic pictures: a set of icon objects with MBRs inside a bounded domain.
//
// This is the paper's input contract ("by default ... we have abstracted all
// objects and their MBR coordinates from that image"). A symbolic_image is a
// value type: cheap to copy for small scenes, equality-comparable, and the
// unit stored in the image database.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/dihedral.hpp"
#include "geometry/rect.hpp"
#include "symbolic/alphabet.hpp"

namespace bes {

// One icon object: a symbol (icon class) plus its MBR. Distinct objects may
// share the same symbol (two chairs in one scene).
struct icon {
  symbol_id symbol = 0;
  rect mbr;

  friend bool operator==(const icon&, const icon&) = default;
};

class symbolic_image {
 public:
  // An empty picture over the domain [0,width) x [0,height).
  // Throws std::invalid_argument unless both dimensions are positive.
  symbolic_image(int width, int height);

  // An empty 1x1 picture: the value-initialized state chunked record
  // storage (util/stable_vector.hpp) default-constructs slots into before
  // a real record is staged over them. Satisfies every class invariant.
  symbolic_image() : symbolic_image(1, 1) {}

  // Adds an icon. Throws std::invalid_argument if the MBR is invalid or not
  // fully inside the image domain. Returns the icon's index.
  std::size_t add(symbol_id symbol, const rect& mbr);
  std::size_t add(const icon& obj) { return add(obj.symbol, obj.mbr); }

  // Removes the icon at `index` (order of the remaining icons is preserved).
  // Throws std::out_of_range on a bad index.
  void remove(std::size_t index);

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] const std::vector<icon>& icons() const noexcept {
    return icons_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return icons_.size(); }
  [[nodiscard]] bool empty() const noexcept { return icons_.empty(); }

  // True iff no two icons' MBRs share a point (used by extraction tests and
  // the non-overlapping workload mode).
  [[nodiscard]] bool disjoint() const noexcept;

  friend bool operator==(const symbolic_image&,
                         const symbolic_image&) = default;

 private:
  int width_;
  int height_;
  std::vector<icon> icons_;
};

// The geometrically transformed picture (domain swaps for axis-swapping
// elements). Property-tested against the string-level transform in core.
[[nodiscard]] symbolic_image apply(dihedral t, const symbolic_image& img);

}  // namespace bes
