// The icon symbol alphabet: a bidirectional name <-> id registry.
//
// The paper's symbol set V ("each symbol in V presents an icon object").
// Symbols are interned once and referenced by dense 32-bit ids everywhere
// else (tokens, strings, indexes), so comparisons on hot retrieval paths are
// integer compares, never string compares.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace bes {

using symbol_id = std::uint32_t;

class alphabet {
 public:
  alphabet() = default;

  // Returns the id of `name`, interning it if new. Names must be non-empty
  // and free of whitespace / ':' / ',' / parentheses (they appear verbatim in
  // the textual serialization). Throws std::invalid_argument otherwise.
  symbol_id intern(std::string_view name);

  // Id of an existing name; throws std::out_of_range if unknown.
  [[nodiscard]] symbol_id id_of(std::string_view name) const;

  [[nodiscard]] bool knows(std::string_view name) const noexcept;

  // Name of an id; throws std::out_of_range if out of bounds.
  [[nodiscard]] const std::string& name_of(symbol_id id) const;

  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }

  // All names, indexed by id.
  [[nodiscard]] const std::vector<std::string>& names() const noexcept {
    return names_;
  }

  friend bool operator==(const alphabet&, const alphabet&) = default;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, symbol_id> ids_;
};

// True iff `name` is acceptable to alphabet::intern.
[[nodiscard]] bool valid_symbol_name(std::string_view name) noexcept;

}  // namespace bes
