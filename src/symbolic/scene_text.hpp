// Query-by-sketch text format: a one-line description of a symbolic picture.
//
//     "12x11: A 2 6 3 9; B 4 10 1 5; C 6 8 5 7"
//
//   <width>x<height> ':' icon (';' icon)*
//   icon := SYMBOL x_lo x_hi y_lo y_hi
//
// This is how a user of the §5-style demo system types a query scene
// without drawing it; used by the `besdb query --sketch` command and tests.
#pragma once

#include <string>
#include <string_view>

#include "symbolic/symbolic_image.hpp"

namespace bes {

// Parses the sketch, interning unknown symbols into `names`.
// Throws std::invalid_argument with a descriptive message on bad input.
[[nodiscard]] symbolic_image parse_scene(std::string_view text,
                                         alphabet& names);

// The inverse: a sketch string that parse_scene maps back to `image`.
[[nodiscard]] std::string scene_text(const symbolic_image& image,
                                     const alphabet& names);

}  // namespace bes
