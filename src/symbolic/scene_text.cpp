#include "symbolic/scene_text.hpp"

#include <sstream>
#include <stdexcept>

namespace bes {

symbolic_image parse_scene(std::string_view text, alphabet& names) {
  const auto colon = text.find(':');
  if (colon == std::string_view::npos) {
    throw std::invalid_argument(
        "parse_scene: missing ':' after the <width>x<height> header");
  }
  const std::string header{text.substr(0, colon)};
  int width = 0;
  int height = 0;
  char x = 0;
  std::istringstream header_in(header);
  if (!(header_in >> width >> x >> height) || x != 'x') {
    throw std::invalid_argument("parse_scene: bad dimensions '" + header + "'");
  }
  symbolic_image image(width, height);

  std::string rest{text.substr(colon + 1)};
  std::istringstream in(rest);
  std::string icon_text;
  while (std::getline(in, icon_text, ';')) {
    std::istringstream icon_in(icon_text);
    std::string symbol;
    int x_lo = 0;
    int x_hi = 0;
    int y_lo = 0;
    int y_hi = 0;
    if (!(icon_in >> symbol)) continue;  // empty segment (trailing ';')
    if (!(icon_in >> x_lo >> x_hi >> y_lo >> y_hi)) {
      throw std::invalid_argument("parse_scene: bad icon '" + icon_text +
                                  "' (want SYMBOL x_lo x_hi y_lo y_hi)");
    }
    std::string trailing;
    if (icon_in >> trailing) {
      throw std::invalid_argument("parse_scene: trailing junk '" + trailing +
                                  "' in icon '" + icon_text + "'");
    }
    image.add(names.intern(symbol),
              rect{interval::checked(x_lo, x_hi), interval::checked(y_lo, y_hi)});
  }
  return image;
}

std::string scene_text(const symbolic_image& image, const alphabet& names) {
  std::ostringstream out;
  out << image.width() << 'x' << image.height() << ':';
  bool first = true;
  for (const icon& obj : image.icons()) {
    out << (first ? " " : "; ") << names.name_of(obj.symbol) << ' '
        << obj.mbr.x.lo << ' ' << obj.mbr.x.hi << ' ' << obj.mbr.y.lo << ' '
        << obj.mbr.y.hi;
    first = false;
  }
  return out.str();
}

}  // namespace bes
