#include "symbolic/symbolic_image.hpp"

#include <stdexcept>
#include <string>

namespace bes {

symbolic_image::symbolic_image(int width, int height)
    : width_(width), height_(height) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("symbolic_image: dimensions must be positive");
  }
}

std::size_t symbolic_image::add(symbol_id symbol, const rect& mbr) {
  if (!mbr.valid()) {
    throw std::invalid_argument("symbolic_image::add: invalid MBR " +
                                to_string(mbr));
  }
  if (mbr.x.lo < 0 || mbr.x.hi > width_ || mbr.y.lo < 0 || mbr.y.hi > height_) {
    throw std::invalid_argument("symbolic_image::add: MBR " + to_string(mbr) +
                                " outside domain " + std::to_string(width_) +
                                "x" + std::to_string(height_));
  }
  icons_.push_back(icon{symbol, mbr});
  return icons_.size() - 1;
}

void symbolic_image::remove(std::size_t index) {
  if (index >= icons_.size()) {
    throw std::out_of_range("symbolic_image::remove: index out of range");
  }
  icons_.erase(icons_.begin() + static_cast<std::ptrdiff_t>(index));
}

bool symbolic_image::disjoint() const noexcept {
  for (std::size_t i = 0; i < icons_.size(); ++i) {
    for (std::size_t j = i + 1; j < icons_.size(); ++j) {
      if (overlaps(icons_[i].mbr, icons_[j].mbr)) return false;
    }
  }
  return true;
}

symbolic_image apply(dihedral t, const symbolic_image& img) {
  const bool swap = swaps_axes(t);
  symbolic_image out(swap ? img.height() : img.width(),
                     swap ? img.width() : img.height());
  for (const icon& obj : img.icons()) {
    out.add(obj.symbol, apply(t, obj.mbr, img.width(), img.height()));
  }
  return out;
}

}  // namespace bes
