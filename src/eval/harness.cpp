#include "eval/harness.hpp"

#include <algorithm>
#include <iterator>
#include <map>
#include <stdexcept>
#include <string>

#include <optional>

#include "db/hybrid_index.hpp"
#include "db/planner.hpp"
#include "db/prefilter.hpp"
#include "db/shard.hpp"

namespace bes {

namespace {

std::string_view norm_name(norm_kind norm) {
  switch (norm) {
    case norm_kind::query: return "query";
    case norm_kind::max_len: return "max-len";
    case norm_kind::dice: return "dice";
    case norm_kind::min_len: return "min-len";
  }
  throw std::invalid_argument("norm_name: unknown norm");
}

// "signed-query", "exact-query", "signed-dice", "signed-query-tinv", ...
std::string kernel_name(const eval_cell_config& cell) {
  std::string out = cell.sim.exact_lcs ? "exact-" : "signed-";
  out += norm_name(cell.sim.norm);
  if (cell.transform_invariant) out += "-tinv";
  return out;
}

std::vector<std::uint32_t> ids_of(const std::vector<query_result>& results) {
  std::vector<std::uint32_t> out;
  out.reserve(results.size());
  for (const query_result& r : results) out.push_back(r.id);
  return out;
}

double overlap_fraction(std::vector<std::uint32_t> got,
                        std::vector<std::uint32_t> want) {
  if (want.empty()) return 1.0;
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  std::vector<std::uint32_t> common;
  std::set_intersection(got.begin(), got.end(), want.begin(), want.end(),
                        std::back_inserter(common));
  return static_cast<double>(common.size()) /
         static_cast<double>(want.size());
}

query_options options_for(const eval_cell_config& cell) {
  query_options opts;
  opts.top_k = cell.top_k;
  opts.similarity = cell.sim;
  opts.transform_invariant = cell.transform_invariant;
  opts.threads = cell.threads;
  // The planner reads use_index as "index paths allowed at all" and runs
  // its candidates through the admissible pruner, so its serial cells get
  // a deterministic pruned-fraction floor like the pruned cells do.
  opts.use_index =
      cell.path == scan_path::index || cell.path == scan_path::planner;
  opts.histogram_pruning =
      cell.path == scan_path::pruned || cell.path == scan_path::planner;
  return opts;
}

// Paths that score a precomputed candidate set through search_candidates.
bool uses_prefilter(scan_path path) {
  return path == scan_path::rtree || path == scan_path::combined ||
         path == scan_path::hybrid;
}

}  // namespace

std::string_view to_string(scan_path path) noexcept {
  switch (path) {
    case scan_path::exhaustive: return "exhaustive";
    case scan_path::pruned: return "pruned";
    case scan_path::index: return "index";
    case scan_path::rtree: return "rtree";
    case scan_path::combined: return "combined";
    case scan_path::hybrid: return "hybrid";
    case scan_path::planner: return "planner";
  }
  return "?";
}

scan_path scan_path_from(std::string_view name) {
  for (scan_path p :
       {scan_path::exhaustive, scan_path::pruned, scan_path::index,
        scan_path::rtree, scan_path::combined, scan_path::hybrid,
        scan_path::planner}) {
    if (to_string(p) == name) return p;
  }
  throw std::invalid_argument("scan_path_from: unknown path '" +
                              std::string(name) + "'");
}

std::string eval_cell_config::name() const {
  std::string out(to_string(path));
  out += '/';
  out += kernel_name(*this);
  out += "/t" + std::to_string(threads);
  if (shards > 0) out += "/s" + std::to_string(shards);
  if (batch) out += "/batch";
  return out;
}

std::vector<eval_cell_config> default_eval_matrix(unsigned threads) {
  std::vector<similarity_options> kernels(3);
  kernels[0] = {};                              // signed-query (paper default)
  kernels[1].exact_lcs = true;                  // exact-query
  kernels[2].norm = norm_kind::dice;            // signed-dice

  std::vector<eval_cell_config> matrix;
  for (scan_path path :
       {scan_path::exhaustive, scan_path::pruned, scan_path::index,
        scan_path::rtree, scan_path::combined, scan_path::hybrid,
        scan_path::planner}) {
    for (const similarity_options& sim : kernels) {
      eval_cell_config cell;
      cell.path = path;
      cell.sim = sim;
      matrix.push_back(cell);
    }
  }
  {  // transform-invariant scan (its own kernel; it is its own reference)
    eval_cell_config cell;
    cell.transform_invariant = true;
    matrix.push_back(cell);
  }
  if (threads > 1) {  // thread-scaling cells: results must not change
    eval_cell_config cell;
    cell.threads = threads;
    matrix.push_back(cell);
    cell.path = scan_path::pruned;
    matrix.push_back(cell);
  }
  {  // batch cells: search_batch must agree with per-query search
    eval_cell_config cell;
    cell.batch = true;
    matrix.push_back(cell);
    cell.path = scan_path::pruned;
    cell.threads = std::max(1u, threads);
    matrix.push_back(cell);
  }
  {  // the combined prefilter through the batch path
     // (search_batch_candidates): same recall contract as its single-query
     // cell, batch scheduling covered by the gate
    eval_cell_config cell;
    cell.path = scan_path::combined;
    cell.batch = true;
    cell.threads = std::max(1u, threads);
    matrix.push_back(cell);
  }
  {  // the planner across schedulers: threaded single-query and batch
     // (search_batch_planned) must match the serial planner cells
    eval_cell_config cell;
    cell.path = scan_path::planner;
    cell.threads = std::max(1u, threads);
    matrix.push_back(cell);  // planner/tN
    cell.batch = true;
    matrix.push_back(cell);  // planner/tN/batch
  }
  {  // sharded fan-out cells: serial (deterministic pruned-fraction
     // anchor), threaded, and batch — all provably identical results
    eval_cell_config cell;
    cell.shards = 3;
    cell.path = scan_path::pruned;
    matrix.push_back(cell);  // pruned/t1/s3
    cell.threads = std::max(1u, threads);
    cell.path = scan_path::exhaustive;
    matrix.push_back(cell);  // exhaustive/tN/s3
    cell.path = scan_path::pruned;
    cell.batch = true;
    matrix.push_back(cell);  // pruned/tN/s3/batch
  }
  {  // the sharded planner: one plan per (query, shard), serial so its
     // pruned fraction stays a deterministic gate anchor
    eval_cell_config cell;
    cell.path = scan_path::planner;
    cell.shards = 3;
    matrix.push_back(cell);  // planner/t1/s3
  }
  return matrix;
}

int eval_prefilter_pad(const eval_corpus_params& params) {
  // Worst family jitter (mid/far tier: domain/16) plus the query tier's own
  // jitter (domain/32): a kept, jittered object of any relevant image still
  // overlaps the query icon's padded window.
  return std::max(2, params.domain / 16 + params.domain / 32);
}

eval_report run_eval(const eval_corpus& corpus,
                     std::span<const eval_cell_config> matrix) {
  const image_database& db = corpus.db;
  const std::size_t nq = corpus.queries.size();
  if (nq == 0) throw std::invalid_argument("run_eval: corpus has no queries");

  std::vector<be_string2d> strings;
  std::vector<std::vector<symbol_id>> symbols;
  strings.reserve(nq);
  symbols.reserve(nq);
  for (const eval_query& q : corpus.queries) {
    strings.push_back(encode(q.image));
    symbols.push_back(distinct_symbols(q.image));
  }

  // Prefilter candidate sets, shared by every rtree/combined/hybrid cell.
  // The hybrid sets come from the fused traversal at the SAME fixed eval
  // pad, so the gate holds them to the combined cells' recall contract.
  std::vector<std::vector<image_id>> window_sets;
  std::vector<std::vector<image_id>> combined_sets;
  std::vector<std::vector<image_id>> hybrid_sets;
  const bool any_prefilter =
      std::any_of(matrix.begin(), matrix.end(), [](const eval_cell_config& c) {
        return uses_prefilter(c.path);
      });
  const bool any_planner =
      std::any_of(matrix.begin(), matrix.end(), [](const eval_cell_config& c) {
        return c.path == scan_path::planner;
      });
  // The planner cells plan against the spatial + hybrid structures; build
  // them whenever any cell needs either.
  std::optional<spatial_index> sindex;
  std::optional<hybrid_index> hindex;
  if (any_prefilter || any_planner) {
    sindex.emplace(db);
    hindex.emplace(db);
  }
  if (any_prefilter) {
    const int pad = eval_prefilter_pad(corpus.params);
    window_sets.reserve(nq);
    combined_sets.reserve(nq);
    hybrid_sets.reserve(nq);
    for (std::size_t i = 0; i < nq; ++i) {
      window_sets.push_back(
          window_candidates(*sindex, corpus.queries[i].image, pad));
      combined_sets.push_back(
          intersect_candidates(db.candidates(symbols[i]), window_sets[i]));
      hybrid_sets.push_back(
          hindex->candidates(corpus.queries[i].image, pad));
    }
  }
  // The planner's batch entry point takes the symbolic queries themselves.
  std::vector<symbolic_image> query_images;
  if (any_planner) {
    query_images.reserve(nq);
    for (const eval_query& q : corpus.queries) query_images.push_back(q.image);
  }

  // Sharded views of the corpus, one per distinct shard count in the
  // matrix (built lazily; record i keeps global id i so rankings compare
  // 1:1 against the flat database).
  std::map<std::size_t, sharded_database> sharded_views;
  auto sharded_view = [&](std::size_t shards) -> const sharded_database& {
    auto it = sharded_views.find(shards);
    if (it == sharded_views.end()) {
      it = sharded_views.emplace(shards, make_sharded(db, shards)).first;
    }
    return it->second;
  };

  // Per-query ranked ids of one cell; accumulates scan stats.
  auto run_cell = [&](const eval_cell_config& cell,
                      eval_cell_metrics& metrics) {
    const query_options opts = options_for(cell);
    std::vector<std::vector<std::uint32_t>> ranked(nq);
    auto absorb = [&metrics](const search_stats& stats) {
      metrics.scanned += stats.scanned;
      metrics.scored += stats.scored;
      metrics.pruned += stats.pruned;
    };
    const planner_context pctx{&db, sindex ? &*sindex : nullptr,
                               hindex ? &*hindex : nullptr};
    if (cell.batch) {
      if (cell.shards > 0 && uses_prefilter(cell.path)) {
        throw std::invalid_argument(
            "run_eval: sharded batch cells cannot use a prefilter path");
      }
      std::vector<search_stats> stats;
      std::vector<std::vector<query_result>> results;
      if (uses_prefilter(cell.path)) {
        // The prefiltered candidate sets ride the batch scheduler.
        results = search_batch_candidates(
            db, strings,
            cell.path == scan_path::rtree    ? window_sets
            : cell.path == scan_path::hybrid ? hybrid_sets
                                             : combined_sets,
            opts, &stats);
      } else if (cell.path == scan_path::planner) {
        results = cell.shards > 0
                      ? search_batch_planned(sharded_view(cell.shards),
                                             query_images, opts, &stats)
                      : search_batch_planned(pctx, query_images, opts, &stats);
      } else if (cell.shards > 0) {
        results =
            search_batch(sharded_view(cell.shards), strings, symbols, opts,
                         &stats);
      } else {
        results = search_batch(db, strings, symbols, opts, &stats);
      }
      for (std::size_t i = 0; i < nq; ++i) {
        ranked[i] = ids_of(results[i]);
        absorb(stats[i]);
      }
      return ranked;
    }
    for (std::size_t i = 0; i < nq; ++i) {
      search_stats stats;
      std::vector<query_result> results;
      const std::span<const image_id> candidate_set =
          cell.path == scan_path::rtree      ? window_sets[i]
          : cell.path == scan_path::combined ? combined_sets[i]
          : cell.path == scan_path::hybrid   ? hybrid_sets[i]
                                             : std::span<const image_id>{};
      if (cell.path == scan_path::planner) {
        results = cell.shards > 0
                      ? search_planned(sharded_view(cell.shards),
                                       corpus.queries[i].image, opts, &stats)
                      : search_planned(pctx, corpus.queries[i].image,
                                       strings[i], symbols[i], opts, &stats);
      } else if (cell.shards > 0) {
        const sharded_database& sharded = sharded_view(cell.shards);
        results = uses_prefilter(cell.path)
                      ? search_candidates(sharded, strings[i], candidate_set,
                                          opts, &stats)
                      : search(sharded, strings[i], symbols[i], opts, &stats);
      } else if (uses_prefilter(cell.path)) {
        results = search_candidates(db, strings[i], candidate_set, opts,
                                    &stats);
      } else {
        results = search(db, strings[i], symbols[i], opts, &stats);
      }
      ranked[i] = ids_of(results);
      absorb(stats);
    }
    return ranked;
  };

  // Exhaustive reference rankings per kernel (computed lazily; a cell whose
  // config IS the reference reuses its own rankings).
  std::map<std::string, std::vector<std::vector<std::uint32_t>>> references;
  auto reference_config = [](const eval_cell_config& cell) {
    eval_cell_config ref = cell;
    ref.path = scan_path::exhaustive;
    ref.threads = 1;
    ref.batch = false;
    ref.shards = 0;
    return ref;
  };
  auto reference_for =
      [&](const eval_cell_config& cell)
      -> const std::vector<std::vector<std::uint32_t>>& {
    const eval_cell_config ref = reference_config(cell);
    const std::string key = ref.name() + "/k" + std::to_string(ref.top_k);
    auto it = references.find(key);
    if (it == references.end()) {
      eval_cell_metrics scratch;
      it = references.emplace(key, run_cell(ref, scratch)).first;
    }
    return it->second;
  };

  eval_report report;
  report.params = corpus.params;
  for (const eval_cell_config& cell : matrix) {
    eval_cell_result result;
    result.config = cell;
    std::vector<std::vector<std::uint32_t>> ranked =
        run_cell(cell, result.metrics);
    if (cell == reference_config(cell)) {
      // This cell IS its kernel's reference; remember its rankings so later
      // cells (and its own recall term) reuse them.
      references.emplace(cell.name() + "/k" + std::to_string(cell.top_k),
                         ranked);
    }
    const auto& reference = reference_for(cell);
    double recall = 0.0;
    for (std::size_t i = 0; i < nq; ++i) {
      const eval_query& q = corpus.queries[i];
      const std::vector<std::uint32_t> relevant = relevant_ids(q.relevance);
      result.metrics.p_at_1 += precision_at_k(ranked[i], relevant, 1);
      result.metrics.p_at_10 += precision_at_k(ranked[i], relevant, 10);
      result.metrics.mrr += reciprocal_rank(ranked[i], q.relevance);
      result.metrics.ndcg_at_10 += ndcg_at_k(ranked[i], q.relevance, 10);
      recall += overlap_fraction(ranked[i], reference[i]);
    }
    const double n = static_cast<double>(nq);
    result.metrics.p_at_1 /= n;
    result.metrics.p_at_10 /= n;
    result.metrics.mrr /= n;
    result.metrics.ndcg_at_10 /= n;
    result.metrics.recall_vs_exhaustive = recall / n;
    report.cells.push_back(std::move(result));
  }
  return report;
}

}  // namespace bes
