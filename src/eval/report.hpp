// Machine-readable eval reports and the baseline regression gate.
//
// A report is the JSON serialization of an eval_report (corpus params +
// per-cell metrics). A baseline is a report plus gating knobs: a metric
// tolerance and a per-cell recall budget. The committed eval/baseline.json
// turns the harness into a tier-1 regression gate (eval_regression_test):
// any metric dropping below baseline minus tolerance, or any cell's
// recall-vs-exhaustive diverging beyond its documented budget, fails the
// gate with a named, quantified message.
#pragma once

#include <filesystem>
#include <string>

#include "eval/harness.hpp"
#include "util/json.hpp"

namespace bes {

// Report <-> JSON. from_report_json accepts exactly what report_to_json
// emits (schema "bes-eval-report-v1"); throws std::runtime_error on
// malformed input.
[[nodiscard]] json_value report_to_json(const eval_report& report);
[[nodiscard]] eval_report report_from_json(const json_value& json);

// Gating knobs stored alongside the baseline metrics.
struct baseline_policy {
  // Metrics may drop this far below the baseline value before the gate
  // fails (absolute, on [0,1]-scaled metrics).
  double tolerance = 0.02;
  // Per-path recall budgets written by make_baseline: the maximum allowed
  // 1 - recall_vs_exhaustive. Admissible paths (exhaustive/pruned) get 0 —
  // any divergence from the exhaustive scan is a bug, not a tuning choice.
  // Lossy prefilters get their measured loss plus this headroom.
  double prefilter_headroom = 0.05;
  // Allowed RELATIVE loss of a serial pruning cell's pruned fraction
  // (pruned / scanned): 0.5 means the fraction may halve before the gate
  // fails, whatever its magnitude — so a pruner that stops firing entirely
  // always trips it. Gated only for threads == 1 cells — their scan order
  // is deterministic, so the fraction is a stable number, not a race
  // artifact. This catches the OTHER half of a pruning regression:
  // results intact, speedup gone.
  double pruning_tolerance = 0.5;
};

// A baseline (schema "bes-eval-baseline-v1") from a report: every cell's
// metrics plus its recall budget under `policy`.
[[nodiscard]] json_value make_baseline(const eval_report& report,
                                       const baseline_policy& policy = {});

// The gate. Compares a fresh report against a baseline document:
//   - corpus params must match exactly (else the numbers are incomparable),
//   - every baseline cell must be present in the report,
//   - p@1 / p@10 / mrr / ndcg@10 within tolerance of baseline,
//   - recall_vs_exhaustive within tolerance AND within the recall budget.
// Extra report cells (a grown matrix) pass; missing ones fail.
struct gate_result {
  bool pass = true;
  std::vector<std::string> failures;  // one human-readable line each
};
[[nodiscard]] gate_result check_against_baseline(const eval_report& report,
                                                 const json_value& baseline);

// File I/O helpers (throw std::runtime_error on I/O or parse errors).
void write_json_file(const json_value& json, const std::filesystem::path& path);
[[nodiscard]] json_value read_json_file(const std::filesystem::path& path);

}  // namespace bes
