// The retrieval-quality harness: run every cell of a retrieval
// configuration matrix (access path × similarity kernel × threads × batch)
// over an eval corpus and score each cell with rank metrics plus
// recall-vs-exhaustive.
//
// Every cell funnels through db/query (search / search_batch /
// search_candidates), so the numbers gate the real engine, not a replica.
// The exhaustive reference for recall is computed per kernel (threads=1,
// single-query) whether or not the matrix contains that cell.
#pragma once

#include <string>
#include <vector>

#include "db/query.hpp"
#include "eval/corpus.hpp"

namespace bes {

// How a cell generates its candidate set.
enum class scan_path : std::uint8_t {
  exhaustive,  // every image, no pruning — the recall reference
  pruned,      // every image through the admissible histogram pruner
  index,       // inverted symbol index (>= 1 shared symbol)
  rtree,       // R-tree padded-window prefilter (db/prefilter.hpp)
  combined,    // symbol index ∩ window prefilter
  hybrid,      // the fused symbol/R-tree traversal (db/hybrid_index.hpp) at
               // the fixed eval pad — same set as combined, one traversal
  planner,     // the cost-based planner picks the path and pad per query
               // (db/planner.hpp), with the histogram pruner engaged
};

[[nodiscard]] std::string_view to_string(scan_path path) noexcept;
// Inverse of to_string; throws std::invalid_argument on an unknown name.
[[nodiscard]] scan_path scan_path_from(std::string_view name);

struct eval_cell_config {
  scan_path path = scan_path::exhaustive;
  similarity_options sim;
  bool transform_invariant = false;
  unsigned threads = 1;
  bool batch = false;  // run through search_batch; prefilter paths go
                       // through search_batch_candidates (no shards)
  // 0 = the plain image_database; > 0 = fan-out/merge over a
  // sharded_database with this many consistent-hash partitions (results
  // are identical by construction — these cells gate that claim).
  std::size_t shards = 0;
  std::size_t top_k = 10;

  // "path/kernel/tN[/sS][/batch]", e.g. "pruned/signed-query/t4/s3".
  // Unique within default_eval_matrix; the report and baseline key cells
  // by it.
  [[nodiscard]] std::string name() const;

  friend bool operator==(const eval_cell_config&,
                         const eval_cell_config&) = default;
};

struct eval_cell_metrics {
  double p_at_1 = 0.0;
  double p_at_10 = 0.0;
  double mrr = 0.0;
  double ndcg_at_10 = 0.0;
  // Mean over queries of |cell top-k ∩ exhaustive top-k| / |exhaustive
  // top-k| for the same kernel. Provably 1.0 for exhaustive and pruned
  // cells; may dip below for index/rtree/combined (the documented loss).
  double recall_vs_exhaustive = 1.0;
  // Scan accounting summed over queries.
  std::size_t scanned = 0;
  std::size_t scored = 0;
  std::size_t pruned = 0;

  // pruned / scanned (0 when nothing was scanned) — the speedup half of
  // the pruner's contract. The baseline gates it for serial cells (their
  // scan order is deterministic): a regression that keeps results but
  // stops pruning fails by name, not just by wall clock.
  [[nodiscard]] double pruned_fraction() const noexcept {
    return scanned == 0 ? 0.0
                        : static_cast<double>(pruned) /
                              static_cast<double>(scanned);
  }

  friend bool operator==(const eval_cell_metrics&,
                         const eval_cell_metrics&) = default;
};

struct eval_cell_result {
  eval_cell_config config;
  eval_cell_metrics metrics;

  friend bool operator==(const eval_cell_result&,
                         const eval_cell_result&) = default;
};

struct eval_report {
  eval_corpus_params params;
  std::vector<eval_cell_result> cells;
};

// The default configuration matrix: all 7 access paths × 3 similarity
// kernels at t1, a transform-invariant exhaustive cell, thread-scaling
// cells (t`threads`), batch cells (including the combined prefilter through
// search_batch_candidates and the planner through search_batch_planned),
// and sharded fan-out cells (s3) covering the serial, threaded, batch, and
// planned sharded scans.
[[nodiscard]] std::vector<eval_cell_config> default_eval_matrix(
    unsigned threads = 4);

// Window padding used by the rtree/combined prefilter cells; equals the
// corpus generator's worst query jitter so only dropped/relabeled objects
// (not jitter alone) can push a relevant image out of the window.
[[nodiscard]] int eval_prefilter_pad(const eval_corpus_params& params);

// Runs every matrix cell over the corpus.
[[nodiscard]] eval_report run_eval(const eval_corpus& corpus,
                                   std::span<const eval_cell_config> matrix);

}  // namespace bes
