#include "eval/report.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace bes {

namespace {

constexpr const char* report_schema = "bes-eval-report-v1";
constexpr const char* baseline_schema = "bes-eval-baseline-v1";

json_value params_to_json(const eval_corpus_params& p) {
  json_value out = json_value::object{};
  // The seed is a string: JSON numbers are doubles and a 64-bit seed above
  // 2^53 would not survive the round trip.
  out.set("seed", std::to_string(p.seed));
  out.set("base_scenes", p.base_scenes);
  out.set("objects", p.objects);
  out.set("domain", p.domain);
  out.set("symbol_pool", p.symbol_pool);
  out.set("unique_symbols", p.unique_symbols);
  out.set("queries_per_base", p.queries_per_base);
  return out;
}

eval_corpus_params params_from_json(const json_value& json) {
  eval_corpus_params p;
  p.seed = std::stoull(json.get("seed").as_string());
  p.base_scenes =
      static_cast<std::size_t>(json.get("base_scenes").as_number());
  p.objects = static_cast<std::size_t>(json.get("objects").as_number());
  p.domain = static_cast<int>(json.get("domain").as_number());
  p.symbol_pool =
      static_cast<std::size_t>(json.get("symbol_pool").as_number());
  p.unique_symbols = json.get("unique_symbols").as_bool();
  p.queries_per_base =
      static_cast<std::size_t>(json.get("queries_per_base").as_number());
  return p;
}

json_value cell_to_json(const eval_cell_result& cell) {
  json_value out = json_value::object{};
  out.set("name", cell.config.name());
  out.set("path", std::string(to_string(cell.config.path)));
  out.set("norm", static_cast<std::size_t>(cell.config.sim.norm));
  out.set("exact_lcs", cell.config.sim.exact_lcs);
  out.set("transform_invariant", cell.config.transform_invariant);
  out.set("threads", static_cast<std::size_t>(cell.config.threads));
  out.set("batch", cell.config.batch);
  out.set("shards", cell.config.shards);
  out.set("top_k", cell.config.top_k);
  out.set("p_at_1", cell.metrics.p_at_1);
  out.set("p_at_10", cell.metrics.p_at_10);
  out.set("mrr", cell.metrics.mrr);
  out.set("ndcg_at_10", cell.metrics.ndcg_at_10);
  out.set("recall_vs_exhaustive", cell.metrics.recall_vs_exhaustive);
  out.set("scanned", cell.metrics.scanned);
  out.set("scored", cell.metrics.scored);
  out.set("pruned", cell.metrics.pruned);
  out.set("pruned_fraction", cell.metrics.pruned_fraction());
  return out;
}

eval_cell_result cell_from_json(const json_value& json) {
  eval_cell_result cell;
  cell.config.path = scan_path_from(json.get("path").as_string());
  // checked: a corrupted or hand-edited report must fail the parse here,
  // not divide by a silent denominator downstream.
  cell.config.sim.norm = checked_norm_kind(
      static_cast<long long>(json.get("norm").as_number()));
  cell.config.sim.exact_lcs = json.get("exact_lcs").as_bool();
  cell.config.transform_invariant =
      json.get("transform_invariant").as_bool();
  cell.config.threads =
      static_cast<unsigned>(json.get("threads").as_number());
  cell.config.batch = json.get("batch").as_bool();
  // Absent in pre-sharding reports; 0 = the flat database.
  if (const json_value* shards = json.find("shards")) {
    cell.config.shards = static_cast<std::size_t>(shards->as_number());
  }
  cell.config.top_k = static_cast<std::size_t>(json.get("top_k").as_number());
  cell.metrics.p_at_1 = json.get("p_at_1").as_number();
  cell.metrics.p_at_10 = json.get("p_at_10").as_number();
  cell.metrics.mrr = json.get("mrr").as_number();
  cell.metrics.ndcg_at_10 = json.get("ndcg_at_10").as_number();
  cell.metrics.recall_vs_exhaustive =
      json.get("recall_vs_exhaustive").as_number();
  cell.metrics.scanned =
      static_cast<std::size_t>(json.get("scanned").as_number());
  cell.metrics.scored =
      static_cast<std::size_t>(json.get("scored").as_number());
  cell.metrics.pruned =
      static_cast<std::size_t>(json.get("pruned").as_number());
  return cell;
}

// True for paths whose result set provably equals the exhaustive scan's:
// any recall loss there is a bug, so their budget is pinned to 0.
bool admissible_path(scan_path path) {
  return path == scan_path::exhaustive || path == scan_path::pruned;
}

}  // namespace

json_value report_to_json(const eval_report& report) {
  json_value out = json_value::object{};
  out.set("schema", report_schema);
  out.set("params", params_to_json(report.params));
  json_value::array cells;
  cells.reserve(report.cells.size());
  for (const eval_cell_result& cell : report.cells) {
    cells.push_back(cell_to_json(cell));
  }
  out.set("cells", std::move(cells));
  return out;
}

eval_report report_from_json(const json_value& json) {
  const std::string& schema = json.get("schema").as_string();
  if (schema != report_schema && schema != baseline_schema) {
    throw std::runtime_error("report_from_json: unknown schema '" + schema +
                             "'");
  }
  eval_report report;
  report.params = params_from_json(json.get("params"));
  for (const json_value& cell : json.get("cells").as_array()) {
    report.cells.push_back(cell_from_json(cell));
  }
  return report;
}

json_value make_baseline(const eval_report& report,
                         const baseline_policy& policy) {
  json_value out = json_value::object{};
  out.set("schema", baseline_schema);
  out.set("params", params_to_json(report.params));
  out.set("tolerance", policy.tolerance);
  out.set("pruning_tolerance", policy.pruning_tolerance);
  json_value::array cells;
  cells.reserve(report.cells.size());
  for (const eval_cell_result& cell : report.cells) {
    json_value c = cell_to_json(cell);
    // The documented recall budget: how far below a perfect match with the
    // exhaustive scan this cell is allowed to drift. Measured loss plus
    // headroom for lossy prefilters; exactly 0 for admissible paths.
    const double budget =
        admissible_path(cell.config.path)
            ? 0.0
            : std::min(1.0, 1.0 - cell.metrics.recall_vs_exhaustive +
                                policy.prefilter_headroom);
    c.set("recall_budget", budget);
    // Serial pruning cells also gate their pruned fraction: deterministic
    // scan order makes the measured fraction reproducible, so losing it
    // means the pruner stopped working, not that a race went differently.
    if (cell.config.threads == 1 && cell.metrics.pruned_fraction() > 0.0) {
      c.set("pruned_floor", cell.metrics.pruned_fraction());
    }
    cells.push_back(std::move(c));
  }
  out.set("cells", std::move(cells));
  return out;
}

gate_result check_against_baseline(const eval_report& report,
                                   const json_value& baseline) {
  gate_result result;
  auto fail = [&result](std::string message) {
    result.pass = false;
    result.failures.push_back(std::move(message));
  };

  if (baseline.get("schema").as_string() != baseline_schema) {
    fail("baseline schema is not " + std::string(baseline_schema));
    return result;
  }
  if (params_from_json(baseline.get("params")) != report.params) {
    fail("corpus params differ from baseline; metrics are incomparable "
         "(regenerate the baseline or rerun with its params)");
    return result;
  }
  const double tolerance = baseline.get("tolerance").as_number();

  for (const json_value& want : baseline.get("cells").as_array()) {
    const std::string& name = want.get("name").as_string();
    const eval_cell_result* got = nullptr;
    for (const eval_cell_result& cell : report.cells) {
      if (cell.config.name() == name) {
        got = &cell;
        break;
      }
    }
    if (got == nullptr) {
      fail("cell '" + name + "' missing from report");
      continue;
    }
    const auto check_metric = [&](const char* metric, double actual) {
      const double floor = want.get(metric).as_number() - tolerance;
      if (actual < floor) {
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "%s: %s dropped to %.4f (floor %.4f = baseline %.4f - "
                      "tolerance %.4f)",
                      name.c_str(), metric, actual, floor,
                      want.get(metric).as_number(), tolerance);
        fail(buf);
      }
    };
    check_metric("p_at_1", got->metrics.p_at_1);
    check_metric("p_at_10", got->metrics.p_at_10);
    check_metric("mrr", got->metrics.mrr);
    check_metric("ndcg_at_10", got->metrics.ndcg_at_10);
    check_metric("recall_vs_exhaustive", got->metrics.recall_vs_exhaustive);
    const double budget = want.get("recall_budget").as_number();
    if (got->metrics.recall_vs_exhaustive < 1.0 - budget) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "%s: recall_vs_exhaustive %.4f exceeds the documented "
                    "budget (must stay >= %.4f = 1 - %.4f)",
                    name.c_str(), got->metrics.recall_vs_exhaustive,
                    1.0 - budget, budget);
      fail(buf);
    }
    // The pruning gate: a serial pruning cell whose pruned fraction fell
    // below its baseline floor lost its speedup even if results held.
    // (Absent on pre-sharding baselines and on cells that never pruned.)
    if (const json_value* floor_value = want.find("pruned_floor")) {
      const json_value* tolerance_value = baseline.find("pruning_tolerance");
      const double pruning_tolerance =
          tolerance_value != nullptr ? tolerance_value->as_number() : 0.5;
      const double floor = floor_value->as_number() * (1.0 - pruning_tolerance);
      const double fraction = got->metrics.pruned_fraction();
      if (fraction < floor) {
        char buf[192];
        std::snprintf(buf, sizeof buf,
                      "%s: pruned_fraction dropped to %.4f (floor %.4f = "
                      "baseline %.4f x (1 - pruning_tolerance %.2f)): "
                      "results may match but the pruning speedup is gone",
                      name.c_str(), fraction, floor,
                      floor_value->as_number(), pruning_tolerance);
        fail(buf);
      }
    }
  }
  return result;
}

void write_json_file(const json_value& json,
                     const std::filesystem::path& path) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_json_file: cannot open " + path.string());
  }
  out << json.dump(2);
  if (!out.good()) {
    throw std::runtime_error("write_json_file: write failed for " +
                             path.string());
  }
}

json_value read_json_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_json_file: cannot open " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return json_value::parse(buffer.str());
}

}  // namespace bes
