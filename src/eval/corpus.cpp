#include "eval/corpus.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <string>

#include "util/parallel.hpp"

namespace bes {

namespace {

// Stream tags for derive_seed: one disjoint stream block per base scene
// (scene, near, mid, far) and one per query. Offsets are part of the
// determinism contract — changing them changes every committed baseline.
constexpr std::uint64_t stream_block = 8;  // streams reserved per base
constexpr std::uint64_t query_block_base = 1u << 20;  // queries start here

scene_params base_scene_params(const eval_corpus_params& p) {
  scene_params s;
  s.width = p.domain;
  s.height = p.domain;
  s.object_count = p.objects;
  s.max_extent = std::max(8, p.domain / 4);
  s.symbol_pool = p.unique_symbols ? p.objects : p.symbol_pool;
  s.unique_symbols = p.unique_symbols;
  return s;
}

// The per-family distortion tiers. Tier strengths scale with the domain so
// the corpus keeps its shape at other sizes.
distortion_params near_tier(const eval_corpus_params& p, std::uint64_t seed) {
  distortion_params d;
  d.jitter = std::max(1, p.domain / 32);
  d.seed = seed;
  return d;
}

distortion_params mid_tier(const eval_corpus_params& p, std::uint64_t seed) {
  distortion_params d;
  d.keep_fraction = 0.75;
  d.jitter = std::max(1, p.domain / 16);
  d.seed = seed;
  return d;
}

distortion_params far_tier(const eval_corpus_params& p, std::uint64_t seed) {
  distortion_params d;
  d.keep_fraction = 0.5;
  d.jitter = std::max(1, p.domain / 16);
  d.decoys = 2;
  d.decoy_shape.max_extent = std::max(8, p.domain / 8);
  d.decoy_shape.symbol_pool = p.symbol_pool;
  d.relabel_fraction = p.unique_symbols ? 0.0 : 0.25;
  d.relabel_pool = p.symbol_pool;
  d.seed = seed;
  return d;
}

distortion_params query_tier(const eval_corpus_params& p, std::uint64_t seed) {
  distortion_params d;
  d.keep_fraction = 0.8;
  d.jitter = std::max(1, p.domain / 32);
  d.decoys = 1;
  d.decoy_shape.max_extent = std::max(8, p.domain / 8);
  d.decoy_shape.symbol_pool = p.symbol_pool;
  d.seed = seed;
  return d;
}

// Pre-interns every pool symbol so the parallel generation phase only looks
// names up (alphabet::intern mutates on a NEW name; concurrent lookups of
// existing names are safe because no writer remains).
void pre_intern_pool(alphabet& names, std::size_t pool) {
  for (std::size_t i = 0; i < pool; ++i) {
    std::string name = "S";
    name += std::to_string(i);
    names.intern(name);
  }
}

}  // namespace

eval_corpus build_eval_corpus(const eval_corpus_params& params,
                              unsigned threads) {
  if (params.base_scenes == 0) {
    throw std::invalid_argument("build_eval_corpus: base_scenes must be > 0");
  }
  if (params.queries_per_base > 0 &&
      query_block_base < params.base_scenes * stream_block) {
    throw std::invalid_argument("build_eval_corpus: too many base scenes");
  }
  eval_corpus corpus;
  corpus.params = params;
  alphabet& names = corpus.db.symbols();
  pre_intern_pool(names,
                  params.unique_symbols
                      ? std::max(params.objects, params.symbol_pool)
                      : params.symbol_pool);

  // Phase 1 (parallel): generate every family into a flat image vector.
  // Insertion into the database stays serial and index-ordered, so ids are
  // independent of the thread schedule.
  const scene_params scene_shape = base_scene_params(params);
  std::vector<std::array<symbolic_image, eval_family_size>> families(
      params.base_scenes,
      {symbolic_image(1, 1), symbolic_image(1, 1), symbolic_image(1, 1),
       symbolic_image(1, 1), symbolic_image(1, 1)});
  parallel_for(params.base_scenes, threads, [&](std::size_t b) {
    const std::uint64_t block = static_cast<std::uint64_t>(b) * stream_block;
    rng scene_rng(derive_seed(params.seed, block));
    symbolic_image base = random_scene(scene_shape, scene_rng, names);
    symbolic_image near =
        distort(base, near_tier(params, derive_seed(params.seed, block + 1)),
                names);
    symbolic_image mid =
        distort(base, mid_tier(params, derive_seed(params.seed, block + 2)),
                names);
    symbolic_image far =
        distort(base, far_tier(params, derive_seed(params.seed, block + 3)),
                names);
    // A deterministic non-identity dihedral element, cycling through all 7.
    const dihedral element = all_dihedral[1 + b % (all_dihedral.size() - 1)];
    symbolic_image xform = apply(element, base);
    families[b] = {std::move(base), std::move(near), std::move(mid),
                   std::move(far), std::move(xform)};
  });

  static constexpr const char* member_tag[eval_family_size] = {
      "", "~near", "~mid", "~far", "~xform"};
  for (std::size_t b = 0; b < params.base_scenes; ++b) {
    for (std::size_t m = 0; m < eval_family_size; ++m) {
      const image_id id =
          corpus.db.add("scene" + std::to_string(b) + member_tag[m],
                        std::move(families[b][m]));
      if (m == 0) corpus.base_ids.push_back(id);
    }
  }

  // Phase 2 (parallel): queries. Each distorts its base with its own derived
  // seed into a private alphabet copy, so query generation cannot perturb
  // the shared alphabet and is schedule-independent. (Decoys and relabels
  // draw from the pre-interned pool, so the copies never diverge.)
  static constexpr int member_grade[eval_family_size] = {3, 2, 1, 1, 1};
  corpus.queries.assign(params.base_scenes * params.queries_per_base,
                        eval_query{});
  parallel_for(corpus.queries.size(), threads, [&](std::size_t i) {
    const std::size_t b = i / params.queries_per_base;
    alphabet scratch = names;
    eval_query& q = corpus.queries[i];
    q.base = b;
    q.image = distort(
        corpus.db.record(corpus.base_ids[b]).image,
        query_tier(params, derive_seed(params.seed, query_block_base + i)),
        scratch);
    for (std::size_t m = 0; m < eval_family_size; ++m) {
      q.relevance.push_back(graded_doc{
          static_cast<std::uint32_t>(eval_family_size * b + m),
          member_grade[m]});
    }
  });
  return corpus;
}

}  // namespace bes
