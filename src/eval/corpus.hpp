// The seeded ground-truth corpus behind the retrieval-quality regression
// gate: N base scenes, each expanded into a family of graded distortions
// with known relevance grades, plus distorted queries whose judgments are
// constructed, not annotated.
//
// Family per base scene (the distortion tiers of ISSUE 3 / ROADMAP
// "Retrieval quality"):
//   grade 3  base      the scene itself
//   grade 2  near      all objects kept, small jitter
//   grade 1  mid       ~3/4 of objects kept, heavier jitter
//   grade 1  far       half the objects kept, jitter, clutter, relabels
//   grade 1  xform     a non-identity dihedral transform of the base
// Images from every other family carry grade 0 (irrelevant) — they are real
// confusers, drawn from the same scene distribution and symbol pool.
//
// Determinism contract: the corpus is a pure function of eval_corpus_params.
// Every scene, family member and query derives its own seed from
// params.seed via derive_seed, so generation is identical across runs,
// processes and thread counts; build_eval_corpus(params, threads) returns
// the same corpus for every `threads`. (The underlying samplers use
// std::uniform_int_distribution, so byte-identical corpora additionally
// require the same C++ standard library — CI pins libstdc++; regenerate
// eval/baseline.json if you move stdlibs.)
#pragma once

#include "db/database.hpp"
#include "metrics/retrieval.hpp"
#include "workload/query_gen.hpp"

namespace bes {

struct eval_corpus_params {
  std::uint64_t seed = 20010401;  // master seed; everything derives from it
  std::size_t base_scenes = 24;
  std::size_t objects = 8;        // icons per base scene
  int domain = 256;               // scenes are domain x domain
  std::size_t symbol_pool = 10;   // "S0".."S9"
  // Give every object a distinct pool symbol (pool is forced to `objects`);
  // needed by the type-i baseline comparisons in bench E6b.
  bool unique_symbols = false;
  std::size_t queries_per_base = 2;

  friend bool operator==(const eval_corpus_params&,
                         const eval_corpus_params&) = default;
};

// Number of family members stored per base scene (base, near, mid, far,
// xform).
inline constexpr std::size_t eval_family_size = 5;

// A query with its constructed judgments: the source family's members with
// their grades (sorted by id; every other image is grade 0 by omission).
struct eval_query {
  symbolic_image image{1, 1};
  std::size_t base = 0;  // index of the source base scene
  std::vector<graded_doc> relevance;

  friend bool operator==(const eval_query&, const eval_query&) = default;
};

struct eval_corpus {
  eval_corpus_params params;  // the inputs this corpus was built from
  image_database db;
  // base_ids[b] is the db id of base scene b; its family occupies ids
  // [eval_family_size*b, eval_family_size*(b+1)).
  std::vector<image_id> base_ids;
  std::vector<eval_query> queries;
};

// Builds the corpus; `threads` parallelizes scene generation without
// affecting the result (see the determinism contract above).
[[nodiscard]] eval_corpus build_eval_corpus(const eval_corpus_params& params,
                                            unsigned threads = 1);

}  // namespace bes
