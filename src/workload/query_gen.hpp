// Query distortions with constructed ground truth (experiment E6): take a
// target scene and degrade it the way real queries degrade — drop objects,
// jitter positions, add clutter, or apply a linear transformation — while
// remembering which database image it came from.
#pragma once

#include <optional>

#include "geometry/dihedral.hpp"
#include "workload/scene_gen.hpp"

namespace bes {

struct distortion_params {
  // Fraction of the target's objects the query keeps (at least one).
  double keep_fraction = 1.0;
  // Max absolute per-axis translation of each kept MBR (clamped to domain).
  int jitter = 0;
  // Clutter objects added from the symbol pool.
  std::size_t decoys = 0;
  scene_params decoy_shape;  // extent/pool settings reused for decoys
  // Applied geometrically to the finished query, if set.
  std::optional<dihedral> transform;
};

// A distorted copy of `target`; deterministic given (params, rng state).
[[nodiscard]] symbolic_image distort(const symbolic_image& target,
                                     const distortion_params& params, rng& rng,
                                     alphabet& names);

}  // namespace bes
