// Query distortions with constructed ground truth (experiment E6): take a
// target scene and degrade it the way real queries degrade — drop objects,
// jitter positions, add clutter, relabel symbols, or apply a linear
// transformation — while remembering which database image it came from.
//
// Determinism contract: the seeded overload distort(target, params, names)
// derives ONE independent random stream per knob from params.seed
// (derive_seed in util/rng.hpp), so
//   - two runs with equal (target, params) produce identical queries, on any
//     machine with the same standard library, in any process, from any
//     thread, and
//   - toggling one knob never shifts another knob's stream: adding decoys
//     does not change which objects are kept or how they are jittered.
// The legacy rng& overload threads a single caller-owned stream through all
// knobs in document order (kept-set, then per-icon jitter, then relabel,
// then decoys) and is deterministic given (params, rng state), but does not
// provide knob isolation.
#pragma once

#include <optional>

#include "geometry/dihedral.hpp"
#include "workload/scene_gen.hpp"

namespace bes {

struct distortion_params {
  // Fraction of the target's objects the query keeps (at least one).
  double keep_fraction = 1.0;
  // Max absolute per-axis translation of each kept MBR (clamped to domain).
  int jitter = 0;
  // Fraction of kept objects whose symbol is re-drawn from the pool
  // "S0".."S<relabel_pool-1>" (icon-class noise; the draw may repeat the
  // original symbol).
  double relabel_fraction = 0.0;
  std::size_t relabel_pool = 8;
  // Clutter objects added from the symbol pool.
  std::size_t decoys = 0;
  scene_params decoy_shape;  // extent/pool settings reused for decoys
  // Applied geometrically to the finished query, if set.
  std::optional<dihedral> transform;
  // Master seed for the self-seeded overload; every knob derives its own
  // sub-stream from it (see the determinism contract above).
  std::uint64_t seed = 0;
};

// A distorted copy of `target`; deterministic given params alone (uses
// params.seed, one derived stream per knob).
[[nodiscard]] symbolic_image distort(const symbolic_image& target,
                                     const distortion_params& params,
                                     alphabet& names);

// A distorted copy of `target`; deterministic given (params, rng state).
// params.seed is ignored — the caller's stream drives every knob.
[[nodiscard]] symbolic_image distort(const symbolic_image& target,
                                     const distortion_params& params, rng& rng,
                                     alphabet& names);

}  // namespace bes
