// Seeded zipfian query streams (experiment E11): production retrieval
// traffic is heavily skewed — a small set of hot queries dominates — and the
// result cache's whole value proposition rests on that skew. This generator
// reproduces it deterministically: a pool of distinct queries (distorted
// copies of caller-supplied target scenes, workload/query_gen.hpp) and a
// stream of pool indices drawn zipf(s), so rank r is requested with
// probability proportional to 1/(r+1)^s. s = 0 degenerates to uniform
// traffic (the cache's worst case), s = 1.2 is the hot-head regime the
// bench's headline numbers quote.
//
// Everything is derived from one master seed via derive_seed streams, so two
// runs with equal (targets, params) produce identical pools and identical
// request orders on any machine.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"
#include "workload/query_gen.hpp"

namespace bes {

// Draws ranks in [0, n) with P(r) proportional to 1/(r+1)^s via an explicit
// CDF (binary search per draw). s = 0 is uniform. Deterministic for a given
// (n, s, seed).
class zipf_sampler {
 public:
  zipf_sampler(std::size_t n, double s, std::uint64_t seed);

  [[nodiscard]] std::size_t next();
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // normalized inclusive prefix sums
  rng rng_;
};

struct query_stream_params {
  std::size_t pool_size = 64;  // distinct queries (zipf ranks)
  std::size_t length = 512;    // requests in the stream
  double skew = 1.0;           // zipf exponent s; 0 = uniform
  std::uint64_t seed = 1;
  // How each pool query degrades its target scene; the per-query seed is
  // derived from `seed` and the pool slot, overriding distortion.seed.
  distortion_params distortion;
};

struct query_stream {
  // pool[r] is the rank-r query — hottest first. Each is a distorted copy
  // of a (seeded-uniformly chosen) target scene.
  std::vector<symbolic_image> pool;
  // The request stream, as indices into `pool`.
  std::vector<std::size_t> order;
};

// Builds the pool from `targets` (usually the corpus scenes, so queries hit)
// and draws the zipfian request order. Throws std::invalid_argument on an
// empty target set or a zero pool size.
[[nodiscard]] query_stream make_query_stream(
    std::span<const symbolic_image> targets, alphabet& names,
    const query_stream_params& params);

}  // namespace bes
