#include "workload/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bes {

zipf_sampler::zipf_sampler(std::size_t n, double s, std::uint64_t seed)
    : rng_(seed) {
  if (n == 0) throw std::invalid_argument("zipf_sampler: n must be > 0");
  if (!(s >= 0.0)) throw std::invalid_argument("zipf_sampler: s must be >= 0");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    total += std::pow(static_cast<double>(r + 1), -s);
    cdf_[r] = total;
  }
  for (double& c : cdf_) c /= total;
}

std::size_t zipf_sampler::next() {
  const double u = rng_.uniform01();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return std::min<std::size_t>(
      static_cast<std::size_t>(it - cdf_.begin()), cdf_.size() - 1);
}

query_stream make_query_stream(std::span<const symbolic_image> targets,
                               alphabet& names,
                               const query_stream_params& params) {
  if (targets.empty()) {
    throw std::invalid_argument("make_query_stream: no target scenes");
  }
  if (params.pool_size == 0) {
    throw std::invalid_argument("make_query_stream: pool_size must be > 0");
  }
  query_stream out;
  out.pool.reserve(params.pool_size);
  // Stream 0: which target each pool slot distorts. Streams 1..pool_size:
  // one distortion master seed per slot. Stream pool_size + 1: the request
  // order. Fixed assignments, so growing the stream length never reshuffles
  // the pool and vice versa.
  rng pick(derive_seed(params.seed, 0));
  for (std::size_t i = 0; i < params.pool_size; ++i) {
    const std::size_t target = static_cast<std::size_t>(
        pick.next_u64() % targets.size());
    distortion_params d = params.distortion;
    d.seed = derive_seed(params.seed, 1 + i);
    out.pool.push_back(distort(targets[target], d, names));
  }
  zipf_sampler ranks(params.pool_size, params.skew,
                     derive_seed(params.seed, params.pool_size + 1));
  out.order.reserve(params.length);
  for (std::size_t i = 0; i < params.length; ++i) {
    out.order.push_back(ranks.next());
  }
  return out;
}

}  // namespace bes
