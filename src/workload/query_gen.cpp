#include "workload/query_gen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bes {

namespace {

interval shifted_clamped(interval v, int delta, int domain) {
  int lo = v.lo + delta;
  int hi = v.hi + delta;
  if (lo < 0) {
    hi -= lo;
    lo = 0;
  }
  if (hi > domain) {
    lo -= hi - domain;
    hi = domain;
  }
  return interval{std::max(0, lo), hi};
}

}  // namespace

symbolic_image distort(const symbolic_image& target,
                       const distortion_params& params, rng& rng,
                       alphabet& names) {
  if (params.keep_fraction <= 0.0 || params.keep_fraction > 1.0) {
    throw std::invalid_argument("distort: keep_fraction must be in (0, 1]");
  }
  const std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(params.keep_fraction *
                          static_cast<double>(target.size()))));

  symbolic_image query(target.width(), target.height());
  const auto kept =
      rng.sample_indices(target.size(), std::min(keep, target.size()));
  for (std::size_t index : kept) {
    const icon& obj = target.icons()[index];
    rect mbr = obj.mbr;
    if (params.jitter > 0) {
      mbr.x = shifted_clamped(mbr.x,
                              rng.uniform_int(-params.jitter, params.jitter),
                              target.width());
      mbr.y = shifted_clamped(mbr.y,
                              rng.uniform_int(-params.jitter, params.jitter),
                              target.height());
    }
    query.add(obj.symbol, mbr);
  }

  if (params.decoys > 0) {
    scene_params decoy = params.decoy_shape;
    decoy.width = target.width();
    decoy.height = target.height();
    decoy.object_count = params.decoys;
    decoy.unique_symbols = false;
    decoy.disjoint = false;
    const symbolic_image clutter = random_scene(decoy, rng, names);
    for (const icon& obj : clutter.icons()) query.add(obj);
  }

  if (params.transform) {
    return apply(*params.transform, query);
  }
  return query;
}

}  // namespace bes
