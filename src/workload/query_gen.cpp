#include "workload/query_gen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace bes {

namespace {

interval shifted_clamped(interval v, int delta, int domain) {
  int lo = v.lo + delta;
  int hi = v.hi + delta;
  if (lo < 0) {
    hi -= lo;
    lo = 0;
  }
  if (hi > domain) {
    lo -= hi - domain;
    hi = domain;
  }
  return interval{std::max(0, lo), hi};
}

// Knob stream ids for the seeded overload (derive_seed's `stream`).
enum knob : std::uint64_t { knob_keep, knob_jitter, knob_relabel, knob_decoy };

// Core distortion with one stream per knob. The legacy single-stream
// overload passes the same rng for all four, preserving its historical draw
// order (kept-set, per-icon jitter, relabel, decoys).
symbolic_image distort_impl(const symbolic_image& target,
                            const distortion_params& params, rng& keep_rng,
                            rng& jitter_rng, rng& relabel_rng, rng& decoy_rng,
                            alphabet& names) {
  if (params.keep_fraction <= 0.0 || params.keep_fraction > 1.0) {
    throw std::invalid_argument("distort: keep_fraction must be in (0, 1]");
  }
  if (params.relabel_fraction < 0.0 || params.relabel_fraction > 1.0) {
    throw std::invalid_argument("distort: relabel_fraction must be in [0, 1]");
  }
  if (params.relabel_fraction > 0.0 && params.relabel_pool == 0) {
    throw std::invalid_argument("distort: relabel needs a non-empty pool");
  }
  const std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(params.keep_fraction *
                          static_cast<double>(target.size()))));

  symbolic_image query(target.width(), target.height());
  const auto kept =
      keep_rng.sample_indices(target.size(), std::min(keep, target.size()));
  for (std::size_t index : kept) {
    const icon& obj = target.icons()[index];
    rect mbr = obj.mbr;
    if (params.jitter > 0) {
      mbr.x = shifted_clamped(
          mbr.x, jitter_rng.uniform_int(-params.jitter, params.jitter),
          target.width());
      mbr.y = shifted_clamped(
          mbr.y, jitter_rng.uniform_int(-params.jitter, params.jitter),
          target.height());
    }
    symbol_id symbol = obj.symbol;
    if (params.relabel_fraction > 0.0 &&
        relabel_rng.chance(params.relabel_fraction)) {
      std::string name = "S";
      name += std::to_string(relabel_rng.uniform_int(
          0, static_cast<int>(params.relabel_pool) - 1));
      symbol = names.intern(name);
    }
    query.add(symbol, mbr);
  }

  if (params.decoys > 0) {
    scene_params decoy = params.decoy_shape;
    decoy.width = target.width();
    decoy.height = target.height();
    decoy.object_count = params.decoys;
    decoy.unique_symbols = false;
    decoy.disjoint = false;
    const symbolic_image clutter = random_scene(decoy, decoy_rng, names);
    for (const icon& obj : clutter.icons()) query.add(obj);
  }

  if (params.transform) {
    return apply(*params.transform, query);
  }
  return query;
}

}  // namespace

symbolic_image distort(const symbolic_image& target,
                       const distortion_params& params, alphabet& names) {
  rng keep_rng(derive_seed(params.seed, knob_keep));
  rng jitter_rng(derive_seed(params.seed, knob_jitter));
  rng relabel_rng(derive_seed(params.seed, knob_relabel));
  rng decoy_rng(derive_seed(params.seed, knob_decoy));
  return distort_impl(target, params, keep_rng, jitter_rng, relabel_rng,
                      decoy_rng, names);
}

symbolic_image distort(const symbolic_image& target,
                       const distortion_params& params, rng& rng,
                       alphabet& names) {
  return distort_impl(target, params, rng, rng, rng, rng, names);
}

}  // namespace bes
