// Synthetic scene generators — the evaluation corpus substitute for the
// paper's unpublished demo image collection (DESIGN.md §5).
#pragma once

#include "symbolic/symbolic_image.hpp"
#include "util/rng.hpp"

namespace bes {

struct scene_params {
  int width = 256;
  int height = 256;
  std::size_t object_count = 8;
  int min_extent = 4;   // minimum MBR side length
  int max_extent = 64;  // maximum MBR side length
  // Symbols are drawn from a pool "S0".."S<k-1>" interned into the alphabet.
  std::size_t symbol_pool = 8;
  // Give every object a distinct pool symbol (requires pool >= count); the
  // type-i baselines are defined over uniquely labeled pictures.
  bool unique_symbols = false;
  // Reject MBRs overlapping an already placed one (best effort: gives up
  // after a bounded number of attempts and throws).
  bool disjoint = false;
  // Snap MBR corners to a grid, producing many coincident boundaries.
  int grid = 0;  // 0 = off
};

// A random scene; deterministic given (params, rng state).
[[nodiscard]] symbolic_image random_scene(const scene_params& params, rng& rng,
                                          alphabet& names);

// The storage-bound extremes of paper §3.1 (experiment E2):
// best case — all boundary projections identical and flush with the image
// edges (n stacked full-domain objects): exactly 2n+1 tokens per axis.
[[nodiscard]] symbolic_image best_case_scene(std::size_t n, alphabet& names);
// worst case — all 2n boundary projections distinct with gaps at both edges
// (strictly nested intervals): exactly 4n+1 tokens per axis.
[[nodiscard]] symbolic_image worst_case_scene(std::size_t n, alphabet& names);

}  // namespace bes
