#include "workload/scene_gen.hpp"

#include <stdexcept>
#include <string>

namespace bes {

namespace {

symbol_id pool_symbol(std::size_t index, alphabet& names) {
  return names.intern("S" + std::to_string(index));
}

int snap(int value, int grid) {
  return grid <= 1 ? value : (value / grid) * grid;
}

}  // namespace

symbolic_image random_scene(const scene_params& params, rng& rng,
                            alphabet& names) {
  if (params.object_count == 0) {
    return symbolic_image(params.width, params.height);
  }
  if (params.min_extent < 1 || params.max_extent < params.min_extent) {
    throw std::invalid_argument("random_scene: bad extent range");
  }
  if (params.max_extent > params.width || params.max_extent > params.height) {
    throw std::invalid_argument("random_scene: extents exceed domain");
  }
  if (params.unique_symbols && params.symbol_pool < params.object_count) {
    throw std::invalid_argument(
        "random_scene: unique_symbols needs pool >= count");
  }

  symbolic_image scene(params.width, params.height);
  constexpr int max_attempts_per_object = 1000;
  for (std::size_t i = 0; i < params.object_count; ++i) {
    const symbol_id symbol =
        params.unique_symbols
            ? pool_symbol(i, names)
            : pool_symbol(static_cast<std::size_t>(rng.uniform_int(
                              0, static_cast<int>(params.symbol_pool) - 1)),
                          names);
    bool placed = false;
    for (int attempt = 0; attempt < max_attempts_per_object; ++attempt) {
      int w = rng.uniform_int(params.min_extent, params.max_extent);
      int h = rng.uniform_int(params.min_extent, params.max_extent);
      int x = rng.uniform_int(0, params.width - w);
      int y = rng.uniform_int(0, params.height - h);
      if (params.grid > 1) {
        x = snap(x, params.grid);
        y = snap(y, params.grid);
        w = std::max(params.grid, snap(w, params.grid));
        h = std::max(params.grid, snap(h, params.grid));
        if (x + w > params.width) x = params.width - w;
        if (y + h > params.height) y = params.height - h;
        if (x < 0 || y < 0) continue;
      }
      const rect mbr{interval{x, x + w}, interval{y, y + h}};
      if (params.disjoint) {
        bool clear = true;
        for (const icon& other : scene.icons()) {
          if (overlaps(other.mbr, mbr)) {
            clear = false;
            break;
          }
        }
        if (!clear) continue;
      }
      scene.add(symbol, mbr);
      placed = true;
      break;
    }
    if (!placed) {
      throw std::runtime_error(
          "random_scene: could not place disjoint object " + std::to_string(i));
    }
  }
  return scene;
}

symbolic_image best_case_scene(std::size_t n, alphabet& names) {
  // n identical full-domain MBRs: per axis, n coincident begins, n coincident
  // ends, one dummy for the begin->end gap, flush edges: 2n+1 tokens.
  symbolic_image scene(64, 64);
  for (std::size_t i = 0; i < n; ++i) {
    scene.add(pool_symbol(i, names), rect{interval{0, 64}, interval{0, 64}});
  }
  return scene;
}

symbolic_image worst_case_scene(std::size_t n, alphabet& names) {
  // Strictly nested intervals with margins: every boundary coordinate is
  // distinct and both edges have gaps: 2n boundaries + 2n-1 internal dummies
  // + 2 edge dummies = 4n+1 tokens per axis.
  const int m = static_cast<int>(n);
  const int domain = 4 * m + 4;
  symbolic_image scene(domain, domain);
  for (int i = 0; i < m; ++i) {
    const int lo = i + 1;
    const int hi = domain - i - 1;
    scene.add(pool_symbol(static_cast<std::size_t>(i), names),
              rect{interval{lo, hi}, interval{lo, hi}});
  }
  return scene;
}

}  // namespace bes
