// PNM (PGM / PPM) image I/O — the self-contained replacement for OpenCV
// image I/O in this reproduction (DESIGN.md §5). Reads both ASCII (P2/P3)
// and binary (P5/P6) variants with maxval <= 255; writes binary.
#pragma once

#include <filesystem>

#include "imaging/image.hpp"

namespace bes {

// Throws std::runtime_error on I/O failure or malformed content.
[[nodiscard]] image8 read_pgm(const std::filesystem::path& path);
[[nodiscard]] image_rgb read_ppm(const std::filesystem::path& path);

void write_pgm(const std::filesystem::path& path, const image8& img);
void write_ppm(const std::filesystem::path& path, const image_rgb& img);

}  // namespace bes
