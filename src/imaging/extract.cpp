#include "imaging/extract.hpp"

#include <algorithm>

namespace bes {

symbolic_image extract_icons(
    const image8& raster, std::uint8_t background,
    const std::unordered_map<std::uint8_t, symbol_id>& gray_to_symbol) {
  const labeling labels = label_components(raster, background);
  const int w = raster.width();
  const int h = raster.height();

  struct box {
    int col_min, col_max, row_min, row_max;
    std::uint8_t gray;
    bool seen = false;
  };
  std::vector<box> boxes(static_cast<std::size_t>(labels.component_count));

  for (int row = 0; row < h; ++row) {
    for (int col = 0; col < w; ++col) {
      const std::int32_t id = labels.at(col, row, w);
      if (id < 0) continue;
      box& b = boxes[static_cast<std::size_t>(id)];
      if (!b.seen) {
        b = box{col, col, row, row, raster.at(col, row), true};
      } else {
        b.col_min = std::min(b.col_min, col);
        b.col_max = std::max(b.col_max, col);
        b.row_min = std::min(b.row_min, row);
        b.row_max = std::max(b.row_max, row);
      }
    }
  }

  symbolic_image out(w, h);
  for (const box& b : boxes) {
    if (!b.seen) continue;
    auto it = gray_to_symbol.find(b.gray);
    if (it == gray_to_symbol.end()) continue;  // unrecognized blob
    // Raster rows [row_min, row_max] -> symbolic y band [h-1-row_max,
    // h-1-row_min], half-open [h-1-row_max, h-row_min).
    out.add(it->second, rect{interval{b.col_min, b.col_max + 1},
                             interval{h - 1 - b.row_max, h - b.row_min}});
  }
  return out;
}

}  // namespace bes
