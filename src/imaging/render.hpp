// Scene renderer: symbolic picture -> grayscale raster.
//
// Simulates the front half of the paper's pipeline (real photographs with
// recognized icons) with synthetic rasters whose icons we control exactly:
// every icon instance is drawn in its own gray level, so extraction can
// recover instance identity, symbol, and exact MBR, and the round-trip
// render -> label -> extract is property-testable.
#pragma once

#include <unordered_map>

#include "imaging/image.hpp"
#include "symbolic/symbolic_image.hpp"

namespace bes {

enum class icon_shape : std::uint8_t {
  rectangle,  // fills the MBR exactly (lossless MBR recovery)
  ellipse,    // inscribed ellipse (for demo visuals)
  diamond,    // inscribed diamond
};

struct render_options {
  std::uint8_t background = 255;
  icon_shape shape = icon_shape::rectangle;
};

struct rendered_scene {
  image8 raster;
  // Gray level -> icon symbol for every instance drawn.
  std::unordered_map<std::uint8_t, symbol_id> gray_to_symbol;
};

// Draws each icon in a distinct gray level (1, 2, 3, ... skipping the
// background). Later icons paint over earlier ones where MBRs overlap.
// Throws std::invalid_argument if the scene has more instances than
// distinguishable gray levels (254).
[[nodiscard]] rendered_scene render_scene(const symbolic_image& scene,
                                          const render_options& options = {});

// A colorized view of a scene for demo/PPM output: symbol hue, gray
// background grid. Purely cosmetic; not used by extraction.
[[nodiscard]] image_rgb render_preview(const symbolic_image& scene);

}  // namespace bes
