#include "imaging/image.hpp"

namespace bes {

image8::image8(int width, int height, std::uint8_t fill)
    : width_(width), height_(height) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("image8: dimensions must be positive");
  }
  pixels_.assign(static_cast<std::size_t>(width) * height, fill);
}

image_rgb::image_rgb(int width, int height, rgb fill)
    : width_(width), height_(height) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("image_rgb: dimensions must be positive");
  }
  pixels_.assign(static_cast<std::size_t>(width) * height, fill);
}

}  // namespace bes
