#include "imaging/render.hpp"

#include <cmath>
#include <stdexcept>

namespace bes {

namespace {

// Symbolic y (up) -> raster row (down) for a pixel band [lo, hi).
// Symbolic pixel rows y in [lo, hi) map to raster rows H-1-y.
struct raster_band {
  int row_begin;
  int row_end;  // half-open
};

raster_band band_of(interval y, int height) noexcept {
  return raster_band{height - y.hi, height - y.lo};
}

bool inside_shape(icon_shape shape, const rect& mbr, int col, int sym_y) {
  switch (shape) {
    case icon_shape::rectangle:
      return true;
    case icon_shape::ellipse: {
      const double cx = 0.5 * (mbr.x.lo + mbr.x.hi);
      const double cy = 0.5 * (mbr.y.lo + mbr.y.hi);
      const double rx = 0.5 * mbr.x.length();
      const double ry = 0.5 * mbr.y.length();
      const double dx = (col + 0.5 - cx) / rx;
      const double dy = (sym_y + 0.5 - cy) / ry;
      return dx * dx + dy * dy <= 1.0;
    }
    case icon_shape::diamond: {
      const double cx = 0.5 * (mbr.x.lo + mbr.x.hi);
      const double cy = 0.5 * (mbr.y.lo + mbr.y.hi);
      const double rx = 0.5 * mbr.x.length();
      const double ry = 0.5 * mbr.y.length();
      const double dx = std::abs(col + 0.5 - cx) / rx;
      const double dy = std::abs(sym_y + 0.5 - cy) / ry;
      return dx + dy <= 1.0;
    }
  }
  return true;
}

}  // namespace

rendered_scene render_scene(const symbolic_image& scene,
                            const render_options& options) {
  if (scene.size() > 254) {
    throw std::invalid_argument(
        "render_scene: more instances than gray levels (max 254)");
  }
  rendered_scene out{image8(scene.width(), scene.height(), options.background),
                     {}};
  std::uint8_t gray = 0;
  for (const icon& obj : scene.icons()) {
    // Next gray level, skipping the background value.
    do {
      ++gray;
    } while (gray == options.background);
    out.gray_to_symbol.emplace(gray, obj.symbol);
    const raster_band rows = band_of(obj.mbr.y, scene.height());
    for (int row = rows.row_begin; row < rows.row_end; ++row) {
      const int sym_y = scene.height() - 1 - row;
      for (int col = obj.mbr.x.lo; col < obj.mbr.x.hi; ++col) {
        if (inside_shape(options.shape, obj.mbr, col, sym_y)) {
          out.raster.at(col, row) = gray;
        }
      }
    }
  }
  return out;
}

image_rgb render_preview(const symbolic_image& scene) {
  image_rgb out(scene.width(), scene.height(), rgb{250, 250, 250});
  auto hue = [](symbol_id s) -> rgb {
    // A fixed palette cycle; collisions across many symbols are fine for a
    // preview.
    static constexpr rgb palette[] = {
        {204, 51, 51},  {51, 153, 51},  {51, 102, 204}, {204, 153, 0},
        {153, 51, 204}, {0, 153, 153},  {204, 102, 51}, {102, 102, 102},
    };
    return palette[s % (sizeof(palette) / sizeof(palette[0]))];
  };
  for (const icon& obj : scene.icons()) {
    const rgb color = hue(obj.symbol);
    for (int y = obj.mbr.y.lo; y < obj.mbr.y.hi; ++y) {
      const int row = scene.height() - 1 - y;
      for (int col = obj.mbr.x.lo; col < obj.mbr.x.hi; ++col) {
        const bool border = y == obj.mbr.y.lo || y == obj.mbr.y.hi - 1 ||
                            col == obj.mbr.x.lo || col == obj.mbr.x.hi - 1;
        out.at(col, row) = border ? rgb{30, 30, 30} : color;
      }
    }
  }
  return out;
}

}  // namespace bes
