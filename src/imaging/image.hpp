// Raster substrate: 8-bit grayscale and 24-bit RGB images.
//
// Storage is row-major with row 0 at the TOP (raster convention); the
// symbolic coordinate system has y growing upward, and only the extract/
// render boundary converts between the two (DESIGN.md §3).
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace bes {

class image8 {
 public:
  image8(int width, int height, std::uint8_t fill = 255);

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }

  [[nodiscard]] std::uint8_t at(int col, int row) const {
    check(col, row);
    return pixels_[static_cast<std::size_t>(row) * width_ + col];
  }
  std::uint8_t& at(int col, int row) {
    check(col, row);
    return pixels_[static_cast<std::size_t>(row) * width_ + col];
  }

  [[nodiscard]] const std::vector<std::uint8_t>& pixels() const noexcept {
    return pixels_;
  }
  std::vector<std::uint8_t>& pixels() noexcept { return pixels_; }

  friend bool operator==(const image8&, const image8&) = default;

 private:
  void check(int col, int row) const {
    if (col < 0 || col >= width_ || row < 0 || row >= height_) {
      throw std::out_of_range("image8: pixel out of range");
    }
  }

  int width_;
  int height_;
  std::vector<std::uint8_t> pixels_;
};

using rgb = std::array<std::uint8_t, 3>;

class image_rgb {
 public:
  image_rgb(int width, int height, rgb fill = {255, 255, 255});

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }

  [[nodiscard]] rgb at(int col, int row) const {
    check(col, row);
    return pixels_[static_cast<std::size_t>(row) * width_ + col];
  }
  rgb& at(int col, int row) {
    check(col, row);
    return pixels_[static_cast<std::size_t>(row) * width_ + col];
  }

  [[nodiscard]] const std::vector<rgb>& pixels() const noexcept {
    return pixels_;
  }

  friend bool operator==(const image_rgb&, const image_rgb&) = default;

 private:
  void check(int col, int row) const {
    if (col < 0 || col >= width_ || row < 0 || row >= height_) {
      throw std::out_of_range("image_rgb: pixel out of range");
    }
  }

  int width_;
  int height_;
  std::vector<rgb> pixels_;
};

}  // namespace bes
