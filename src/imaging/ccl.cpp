#include "imaging/ccl.hpp"

#include <numeric>

namespace bes {

namespace {

class union_find {
 public:
  std::int32_t make() {
    parent_.push_back(static_cast<std::int32_t>(parent_.size()));
    return parent_.back();
  }

  std::int32_t find(std::int32_t v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];  // path halving
      v = parent_[v];
    }
    return v;
  }

  void unite(std::int32_t a, std::int32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[b < a ? a : b] = b < a ? b : a;  // smaller root wins
  }

  [[nodiscard]] std::size_t size() const noexcept { return parent_.size(); }

 private:
  std::vector<std::int32_t> parent_;
};

}  // namespace

labeling label_components(const image8& img, std::uint8_t background) {
  const int w = img.width();
  const int h = img.height();
  labeling out;
  out.labels.assign(static_cast<std::size_t>(w) * h, -1);
  union_find sets;
  std::vector<std::int32_t> provisional(out.labels.size(), -1);

  // Pass 1: provisional labels; merge with identical-valued left/up pixels.
  for (int row = 0; row < h; ++row) {
    for (int col = 0; col < w; ++col) {
      const std::uint8_t value = img.at(col, row);
      if (value == background) continue;
      const std::size_t index = static_cast<std::size_t>(row) * w + col;
      std::int32_t label = -1;
      if (col > 0 && img.at(col - 1, row) == value) {
        label = provisional[index - 1];
      }
      if (row > 0 && img.at(col, row - 1) == value) {
        const std::int32_t up = provisional[index - w];
        if (label == -1) {
          label = up;
        } else if (up != label) {
          sets.unite(label, up);
        }
      }
      if (label == -1) label = sets.make();
      provisional[index] = label;
    }
  }

  // Pass 2: compress to dense component ids.
  std::vector<std::int32_t> dense(sets.size(), -1);
  std::int32_t next = 0;
  for (std::size_t i = 0; i < out.labels.size(); ++i) {
    if (provisional[i] == -1) continue;
    const std::int32_t root = sets.find(provisional[i]);
    if (dense[root] == -1) dense[root] = next++;
    out.labels[i] = dense[root];
  }
  out.component_count = next;
  return out;
}

}  // namespace bes
