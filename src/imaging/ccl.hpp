// Two-pass connected-component labeling with union-find.
//
// 4-connectivity; two pixels belong to the same component iff they are
// adjacent AND share the same gray value, so touching icons with different
// grays stay separate components.
#pragma once

#include <cstdint>
#include <vector>

#include "imaging/image.hpp"

namespace bes {

struct labeling {
  // Per pixel (row-major, same layout as image8): component id, or -1 for
  // background pixels.
  std::vector<std::int32_t> labels;
  std::int32_t component_count = 0;

  [[nodiscard]] std::int32_t at(int col, int row, int width) const {
    return labels[static_cast<std::size_t>(row) * width + col];
  }
};

[[nodiscard]] labeling label_components(const image8& img,
                                        std::uint8_t background);

}  // namespace bes
