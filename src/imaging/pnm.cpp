#include "imaging/pnm.hpp"

#include <fstream>
#include <string>

namespace bes {

namespace {

// Reads the next header token, skipping whitespace and '#' comments.
std::string next_header_token(std::istream& in) {
  std::string token;
  for (;;) {
    const int c = in.get();
    if (c == EOF) {
      if (token.empty()) throw std::runtime_error("pnm: truncated header");
      return token;
    }
    if (c == '#') {
      std::string comment;
      std::getline(in, comment);
      if (!token.empty()) return token;
      continue;
    }
    if (std::isspace(c) != 0) {
      if (!token.empty()) return token;
      continue;
    }
    token.push_back(static_cast<char>(c));
  }
}

int header_int(std::istream& in, const char* what) {
  const std::string token = next_header_token(in);
  try {
    return std::stoi(token);
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("pnm: bad ") + what + " '" + token +
                             "'");
  }
}

struct pnm_header {
  std::string magic;
  int width = 0;
  int height = 0;
  int maxval = 0;
};

pnm_header read_header(std::istream& in, const std::filesystem::path& path) {
  pnm_header h;
  h.magic = next_header_token(in);
  h.width = header_int(in, "width");
  h.height = header_int(in, "height");
  h.maxval = header_int(in, "maxval");
  if (h.width <= 0 || h.height <= 0) {
    throw std::runtime_error("pnm: bad dimensions in " + path.string());
  }
  if (h.maxval <= 0 || h.maxval > 255) {
    throw std::runtime_error("pnm: unsupported maxval in " + path.string());
  }
  return h;
}

std::uint8_t read_sample(std::istream& in, bool ascii, const char* what) {
  if (ascii) {
    const int value = header_int(in, what);
    if (value < 0 || value > 255) {
      throw std::runtime_error(std::string("pnm: sample out of range for ") +
                               what);
    }
    return static_cast<std::uint8_t>(value);
  }
  const int c = in.get();
  if (c == EOF) {
    throw std::runtime_error(std::string("pnm: truncated data for ") + what);
  }
  return static_cast<std::uint8_t>(c);
}

}  // namespace

image8 read_pgm(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("pnm: cannot open " + path.string());
  const pnm_header h = read_header(in, path);
  if (h.magic != "P2" && h.magic != "P5") {
    throw std::runtime_error("pnm: " + path.string() + " is not a PGM");
  }
  const bool ascii = h.magic == "P2";
  image8 img(h.width, h.height, 0);
  for (int row = 0; row < h.height; ++row) {
    for (int col = 0; col < h.width; ++col) {
      img.at(col, row) = read_sample(in, ascii, "pixel");
    }
  }
  return img;
}

image_rgb read_ppm(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("pnm: cannot open " + path.string());
  const pnm_header h = read_header(in, path);
  if (h.magic != "P3" && h.magic != "P6") {
    throw std::runtime_error("pnm: " + path.string() + " is not a PPM");
  }
  const bool ascii = h.magic == "P3";
  image_rgb img(h.width, h.height);
  for (int row = 0; row < h.height; ++row) {
    for (int col = 0; col < h.width; ++col) {
      rgb& px = img.at(col, row);
      px[0] = read_sample(in, ascii, "red");
      px[1] = read_sample(in, ascii, "green");
      px[2] = read_sample(in, ascii, "blue");
    }
  }
  return img;
}

void write_pgm(const std::filesystem::path& path, const image8& img) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("pnm: cannot write " + path.string());
  out << "P5\n" << img.width() << ' ' << img.height() << "\n255\n";
  out.write(reinterpret_cast<const char*>(img.pixels().data()),
            static_cast<std::streamsize>(img.pixels().size()));
  if (!out) throw std::runtime_error("pnm: write failed for " + path.string());
}

void write_ppm(const std::filesystem::path& path, const image_rgb& img) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("pnm: cannot write " + path.string());
  out << "P6\n" << img.width() << ' ' << img.height() << "\n255\n";
  for (const rgb& px : img.pixels()) {
    out.write(reinterpret_cast<const char*>(px.data()), 3);
  }
  if (!out) throw std::runtime_error("pnm: write failed for " + path.string());
}

}  // namespace bes
