// Icon extraction: raster -> symbolic picture.
//
// The paper's input contract ("we have abstracted all objects and their MBR
// coordinates") realized over our raster substrate: label connected
// components, compute each component's pixel-exact MBR, convert raster rows
// to the symbolic y-up coordinate system, and map gray levels to symbols.
#pragma once

#include "imaging/ccl.hpp"
#include "imaging/render.hpp"
#include "symbolic/symbolic_image.hpp"

namespace bes {

// Extracts icons from a labeled raster. `gray_to_symbol` assigns each
// component's gray value a symbol; components whose gray has no mapping are
// skipped (unknown clutter), mirroring a recognizer that ignores unknown
// blobs. Icon order follows component discovery order (top-left first).
[[nodiscard]] symbolic_image extract_icons(
    const image8& raster, std::uint8_t background,
    const std::unordered_map<std::uint8_t, symbol_id>& gray_to_symbol);

// Convenience for the synthetic pipeline: extract from a rendered scene.
[[nodiscard]] inline symbolic_image extract_icons(const rendered_scene& scene,
                                                  std::uint8_t background = 255) {
  return extract_icons(scene.raster, background, scene.gray_to_symbol);
}

}  // namespace bes
