// Allen's 13 interval relations over half-open integer intervals.
//
// These are the exact pairwise relations that the 2D-string baseline family
// reasons about (paper §2); the type-0/1/2 similarity baselines are defined
// by coarsenings of this algebra (see baselines/relation_class.hpp).
#pragma once

#include <cstdint>
#include <string_view>

#include "geometry/interval.hpp"

namespace bes {

enum class allen_relation : std::uint8_t {
  before,         // a.hi  < b.lo
  meets,          // a.hi == b.lo
  overlaps,       // a.lo < b.lo < a.hi < b.hi
  starts,         // a.lo == b.lo, a.hi < b.hi
  during,         // b.lo < a.lo, a.hi < b.hi
  finishes,       // b.lo < a.lo, a.hi == b.hi
  equals,         // identical
  finished_by,    // inverse of finishes
  contains,       // inverse of during
  started_by,     // inverse of starts
  overlapped_by,  // inverse of overlaps
  met_by,         // inverse of meets
  after,          // inverse of before
};

inline constexpr int allen_relation_count = 13;

// Classifies the relation of `a` with respect to `b`.
// Preconditions: a.valid() && b.valid().
[[nodiscard]] allen_relation classify(interval a, interval b) noexcept;

// The relation of b w.r.t. a, given the relation of a w.r.t. b.
[[nodiscard]] allen_relation inverse(allen_relation r) noexcept;

// Stable lowercase name, e.g. "finished_by".
[[nodiscard]] std::string_view to_string(allen_relation r) noexcept;

}  // namespace bes
