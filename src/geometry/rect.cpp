#include "geometry/rect.hpp"

namespace bes {

rect rect::checked(int x_lo, int x_hi, int y_lo, int y_hi) {
  return rect{interval::checked(x_lo, x_hi), interval::checked(y_lo, y_hi)};
}

std::string to_string(const rect& r) {
  return to_string(r.x) + "x" + to_string(r.y);
}

}  // namespace bes
