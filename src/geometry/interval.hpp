// Half-open integer intervals [lo, hi) — the 1-D projection of an MBR.
#pragma once

#include <compare>
#include <stdexcept>
#include <string>

namespace bes {

// A half-open interval on one axis. Invariant (checked by valid()/checked()):
// lo < hi. Aggregates keep the type trivially copyable; call sites that
// construct from untrusted input go through checked().
struct interval {
  int lo = 0;
  int hi = 0;

  friend auto operator<=>(const interval&, const interval&) = default;

  [[nodiscard]] constexpr bool valid() const noexcept { return lo < hi; }
  [[nodiscard]] constexpr int length() const noexcept { return hi - lo; }
  [[nodiscard]] constexpr bool contains(int p) const noexcept {
    return lo <= p && p < hi;
  }
  [[nodiscard]] constexpr int mid2() const noexcept { return lo + hi; }  // 2*center

  // Throws std::invalid_argument unless lo < hi.
  static interval checked(int lo, int hi);
};

// True iff the two intervals share at least one point.
[[nodiscard]] constexpr bool overlaps(interval a, interval b) noexcept {
  return a.lo < b.hi && b.lo < a.hi;
}

// True iff a fully contains b (not necessarily strictly).
[[nodiscard]] constexpr bool contains(interval a, interval b) noexcept {
  return a.lo <= b.lo && b.hi <= a.hi;
}

// Intersection; precondition: overlaps(a, b).
[[nodiscard]] interval intersect(interval a, interval b);

// Smallest interval covering both.
[[nodiscard]] constexpr interval hull(interval a, interval b) noexcept {
  return interval{a.lo < b.lo ? a.lo : b.lo, a.hi > b.hi ? a.hi : b.hi};
}

[[nodiscard]] std::string to_string(interval v);

}  // namespace bes
