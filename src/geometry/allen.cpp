#include "geometry/allen.hpp"

namespace bes {

allen_relation classify(interval a, interval b) noexcept {
  if (a.hi < b.lo) return allen_relation::before;
  if (a.hi == b.lo) return allen_relation::meets;
  if (b.hi < a.lo) return allen_relation::after;
  if (b.hi == a.lo) return allen_relation::met_by;
  // The intervals now share interior points.
  if (a.lo == b.lo && a.hi == b.hi) return allen_relation::equals;
  if (a.lo == b.lo) {
    return a.hi < b.hi ? allen_relation::starts : allen_relation::started_by;
  }
  if (a.hi == b.hi) {
    return a.lo > b.lo ? allen_relation::finishes : allen_relation::finished_by;
  }
  if (a.lo > b.lo && a.hi < b.hi) return allen_relation::during;
  if (b.lo > a.lo && b.hi < a.hi) return allen_relation::contains;
  return a.lo < b.lo ? allen_relation::overlaps : allen_relation::overlapped_by;
}

allen_relation inverse(allen_relation r) noexcept {
  // The enum is laid out symmetrically around `equals`.
  constexpr int last = allen_relation_count - 1;
  return static_cast<allen_relation>(last - static_cast<int>(r));
}

std::string_view to_string(allen_relation r) noexcept {
  switch (r) {
    case allen_relation::before: return "before";
    case allen_relation::meets: return "meets";
    case allen_relation::overlaps: return "overlaps";
    case allen_relation::starts: return "starts";
    case allen_relation::during: return "during";
    case allen_relation::finishes: return "finishes";
    case allen_relation::equals: return "equals";
    case allen_relation::finished_by: return "finished_by";
    case allen_relation::contains: return "contains";
    case allen_relation::started_by: return "started_by";
    case allen_relation::overlapped_by: return "overlapped_by";
    case allen_relation::met_by: return "met_by";
    case allen_relation::after: return "after";
  }
  return "?";
}

}  // namespace bes
