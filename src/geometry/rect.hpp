// Axis-aligned rectangles (MBRs) over half-open integer intervals.
//
// Coordinate convention (DESIGN.md §3): x grows rightward, y grows UPWARD —
// the paper speaks of "bottommost"/"topmost" objects. Raster code converts
// from row-major top-down storage at the imaging boundary.
#pragma once

#include <compare>
#include <string>

#include "geometry/interval.hpp"

namespace bes {

struct rect {
  interval x;
  interval y;

  friend auto operator<=>(const rect&, const rect&) = default;

  [[nodiscard]] constexpr bool valid() const noexcept {
    return x.valid() && y.valid();
  }
  [[nodiscard]] constexpr long long area() const noexcept {
    return static_cast<long long>(x.length()) * y.length();
  }

  // Throws std::invalid_argument unless both axes are valid.
  static rect checked(int x_lo, int x_hi, int y_lo, int y_hi);
};

[[nodiscard]] constexpr bool overlaps(const rect& a, const rect& b) noexcept {
  return overlaps(a.x, b.x) && overlaps(a.y, b.y);
}

[[nodiscard]] constexpr bool contains(const rect& a, const rect& b) noexcept {
  return contains(a.x, b.x) && contains(a.y, b.y);
}

[[nodiscard]] std::string to_string(const rect& r);

}  // namespace bes
