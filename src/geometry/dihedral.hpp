// The dihedral group D4: the 8 linear transformations the paper retrieves by
// string reversal — identity, 90/180/270° clockwise rotations, reflections on
// the x- and y-axis, and the two diagonal reflections.
//
// Geometric convention: a transform maps an image over domain [0,W)x[0,H)
// (y up) onto a new domain; e.g. rot90 (clockwise) maps (x, y) -> (y, W - x),
// giving a new domain [0,H)x[0,W).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "geometry/rect.hpp"

namespace bes {

enum class dihedral : std::uint8_t {
  identity,
  rot90,           // 90 degrees clockwise
  rot180,          // 180 degrees
  rot270,          // 270 degrees clockwise (= 90 ccw)
  flip_x,          // reflection on the x-axis: mirror top<->bottom, (x,y)->(x,H-y)
  flip_y,          // reflection on the y-axis: mirror left<->right, (x,y)->(W-x,y)
  transpose,       // reflection on the main diagonal: (x,y)->(y,x)
  anti_transpose,  // reflection on the anti-diagonal: (x,y)->(H-y,W-x)
};

inline constexpr std::array<dihedral, 8> all_dihedral = {
    dihedral::identity,  dihedral::rot90,  dihedral::rot180,
    dihedral::rot270,    dihedral::flip_x, dihedral::flip_y,
    dihedral::transpose, dihedral::anti_transpose,
};

// True for rot90/rot270/transpose/anti_transpose: width and height swap.
[[nodiscard]] bool swaps_axes(dihedral t) noexcept;

// Transformed rectangle. (width, height) is the domain of the INPUT image.
// Preconditions: r.valid(), r within [0,width)x[0,height).
[[nodiscard]] rect apply(dihedral t, const rect& r, int width,
                         int height) noexcept;

// The transform that undoes t.
[[nodiscard]] dihedral inverse(dihedral t) noexcept;

// Group composition: apply `first`, then `second` (on the already-transformed
// image). compose(inverse(t), t) == identity.
[[nodiscard]] dihedral compose(dihedral first, dihedral second) noexcept;

[[nodiscard]] std::string_view to_string(dihedral t) noexcept;

}  // namespace bes
