#include "geometry/dihedral.hpp"

namespace bes {

bool swaps_axes(dihedral t) noexcept {
  switch (t) {
    case dihedral::rot90:
    case dihedral::rot270:
    case dihedral::transpose:
    case dihedral::anti_transpose:
      return true;
    default:
      return false;
  }
}

rect apply(dihedral t, const rect& r, int width, int height) noexcept {
  const interval x = r.x;
  const interval y = r.y;
  // For half-open intervals, the reflection of [lo, hi) within [0, M) is
  // [M - hi, M - lo).
  const interval rx{width - x.hi, width - x.lo};
  const interval ry{height - y.hi, height - y.lo};
  switch (t) {
    case dihedral::identity: return rect{x, y};
    case dihedral::rot90: return rect{y, rx};            // (x,y)->(y, W-x)
    case dihedral::rot180: return rect{rx, ry};          // (x,y)->(W-x, H-y)
    case dihedral::rot270: return rect{ry, x};           // (x,y)->(H-y, x)
    case dihedral::flip_x: return rect{x, ry};           // (x,y)->(x, H-y)
    case dihedral::flip_y: return rect{rx, y};           // (x,y)->(W-x, y)
    case dihedral::transpose: return rect{y, x};         // (x,y)->(y, x)
    case dihedral::anti_transpose: return rect{ry, rx};  // (x,y)->(H-y, W-x)
  }
  return r;
}

dihedral inverse(dihedral t) noexcept {
  switch (t) {
    case dihedral::rot90: return dihedral::rot270;
    case dihedral::rot270: return dihedral::rot90;
    default: return t;  // identity, rot180 and all reflections are involutions
  }
}

namespace {

// Each dihedral element is a signed permutation matrix acting on (x, y)
// (translations that keep the domain at the origin are implied and compose
// automatically). rot90 maps (x,y)->(y, W-x), i.e. linear part (y, -x).
struct mat2 {
  int a, b, c, d;  // (x, y) -> (a*x + b*y, c*x + d*y)
  friend bool operator==(const mat2&, const mat2&) = default;
};

constexpr mat2 matrix_of(dihedral t) noexcept {
  switch (t) {
    case dihedral::identity: return {1, 0, 0, 1};
    case dihedral::rot90: return {0, 1, -1, 0};
    case dihedral::rot180: return {-1, 0, 0, -1};
    case dihedral::rot270: return {0, -1, 1, 0};
    case dihedral::flip_x: return {1, 0, 0, -1};
    case dihedral::flip_y: return {-1, 0, 0, 1};
    case dihedral::transpose: return {0, 1, 1, 0};
    case dihedral::anti_transpose: return {0, -1, -1, 0};
  }
  return {1, 0, 0, 1};
}

constexpr mat2 multiply(const mat2& m, const mat2& n) noexcept {
  // Row-times-column product m*n (apply n first, then m).
  return mat2{m.a * n.a + m.b * n.c, m.a * n.b + m.b * n.d,
              m.c * n.a + m.d * n.c, m.c * n.b + m.d * n.d};
}

}  // namespace

dihedral compose(dihedral first, dihedral second) noexcept {
  const mat2 product = multiply(matrix_of(second), matrix_of(first));
  for (dihedral t : all_dihedral) {
    if (matrix_of(t) == product) return t;
  }
  return dihedral::identity;  // unreachable: D4 is closed under composition
}

std::string_view to_string(dihedral t) noexcept {
  switch (t) {
    case dihedral::identity: return "identity";
    case dihedral::rot90: return "rot90";
    case dihedral::rot180: return "rot180";
    case dihedral::rot270: return "rot270";
    case dihedral::flip_x: return "flip_x";
    case dihedral::flip_y: return "flip_y";
    case dihedral::transpose: return "transpose";
    case dihedral::anti_transpose: return "anti_transpose";
  }
  return "?";
}

}  // namespace bes
