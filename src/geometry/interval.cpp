#include "geometry/interval.hpp"

namespace bes {

interval interval::checked(int lo, int hi) {
  if (lo >= hi) {
    throw std::invalid_argument("interval: requires lo < hi, got [" +
                                std::to_string(lo) + ", " + std::to_string(hi) +
                                ")");
  }
  return interval{lo, hi};
}

interval intersect(interval a, interval b) {
  if (!overlaps(a, b)) {
    throw std::invalid_argument("intersect: intervals are disjoint");
  }
  return interval{a.lo > b.lo ? a.lo : b.lo, a.hi < b.hi ? a.hi : b.hi};
}

std::string to_string(interval v) {
  return "[" + std::to_string(v.lo) + ", " + std::to_string(v.hi) + ")";
}

}  // namespace bes
