#include "baselines/relation_class.hpp"

namespace bes {

type1_class type1_of(allen_relation r) noexcept {
  switch (r) {
    case allen_relation::before: return type1_class::disjoint_lt;
    case allen_relation::after: return type1_class::disjoint_gt;
    case allen_relation::meets: return type1_class::edge_lt;
    case allen_relation::met_by: return type1_class::edge_gt;
    case allen_relation::overlaps: return type1_class::partial_lt;
    case allen_relation::overlapped_by: return type1_class::partial_gt;
    case allen_relation::contains:
    case allen_relation::started_by:
    case allen_relation::finished_by:
      return type1_class::contains;
    case allen_relation::during:
    case allen_relation::starts:
    case allen_relation::finishes:
      return type1_class::inside;
    case allen_relation::equals: return type1_class::equal;
  }
  return type1_class::equal;
}

type0_class type0_of(allen_relation r) noexcept {
  switch (type1_of(r)) {
    case type1_class::disjoint_lt:
    case type1_class::disjoint_gt:
    case type1_class::edge_lt:
    case type1_class::edge_gt:
      return type0_class::apart;
    case type1_class::partial_lt:
    case type1_class::partial_gt:
      return type0_class::intersect;
    case type1_class::contains:
    case type1_class::inside:
      return type0_class::nested;
    case type1_class::equal:
      return type0_class::same;
  }
  return type0_class::same;
}

pair_relation relate(const rect& a, const rect& b) noexcept {
  return pair_relation{classify(a.x, b.x), classify(a.y, b.y)};
}

bool compatible(similarity_type level, const pair_relation& a,
                const pair_relation& b) noexcept {
  switch (level) {
    case similarity_type::type2:
      return a.x == b.x && a.y == b.y;
    case similarity_type::type1:
      return type1_of(a.x) == type1_of(b.x) && type1_of(a.y) == type1_of(b.y);
    case similarity_type::type0:
      return type0_of(a.x) == type0_of(b.x) && type0_of(a.y) == type0_of(b.y);
  }
  return false;
}

std::string_view to_string(type1_class c) noexcept {
  switch (c) {
    case type1_class::disjoint_lt: return "disjoint<";
    case type1_class::disjoint_gt: return "disjoint>";
    case type1_class::edge_lt: return "edge<";
    case type1_class::edge_gt: return "edge>";
    case type1_class::partial_lt: return "partial<";
    case type1_class::partial_gt: return "partial>";
    case type1_class::contains: return "contains";
    case type1_class::inside: return "inside";
    case type1_class::equal: return "equal";
  }
  return "?";
}

std::string_view to_string(type0_class c) noexcept {
  switch (c) {
    case type0_class::apart: return "apart";
    case type0_class::intersect: return "intersect";
    case type0_class::nested: return "nested";
    case type0_class::same: return "same";
  }
  return "?";
}

std::string_view to_string(similarity_type t) noexcept {
  switch (t) {
    case similarity_type::type0: return "type-0";
    case similarity_type::type1: return "type-1";
    case similarity_type::type2: return "type-2";
  }
  return "?";
}

}  // namespace bes
