#include "baselines/g_string.hpp"

#include <algorithm>

namespace bes {

std::vector<segment> g_string_cut(std::span<const icon> icons, axis which) {
  // Collect every boundary coordinate once; each object is cut at all
  // coordinates strictly inside its own interval.
  std::vector<int> lines;
  lines.reserve(icons.size() * 2);
  for (const icon& obj : icons) {
    const interval side = which == axis::x ? obj.mbr.x : obj.mbr.y;
    lines.push_back(side.lo);
    lines.push_back(side.hi);
  }
  std::sort(lines.begin(), lines.end());
  lines.erase(std::unique(lines.begin(), lines.end()), lines.end());

  std::vector<segment> out;
  for (std::size_t index = 0; index < icons.size(); ++index) {
    const icon& obj = icons[index];
    const interval side = which == axis::x ? obj.mbr.x : obj.mbr.y;
    auto first =
        std::upper_bound(lines.begin(), lines.end(), side.lo);  // > lo
    int start = side.lo;
    for (auto it = first; it != lines.end() && *it < side.hi; ++it) {
      out.push_back(segment{index, obj.symbol, interval{start, *it}});
      start = *it;
    }
    out.push_back(segment{index, obj.symbol, interval{start, side.hi}});
  }
  return out;
}

std::size_t g_string_segment_count(const symbolic_image& image) {
  return g_string_cut(image.icons(), axis::x).size() +
         g_string_cut(image.icons(), axis::y).size();
}

}  // namespace bes
