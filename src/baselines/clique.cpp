#include "baselines/clique.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <stdexcept>

namespace bes {

undirected_graph::undirected_graph(std::size_t size)
    : size_(size), words_((size + 63) / 64), bits_(size * words_, 0) {}

void undirected_graph::add_edge(std::size_t u, std::size_t v) {
  if (u == v) throw std::invalid_argument("undirected_graph: self loop");
  if (u >= size_ || v >= size_) {
    throw std::invalid_argument("undirected_graph: vertex out of range");
  }
  bits_[u * words_ + v / 64] |= std::uint64_t{1} << (v % 64);
  bits_[v * words_ + u / 64] |= std::uint64_t{1} << (u % 64);
}

bool undirected_graph::adjacent(std::size_t u, std::size_t v) const noexcept {
  return (bits_[u * words_ + v / 64] >> (v % 64)) & 1;
}

std::size_t undirected_graph::degree(std::size_t v) const noexcept {
  std::size_t count = 0;
  for (std::size_t w = 0; w < words_; ++w) {
    count += static_cast<std::size_t>(std::popcount(bits_[v * words_ + w]));
  }
  return count;
}

std::size_t undirected_graph::edge_count() const noexcept {
  std::size_t total = 0;
  for (std::size_t v = 0; v < size_; ++v) total += degree(v);
  return total / 2;
}

namespace {

using bitset_t = std::vector<std::uint64_t>;

std::size_t popcount_all(const bitset_t& bits) noexcept {
  std::size_t count = 0;
  for (std::uint64_t word : bits) {
    count += static_cast<std::size_t>(std::popcount(word));
  }
  return count;
}

bool test_bit(const bitset_t& bits, std::size_t v) noexcept {
  return (bits[v / 64] >> (v % 64)) & 1;
}

void clear_bit(bitset_t& bits, std::size_t v) noexcept {
  bits[v / 64] &= ~(std::uint64_t{1} << (v % 64));
}

void set_bit(bitset_t& bits, std::size_t v) noexcept {
  bits[v / 64] |= std::uint64_t{1} << (v % 64);
}

struct bk_state {
  const undirected_graph* graph;
  std::vector<std::size_t> best;
  std::vector<std::size_t> current;

  void intersect_row(const bitset_t& in, std::size_t v, bitset_t& out) const {
    const std::uint64_t* adj = graph->row(v);
    for (std::size_t w = 0; w < in.size(); ++w) out[w] = in[w] & adj[w];
  }

  // Bron-Kerbosch with pivoting; P = candidates, X = already explored.
  void expand(bitset_t p, bitset_t x) {
    if (popcount_all(p) == 0 && popcount_all(x) == 0) {
      if (current.size() > best.size()) best = current;
      return;
    }
    if (current.size() + popcount_all(p) <= best.size()) return;  // bound

    // Pivot: the vertex of P∪X with the most neighbours inside P.
    std::size_t pivot = 0;
    std::size_t pivot_links = 0;
    bool have_pivot = false;
    const std::size_t n = graph->size();
    for (std::size_t v = 0; v < n; ++v) {
      if (!test_bit(p, v) && !test_bit(x, v)) continue;
      const std::uint64_t* adj = graph->row(v);
      std::size_t links = 0;
      for (std::size_t w = 0; w < p.size(); ++w) {
        links += static_cast<std::size_t>(std::popcount(adj[w] & p[w]));
      }
      if (!have_pivot || links > pivot_links) {
        pivot = v;
        pivot_links = links;
        have_pivot = true;
      }
    }

    // Branch on P minus the pivot's neighbourhood.
    bitset_t branch = p;
    if (have_pivot) {
      const std::uint64_t* adj = graph->row(pivot);
      for (std::size_t w = 0; w < branch.size(); ++w) branch[w] &= ~adj[w];
    }
    for (std::size_t v = 0; v < n; ++v) {
      if (!test_bit(branch, v)) continue;
      bitset_t p_next(p.size());
      bitset_t x_next(x.size());
      intersect_row(p, v, p_next);
      intersect_row(x, v, x_next);
      current.push_back(v);
      expand(std::move(p_next), std::move(x_next));
      current.pop_back();
      clear_bit(p, v);
      set_bit(x, v);
    }
  }
};

}  // namespace

std::vector<std::size_t> max_clique_exact(const undirected_graph& graph) {
  const std::size_t words = graph.words();
  bk_state state;
  state.graph = &graph;
  bitset_t p(words, 0);
  for (std::size_t v = 0; v < graph.size(); ++v) set_bit(p, v);
  // Mask tail bits beyond size.
  if (graph.size() % 64 != 0 && words > 0) {
    p[words - 1] &= (std::uint64_t{1} << (graph.size() % 64)) - 1;
  }
  state.expand(std::move(p), bitset_t(words, 0));
  std::sort(state.best.begin(), state.best.end());
  return state.best;
}

std::vector<std::size_t> max_clique_greedy(const undirected_graph& graph) {
  std::vector<std::size_t> order(graph.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return graph.degree(a) > graph.degree(b);
  });
  std::vector<std::size_t> clique;
  for (std::size_t v : order) {
    bool fits = true;
    for (std::size_t u : clique) {
      if (!graph.adjacent(u, v)) {
        fits = false;
        break;
      }
    }
    if (fits) clique.push_back(v);
  }
  std::sort(clique.begin(), clique.end());
  return clique;
}

}  // namespace bes
