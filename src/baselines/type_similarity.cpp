#include "baselines/type_similarity.hpp"

namespace bes {

type_similarity_result type_similarity(
    const symbolic_image& query, const symbolic_image& database_image,
    const type_similarity_options& options) {
  const auto& q = query.icons();
  const auto& d = database_image.icons();

  // Vertices: symbol-compatible match candidates.
  std::vector<std::pair<std::size_t, std::size_t>> vertices;
  for (std::size_t i = 0; i < q.size(); ++i) {
    for (std::size_t j = 0; j < d.size(); ++j) {
      if (q[i].symbol == d[j].symbol) vertices.emplace_back(i, j);
    }
  }

  type_similarity_result result;
  result.graph_vertices = vertices.size();
  if (vertices.empty()) return result;

  undirected_graph graph(vertices.size());
  for (std::size_t a = 0; a < vertices.size(); ++a) {
    const auto [ia, ja] = vertices[a];
    for (std::size_t b = a + 1; b < vertices.size(); ++b) {
      const auto [ib, jb] = vertices[b];
      if (ia == ib || ja == jb) continue;  // an icon may be matched once
      const pair_relation in_query = relate(q[ia].mbr, q[ib].mbr);
      const pair_relation in_db = relate(d[ja].mbr, d[jb].mbr);
      if (compatible(options.level, in_query, in_db)) graph.add_edge(a, b);
    }
  }
  result.graph_edges = graph.edge_count();

  const bool greedy = options.greedy_above != 0 &&
                      vertices.size() > options.greedy_above;
  const std::vector<std::size_t> clique =
      greedy ? max_clique_greedy(graph) : max_clique_exact(graph);
  result.used_greedy = greedy;
  result.matched_objects = clique.size();
  result.matches.reserve(clique.size());
  for (std::size_t v : clique) result.matches.push_back(vertices[v]);
  return result;
}

}  // namespace bes
