// Chang's original 2-D String (paper §2, reference [2]): a symbolic
// projection of object reference points (we use MBR centers) along each
// axis, with '<' between distinct projections and '=' inside a group of
// coincident ones.
#pragma once

#include <string>
#include <vector>

#include "symbolic/symbolic_image.hpp"

namespace bes {

// One axis of a 2-D string: groups of symbols at the same projection
// coordinate, listed left-to-right / bottom-to-top. Symbols within a group
// are '='-related; consecutive groups are '<'-related.
struct projection_string {
  std::vector<std::vector<symbol_id>> groups;

  // Storage cost in the 2-D string sense: one symbol per object plus one
  // operator between every adjacent pair of symbols.
  [[nodiscard]] std::size_t symbol_count() const noexcept;
  [[nodiscard]] std::size_t operator_count() const noexcept;

  friend bool operator==(const projection_string&,
                         const projection_string&) = default;
};

struct two_d_string {
  projection_string u;  // x-axis
  projection_string v;  // y-axis

  friend bool operator==(const two_d_string&, const two_d_string&) = default;
};

// Builds the 2-D string from MBR centers (doubled to stay integral).
[[nodiscard]] two_d_string build_two_d_string(const symbolic_image& image);

[[nodiscard]] std::string to_text(const projection_string& s,
                                  const alphabet& names);
[[nodiscard]] std::string to_text(const two_d_string& s, const alphabet& names);

}  // namespace bes
