// Coarsenings of Allen's interval algebra that define the type-0/1/2
// similarity levels of the 2D-string literature (paper §2: "they always
// define three type of similarity, type-i (i = 0, 1, 2) ... type-1 is
// stricter then type-0, type-2 is stricter then type-1").
//
// Our concrete grading (documented in DESIGN.md §3):
//   type-2: the exact Allen relation on both axes (13 values, directional);
//   type-1: the C-string operator class (9 values, directional) — disjoint,
//           edge-to-edge, partial overlap (each with direction), contains,
//           inside, equal;
//   type-0: the coarse category (4 values, direction-free) — apart,
//           intersect, nested, same.
// Each level factors through the previous one, which yields the strictness
// nesting the papers require (property-tested).
#pragma once

#include <cstdint>
#include <string_view>

#include "geometry/allen.hpp"
#include "geometry/rect.hpp"

namespace bes {

enum class type1_class : std::uint8_t {
  disjoint_lt,  // a strictly before b
  disjoint_gt,
  edge_lt,  // a meets b
  edge_gt,
  partial_lt,  // a overlaps b from the left
  partial_gt,
  contains,  // b inside a (incl. shared begin or end)
  inside,
  equal,
};

enum class type0_class : std::uint8_t {
  apart,      // disjoint or merely touching
  intersect,  // partial interior overlap
  nested,     // one inside the other
  same,       // identical projection
};

[[nodiscard]] type1_class type1_of(allen_relation r) noexcept;
[[nodiscard]] type0_class type0_of(allen_relation r) noexcept;

// The pairwise spatial relationship of two MBRs: one Allen relation per axis.
struct pair_relation {
  allen_relation x;
  allen_relation y;

  friend bool operator==(const pair_relation&, const pair_relation&) = default;
};

[[nodiscard]] pair_relation relate(const rect& a, const rect& b) noexcept;

enum class similarity_type : std::uint8_t { type0, type1, type2 };

// True iff relations `a` and `b` agree at the given strictness level on both
// axes.
[[nodiscard]] bool compatible(similarity_type level, const pair_relation& a,
                              const pair_relation& b) noexcept;

[[nodiscard]] std::string_view to_string(type1_class c) noexcept;
[[nodiscard]] std::string_view to_string(type0_class c) noexcept;
[[nodiscard]] std::string_view to_string(similarity_type t) noexcept;

}  // namespace bes
