#include "baselines/b_string.hpp"

#include <algorithm>
#include <deque>
#include <map>

namespace bes {

std::size_t b_string_axis::storage_units() const noexcept {
  std::size_t eq = 0;
  for (bool flag : eq_with_next) eq += flag ? 1 : 0;
  return boundaries.size() + eq;
}

namespace {

b_string_axis build_axis(std::span<const icon> icons, axis which) {
  const auto events = boundary_events(icons, which);
  b_string_axis out;
  out.boundaries.reserve(events.size());
  for (const auto& e : events) out.boundaries.push_back(e.tok);
  if (!events.empty()) {
    out.eq_with_next.resize(events.size() - 1);
    for (std::size_t i = 0; i + 1 < events.size(); ++i) {
      out.eq_with_next[i] = events[i].coord == events[i + 1].coord;
    }
  }
  return out;
}

std::vector<std::pair<symbol_id, interval>> pair_up(
    const std::vector<token>& boundaries, const std::vector<int>& raw_ranks) {
  // Ranks are only meaningful up to order isomorphism; normalize to the
  // first boundary so BE-strings (whose leading edge dummy shifts every
  // rank by one) and B-strings produce identical values.
  std::vector<int> ranks = raw_ranks;
  if (!ranks.empty()) {
    const int base = ranks.front();
    for (int& r : ranks) r -= base;
  }
  // First-begin pairs with first-end per symbol (FIFO), which is consistent
  // for instances sorted by coordinate.
  std::map<symbol_id, std::deque<int>> open;
  std::vector<std::pair<symbol_id, interval>> out;
  for (std::size_t i = 0; i < boundaries.size(); ++i) {
    const token t = boundaries[i];
    if (t.kind() == boundary_kind::begin) {
      open[t.symbol()].push_back(ranks[i]);
    } else {
      auto& queue = open[t.symbol()];
      if (queue.empty()) continue;  // malformed input; skip
      const int begin_rank = queue.front();
      queue.pop_front();
      // Ranks are order-isomorphic to the original coordinates, so [begin
      // rank, end rank) preserves every Allen relation of the real MBRs.
      out.emplace_back(t.symbol(), interval{begin_rank, ranks[i]});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

b_string2d build_b_string(const symbolic_image& image) {
  return b_string2d{build_axis(image.icons(), axis::x),
                    build_axis(image.icons(), axis::y)};
}

std::string to_text(const b_string_axis& s, const alphabet& names) {
  std::string out;
  for (std::size_t i = 0; i < s.boundaries.size(); ++i) {
    if (i != 0) {
      out += s.eq_with_next[i - 1] ? " = " : " ";
    }
    const token t = s.boundaries[i];
    out += names.name_of(t.symbol());
    out += (t.kind() == boundary_kind::begin) ? ":b" : ":e";
  }
  return out;
}

std::vector<std::pair<symbol_id, interval>> rank_intervals(
    const axis_string& s) {
  std::vector<token> boundaries;
  std::vector<int> ranks;
  int rank = 0;
  for (token t : s.tokens()) {
    if (t.is_dummy()) {
      ++rank;
      continue;
    }
    boundaries.push_back(t);
    ranks.push_back(rank);
  }
  return pair_up(boundaries, ranks);
}

std::vector<std::pair<symbol_id, interval>> rank_intervals(
    const b_string_axis& s) {
  std::vector<int> ranks(s.boundaries.size(), 0);
  for (std::size_t i = 1; i < s.boundaries.size(); ++i) {
    ranks[i] = ranks[i - 1] + (s.eq_with_next[i - 1] ? 0 : 1);
  }
  return pair_up(s.boundaries, ranks);
}

}  // namespace bes
