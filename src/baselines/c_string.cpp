#include "baselines/c_string.hpp"

#include <algorithm>
#include <limits>

namespace bes {

namespace {

// A candidate cut line: the end bound of an object, paired with its begin
// bound so the "leading object" test (A.lo < piece.lo < A.hi < piece.hi)
// is a scan.
struct end_line {
  int end;
  int begin;
  friend bool operator<(const end_line& a, const end_line& b) noexcept {
    return a.end < b.end;
  }
};

}  // namespace

std::vector<segment> c_string_cut(std::span<const icon> icons, axis which) {
  std::vector<end_line> ends;
  ends.reserve(icons.size());
  for (const icon& obj : icons) {
    const interval side = which == axis::x ? obj.mbr.x : obj.mbr.y;
    ends.push_back(end_line{side.hi, side.lo});
  }
  std::sort(ends.begin(), ends.end());

  std::vector<segment> out;
  for (std::size_t index = 0; index < icons.size(); ++index) {
    const icon& obj = icons[index];
    const interval side = which == axis::x ? obj.mbr.x : obj.mbr.y;
    int start = side.lo;
    // Repeatedly cut the remainder [start, side.hi) at the smallest end
    // bound e of a leading object A: A.lo < start < e < side.hi.
    for (;;) {
      int cut_at = std::numeric_limits<int>::max();
      auto it = std::upper_bound(ends.begin(), ends.end(),
                                 end_line{start, std::numeric_limits<int>::min()});
      for (; it != ends.end() && it->end < side.hi; ++it) {
        if (it->begin < start) {
          cut_at = it->end;
          break;
        }
      }
      if (cut_at == std::numeric_limits<int>::max()) break;
      out.push_back(segment{index, obj.symbol, interval{start, cut_at}});
      start = cut_at;
    }
    out.push_back(segment{index, obj.symbol, interval{start, side.hi}});
  }
  return out;
}

std::size_t c_string_segment_count(const symbolic_image& image) {
  return c_string_cut(image.icons(), axis::x).size() +
         c_string_cut(image.icons(), axis::y).size();
}

}  // namespace bes
