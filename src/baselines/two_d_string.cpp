#include "baselines/two_d_string.hpp"

#include <algorithm>

namespace bes {

std::size_t projection_string::symbol_count() const noexcept {
  std::size_t count = 0;
  for (const auto& group : groups) count += group.size();
  return count;
}

std::size_t projection_string::operator_count() const noexcept {
  const std::size_t symbols = symbol_count();
  return symbols == 0 ? 0 : symbols - 1;
}

namespace {

projection_string project(const symbolic_image& image, bool x_axis) {
  // (2*center, symbol) sorted; equal centers collapse into one group.
  std::vector<std::pair<int, symbol_id>> keyed;
  keyed.reserve(image.size());
  for (const icon& obj : image.icons()) {
    const interval side = x_axis ? obj.mbr.x : obj.mbr.y;
    keyed.emplace_back(side.mid2(), obj.symbol);
  }
  std::sort(keyed.begin(), keyed.end());
  projection_string out;
  for (std::size_t i = 0; i < keyed.size();) {
    std::vector<symbol_id> group;
    const int coord = keyed[i].first;
    while (i < keyed.size() && keyed[i].first == coord) {
      group.push_back(keyed[i].second);
      ++i;
    }
    out.groups.push_back(std::move(group));
  }
  return out;
}

}  // namespace

two_d_string build_two_d_string(const symbolic_image& image) {
  return two_d_string{project(image, true), project(image, false)};
}

std::string to_text(const projection_string& s, const alphabet& names) {
  std::string out;
  for (std::size_t g = 0; g < s.groups.size(); ++g) {
    if (g != 0) out += " < ";
    for (std::size_t k = 0; k < s.groups[g].size(); ++k) {
      if (k != 0) out += " = ";
      out += names.name_of(s.groups[g][k]);
    }
  }
  return out;
}

std::string to_text(const two_d_string& s, const alphabet& names) {
  return "( " + to_text(s.u, names) + " , " + to_text(s.v, names) + " )";
}

}  // namespace bes
