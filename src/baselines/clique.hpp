// Maximum clique ("maximum complete subgraph") — the NP-complete core of the
// type-i similarity assessment the 2D-string family relies on (paper §2:
// "finding maximum complete subgraph is an NP-complete problem ... It is not
// suitable for large number of icon objects").
//
// Exact solver: Bron-Kerbosch with pivoting over packed bitsets, plus a
// best-so-far bound. Greedy solver: highest-degree-first heuristic used when
// the exact search would blow up.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bes {

// A simple undirected graph over vertices [0, size) with a packed adjacency
// matrix; built once, then queried.
class undirected_graph {
 public:
  explicit undirected_graph(std::size_t size);

  // Adds the edge {u, v}. Self-loops are rejected with std::invalid_argument.
  void add_edge(std::size_t u, std::size_t v);

  [[nodiscard]] bool adjacent(std::size_t u, std::size_t v) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t degree(std::size_t v) const noexcept;
  [[nodiscard]] std::size_t edge_count() const noexcept;

  // The adjacency row of v as packed 64-bit words (words() per row).
  [[nodiscard]] const std::uint64_t* row(std::size_t v) const noexcept {
    return bits_.data() + v * words_;
  }
  [[nodiscard]] std::size_t words() const noexcept { return words_; }

 private:
  std::size_t size_;
  std::size_t words_;
  std::vector<std::uint64_t> bits_;
};

// Vertices of one maximum clique (exact). Exponential worst case; intended
// for graphs up to a few hundred vertices as produced by type-i similarity
// on realistic scenes.
[[nodiscard]] std::vector<std::size_t> max_clique_exact(
    const undirected_graph& graph);

// A maximal (not necessarily maximum) clique by greedy degree ordering.
[[nodiscard]] std::vector<std::size_t> max_clique_greedy(
    const undirected_graph& graph);

}  // namespace bes
