// 2D G-string cutting (paper §2, reference [3]): every object is cut along
// the MBR boundary lines of every other object that crosses it, so the
// symbolic string only ever needs the global operator set. The price is the
// segment blow-up this module exists to measure (experiment E2).
#pragma once

#include <cstddef>
#include <vector>

#include "core/encoder.hpp"
#include "symbolic/symbolic_image.hpp"

namespace bes {

// One axis-aligned piece of a (possibly cut) object.
struct segment {
  std::size_t owner = 0;  // index of the original icon
  symbol_id symbol = 0;
  interval piece;

  friend bool operator==(const segment&, const segment&) = default;
};

// All pieces on one axis after G-string cutting, ordered by owner then
// coordinate. An object crossed inside its interval by k boundary lines of
// other objects yields k+1 pieces.
[[nodiscard]] std::vector<segment> g_string_cut(std::span<const icon> icons,
                                                axis which);

// Total pieces over both axes — the G-string storage proxy used by E2.
[[nodiscard]] std::size_t g_string_segment_count(const symbolic_image& image);

}  // namespace bes
