// 2D C-string cutting (paper §2, references [7][10]): minimizes cutting by
// keeping the leading object whole and cutting only the trailing partner of
// a partial overlap, at the end bound of the leading object. Still O(n^2)
// pieces in the worst case (paper: "there will be O(n^2) cutting objects").
//
// Faithfulness note: we implement the Lee-Hsu cutting RULE (partial overlap
// b1 < b2 < e1 < e2 cuts the trailing object at e1, recursively on the
// remainder); the full C-string operator bookkeeping is not needed for the
// storage/time experiments this module backs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "baselines/g_string.hpp"

namespace bes {

// All pieces on one axis after C-string cutting, ordered by owner then
// coordinate. Objects that are not partially overlapped stay whole.
[[nodiscard]] std::vector<segment> c_string_cut(std::span<const icon> icons,
                                                axis which);

// Total pieces over both axes — the C-string storage proxy used by E2.
[[nodiscard]] std::size_t c_string_segment_count(const symbolic_image& image);

}  // namespace bes
