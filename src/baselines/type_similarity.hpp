// Type-i similarity assessment of the 2D-string family (paper §2):
//
//   "they examine all spatial relationship pairs between any two objects in
//    query image versus pairs in an image of database. Build type-i subgraph
//    if the pair satisfies type-i constraints. After examining, they find
//    the maximum complete subgraph for each type-i graph. The number of
//    objects in maximum complete subgraph is the similarity."
//
// Vertices are candidate object matches (query icon i <-> db icon j, same
// symbol); two matches are connected iff they use distinct icons on both
// sides and the pairwise spatial relations agree at the chosen type level on
// both axes. The clique therefore selects a consistent common sub-picture.
// Building the graph is O(m^2 n^2) relation comparisons; solving it is
// NP-complete — exactly the cost the BE-string LCS replaces (experiment E5).
#pragma once

#include <cstddef>
#include <vector>

#include "baselines/clique.hpp"
#include "baselines/relation_class.hpp"
#include "symbolic/symbolic_image.hpp"

namespace bes {

struct type_similarity_options {
  similarity_type level = similarity_type::type1;
  // Fall back to the greedy solver above this vertex count (0 = never).
  std::size_t greedy_above = 0;
};

struct type_similarity_result {
  // Number of objects in the maximum complete subgraph — the similarity.
  std::size_t matched_objects = 0;
  // The matching realizing it: (query icon index, db icon index) pairs.
  std::vector<std::pair<std::size_t, std::size_t>> matches;
  // Diagnostics for the benchmarks.
  std::size_t graph_vertices = 0;
  std::size_t graph_edges = 0;
  bool used_greedy = false;
};

[[nodiscard]] type_similarity_result type_similarity(
    const symbolic_image& query, const symbolic_image& database_image,
    const type_similarity_options& options = {});

}  // namespace bes
