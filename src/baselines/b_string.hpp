// 2D B-string (paper §2, reference [8]): the closest ancestor of the
// BE-string. Objects are represented by begin/end boundary symbols with NO
// cutting; the single spatial operator '=' marks adjacent boundaries whose
// projections are IDENTICAL. (The BE-string inverts this: its dummy object E
// marks adjacent projections that are DISTINCT.)
#pragma once

#include <string>
#include <vector>

#include "core/be_string.hpp"
#include "core/encoder.hpp"
#include "symbolic/symbolic_image.hpp"

namespace bes {

// One axis of a 2D B-string: 2n boundary tokens plus equality marks.
// eq_with_next[i] is true iff boundary i and i+1 project onto the same
// coordinate (the '=' operator of the model).
struct b_string_axis {
  std::vector<token> boundaries;  // no dummies
  std::vector<bool> eq_with_next;  // size = boundaries.size() - 1 (or 0)

  // Storage cost: one unit per boundary symbol plus one per '=' operator.
  [[nodiscard]] std::size_t storage_units() const noexcept;

  friend bool operator==(const b_string_axis&, const b_string_axis&) = default;
};

struct b_string2d {
  b_string_axis x;
  b_string_axis y;

  [[nodiscard]] std::size_t storage_units() const noexcept {
    return x.storage_units() + y.storage_units();
  }

  friend bool operator==(const b_string2d&, const b_string2d&) = default;
};

[[nodiscard]] b_string2d build_b_string(const symbolic_image& image);

[[nodiscard]] std::string to_text(const b_string_axis& s,
                                  const alphabet& names);

// Rank-space intervals of the object instances encoded in an axis string —
// shared by B- and BE-strings (for BE-strings, ranks advance at dummies; for
// B-strings, at missing '='). Instances of the same symbol are paired
// first-begin-to-first-end. Used to show both models carry identical
// relational information (tests).
[[nodiscard]] std::vector<std::pair<symbol_id, interval>> rank_intervals(
    const axis_string& s);
[[nodiscard]] std::vector<std::pair<symbol_id, interval>> rank_intervals(
    const b_string_axis& s);

}  // namespace bes
