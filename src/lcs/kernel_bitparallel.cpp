// Bit-parallel constrained-LCS length kernel: 64 DP cells per word.
//
// Let F[i][j] = max(solid[i][j], gap[i][j]) be the combined value of the
// exact two-layer DP (kernel_scalar.cpp). Three provable facts turn F into
// a classic Crochemore/Iliopoulos/Pinzon bit-vector LCS:
//
//  (1) Diagonal step lemma: F[i][j] <= F[i-1][j-1] + 1 for ALL cells. (Any
//      constrained common subsequence of the (i, j) prefixes either omits
//      q_i, omits d_j, or matches them to each other as its final pair;
//      each case is bounded by a neighbour + 1, and steps along a row or
//      column are at most 1 by the same argument.)
//  (2) A boundary match always achieves it: solid gets the candidate
//      F[i-1][j-1] + 1, so F[i][j] = F[i-1][j-1] + 1 exactly — and the
//      cell's best ends in a boundary (g = 0 below).
//  (3) A dummy match contributes solid[i-1][j-1] + 1, which equals
//      F[i-1][j-1] + 1 exactly when the diagonal cell's best is achievable
//      ending in a boundary, and is dominated by the up-neighbour
//      otherwise (gap - solid <= 1 everywhere).
//
// So F obeys the UNCONSTRAINED LCS recurrence over an *effective* match
// mask: boundary matches always count; a dummy match counts iff the
// diagonal cell has g = 0, where g[i][j] = F[i][j] - solid[i][j] in {0, 1}
// flags cells whose best is only achievable ending in a dummy. That is the
// paper's no-two-adjacent-dummies constraint folded into a second carry
// mask over the match vector — the bit-row mirror of the solid/gap layers
// of the scalar rolling DP.
//
// Row state, one bit per column (word-packed, bit j-1 <-> column j):
//   V   the CIPR row profile: bit 0 marks an increment position
//       (F[i][j] = F[i][j-1] + 1); F[i][n] = number of zero bits.
//       Update per row: U = V & Meff; V' = (V + U) | (V & ~Meff).
//   g   the ends-in-dummy-only flags of the current row.
//   R'  the previous row's increment positions (~V before the update).
//
// After the V update, with R = ~V' (current increments), the column steps
// C (c_j = F[i][j] - F[i-1][j]) follow c_j = !r'_j & (r_j | c_{j-1}).
// The new g row is the complement of the "solid reaches F" set
// s_j = a_j | (!r_j & s_{j-1}): seeds a are boundary-match cells (fact 2)
// and cells with c_j = 0 whose up-neighbour had g = 0, and zero-ness
// flows right while F stays flat. Both are instances of the first-order
// chain x_j = P_j & (inj_j | x_{j-1}) — the carry recurrence of binary
// addition with generate = P & inj and propagate = P, so one addition
// P + (inj & P) computes a whole word of it (prop_chain below; the
// carry-out feeds the next word). Note the naive "smear seeds with
// T = P + (A << 1)" trick is WRONG here: a seed injected onto a P = 0
// barrier position that simultaneously receives a carry produces
// 0 + 1 + 1 and re-launches the carry past the barrier.
//
// The kernel computes the EXACT two-layer optimum and serves both the
// signed and exact lcs_kernel entries: the paper's signed heuristic equals
// the exact optimum on every input ever tested (fidelity note F1, enforced
// continuously by tests/lcs_fuzz_test.cpp); if a divergence is ever found,
// the bit-parallel answer is the correct constrained optimum and the
// fixture-pinning protocol in that test applies.
//
// The early-exit band is bit-identical to the scalar exact kernel's: F is
// row-monotone, so the row maximum is F[i][n] = popcount of zeros in V,
// and the bail row and returned admissible bound match exactly.
#include <algorithm>
#include <bit>

#include "lcs/be_lcs.hpp"
#include "lcs/kernel_detail.hpp"

namespace bes::lcs_detail {

namespace {

using u64 = std::uint64_t;

// a + b + cin -> sum, with cin/carry-out in {0, 1}.
inline u64 add_carry(u64 a, u64 b, u64& carry) noexcept {
  const u64 s1 = a + b;
  const u64 c1 = static_cast<u64>(s1 < a);
  const u64 s2 = s1 + carry;
  carry = c1 | static_cast<u64>(s2 < s1);
  return s2;
}

// One word of the first-order chain x_j = P_j & (inj_j | x_{j-1}). This is
// the carry recurrence of binary addition with generate = p & inj and
// propagate = p, so the whole word is one addition p + (inj & p); the
// full-adder identity sum ^ p ^ (inj & p) recovers the carry INTO each bit,
// i.e. x_{j-1}, hence the >> 1. `carry` threads x_63 across words.
inline u64 prop_chain(u64 p, u64 inj, u64& carry) noexcept {
  const u64 y = inj & p;
  const u64 s1 = p + y;
  const u64 c1 = static_cast<u64>(s1 < p);
  const u64 sum = s1 + carry;
  const u64 out = c1 | static_cast<u64>(sum < s1);
  const u64 cin = sum ^ p ^ y;
  carry = out;
  return (cin >> 1) | (out << 63);
}

// Match-mask table: open-addressing map from packed token keys to
// word-packed column masks, rebuilt per (rows, cols) pair in flat context
// scratch — no per-pair allocation once the context has warmed up.
struct mask_table {
  u64* keys;          // cap entries, 0 = empty
  u64* masks;         // cap * words bits
  const u64* zero;    // words of zeros, for absent tokens
  std::size_t cap;    // power of two
  std::size_t words;

  [[nodiscard]] std::size_t slot_of(u64 key) const noexcept {
    std::size_t s =
        static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >>
                                 (64 - std::countr_zero(cap)));
    while (keys[s] != 0 && keys[s] != key) s = (s + 1) & (cap - 1);
    return s;
  }

  [[nodiscard]] const u64* find(u64 key) const noexcept {
    const std::size_t s = slot_of(key);
    return keys[s] == key ? masks + s * words : zero;
  }
};

template <bool banded>
std::size_t bitparallel_run(std::span<const token> rows,
                            std::span<const token> cols,
                            std::size_t min_needed, lcs_context& ctx) {
  const std::size_t r_count = rows.size();
  const std::size_t c_count = cols.size();
  if (r_count == 0 || c_count == 0) return 0;
  if (banded && min_needed > c_count) return c_count;  // lcs <= min(m, n)

  const std::size_t words = (c_count + 63) / 64;
  const std::size_t cap = std::bit_ceil(std::max<std::size_t>(2 * c_count, 4));
  // Scratch layout: V | g | R' | zero-mask | keys | masks.
  std::span<u64> scratch =
      ctx.word_cells((4 + cap) * words + cap);
  u64* v = scratch.data();
  u64* g = v + words;
  u64* rp = g + words;
  u64* zero = rp + words;
  mask_table table{zero + words, zero + words + cap, zero, cap, words};

  // Row 0: no increments (V all ones, tail included so the tail never
  // produces phantom zeros), no steps, nothing ends in a dummy.
  std::fill(v, v + words, ~u64{0});
  std::fill(g, g + 3 * words, u64{0});  // g, R', zero-mask
  std::fill(table.keys, table.keys + cap, u64{0});

  for (std::size_t j = 0; j < c_count; ++j) {
    const u64 key = token_key(cols[j]);
    const std::size_t s = table.slot_of(key);
    if (table.keys[s] == 0) {
      table.keys[s] = key;
      std::fill(table.masks + s * words, table.masks + (s + 1) * words,
                u64{0});
    }
    table.masks[s * words + j / 64] |= u64{1} << (j % 64);
  }
  const u64* dummy_mask = table.find(token_key(token::dummy()));
  const u64 tail_mask = c_count % 64 == 0
                            ? ~u64{0}
                            : (u64{1} << (c_count % 64)) - 1;

  for (std::size_t i = 1; i <= r_count; ++i) {
    const token qi = rows[i - 1];
    const bool dummy_row = qi.is_dummy();
    const u64* m_row = dummy_row ? dummy_mask : table.find(token_key(qi));
    // Word-loop carries: g << 1, the V+U add, the two propagation chains,
    // and the seed << 1 shift feeding the second chain.
    u64 sh_g = 0, add_v = 0, add_c = 0, sh_z = 0, add_z = 0;
    [[maybe_unused]] std::size_t row_zeros = 0;
    for (std::size_t k = 0; k < words; ++k) {
      const u64 m = m_row[k];
      const u64 g_prev = g[k];
      const u64 v_prev = v[k];
      const u64 r_prev = rp[k];

      // Effective match mask: dummy matches are vetoed where the diagonal
      // cell (bit shifted up by one) only reaches F ending in a dummy.
      const u64 g_diag = (g_prev << 1) | sh_g;
      sh_g = g_prev >> 63;
      const u64 meff = dummy_row ? m & ~g_diag : m;

      // CIPR profile update.
      const u64 u = v_prev & meff;
      const u64 v_new = add_carry(v_prev, u, add_v) | (v_prev & ~meff);
      v[k] = v_new;
      const u64 r = ~v_new;  // tail bits of v_new stay 1, so r's tail is 0
      if constexpr (banded) {
        row_zeros += static_cast<std::size_t>(std::popcount(r));
      }

      // Column steps: c_j = !r'_j & (r_j | c_{j-1}).
      const u64 c_col = prop_chain(~r_prev, r, add_c);

      // New g row: cells where solid CANNOT reach F are the complement of
      // the seed-and-propagate set s_j = a_j | (!r_j & s_{j-1}) — seeds are
      // boundary matches plus cells with a flat column step over a g = 0
      // up-neighbour; zero-ness flows right through flat row steps.
      const u64 bm = dummy_row ? u64{0} : m;
      const u64 a_z = bm | (~c_col & ~g_prev);
      const u64 zsh = (a_z << 1) | sh_z;
      sh_z = a_z >> 63;
      const u64 solid_ok = a_z | prop_chain(v_new, zsh, add_z);
      const u64 mask = k + 1 == words ? tail_mask : ~u64{0};
      g[k] = ~solid_ok & mask;
      rp[k] = r;
    }
    if constexpr (banded) {
      const std::size_t achievable = row_zeros + (r_count - i);
      if (achievable < min_needed) return achievable;
    }
  }

  std::size_t length = 0;
  for (std::size_t k = 0; k < words; ++k) {
    length += static_cast<std::size_t>(std::popcount(~v[k]));
  }
  return length;
}

}  // namespace

std::size_t bitparallel_exact(std::span<const token> rows,
                              std::span<const token> cols,
                              std::size_t min_needed, lcs_context& ctx) {
  return min_needed == 0
             ? bitparallel_run<false>(rows, cols, 0, ctx)
             : bitparallel_run<true>(rows, cols, min_needed, ctx);
}

}  // namespace bes::lcs_detail
