#include "lcs/be_lcs.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace bes {

std::span<std::int32_t> lcs_context::int_cells(std::size_t cells) {
  if (ints_.size() < cells) ints_.resize(cells);
  return std::span<std::int32_t>(ints_.data(), cells);
}

std::span<double> lcs_context::real_cells(std::size_t cells) {
  if (reals_.size() < cells) reals_.resize(cells);
  return std::span<double>(reals_.data(), cells);
}

lcs_context& lcs_context::thread_local_instance() {
  thread_local lcs_context ctx;
  return ctx;
}

be_lcs_table be_lcs_fill(std::span<const token> q, std::span<const token> d) {
  const std::size_t m = q.size();
  const std::size_t n = d.size();
  be_lcs_table w(m, n);
  // First row and column are zero-initialized (paper lines 7-11).
  for (std::size_t i = 1; i <= m; ++i) {
    const token qi = q[i - 1];
    for (std::size_t j = 1; j <= n; ++j) {
      // Copy the up or left cell with the larger absolute value, sign
      // included (paper lines 16-19; up wins ties).
      const std::int32_t up = w.at(i - 1, j);
      const std::int32_t left = w.at(i, j - 1);
      std::int32_t value = std::abs(up) >= std::abs(left) ? up : left;
      // A symbol match may only extend the diagonal when it is a boundary
      // symbol, or a dummy whose diagonal predecessor does not already end
      // in a dummy (paper line 21); it must strictly improve (line 23).
      if (qi == d[j - 1]) {
        const std::int32_t diag = w.at(i - 1, j - 1);
        if (!qi.is_dummy() || diag >= 0) {
          const std::int32_t extended = std::abs(diag) + 1;
          if (extended > std::abs(value)) {
            value = qi.is_dummy() ? -extended : extended;
          }
        }
      }
      w.at(i, j) = value;
    }
  }
  return w;
}

namespace {

// The rolling form of Algorithm 2: cell (i, j) reads only row i-1 and the
// cells of row i already written, so two rows replace the full table. Rows
// run along `rows` and columns along `cols`; callers orient `cols` as the
// shorter string, making the scratch O(min(m, n)). In the banded
// instantiation the loop bails once the best still-achievable final value —
// the row maximum plus one per remaining row (each row extends any
// subsequence by at most one token) — falls below min_needed, returning
// that admissible bound; the unbanded instantiation compiles the per-cell
// max tracking out of the hot loop entirely.
template <bool banded>
std::size_t signed_rolling(std::span<const token> rows,
                           std::span<const token> cols,
                           std::size_t min_needed, lcs_context& ctx) {
  const std::size_t r_count = rows.size();
  const std::size_t c_count = cols.size();
  if (r_count == 0 || c_count == 0) return 0;
  if (banded && min_needed > c_count) return c_count;  // lcs <= min(m, n)
  const std::size_t width = c_count + 1;
  std::span<std::int32_t> scratch = ctx.int_cells(2 * width);
  std::int32_t* prev = scratch.data();
  std::int32_t* cur = scratch.data() + width;
  std::fill(prev, prev + width, 0);
  cur[0] = 0;
  for (std::size_t i = 1; i <= r_count; ++i) {
    const token qi = rows[i - 1];
    [[maybe_unused]] std::int32_t row_max = 0;
    for (std::size_t j = 1; j <= c_count; ++j) {
      const std::int32_t up = prev[j];
      const std::int32_t left = cur[j - 1];
      std::int32_t value = std::abs(up) >= std::abs(left) ? up : left;
      if (qi == cols[j - 1]) {
        const std::int32_t diag = prev[j - 1];
        if (!qi.is_dummy() || diag >= 0) {
          const std::int32_t extended = std::abs(diag) + 1;
          if (extended > std::abs(value)) {
            value = qi.is_dummy() ? -extended : extended;
          }
        }
      }
      cur[j] = value;
      if constexpr (banded) {
        row_max = std::max(row_max, std::abs(value));
      }
    }
    if constexpr (banded) {
      const std::size_t achievable =
          static_cast<std::size_t>(row_max) + (r_count - i);
      if (achievable < min_needed) return achievable;
    }
    std::swap(prev, cur);
  }
  return static_cast<std::size_t>(std::abs(prev[c_count]));
}

// Rolling form of the exact two-layer DP: four rows (previous/current for
// the solid and gap layers) in one scratch block.
template <bool banded>
std::size_t exact_rolling(std::span<const token> rows,
                          std::span<const token> cols, std::size_t min_needed,
                          lcs_context& ctx) {
  const std::size_t r_count = rows.size();
  const std::size_t c_count = cols.size();
  if (r_count == 0 || c_count == 0) return 0;
  if (banded && min_needed > c_count) return c_count;
  const std::size_t width = c_count + 1;
  std::span<std::int32_t> scratch = ctx.int_cells(4 * width);
  std::int32_t* prev_solid = scratch.data();
  std::int32_t* prev_gap = scratch.data() + width;
  std::int32_t* cur_solid = scratch.data() + 2 * width;
  std::int32_t* cur_gap = scratch.data() + 3 * width;
  std::fill(prev_solid, prev_solid + 2 * width, 0);  // both prev layers
  cur_solid[0] = 0;
  cur_gap[0] = 0;
  for (std::size_t i = 1; i <= r_count; ++i) {
    const token qi = rows[i - 1];
    [[maybe_unused]] std::int32_t row_max = 0;
    for (std::size_t j = 1; j <= c_count; ++j) {
      std::int32_t best_solid = std::max(prev_solid[j], cur_solid[j - 1]);
      std::int32_t best_gap = std::max(prev_gap[j], cur_gap[j - 1]);
      if (qi == cols[j - 1]) {
        if (qi.is_dummy()) {
          best_gap = std::max(best_gap, prev_solid[j - 1] + 1);
        } else {
          best_solid = std::max(
              best_solid, std::max(prev_solid[j - 1], prev_gap[j - 1]) + 1);
        }
      }
      cur_solid[j] = best_solid;
      cur_gap[j] = best_gap;
      if constexpr (banded) {
        row_max = std::max(row_max, std::max(best_solid, best_gap));
      }
    }
    if constexpr (banded) {
      const std::size_t achievable =
          static_cast<std::size_t>(row_max) + (r_count - i);
      if (achievable < min_needed) return achievable;
    }
    std::swap(prev_solid, cur_solid);
    std::swap(prev_gap, cur_gap);
  }
  return static_cast<std::size_t>(
      std::max(prev_solid[c_count], prev_gap[c_count]));
}

// Orients the rolling kernels so the columns run along the shorter string.
// Both DPs are argument-symmetric: the exact DP provably (the constrained
// LCS is a symmetric function) and the signed DP empirically, fuzzed against
// both orientations and the exact DP in tests/lcs_fuzz_test.cpp.
template <typename Kernel>
std::size_t shorter_cols(std::span<const token> q, std::span<const token> d,
                         std::size_t min_needed, lcs_context& ctx,
                         Kernel kernel) {
  return q.size() >= d.size() ? kernel(q, d, min_needed, ctx)
                              : kernel(d, q, min_needed, ctx);
}

}  // namespace

std::size_t be_lcs_length(std::span<const token> q, std::span<const token> d) {
  return be_lcs_length(q, d, lcs_context::thread_local_instance());
}

std::size_t be_lcs_length(std::span<const token> q, std::span<const token> d,
                          lcs_context& ctx) {
  return shorter_cols(q, d, 0, ctx, signed_rolling<false>);
}

std::size_t be_lcs_length_bounded(std::span<const token> q,
                                  std::span<const token> d,
                                  std::size_t min_needed, lcs_context& ctx) {
  if (min_needed == 0) return be_lcs_length(q, d, ctx);
  return shorter_cols(q, d, min_needed, ctx, signed_rolling<true>);
}

std::size_t be_lcs_length_exact(std::span<const token> q,
                                std::span<const token> d) {
  return be_lcs_length_exact(q, d, lcs_context::thread_local_instance());
}

std::size_t be_lcs_length_exact(std::span<const token> q,
                                std::span<const token> d, lcs_context& ctx) {
  return shorter_cols(q, d, 0, ctx, exact_rolling<false>);
}

std::size_t be_lcs_length_exact_bounded(std::span<const token> q,
                                        std::span<const token> d,
                                        std::size_t min_needed,
                                        lcs_context& ctx) {
  if (min_needed == 0) return be_lcs_length_exact(q, d, ctx);
  return shorter_cols(q, d, min_needed, ctx, exact_rolling<true>);
}

std::vector<token> be_lcs_string(std::span<const token> q,
                                 const be_lcs_table& w) {
  if (w.rows() != q.size() + 1) {
    throw std::invalid_argument("be_lcs_string: table does not match q");
  }
  std::vector<token> out;
  std::size_t i = w.rows() - 1;
  std::size_t j = w.cols() - 1;
  // Paper Algorithm 3, iteratively: prefer up, then left; a cell whose
  // absolute value exceeds both neighbours was set by a diagonal match and
  // contributes q[i-1] to the subsequence.
  while (i > 0 && j > 0) {
    const std::int32_t here = std::abs(w.at(i, j));
    if (here == std::abs(w.at(i - 1, j))) {
      --i;
    } else if (here == std::abs(w.at(i, j - 1))) {
      --j;
    } else {
      out.push_back(q[i - 1]);
      --i;
      --j;
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<token> be_lcs_string(std::span<const token> q,
                                 std::span<const token> d) {
  return be_lcs_string(q, be_lcs_fill(q, d));
}

namespace {

// Rolling form of the weighted two-layer DP. No early-exit band: nothing on
// the query path thresholds weighted scores.
double weighted_rolling(std::span<const token> rows,
                        std::span<const token> cols, double dummy_weight,
                        lcs_context& ctx) {
  const std::size_t r_count = rows.size();
  const std::size_t c_count = cols.size();
  if (r_count == 0 || c_count == 0) return 0.0;
  const std::size_t width = c_count + 1;
  std::span<double> scratch = ctx.real_cells(4 * width);
  double* prev_solid = scratch.data();
  double* prev_gap = scratch.data() + width;
  double* cur_solid = scratch.data() + 2 * width;
  double* cur_gap = scratch.data() + 3 * width;
  std::fill(prev_solid, prev_solid + 2 * width, 0.0);
  cur_solid[0] = 0.0;
  cur_gap[0] = 0.0;
  for (std::size_t i = 1; i <= r_count; ++i) {
    const token qi = rows[i - 1];
    for (std::size_t j = 1; j <= c_count; ++j) {
      double best_solid = std::max(prev_solid[j], cur_solid[j - 1]);
      double best_gap = std::max(prev_gap[j], cur_gap[j - 1]);
      if (qi == cols[j - 1]) {
        if (qi.is_dummy()) {
          best_gap = std::max(best_gap, prev_solid[j - 1] + dummy_weight);
        } else {
          best_solid = std::max(
              best_solid, std::max(prev_solid[j - 1], prev_gap[j - 1]) + 1.0);
        }
      }
      cur_solid[j] = best_solid;
      cur_gap[j] = best_gap;
    }
    std::swap(prev_solid, cur_solid);
    std::swap(prev_gap, cur_gap);
  }
  return std::max(prev_solid[c_count], prev_gap[c_count]);
}

}  // namespace

double be_lcs_weighted(std::span<const token> q, std::span<const token> d,
                       double dummy_weight) {
  return be_lcs_weighted(q, d, dummy_weight,
                         lcs_context::thread_local_instance());
}

double be_lcs_weighted(std::span<const token> q, std::span<const token> d,
                       double dummy_weight, lcs_context& ctx) {
  if (dummy_weight < 0.0 || dummy_weight > 1.0) {
    throw std::invalid_argument("be_lcs_weighted: weight must be in [0, 1]");
  }
  return q.size() >= d.size() ? weighted_rolling(q, d, dummy_weight, ctx)
                              : weighted_rolling(d, q, dummy_weight, ctx);
}

}  // namespace bes
