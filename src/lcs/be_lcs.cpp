#include "lcs/be_lcs.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "lcs/kernel.hpp"

namespace bes {

std::span<std::int32_t> lcs_context::int_cells(std::size_t cells) {
  if (ints_.size() < cells) ints_.resize(cells);
  return std::span<std::int32_t>(ints_.data(), cells);
}

std::span<double> lcs_context::real_cells(std::size_t cells) {
  if (reals_.size() < cells) reals_.resize(cells);
  return std::span<double>(reals_.data(), cells);
}

std::span<std::uint64_t> lcs_context::word_cells(std::size_t cells) {
  if (words_.size() < cells) words_.resize(cells);
  return std::span<std::uint64_t>(words_.data(), cells);
}

lcs_context::lcs_context() : kernel_(&active_lcs_kernel()) {}

lcs_context::lcs_context(const lcs_kernel& kernel) : kernel_(&kernel) {}

lcs_context& lcs_context::thread_local_instance() {
  thread_local lcs_context ctx;
  return ctx;
}

be_lcs_table be_lcs_fill(std::span<const token> q, std::span<const token> d) {
  const std::size_t m = q.size();
  const std::size_t n = d.size();
  be_lcs_table w(m, n);
  // First row and column are zero-initialized (paper lines 7-11).
  for (std::size_t i = 1; i <= m; ++i) {
    const token qi = q[i - 1];
    for (std::size_t j = 1; j <= n; ++j) {
      // Copy the up or left cell with the larger absolute value, sign
      // included (paper lines 16-19; up wins ties).
      const std::int32_t up = w.at(i - 1, j);
      const std::int32_t left = w.at(i, j - 1);
      std::int32_t value = std::abs(up) >= std::abs(left) ? up : left;
      // A symbol match may only extend the diagonal when it is a boundary
      // symbol, or a dummy whose diagonal predecessor does not already end
      // in a dummy (paper line 21); it must strictly improve (line 23).
      if (qi == d[j - 1]) {
        const std::int32_t diag = w.at(i - 1, j - 1);
        if (!qi.is_dummy() || diag >= 0) {
          const std::int32_t extended = std::abs(diag) + 1;
          if (extended > std::abs(value)) {
            value = qi.is_dummy() ? -extended : extended;
          }
        }
      }
      w.at(i, j) = value;
    }
  }
  return w;
}

namespace {

// Orients the kernels so the columns run along the shorter string. Both DPs
// are argument-symmetric: the exact DP provably (the constrained LCS is a
// symmetric function) and the signed DP empirically, fuzzed against both
// orientations and the exact DP in tests/lcs_fuzz_test.cpp. Kernels are
// dispatched through the context's bound kernel pointer (resolved once at
// context construction), so a scan pays no per-pair dispatch work.
template <typename Entry>
auto shorter_cols(std::span<const token> q, std::span<const token> d,
                  Entry entry) {
  return q.size() >= d.size() ? entry(q, d) : entry(d, q);
}

}  // namespace

std::size_t be_lcs_length(std::span<const token> q, std::span<const token> d) {
  return be_lcs_length(q, d, lcs_context::thread_local_instance());
}

std::size_t be_lcs_length(std::span<const token> q, std::span<const token> d,
                          lcs_context& ctx) {
  return shorter_cols(q, d, [&](auto rows, auto cols) {
    return ctx.kernel().signed_length(rows, cols, 0, ctx);
  });
}

std::size_t be_lcs_length_bounded(std::span<const token> q,
                                  std::span<const token> d,
                                  std::size_t min_needed, lcs_context& ctx) {
  if (min_needed == 0) return be_lcs_length(q, d, ctx);
  return shorter_cols(q, d, [&](auto rows, auto cols) {
    return ctx.kernel().signed_length(rows, cols, min_needed, ctx);
  });
}

std::size_t be_lcs_length_exact(std::span<const token> q,
                                std::span<const token> d) {
  return be_lcs_length_exact(q, d, lcs_context::thread_local_instance());
}

std::size_t be_lcs_length_exact(std::span<const token> q,
                                std::span<const token> d, lcs_context& ctx) {
  return shorter_cols(q, d, [&](auto rows, auto cols) {
    return ctx.kernel().exact_length(rows, cols, 0, ctx);
  });
}

std::size_t be_lcs_length_exact_bounded(std::span<const token> q,
                                        std::span<const token> d,
                                        std::size_t min_needed,
                                        lcs_context& ctx) {
  if (min_needed == 0) return be_lcs_length_exact(q, d, ctx);
  return shorter_cols(q, d, [&](auto rows, auto cols) {
    return ctx.kernel().exact_length(rows, cols, min_needed, ctx);
  });
}

std::vector<token> be_lcs_string(std::span<const token> q,
                                 const be_lcs_table& w) {
  if (w.rows() != q.size() + 1) {
    throw std::invalid_argument("be_lcs_string: table does not match q");
  }
  std::vector<token> out;
  std::size_t i = w.rows() - 1;
  std::size_t j = w.cols() - 1;
  // Paper Algorithm 3, iteratively: prefer up, then left; a cell whose
  // absolute value exceeds both neighbours was set by a diagonal match and
  // contributes q[i-1] to the subsequence.
  while (i > 0 && j > 0) {
    const std::int32_t here = std::abs(w.at(i, j));
    if (here == std::abs(w.at(i - 1, j))) {
      --i;
    } else if (here == std::abs(w.at(i, j - 1))) {
      --j;
    } else {
      out.push_back(q[i - 1]);
      --i;
      --j;
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<token> be_lcs_string(std::span<const token> q,
                                 std::span<const token> d) {
  return be_lcs_string(q, be_lcs_fill(q, d));
}

double be_lcs_weighted(std::span<const token> q, std::span<const token> d,
                       double dummy_weight) {
  return be_lcs_weighted(q, d, dummy_weight,
                         lcs_context::thread_local_instance());
}

double be_lcs_weighted(std::span<const token> q, std::span<const token> d,
                       double dummy_weight, lcs_context& ctx) {
  // The negated form rejects NaN too: a NaN weight would otherwise poison
  // every max() chain downstream while passing `< 0.0 || > 1.0`.
  if (!(dummy_weight >= 0.0 && dummy_weight <= 1.0)) {
    throw std::invalid_argument(
        "be_lcs_weighted: weight must be finite and in [0, 1]");
  }
  return shorter_cols(q, d, [&](auto rows, auto cols) {
    return ctx.kernel().weighted(rows, cols, dummy_weight, ctx);
  });
}

}  // namespace bes
