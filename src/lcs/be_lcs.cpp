#include "lcs/be_lcs.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace bes {

be_lcs_table be_lcs_fill(std::span<const token> q, std::span<const token> d) {
  const std::size_t m = q.size();
  const std::size_t n = d.size();
  be_lcs_table w(m, n);
  // First row and column are zero-initialized (paper lines 7-11).
  for (std::size_t i = 1; i <= m; ++i) {
    const token qi = q[i - 1];
    for (std::size_t j = 1; j <= n; ++j) {
      // Copy the up or left cell with the larger absolute value, sign
      // included (paper lines 16-19; up wins ties).
      const std::int32_t up = w.at(i - 1, j);
      const std::int32_t left = w.at(i, j - 1);
      std::int32_t value = std::abs(up) >= std::abs(left) ? up : left;
      // A symbol match may only extend the diagonal when it is a boundary
      // symbol, or a dummy whose diagonal predecessor does not already end
      // in a dummy (paper line 21); it must strictly improve (line 23).
      if (qi == d[j - 1]) {
        const std::int32_t diag = w.at(i - 1, j - 1);
        if (!qi.is_dummy() || diag >= 0) {
          const std::int32_t extended = std::abs(diag) + 1;
          if (extended > std::abs(value)) {
            value = qi.is_dummy() ? -extended : extended;
          }
        }
      }
      w.at(i, j) = value;
    }
  }
  return w;
}

std::size_t be_lcs_length(std::span<const token> q, std::span<const token> d) {
  const be_lcs_table w = be_lcs_fill(q, d);
  return static_cast<std::size_t>(std::abs(w.at(q.size(), d.size())));
}

std::vector<token> be_lcs_string(std::span<const token> q,
                                 const be_lcs_table& w) {
  if (w.rows() != q.size() + 1) {
    throw std::invalid_argument("be_lcs_string: table does not match q");
  }
  std::vector<token> out;
  std::size_t i = w.rows() - 1;
  std::size_t j = w.cols() - 1;
  // Paper Algorithm 3, iteratively: prefer up, then left; a cell whose
  // absolute value exceeds both neighbours was set by a diagonal match and
  // contributes q[i-1] to the subsequence.
  while (i > 0 && j > 0) {
    const std::int32_t here = std::abs(w.at(i, j));
    if (here == std::abs(w.at(i - 1, j))) {
      --i;
    } else if (here == std::abs(w.at(i, j - 1))) {
      --j;
    } else {
      out.push_back(q[i - 1]);
      --i;
      --j;
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<token> be_lcs_string(std::span<const token> q,
                                 std::span<const token> d) {
  return be_lcs_string(q, be_lcs_fill(q, d));
}

double be_lcs_weighted(std::span<const token> q, std::span<const token> d,
                       double dummy_weight) {
  if (dummy_weight < 0.0 || dummy_weight > 1.0) {
    throw std::invalid_argument("be_lcs_weighted: weight must be in [0, 1]");
  }
  const std::size_t m = q.size();
  const std::size_t n = d.size();
  // Same two-layer structure as the exact DP, with real-valued gains.
  const std::size_t stride = n + 1;
  std::vector<double> solid((m + 1) * stride, 0.0);
  std::vector<double> gap((m + 1) * stride, 0.0);
  for (std::size_t i = 1; i <= m; ++i) {
    const token qi = q[i - 1];
    for (std::size_t j = 1; j <= n; ++j) {
      const std::size_t here = i * stride + j;
      const std::size_t up = (i - 1) * stride + j;
      const std::size_t left = i * stride + (j - 1);
      const std::size_t diag = (i - 1) * stride + (j - 1);
      double best_solid = std::max(solid[up], solid[left]);
      double best_gap = std::max(gap[up], gap[left]);
      if (qi == d[j - 1]) {
        if (qi.is_dummy()) {
          best_gap = std::max(best_gap, solid[diag] + dummy_weight);
        } else {
          best_solid =
              std::max(best_solid, std::max(solid[diag], gap[diag]) + 1.0);
        }
      }
      solid[here] = best_solid;
      gap[here] = best_gap;
    }
  }
  return std::max(solid[m * stride + n], gap[m * stride + n]);
}

std::size_t be_lcs_length_exact(std::span<const token> q,
                                std::span<const token> d) {
  const std::size_t m = q.size();
  const std::size_t n = d.size();
  // Two layers over the same (m+1)x(n+1) grid:
  //   solid[i][j] — best constrained common subsequence ending in a boundary
  //                 symbol (or empty);
  //   gap[i][j]   — best ending in a dummy.
  // A dummy may only extend `solid`; a boundary extends either.
  const std::size_t stride = n + 1;
  std::vector<std::int32_t> solid((m + 1) * stride, 0);
  std::vector<std::int32_t> gap((m + 1) * stride, 0);
  for (std::size_t i = 1; i <= m; ++i) {
    const token qi = q[i - 1];
    for (std::size_t j = 1; j <= n; ++j) {
      const std::size_t here = i * stride + j;
      const std::size_t up = (i - 1) * stride + j;
      const std::size_t left = i * stride + (j - 1);
      const std::size_t diag = (i - 1) * stride + (j - 1);
      std::int32_t best_solid = std::max(solid[up], solid[left]);
      std::int32_t best_gap = std::max(gap[up], gap[left]);
      if (qi == d[j - 1]) {
        if (qi.is_dummy()) {
          best_gap = std::max(best_gap, solid[diag] + 1);
        } else {
          best_solid =
              std::max(best_solid, std::max(solid[diag], gap[diag]) + 1);
        }
      }
      solid[here] = best_solid;
      gap[here] = best_gap;
    }
  }
  return static_cast<std::size_t>(
      std::max(solid[m * stride + n], gap[m * stride + n]));
}

}  // namespace bes
