// Token histograms: an admissible upper bound for the (constrained) LCS.
//
// Any common subsequence of two strings uses each token value at most
// min(count_q, count_d) times, so the multiset-intersection size bounds the
// LCS length from above. The bound costs O(u) per pair (u = distinct token
// values, typically tiny) against O(mn) for the LCS itself, which makes it
// an effective top-k scan pruner (db/query.cpp): candidates whose bound
// cannot beat the current k-th score are skipped without running the DP.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/be_string.hpp"
#include "lcs/similarity.hpp"

namespace bes {

// Sorted (token, count) pairs.
class token_histogram {
 public:
  struct bucket {
    token value;
    std::uint32_t count = 0;
    friend bool operator==(const bucket&, const bucket&) = default;
  };

  token_histogram() = default;
  explicit token_histogram(std::span<const token> tokens);

  // Rebuilds a histogram from persisted buckets (the BSEG1 segment stores
  // them so a load never re-sorts token streams). Validates the invariant —
  // strictly increasing in histogram token order, all counts nonzero — and
  // throws std::invalid_argument when it does not hold.
  [[nodiscard]] static token_histogram from_buckets(
      std::vector<bucket> buckets);

  // The sorted (token, count) buckets, for persistence.
  [[nodiscard]] const std::vector<bucket>& buckets() const noexcept {
    return counts_;
  }

  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t distinct() const noexcept {
    return counts_.size();
  }

  // Multiset intersection size — an upper bound on lcs(a, b) and therefore
  // also on the constrained be_lcs(a, b).
  [[nodiscard]] static std::size_t intersection_size(
      const token_histogram& a, const token_histogram& b) noexcept;

  friend bool operator==(const token_histogram&,
                         const token_histogram&) = default;

 private:
  std::vector<bucket> counts_;  // sorted by token ordering
  std::size_t total_ = 0;
};

// Histograms for both axes of a 2D BE-string.
struct be_histogram2d {
  token_histogram x;
  token_histogram y;
  std::size_t x_len = 0;
  std::size_t y_len = 0;

  friend bool operator==(const be_histogram2d&,
                         const be_histogram2d&) = default;
};

[[nodiscard]] be_histogram2d make_histograms(const be_string2d& strings);

// Upper bound on one axis_similarity under the given normalization, computed
// from the axis histograms only; guaranteed >= the true axis score. The
// query path feeds these per-axis caps into similarity_bounded to tighten
// its in-DP early-exit band.
[[nodiscard]] double axis_similarity_upper_bound(const token_histogram& q,
                                                 std::size_t q_len,
                                                 const token_histogram& d,
                                                 std::size_t d_len,
                                                 norm_kind norm);

// Upper bound on similarity(q, d) under the given normalization, computed
// from histograms only; guaranteed >= the true score for the same norm.
[[nodiscard]] double similarity_upper_bound(const be_histogram2d& q,
                                            const be_histogram2d& d,
                                            norm_kind norm);

}  // namespace bes
