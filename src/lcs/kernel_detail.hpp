// Internal declarations shared by the kernel variant translation units
// (kernel_scalar.cpp, kernel_bitparallel.cpp, kernel_avx2.cpp, kernel.cpp).
// Not installed, not part of the public surface: include lcs/kernel.hpp for
// dispatch and lcs/be_lcs.hpp for the entry points.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "core/token.hpp"

namespace bes {
class lcs_context;
}

namespace bes::lcs_detail {

// All functions follow the lcs_kernel calling convention: (rows, cols)
// pre-oriented with cols the shorter string, min_needed == 0 for unbounded.

// Scalar reference kernels (kernel_scalar.cpp).
std::size_t scalar_signed(std::span<const token> rows,
                          std::span<const token> cols, std::size_t min_needed,
                          lcs_context& ctx);
std::size_t scalar_exact(std::span<const token> rows,
                         std::span<const token> cols, std::size_t min_needed,
                         lcs_context& ctx);
double scalar_weighted(std::span<const token> rows, std::span<const token> cols,
                       double dummy_weight, lcs_context& ctx);

// Bit-parallel exact two-layer kernel (kernel_bitparallel.cpp); serves both
// the signed and exact lcs_kernel entries.
std::size_t bitparallel_exact(std::span<const token> rows,
                              std::span<const token> cols,
                              std::size_t min_needed, lcs_context& ctx);

// AVX2 SoA-row weighted kernel (kernel_avx2.cpp). avx2_available() reports
// whether this build compiled it AND the running CPU supports it; calling
// avx2_weighted when it returns false is undefined.
bool avx2_available() noexcept;
double avx2_weighted(std::span<const token> rows, std::span<const token> cols,
                     double dummy_weight, lcs_context& ctx);

// Tokens packed into nonzero 64-bit keys for the kernels' hash/compare
// tables (0 is reserved as the empty-slot sentinel).
[[nodiscard]] inline std::uint64_t token_key(token t) noexcept {
  if (t.is_dummy()) return 1;
  return (static_cast<std::uint64_t>(t.symbol()) << 3) |
         (static_cast<std::uint64_t>(t.kind()) << 2) | 2u;
}

}  // namespace bes::lcs_detail
