// The scalar reference kernels: rolling two-row DPs with a per-cell branch
// chain. Every other kernel variant is differentially fuzzed against these
// (tests/lcs_fuzz_test.cpp), and BES_LCS_KERNEL=scalar pins them for the
// portable CI leg. Moved here verbatim from be_lcs.cpp when the dispatch
// registry (lcs/kernel.hpp) was introduced.
#include <algorithm>
#include <cstdlib>

#include "lcs/be_lcs.hpp"
#include "lcs/kernel_detail.hpp"

namespace bes::lcs_detail {

namespace {

// The rolling form of Algorithm 2: cell (i, j) reads only row i-1 and the
// cells of row i already written, so two rows replace the full table. Rows
// run along `rows` and columns along `cols`; the dispatch layer orients
// `cols` as the shorter string, making the scratch O(min(m, n)). In the
// banded instantiation the loop bails once the best still-achievable final
// value — the row maximum plus one per remaining row (each row extends any
// subsequence by at most one token) — falls below min_needed, returning
// that admissible bound; the unbanded instantiation compiles the per-cell
// max tracking out of the hot loop entirely.
template <bool banded>
std::size_t signed_rolling(std::span<const token> rows,
                           std::span<const token> cols,
                           std::size_t min_needed, lcs_context& ctx) {
  const std::size_t r_count = rows.size();
  const std::size_t c_count = cols.size();
  if (r_count == 0 || c_count == 0) return 0;
  if (banded && min_needed > c_count) return c_count;  // lcs <= min(m, n)
  const std::size_t width = c_count + 1;
  std::span<std::int32_t> scratch = ctx.int_cells(2 * width);
  std::int32_t* prev = scratch.data();
  std::int32_t* cur = scratch.data() + width;
  std::fill(prev, prev + width, 0);
  cur[0] = 0;
  for (std::size_t i = 1; i <= r_count; ++i) {
    const token qi = rows[i - 1];
    [[maybe_unused]] std::int32_t row_max = 0;
    for (std::size_t j = 1; j <= c_count; ++j) {
      const std::int32_t up = prev[j];
      const std::int32_t left = cur[j - 1];
      std::int32_t value = std::abs(up) >= std::abs(left) ? up : left;
      if (qi == cols[j - 1]) {
        const std::int32_t diag = prev[j - 1];
        if (!qi.is_dummy() || diag >= 0) {
          const std::int32_t extended = std::abs(diag) + 1;
          if (extended > std::abs(value)) {
            value = qi.is_dummy() ? -extended : extended;
          }
        }
      }
      cur[j] = value;
      if constexpr (banded) {
        row_max = std::max(row_max, std::abs(value));
      }
    }
    if constexpr (banded) {
      const std::size_t achievable =
          static_cast<std::size_t>(row_max) + (r_count - i);
      if (achievable < min_needed) return achievable;
    }
    std::swap(prev, cur);
  }
  return static_cast<std::size_t>(std::abs(prev[c_count]));
}

// Rolling form of the exact two-layer DP: four rows (previous/current for
// the solid and gap layers) in one scratch block.
template <bool banded>
std::size_t exact_rolling(std::span<const token> rows,
                          std::span<const token> cols, std::size_t min_needed,
                          lcs_context& ctx) {
  const std::size_t r_count = rows.size();
  const std::size_t c_count = cols.size();
  if (r_count == 0 || c_count == 0) return 0;
  if (banded && min_needed > c_count) return c_count;
  const std::size_t width = c_count + 1;
  std::span<std::int32_t> scratch = ctx.int_cells(4 * width);
  std::int32_t* prev_solid = scratch.data();
  std::int32_t* prev_gap = scratch.data() + width;
  std::int32_t* cur_solid = scratch.data() + 2 * width;
  std::int32_t* cur_gap = scratch.data() + 3 * width;
  std::fill(prev_solid, prev_solid + 2 * width, 0);  // both prev layers
  cur_solid[0] = 0;
  cur_gap[0] = 0;
  for (std::size_t i = 1; i <= r_count; ++i) {
    const token qi = rows[i - 1];
    [[maybe_unused]] std::int32_t row_max = 0;
    for (std::size_t j = 1; j <= c_count; ++j) {
      std::int32_t best_solid = std::max(prev_solid[j], cur_solid[j - 1]);
      std::int32_t best_gap = std::max(prev_gap[j], cur_gap[j - 1]);
      if (qi == cols[j - 1]) {
        if (qi.is_dummy()) {
          best_gap = std::max(best_gap, prev_solid[j - 1] + 1);
        } else {
          best_solid = std::max(
              best_solid, std::max(prev_solid[j - 1], prev_gap[j - 1]) + 1);
        }
      }
      cur_solid[j] = best_solid;
      cur_gap[j] = best_gap;
      if constexpr (banded) {
        row_max = std::max(row_max, std::max(best_solid, best_gap));
      }
    }
    if constexpr (banded) {
      const std::size_t achievable =
          static_cast<std::size_t>(row_max) + (r_count - i);
      if (achievable < min_needed) return achievable;
    }
    std::swap(prev_solid, cur_solid);
    std::swap(prev_gap, cur_gap);
  }
  return static_cast<std::size_t>(
      std::max(prev_solid[c_count], prev_gap[c_count]));
}

}  // namespace

std::size_t scalar_signed(std::span<const token> rows,
                          std::span<const token> cols, std::size_t min_needed,
                          lcs_context& ctx) {
  return min_needed == 0 ? signed_rolling<false>(rows, cols, 0, ctx)
                         : signed_rolling<true>(rows, cols, min_needed, ctx);
}

std::size_t scalar_exact(std::span<const token> rows,
                         std::span<const token> cols, std::size_t min_needed,
                         lcs_context& ctx) {
  return min_needed == 0 ? exact_rolling<false>(rows, cols, 0, ctx)
                         : exact_rolling<true>(rows, cols, min_needed, ctx);
}

// Rolling form of the weighted two-layer DP. No early-exit band: nothing on
// the query path thresholds weighted scores.
double scalar_weighted(std::span<const token> rows, std::span<const token> cols,
                       double dummy_weight, lcs_context& ctx) {
  const std::size_t r_count = rows.size();
  const std::size_t c_count = cols.size();
  if (r_count == 0 || c_count == 0) return 0.0;
  const std::size_t width = c_count + 1;
  std::span<double> scratch = ctx.real_cells(4 * width);
  double* prev_solid = scratch.data();
  double* prev_gap = scratch.data() + width;
  double* cur_solid = scratch.data() + 2 * width;
  double* cur_gap = scratch.data() + 3 * width;
  std::fill(prev_solid, prev_solid + 2 * width, 0.0);
  cur_solid[0] = 0.0;
  cur_gap[0] = 0.0;
  for (std::size_t i = 1; i <= r_count; ++i) {
    const token qi = rows[i - 1];
    for (std::size_t j = 1; j <= c_count; ++j) {
      double best_solid = std::max(prev_solid[j], cur_solid[j - 1]);
      double best_gap = std::max(prev_gap[j], cur_gap[j - 1]);
      if (qi == cols[j - 1]) {
        if (qi.is_dummy()) {
          best_gap = std::max(best_gap, prev_solid[j - 1] + dummy_weight);
        } else {
          best_solid = std::max(
              best_solid, std::max(prev_solid[j - 1], prev_gap[j - 1]) + 1.0);
        }
      }
      cur_solid[j] = best_solid;
      cur_gap[j] = best_gap;
    }
    std::swap(prev_solid, cur_solid);
    std::swap(prev_gap, cur_gap);
  }
  return std::max(prev_solid[c_count], prev_gap[c_count]);
}

}  // namespace bes::lcs_detail
