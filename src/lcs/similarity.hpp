// Similarity evaluation between a query image and a database image (paper
// §4): the modified-LCS length of each axis pair, normalized and averaged.
//
// The paper's evaluation "can evaluate all similarity no matter how the
// matched LCS string whether appears all query objects or not, or whether
// appears all spatial relationships or not" — i.e. partial matches score
// proportionally instead of being filtered out. The normalization policy is
// configurable; the default divides by the query string length ("how much of
// the query appears in the database image"), which is the reading that makes
// sim(q, d) == 1 exactly when q is fully embedded in d.
#pragma once

#include <span>
#include <vector>

#include "core/be_string.hpp"
#include "core/transform.hpp"
#include "lcs/be_lcs.hpp"

namespace bes {

enum class norm_kind : std::uint8_t {
  query,    // lcs / |q|            (paper default: partial-query emphasis)
  max_len,  // lcs / max(|q|, |d|)  (symmetric, penalizes extra db content)
  dice,     // 2*lcs / (|q| + |d|)  (Sorensen-Dice)
  min_len,  // lcs / min(|q|, |d|)  (containment)
};

struct similarity_options {
  norm_kind norm = norm_kind::query;
  // Use the exact two-layer DP instead of the paper's signed-table variant.
  bool exact_lcs = false;
};

// Normalized similarity of one axis pair, in [0, 1].
[[nodiscard]] double axis_similarity(std::span<const token> q,
                                     std::span<const token> d,
                                     const similarity_options& options = {});

// Mean of the two axis similarities, in [0, 1].
[[nodiscard]] double similarity(const be_string2d& q, const be_string2d& d,
                                const similarity_options& options = {});

// Similarity under the best of the 8 linear transformations of the query
// (paper: rotation/reflection retrieval by string reversal).
struct transform_match {
  dihedral transform = dihedral::identity;
  double score = 0.0;
};
[[nodiscard]] transform_match best_transform_similarity(
    const be_string2d& q, const be_string2d& d,
    const similarity_options& options = {});

}  // namespace bes
