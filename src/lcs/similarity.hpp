// Similarity evaluation between a query image and a database image (paper
// §4): the modified-LCS length of each axis pair, normalized and averaged.
//
// The paper's evaluation "can evaluate all similarity no matter how the
// matched LCS string whether appears all query objects or not, or whether
// appears all spatial relationships or not" — i.e. partial matches score
// proportionally instead of being filtered out. The normalization policy is
// configurable; the default divides by the query string length ("how much of
// the query appears in the database image"), which is the reading that makes
// sim(q, d) == 1 exactly when q is fully embedded in d.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "core/be_string.hpp"
#include "core/transform.hpp"
#include "lcs/be_lcs.hpp"

namespace bes {

enum class norm_kind : std::uint8_t {
  query,    // lcs / |q|            (paper default: partial-query emphasis)
  max_len,  // lcs / max(|q|, |d|)  (symmetric, penalizes extra db content)
  dice,     // 2*lcs / (|q| + |d|)  (Sorensen-Dice)
  min_len,  // lcs / min(|q|, |d|)  (containment)
};

// Validating conversion for norm_kind values arriving from outside the type
// system (report JSON, CLI flags): throws std::invalid_argument on anything
// without an enumerator instead of letting a raw static_cast smuggle an
// out-of-enum value into the scoring switch.
[[nodiscard]] norm_kind checked_norm_kind(long long raw);

struct similarity_options {
  norm_kind norm = norm_kind::query;
  // Use the exact two-layer DP instead of the paper's signed-table variant.
  bool exact_lcs = false;

  friend bool operator==(const similarity_options&,
                         const similarity_options&) = default;
};

// Normalized similarity of one axis pair, in [0, 1]. The context-less
// overloads score through the calling thread's lcs_context.
[[nodiscard]] double axis_similarity(std::span<const token> q,
                                     std::span<const token> d,
                                     const similarity_options& options = {});
[[nodiscard]] double axis_similarity(std::span<const token> q,
                                     std::span<const token> d,
                                     const similarity_options& options,
                                     lcs_context& ctx);

// Mean of the two axis similarities, in [0, 1].
[[nodiscard]] double similarity(const be_string2d& q, const be_string2d& d,
                                const similarity_options& options = {});
[[nodiscard]] double similarity(const be_string2d& q, const be_string2d& d,
                                const similarity_options& options,
                                lcs_context& ctx);

// Thresholded similarity with an in-DP early-exit band: identical to
// similarity() whenever the true score is >= min_score. When the score is
// provably < min_score the axis DPs bail as soon as their best-achievable
// remaining value cannot reach the per-axis requirement, and an upper bound
// on the true score (itself < min_score) is returned. So the result is
// always >= the true score, and exact whenever it is >= min_score — which
// makes it safe for top-k pruning: candidates whose result falls below the
// running k-th score can be discarded without ever finishing their DP.
// y_cap is an optional admissible cap on the y-axis similarity (e.g. from
// token histograms) that tightens the x-axis band — the x axis is scored
// first, so only the not-yet-scored axis benefits from a cap; 1.0 when
// unknown.
[[nodiscard]] double similarity_bounded(const be_string2d& q,
                                        const be_string2d& d,
                                        const similarity_options& options,
                                        double min_score, lcs_context& ctx,
                                        double y_cap = 1.0);

// Similarity under the best of the 8 linear transformations of the query
// (paper: rotation/reflection retrieval by string reversal).
struct transform_match {
  dihedral transform = dihedral::identity;
  double score = 0.0;
};

// The 8 dihedral variants of a query's BE-strings, indexed by
// static_cast<std::size_t>(dihedral). Build this ONCE per search and reuse
// it across database records: transforming the query is O(|q|) string work
// that must not be repeated per candidate.
struct query_transforms {
  std::array<be_string2d, all_dihedral.size()> strings;
};
[[nodiscard]] query_transforms precompute_transforms(const be_string2d& q);

[[nodiscard]] transform_match best_transform_similarity(
    const query_transforms& q, const be_string2d& d,
    const similarity_options& options = {});
[[nodiscard]] transform_match best_transform_similarity(
    const query_transforms& q, const be_string2d& d,
    const similarity_options& options, lcs_context& ctx);

// Single-pair convenience: precomputes the 8 variants internally. Scans over
// many records should hoist precompute_transforms out of the loop instead.
[[nodiscard]] transform_match best_transform_similarity(
    const be_string2d& q, const be_string2d& d,
    const similarity_options& options = {});

}  // namespace bes
