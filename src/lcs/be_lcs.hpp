// The paper's modified LCS over BE-strings (§4.1, Algorithms 2 and 3).
//
// Two revisions of the classic algorithm:
//  1. The common subsequence may never pick two dummy objects in a row —
//     "only one dummy object sufficiently represents the relative spatial
//     relationship between two boundary symbols".
//  2. The direction matrix is dropped: a cell of the length table W is
//     NEGATIVE iff the subsequence realizing it ends in a dummy, which is
//     both the state needed by revision 1 and enough to re-infer the path
//     (Algorithm 3).
//
// be_lcs_length/be_lcs_string are literal translations of Algorithms 2/3.
// The paper's sign trick keeps only ONE candidate per cell; a priori that
// could underestimate the constrained optimum on tie patterns, so
// be_lcs_length_exact tracks both "ends in dummy" and "ends in boundary"
// layers and is provably exact (oracle-tested against exhaustive search).
// Measured: the two variants agreed on every one of >4.5M randomized token
// pairs and all encoded scene pairs tried — the paper's shortcut holds up
// (EXPERIMENTS.md fidelity note F1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/be_string.hpp"

namespace bes {

// The LCS length inferring table W; (m+1) x (n+1) signed cells.
class be_lcs_table {
 public:
  be_lcs_table(std::size_t m, std::size_t n)
      : rows_(m + 1), cols_(n + 1), cells_(rows_ * cols_, 0) {}

  [[nodiscard]] std::int32_t at(std::size_t i, std::size_t j) const {
    return cells_[i * cols_ + j];
  }
  std::int32_t& at(std::size_t i, std::size_t j) {
    return cells_[i * cols_ + j];
  }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t storage_cells() const noexcept {
    return cells_.size();
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::int32_t> cells_;
};

// Algorithm 2: fills W for query string q and database string d.
[[nodiscard]] be_lcs_table be_lcs_fill(std::span<const token> q,
                                       std::span<const token> d);

// |W[m][n]| — the modified-LCS length.
[[nodiscard]] std::size_t be_lcs_length(std::span<const token> q,
                                        std::span<const token> d);

// Algorithm 3: reconstructs one common subsequence of length |W[m][n]| from
// the filled table (iterative traceback; the paper's recursion bottoms out
// identically). The result never contains two adjacent dummies.
[[nodiscard]] std::vector<token> be_lcs_string(std::span<const token> q,
                                               const be_lcs_table& w);

// Convenience: fill + traceback.
[[nodiscard]] std::vector<token> be_lcs_string(std::span<const token> q,
                                               std::span<const token> d);

// Exact constrained LCS via a two-layer DP (see header comment). Same O(mn)
// complexity; always >= be_lcs_length and equal to the true optimum.
[[nodiscard]] std::size_t be_lcs_length_exact(std::span<const token> q,
                                              std::span<const token> d);

// Weighted variant: maximizes (boundary matches) + dummy_weight * (dummy
// matches) over constrained common subsequences. dummy_weight in [0, 1];
// weight 1 recovers be_lcs_length_exact, weight 0 scores spatial-relation
// carriers (dummies) as worthless and counts boundary matches only. Used by
// the dummy-weight ablation.
[[nodiscard]] double be_lcs_weighted(std::span<const token> q,
                                     std::span<const token> d,
                                     double dummy_weight);

}  // namespace bes
