// The paper's modified LCS over BE-strings (§4.1, Algorithms 2 and 3).
//
// Two revisions of the classic algorithm:
//  1. The common subsequence may never pick two dummy objects in a row —
//     "only one dummy object sufficiently represents the relative spatial
//     relationship between two boundary symbols".
//  2. The direction matrix is dropped: a cell of the length table W is
//     NEGATIVE iff the subsequence realizing it ends in a dummy, which is
//     both the state needed by revision 1 and enough to re-infer the path
//     (Algorithm 3).
//
// be_lcs_string is a literal translation of Algorithm 3 over the Algorithm 2
// table. The paper's sign trick keeps only ONE candidate per cell; a priori
// that could underestimate the constrained optimum on tie patterns, so
// be_lcs_length_exact tracks both "ends in dummy" and "ends in boundary"
// layers and is provably exact (oracle-tested against exhaustive search).
// Measured: the two variants agreed on every one of >4.5M randomized token
// pairs and all encoded scene pairs tried — the paper's shortcut holds up
// (EXPERIMENTS.md fidelity note F1).
//
// Length-only queries do not materialize the table: every *_length kernel is
// a rolling DP over flat scratch buffers (an lcs_context) that are reused
// across calls, so a scan over a database performs no per-pair allocation
// and touches O(min(m, n)) rolling state instead of O(mn). The DP is
// argument-symmetric (fuzzed in tests/lcs_fuzz_test.cpp), so the rows are
// laid along the longer string. be_lcs_fill keeps the full table solely for
// be_lcs_string's traceback.
//
// The kernel IMPLEMENTATION behind each entry point is CPU-dispatched: the
// lcs/kernel.hpp registry selects (once, at startup) between the scalar
// rolling reference, a bit-parallel variant packing 64 DP cells per word,
// and an AVX2 SoA-row weighted variant. Each lcs_context is bound to one
// kernel at construction — the active one by default — so the dispatch
// costs a cached pointer read, never a per-pair resolution. Construct a
// context from a specific lcs_kernel to pin a variant (tests, benches).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/be_string.hpp"
#include "lcs/kernel.hpp"

namespace bes {

// Reusable scratch for the rolling LCS kernels. One context per thread:
// the kernels hand out spans into these buffers, so a context must never be
// shared by concurrent calls. Buffers only grow; a scan that scores
// thousands of candidates allocates O(1) times.
class lcs_context {
 public:
  // Binds to active_lcs_kernel() — the startup-selected variant.
  lcs_context();
  // Pins a specific registered kernel (differential tests, benches).
  explicit lcs_context(const lcs_kernel& kernel);
  lcs_context(const lcs_context&) = delete;
  lcs_context& operator=(const lcs_context&) = delete;

  // The kernel every entry point taking this context dispatches through.
  [[nodiscard]] const lcs_kernel& kernel() const noexcept { return *kernel_; }

  // Scratch of at least `cells` entries; contents are unspecified (kernels
  // initialize what they read).
  [[nodiscard]] std::span<std::int32_t> int_cells(std::size_t cells);
  [[nodiscard]] std::span<double> real_cells(std::size_t cells);
  [[nodiscard]] std::span<std::uint64_t> word_cells(std::size_t cells);

  // High-water scratch footprint, for benchmarks and memory assertions.
  [[nodiscard]] std::size_t scratch_bytes() const noexcept {
    return ints_.capacity() * sizeof(std::int32_t) +
           reals_.capacity() * sizeof(double) +
           words_.capacity() * sizeof(std::uint64_t);
  }

  // The calling thread's context — what the context-less entry points use.
  [[nodiscard]] static lcs_context& thread_local_instance();

 private:
  const lcs_kernel* kernel_;
  std::vector<std::int32_t> ints_;
  std::vector<double> reals_;
  std::vector<std::uint64_t> words_;
};

// The LCS length inferring table W; (m+1) x (n+1) signed cells.
class be_lcs_table {
 public:
  be_lcs_table(std::size_t m, std::size_t n)
      : rows_(m + 1), cols_(n + 1), cells_(rows_ * cols_, 0) {}

  [[nodiscard]] std::int32_t at(std::size_t i, std::size_t j) const {
    return cells_[i * cols_ + j];
  }
  std::int32_t& at(std::size_t i, std::size_t j) {
    return cells_[i * cols_ + j];
  }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t storage_cells() const noexcept {
    return cells_.size();
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::int32_t> cells_;
};

// Algorithm 2: fills W for query string q and database string d. Needed only
// when the matched subsequence itself is wanted (be_lcs_string traceback);
// length queries should use the rolling kernels below.
[[nodiscard]] be_lcs_table be_lcs_fill(std::span<const token> q,
                                       std::span<const token> d);

// |W[m][n]| — the modified-LCS length, via the rolling two-row kernel.
[[nodiscard]] std::size_t be_lcs_length(std::span<const token> q,
                                        std::span<const token> d);
[[nodiscard]] std::size_t be_lcs_length(std::span<const token> q,
                                        std::span<const token> d,
                                        lcs_context& ctx);

// Early-exit band variant: identical to be_lcs_length whenever the true
// length is >= min_needed. When the best still-achievable length (current
// row max + one per remaining row, an admissible bound) drops below
// min_needed the DP bails and returns that bound instead. Either way the
// result is an upper bound on the true length, and (result >= min_needed)
// iff (true length >= min_needed). min_needed == 0 disables the band.
[[nodiscard]] std::size_t be_lcs_length_bounded(std::span<const token> q,
                                                std::span<const token> d,
                                                std::size_t min_needed,
                                                lcs_context& ctx);

// Algorithm 3: reconstructs one common subsequence of length |W[m][n]| from
// the filled table (iterative traceback; the paper's recursion bottoms out
// identically). The result never contains two adjacent dummies.
[[nodiscard]] std::vector<token> be_lcs_string(std::span<const token> q,
                                               const be_lcs_table& w);

// Convenience: fill + traceback.
[[nodiscard]] std::vector<token> be_lcs_string(std::span<const token> q,
                                               std::span<const token> d);

// Exact constrained LCS via a two-layer rolling DP (see header comment).
// Same O(mn) time; always >= be_lcs_length and equal to the true optimum.
[[nodiscard]] std::size_t be_lcs_length_exact(std::span<const token> q,
                                              std::span<const token> d);
[[nodiscard]] std::size_t be_lcs_length_exact(std::span<const token> q,
                                              std::span<const token> d,
                                              lcs_context& ctx);

// Early-exit band over the exact DP; same contract as be_lcs_length_bounded.
[[nodiscard]] std::size_t be_lcs_length_exact_bounded(std::span<const token> q,
                                                      std::span<const token> d,
                                                      std::size_t min_needed,
                                                      lcs_context& ctx);

// Weighted variant: maximizes (boundary matches) + dummy_weight * (dummy
// matches) over constrained common subsequences. dummy_weight in [0, 1];
// weight 1 recovers be_lcs_length_exact, weight 0 scores spatial-relation
// carriers (dummies) as worthless and counts boundary matches only. Used by
// the dummy-weight ablation.
[[nodiscard]] double be_lcs_weighted(std::span<const token> q,
                                     std::span<const token> d,
                                     double dummy_weight);
[[nodiscard]] double be_lcs_weighted(std::span<const token> q,
                                     std::span<const token> d,
                                     double dummy_weight, lcs_context& ctx);

}  // namespace bes
