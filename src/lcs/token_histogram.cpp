#include "lcs/token_histogram.hpp"

#include <algorithm>
#include <stdexcept>

namespace bes {

namespace {

bool token_less(token a, token b) noexcept {
  // Total order: dummy first, then boundary (symbol, kind) order.
  if (a.is_dummy() != b.is_dummy()) return a.is_dummy();
  if (a.is_dummy()) return false;
  return a < b;
}

}  // namespace

token_histogram::token_histogram(std::span<const token> tokens) {
  std::vector<token> sorted(tokens.begin(), tokens.end());
  std::sort(sorted.begin(), sorted.end(), token_less);
  for (token t : sorted) {
    if (!counts_.empty() && counts_.back().value == t) {
      ++counts_.back().count;
    } else {
      counts_.push_back(bucket{t, 1});
    }
  }
  total_ = tokens.size();
}

token_histogram token_histogram::from_buckets(std::vector<bucket> buckets) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i].count == 0) {
      throw std::invalid_argument("token_histogram: zero-count bucket");
    }
    if (i > 0 && !token_less(buckets[i - 1].value, buckets[i].value)) {
      throw std::invalid_argument("token_histogram: buckets out of order");
    }
    total += buckets[i].count;
  }
  token_histogram out;
  out.counts_ = std::move(buckets);
  out.total_ = total;
  return out;
}

std::size_t token_histogram::intersection_size(
    const token_histogram& a, const token_histogram& b) noexcept {
  std::size_t shared = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.counts_.size() && j < b.counts_.size()) {
    if (token_less(a.counts_[i].value, b.counts_[j].value)) {
      ++i;
    } else if (token_less(b.counts_[j].value, a.counts_[i].value)) {
      ++j;
    } else {
      shared += std::min(a.counts_[i].count, b.counts_[j].count);
      ++i;
      ++j;
    }
  }
  return shared;
}

be_histogram2d make_histograms(const be_string2d& strings) {
  return be_histogram2d{token_histogram(strings.x.span()),
                        token_histogram(strings.y.span()), strings.x.size(),
                        strings.y.size()};
}

double axis_similarity_upper_bound(const token_histogram& q,
                                   std::size_t q_len, const token_histogram& d,
                                   std::size_t d_len, norm_kind norm) {
  if (q_len == 0 || d_len == 0) return 0.0;
  const auto shared =
      static_cast<double>(token_histogram::intersection_size(q, d));
  switch (norm) {
    case norm_kind::query:
      return shared / static_cast<double>(q_len);
    case norm_kind::max_len:
      return shared / static_cast<double>(std::max(q_len, d_len));
    case norm_kind::dice:
      return 2.0 * shared / static_cast<double>(q_len + d_len);
    case norm_kind::min_len:
      return shared / static_cast<double>(std::min(q_len, d_len));
  }
  return 1.0;
}

double similarity_upper_bound(const be_histogram2d& q, const be_histogram2d& d,
                              norm_kind norm) {
  return 0.5 *
         (axis_similarity_upper_bound(q.x, q.x_len, d.x, d.x_len, norm) +
          axis_similarity_upper_bound(q.y, q.y_len, d.y, d.y_len, norm));
}

}  // namespace bes
