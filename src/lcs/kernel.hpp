// CPU-dispatched LCS kernel registry.
//
// Every length/weighted kernel variant sits behind one table of function
// pointers (lcs_kernel). The registry enumerates the variants this build
// compiled AND this CPU can run; one of them is selected once at startup —
// the best available, unless the BES_LCS_KERNEL environment variable names
// another (that override exists for testing and for pinning the scalar
// reference in CI). Scans never re-resolve per pair: each lcs_context is
// bound to a kernel at construction (the active one by default), so the
// hot path costs one cached pointer indirection.
//
// Variants (in ascending preference order):
//   scalar       the rolling two-row reference kernels (always registered)
//   bitparallel  Crochemore/Hyyrö-style bit-vector DP packing 64 cells per
//                word for the length kernels (always registered; pure
//                uint64_t, no ISA extensions needed)
//   avx2         bitparallel lengths + an AVX2 SoA-row weighted kernel
//                (registered only when the CPU reports AVX2)
//
// Contract: every registered kernel returns bit-identical lengths, scores
// and early-exit band behavior for the exact/weighted entry points, and
// bit-identical *final* lengths for the signed entry point (the bit-parallel
// variants compute the exact two-layer optimum for both; see the note in
// kernel_bitparallel.cpp). tests/lcs_fuzz_test.cpp enforces this
// differentially for every kernel in the registry.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>

#include "core/token.hpp"

namespace bes {

class lcs_context;

// One kernel variant. All functions take (rows, cols) PRE-ORIENTED by the
// dispatch layer so that cols runs along the shorter string (what keeps the
// scratch O(min(m, n)) and the bit rows narrow); both spans are non-empty.
// min_needed == 0 disables the early-exit band; otherwise the bounded
// contract of be_lcs_length_bounded applies.
struct lcs_kernel {
  std::string_view name;

  // The paper's signed-table recurrence (be_lcs_length). Bit-parallel
  // variants serve this entry with the exact two-layer optimum, which the
  // fuzz suite pins as equal to the signed heuristic on every tested input.
  std::size_t (*signed_length)(std::span<const token> rows,
                               std::span<const token> cols,
                               std::size_t min_needed, lcs_context& ctx);

  // The exact two-layer (solid/gap) recurrence (be_lcs_length_exact).
  std::size_t (*exact_length)(std::span<const token> rows,
                              std::span<const token> cols,
                              std::size_t min_needed, lcs_context& ctx);

  // The weighted two-layer recurrence (be_lcs_weighted); dummy_weight is
  // finite and in [0, 1] (validated by the entry point).
  double (*weighted)(std::span<const token> rows, std::span<const token> cols,
                     double dummy_weight, lcs_context& ctx);
};

// Every variant compiled into this build and runnable on this CPU, in
// ascending preference order. Never empty: scalar is always present.
[[nodiscard]] std::span<const lcs_kernel> registered_lcs_kernels();

// The registered kernel with this name, or nullptr.
[[nodiscard]] const lcs_kernel* find_lcs_kernel(std::string_view name);

// The kernel every default-constructed lcs_context binds to. Resolved once
// (first call): BES_LCS_KERNEL if set and registered (an unknown or
// unavailable name warns on stderr and falls through), else the most
// preferred registered kernel.
[[nodiscard]] const lcs_kernel& active_lcs_kernel();

}  // namespace bes
