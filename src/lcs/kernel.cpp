// Kernel registry and startup selection (see lcs/kernel.hpp).
#include "lcs/kernel.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "lcs/kernel_detail.hpp"

namespace bes {

namespace {

std::vector<lcs_kernel> build_registry() {
  namespace d = lcs_detail;
  std::vector<lcs_kernel> kernels;
  kernels.push_back(
      {"scalar", &d::scalar_signed, &d::scalar_exact, &d::scalar_weighted});
  // Pure uint64_t — portable to every build; the weighted recurrence has no
  // bit-parallel form (real-valued cells), so it stays scalar here.
  kernels.push_back({"bitparallel", &d::bitparallel_exact,
                     &d::bitparallel_exact, &d::scalar_weighted});
  if (d::avx2_available()) {
    kernels.push_back({"avx2", &d::bitparallel_exact, &d::bitparallel_exact,
                       &d::avx2_weighted});
  }
  return kernels;
}

const std::vector<lcs_kernel>& registry() {
  static const std::vector<lcs_kernel> kernels = build_registry();
  return kernels;
}

}  // namespace

std::span<const lcs_kernel> registered_lcs_kernels() { return registry(); }

const lcs_kernel* find_lcs_kernel(std::string_view name) {
  for (const lcs_kernel& k : registry()) {
    if (k.name == name) return &k;
  }
  return nullptr;
}

const lcs_kernel& active_lcs_kernel() {
  static const lcs_kernel& active = []() -> const lcs_kernel& {
    if (const char* env = std::getenv("BES_LCS_KERNEL")) {
      if (const lcs_kernel* forced = find_lcs_kernel(env)) return *forced;
      std::fprintf(stderr,
                   "BES_LCS_KERNEL=%s is not a registered kernel on this "
                   "CPU; using %.*s\n",
                   env, static_cast<int>(registry().back().name.size()),
                   registry().back().name.data());
    }
    return registry().back();
  }();
  return active;
}

}  // namespace bes
