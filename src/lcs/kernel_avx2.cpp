// AVX2 SoA-row weighted kernel: the weighted two-layer DP with the row
// vectorized 4 doubles at a time.
//
// The scalar recurrence has a loop-carried dependence through
// cur_solid[j-1] / cur_gap[j-1], but both layers are RUNNING MAXES of a
// per-cell candidate that reads only the previous row:
//   x_s[j] = max(prev_solid[j], boundary match ? max(prev_solid[j-1],
//                prev_gap[j-1]) + 1 : 0)
//   cur_solid[j] = max(cur_solid[j-1], x_s[j])        (and likewise gap
//   with x_g[j] = max(prev_gap[j], dummy match ? prev_solid[j-1] +
//   dummy_weight : 0))
// since every cell value is >= 0, the masked-out 0.0 candidate is inert.
// So each block of 4 columns is: candidate compute (pure SIMD over the
// previous row + a packed-key equality mask), an in-register prefix max
// (two shift-and-max steps), and a broadcast carry from the preceding
// block. max() is an exact selection and the additions use exactly the
// scalar kernel's operands, so results are bit-identical to
// scalar_weighted (fuzzed in tests/lcs_fuzz_test.cpp).
//
// Compiled with a per-function target("avx2") attribute so the TU builds
// under portable baselines (-march=x86-64); the registry consults
// avx2_available() — compile-time support AND a runtime CPUID check —
// before registering the kernel.
#include <algorithm>

#include "lcs/be_lcs.hpp"
#include "lcs/kernel_detail.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define BES_HAVE_AVX2_KERNEL 1
#include <immintrin.h>
#else
#define BES_HAVE_AVX2_KERNEL 0
#endif

namespace bes::lcs_detail {

#if BES_HAVE_AVX2_KERNEL

namespace {

// Lanes shifted up by one/two, vacated lanes filled with +0.0 (inert for
// this DP: every value is >= +0.0).
__attribute__((target("avx2"))) inline __m256d shift_up1(__m256d x) {
  const __m256d r = _mm256_permute4x64_pd(x, _MM_SHUFFLE(2, 1, 0, 0));
  return _mm256_blend_pd(r, _mm256_setzero_pd(), 0x1);
}

__attribute__((target("avx2"))) inline __m256d shift_up2(__m256d x) {
  const __m256d r = _mm256_permute4x64_pd(x, _MM_SHUFFLE(1, 0, 0, 0));
  return _mm256_blend_pd(r, _mm256_setzero_pd(), 0x3);
}

// Running max of x's lanes seeded by `carry` (broadcast of the previous
// block's last column); returns the per-lane prefix maxes.
__attribute__((target("avx2"))) inline __m256d prefix_max(__m256d x,
                                                          __m256d carry) {
  x = _mm256_max_pd(x, shift_up1(x));
  x = _mm256_max_pd(x, shift_up2(x));
  return _mm256_max_pd(x, carry);
}

__attribute__((target("avx2"))) inline __m256d broadcast_last(__m256d x) {
  return _mm256_permute4x64_pd(x, 0xFF);
}

}  // namespace

__attribute__((target("avx2"))) double avx2_weighted(
    std::span<const token> rows, std::span<const token> cols,
    double dummy_weight, lcs_context& ctx) {
  const std::size_t r_count = rows.size();
  const std::size_t c_count = cols.size();
  if (r_count == 0 || c_count == 0) return 0.0;
  const std::size_t width = c_count + 1;
  std::span<double> scratch = ctx.real_cells(4 * width);
  double* prev_solid = scratch.data();
  double* prev_gap = scratch.data() + width;
  double* cur_solid = scratch.data() + 2 * width;
  double* cur_gap = scratch.data() + 3 * width;
  std::fill(prev_solid, prev_solid + 2 * width, 0.0);
  cur_solid[0] = 0.0;
  cur_gap[0] = 0.0;

  // Column tokens packed once per pair for the SIMD equality mask.
  std::span<std::uint64_t> keys = ctx.word_cells(c_count);
  for (std::size_t j = 0; j < c_count; ++j) keys[j] = token_key(cols[j]);

  const __m256d ones = _mm256_set1_pd(1.0);
  const __m256d weight = _mm256_set1_pd(dummy_weight);
  const std::size_t blocks = c_count / 4;

  for (std::size_t i = 1; i <= r_count; ++i) {
    const token qi = rows[i - 1];
    const bool dummy_row = qi.is_dummy();
    const __m256i row_key =
        _mm256_set1_epi64x(static_cast<long long>(token_key(qi)));
    __m256d carry_s = _mm256_setzero_pd();
    __m256d carry_g = _mm256_setzero_pd();
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t j0 = b * 4;  // covers columns j0+1 .. j0+4
      const __m256i k4 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(keys.data() + j0));
      const __m256d eq =
          _mm256_castsi256_pd(_mm256_cmpeq_epi64(k4, row_key));
      const __m256d ps = _mm256_loadu_pd(prev_solid + j0 + 1);
      const __m256d pg = _mm256_loadu_pd(prev_gap + j0 + 1);
      const __m256d psd = _mm256_loadu_pd(prev_solid + j0);
      __m256d x_s;
      __m256d x_g;
      if (dummy_row) {
        const __m256d cand =
            _mm256_and_pd(_mm256_add_pd(psd, weight), eq);
        x_s = ps;
        x_g = _mm256_max_pd(pg, cand);
      } else {
        const __m256d pgd = _mm256_loadu_pd(prev_gap + j0);
        const __m256d cand = _mm256_and_pd(
            _mm256_add_pd(_mm256_max_pd(psd, pgd), ones), eq);
        x_s = _mm256_max_pd(ps, cand);
        x_g = pg;
      }
      const __m256d cs = prefix_max(x_s, carry_s);
      const __m256d cg = prefix_max(x_g, carry_g);
      _mm256_storeu_pd(cur_solid + j0 + 1, cs);
      _mm256_storeu_pd(cur_gap + j0 + 1, cg);
      carry_s = broadcast_last(cs);
      carry_g = broadcast_last(cg);
    }
    // Scalar tail (and the whole row when c_count < 4), continuing from the
    // last vector column — byte-for-byte the scalar kernel's inner loop.
    for (std::size_t j = blocks * 4 + 1; j <= c_count; ++j) {
      double best_solid = std::max(prev_solid[j], cur_solid[j - 1]);
      double best_gap = std::max(prev_gap[j], cur_gap[j - 1]);
      if (qi == cols[j - 1]) {
        if (dummy_row) {
          best_gap = std::max(best_gap, prev_solid[j - 1] + dummy_weight);
        } else {
          best_solid = std::max(
              best_solid, std::max(prev_solid[j - 1], prev_gap[j - 1]) + 1.0);
        }
      }
      cur_solid[j] = best_solid;
      cur_gap[j] = best_gap;
    }
    std::swap(prev_solid, cur_solid);
    std::swap(prev_gap, cur_gap);
  }
  return std::max(prev_solid[c_count], prev_gap[c_count]);
}

bool avx2_available() noexcept { return __builtin_cpu_supports("avx2"); }

#else  // !BES_HAVE_AVX2_KERNEL

double avx2_weighted(std::span<const token> rows, std::span<const token> cols,
                     double dummy_weight, lcs_context& ctx) {
  return scalar_weighted(rows, cols, dummy_weight, ctx);
}

bool avx2_available() noexcept { return false; }

#endif

}  // namespace bes::lcs_detail
