// Classic longest-common-subsequence (Cormen et al., the paper's [5]) as a
// reusable template. Serves as the unmodified base the paper revises and as
// the oracle in property tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace bes {

// Length of the LCS of a and b; O(|a|*|b|) time and space.
template <typename T>
[[nodiscard]] std::size_t lcs_length(std::span<const T> a,
                                     std::span<const T> b) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  std::vector<std::size_t> table((m + 1) * (n + 1), 0);
  auto cell = [&](std::size_t i, std::size_t j) -> std::size_t& {
    return table[i * (n + 1) + j];
  };
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      if (a[i - 1] == b[j - 1]) {
        cell(i, j) = cell(i - 1, j - 1) + 1;
      } else {
        cell(i, j) = std::max(cell(i - 1, j), cell(i, j - 1));
      }
    }
  }
  return cell(m, n);
}

// One LCS of a and b (ties broken toward earlier elements of a).
template <typename T>
[[nodiscard]] std::vector<T> lcs_string(std::span<const T> a,
                                        std::span<const T> b) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  std::vector<std::size_t> table((m + 1) * (n + 1), 0);
  auto cell = [&](std::size_t i, std::size_t j) -> std::size_t& {
    return table[i * (n + 1) + j];
  };
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      if (a[i - 1] == b[j - 1]) {
        cell(i, j) = cell(i - 1, j - 1) + 1;
      } else {
        cell(i, j) = std::max(cell(i - 1, j), cell(i, j - 1));
      }
    }
  }
  std::vector<T> out;
  out.reserve(cell(m, n));
  std::size_t i = m;
  std::size_t j = n;
  while (i > 0 && j > 0) {
    if (a[i - 1] == b[j - 1] && cell(i, j) == cell(i - 1, j - 1) + 1) {
      out.push_back(a[i - 1]);
      --i;
      --j;
    } else if (cell(i - 1, j) >= cell(i, j - 1)) {
      --i;
    } else {
      --j;
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace bes
