#include "lcs/similarity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace bes {

namespace {

// The one switch over norm_kind: both the score (normalize) and the band
// threshold (min_tokens_for) divide by this, so they can never disagree.
// An out-of-enum value (a static_cast from untrusted input that skipped
// checked_norm_kind) throws instead of silently normalizing by 1.0 —
// scores > 1 from that path used to survive all the way into reports.
double norm_denominator(std::size_t m, std::size_t n, norm_kind norm) {
  switch (norm) {
    case norm_kind::query:
      return static_cast<double>(m);
    case norm_kind::max_len:
      return static_cast<double>(std::max(m, n));
    case norm_kind::dice:
      return 0.5 * static_cast<double>(m + n);
    case norm_kind::min_len:
      return static_cast<double>(std::min(m, n));
  }
  throw std::invalid_argument("norm_denominator: invalid norm_kind " +
                              std::to_string(static_cast<int>(norm)));
}

}  // namespace

norm_kind checked_norm_kind(long long raw) {
  switch (raw) {
    case static_cast<long long>(norm_kind::query):
    case static_cast<long long>(norm_kind::max_len):
    case static_cast<long long>(norm_kind::dice):
    case static_cast<long long>(norm_kind::min_len):
      return static_cast<norm_kind>(raw);
    default:
      throw std::invalid_argument("checked_norm_kind: invalid norm_kind " +
                                  std::to_string(raw));
  }
}

namespace {

double normalize(std::size_t lcs, std::size_t m, std::size_t n,
                 norm_kind norm) {
  if (m == 0 || n == 0) return 0.0;
  return static_cast<double>(lcs) / norm_denominator(m, n, norm);
}

// Anything within this margin of a threshold is scored exactly instead of
// pruned. It absorbs the rounding of the derived axis requirements (a few
// ulps), so candidates at the exact float threshold — where top-k ties are
// decided — always take the same path as an exhaustive scan, and every
// early return sits a full margin below min_score even after rounding.
constexpr double band_margin = 1e-9;

// Smallest LCS length whose normalized value reaches `target` less the
// margin; float error can only weaken the band (stay admissible), never
// discard a candidate whose score ties the threshold.
std::size_t min_tokens_for(double target, std::size_t m, std::size_t n,
                           norm_kind norm) {
  if (m == 0 || n == 0) return 0;
  const double cells = (target - band_margin) * norm_denominator(m, n, norm);
  if (cells <= 0.0) return 0;
  return static_cast<std::size_t>(std::ceil(cells));
}

std::size_t axis_lcs_bounded(std::span<const token> q, std::span<const token> d,
                             const similarity_options& options,
                             std::size_t min_needed, lcs_context& ctx) {
  return options.exact_lcs
             ? be_lcs_length_exact_bounded(q, d, min_needed, ctx)
             : be_lcs_length_bounded(q, d, min_needed, ctx);
}

}  // namespace

double axis_similarity(std::span<const token> q, std::span<const token> d,
                       const similarity_options& options) {
  return axis_similarity(q, d, options, lcs_context::thread_local_instance());
}

double axis_similarity(std::span<const token> q, std::span<const token> d,
                       const similarity_options& options, lcs_context& ctx) {
  const std::size_t lcs = options.exact_lcs ? be_lcs_length_exact(q, d, ctx)
                                            : be_lcs_length(q, d, ctx);
  return normalize(lcs, q.size(), d.size(), options.norm);
}

double similarity(const be_string2d& q, const be_string2d& d,
                  const similarity_options& options) {
  return similarity(q, d, options, lcs_context::thread_local_instance());
}

double similarity(const be_string2d& q, const be_string2d& d,
                  const similarity_options& options, lcs_context& ctx) {
  return 0.5 * (axis_similarity(q.x.span(), d.x.span(), options, ctx) +
                axis_similarity(q.y.span(), d.y.span(), options, ctx));
}

double similarity_bounded(const be_string2d& q, const be_string2d& d,
                          const similarity_options& options, double min_score,
                          lcs_context& ctx, double y_cap) {
  y_cap = std::min(y_cap, 1.0);
  // The x axis must reach 2*min_score - y_cap for the pair to stay alive.
  const std::size_t mx = q.x.size();
  const std::size_t nx = d.x.size();
  const double need_x = 2.0 * min_score - y_cap;
  const std::size_t band_x = min_tokens_for(need_x, mx, nx, options.norm);
  const std::size_t lx =
      axis_lcs_bounded(q.x.span(), d.x.span(), options, band_x, ctx);
  const double sx = normalize(lx, mx, nx, options.norm);
  // The shortcut is decided in integer token space — floats at the exact
  // threshold would be rounding-dependent. lx < band_x covers both a bailed
  // DP (its result is an upper bound < band_x) and an exact value below the
  // band; either way the true x score sits a full margin under need_x, so
  // the total stays strictly < min_score even after rounding. lx >= band_x
  // implies the DP finished, making sx exact.
  if (lx < band_x) return 0.5 * (sx + y_cap);

  const std::size_t my = q.y.size();
  const std::size_t ny = d.y.size();
  const double need_y = 2.0 * min_score - sx;
  const std::size_t band_y = min_tokens_for(need_y, my, ny, options.norm);
  const std::size_t ly =
      axis_lcs_bounded(q.y.span(), d.y.span(), options, band_y, ctx);
  const double sy = normalize(ly, my, ny, options.norm);
  return 0.5 * (sx + sy);
}

query_transforms precompute_transforms(const be_string2d& q) {
  query_transforms out;
  for (dihedral t : all_dihedral) {
    out.strings[static_cast<std::size_t>(t)] = apply(t, q);
  }
  return out;
}

transform_match best_transform_similarity(const query_transforms& q,
                                          const be_string2d& d,
                                          const similarity_options& options) {
  return best_transform_similarity(q, d, options,
                                   lcs_context::thread_local_instance());
}

transform_match best_transform_similarity(const query_transforms& q,
                                          const be_string2d& d,
                                          const similarity_options& options,
                                          lcs_context& ctx) {
  transform_match best;
  best.score = -1.0;
  for (dihedral t : all_dihedral) {
    const be_string2d& variant = q.strings[static_cast<std::size_t>(t)];
    // Once one variant is scored, the rest only matter if they beat it, so
    // they run under the early-exit band at the current best. Ties keep the
    // earlier transform, exactly like an unbanded strict-greater scan.
    const double score =
        best.score < 0.0
            ? similarity(variant, d, options, ctx)
            : similarity_bounded(variant, d, options, best.score, ctx);
    if (score > best.score) {
      best = transform_match{t, score};
    }
  }
  return best;
}

transform_match best_transform_similarity(const be_string2d& q,
                                          const be_string2d& d,
                                          const similarity_options& options) {
  return best_transform_similarity(precompute_transforms(q), d, options);
}

}  // namespace bes
