#include "lcs/similarity.hpp"

#include <algorithm>

namespace bes {

namespace {

double normalize(std::size_t lcs, std::size_t m, std::size_t n,
                 norm_kind norm) {
  if (m == 0 || n == 0) return 0.0;
  switch (norm) {
    case norm_kind::query:
      return static_cast<double>(lcs) / static_cast<double>(m);
    case norm_kind::max_len:
      return static_cast<double>(lcs) / static_cast<double>(std::max(m, n));
    case norm_kind::dice:
      return 2.0 * static_cast<double>(lcs) / static_cast<double>(m + n);
    case norm_kind::min_len:
      return static_cast<double>(lcs) / static_cast<double>(std::min(m, n));
  }
  return 0.0;
}

}  // namespace

double axis_similarity(std::span<const token> q, std::span<const token> d,
                       const similarity_options& options) {
  const std::size_t lcs =
      options.exact_lcs ? be_lcs_length_exact(q, d) : be_lcs_length(q, d);
  return normalize(lcs, q.size(), d.size(), options.norm);
}

double similarity(const be_string2d& q, const be_string2d& d,
                  const similarity_options& options) {
  return 0.5 * (axis_similarity(q.x.span(), d.x.span(), options) +
                axis_similarity(q.y.span(), d.y.span(), options));
}

transform_match best_transform_similarity(const be_string2d& q,
                                          const be_string2d& d,
                                          const similarity_options& options) {
  transform_match best;
  best.score = -1.0;
  for (dihedral t : all_dihedral) {
    const double score = similarity(apply(t, q), d, options);
    if (score > best.score) {
      best = transform_match{t, score};
    }
  }
  return best;
}

}  // namespace bes
