#include "db/access_path.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "db/hybrid_index.hpp"
#include "db/prefilter.hpp"
#include "db/scan.hpp"
#include "db/spatial_index.hpp"

namespace bes {

std::string_view to_string(access_path_kind kind) noexcept {
  switch (kind) {
    case access_path_kind::full_scan:
      return "full_scan";
    case access_path_kind::inverted_index:
      return "inverted_index";
    case access_path_kind::rtree_window:
      return "rtree_window";
    case access_path_kind::combined:
      return "combined";
    case access_path_kind::hybrid:
      return "hybrid";
  }
  return "unknown";
}

access_path_kind access_path_kind_from(std::string_view name) {
  for (access_path_kind kind :
       {access_path_kind::full_scan, access_path_kind::inverted_index,
        access_path_kind::rtree_window, access_path_kind::combined,
        access_path_kind::hybrid}) {
    if (to_string(kind) == name) return kind;
  }
  throw std::invalid_argument("unknown access path: " + std::string(name));
}

namespace {

// Sum of the query symbols' posting-list lengths: an upper bound on the
// inverted-index union (every candidate appears in >= 1 list).
std::size_t posting_mass(const image_database& db,
                         std::span<const symbol_id> symbols) {
  std::size_t total = 0;
  for (symbol_id s : symbols) total += db.postings(s);
  return total;
}

// Upper-bound estimate for the spatial paths: each query icon can match at
// most its symbol's whole posting list, scaled by how much of the query
// domain its padded window covers (records spread over the same domain, so
// the window/domain area ratio is the cheap stand-in for spatial density).
// All three spatial paths produce the same SET (window hits are
// symbol-filtered, hence a subset of the index union), so they share this
// estimate.
std::size_t window_mass(const image_database& db, const path_probe& probe) {
  const symbolic_image& query = *probe.image;
  const double domain_area =
      std::max(1.0, static_cast<double>(query.width()) *
                        static_cast<double>(query.height()));
  double total = 0.0;
  for (const icon& obj : query.icons()) {
    const double w = static_cast<double>(obj.mbr.x.hi - obj.mbr.x.lo +
                                         2 * probe.pad);
    const double h = static_cast<double>(obj.mbr.y.hi - obj.mbr.y.lo +
                                         2 * probe.pad);
    const double ratio = std::min(1.0, (w * h) / domain_area);
    total += static_cast<double>(db.postings(obj.symbol)) * ratio;
  }
  const auto capped = static_cast<std::size_t>(total);
  return std::min({capped, posting_mass(db, probe.symbols), db.size()});
}

void require_image(const path_probe& probe, access_path_kind kind) {
  if (probe.image == nullptr) {
    throw std::invalid_argument(std::string(to_string(kind)) +
                                " access path needs the query image");
  }
}

class full_scan_path final : public access_path {
 public:
  explicit full_scan_path(const image_database& db) : db_(&db) {}

  access_path_kind kind() const noexcept override {
    return access_path_kind::full_scan;
  }

  std::size_t estimate(const path_probe&) const override { return db_->size(); }

  std::vector<image_id> generate(const path_probe&,
                                 access_path_stats* stats) const override {
    std::vector<image_id> all;
    all.reserve(db_->size());
    for (std::size_t i = 0; i < db_->size(); ++i) {
      all.push_back(static_cast<image_id>(i));
    }
    if (stats != nullptr) *stats = access_path_stats{all.size(), 0};
    return all;
  }

 private:
  const image_database* db_;
};

class inverted_index_path final : public access_path {
 public:
  explicit inverted_index_path(const image_database& db) : db_(&db) {}

  access_path_kind kind() const noexcept override {
    return access_path_kind::inverted_index;
  }

  std::size_t estimate(const path_probe& probe) const override {
    return std::min(db_->size(), posting_mass(*db_, probe.symbols));
  }

  std::vector<image_id> generate(const path_probe& probe,
                                 access_path_stats* stats) const override {
    std::vector<image_id> out = db_->candidates(probe.symbols);
    if (stats != nullptr) {
      *stats = access_path_stats{posting_mass(*db_, probe.symbols), 0};
    }
    return out;
  }

 private:
  const image_database* db_;
};

class rtree_window_path final : public access_path {
 public:
  rtree_window_path(const image_database& db, const spatial_index& spatial)
      : db_(&db), spatial_(&spatial) {}

  access_path_kind kind() const noexcept override {
    return access_path_kind::rtree_window;
  }

  std::size_t estimate(const path_probe& probe) const override {
    require_image(probe, kind());
    return window_mass(*db_, probe);
  }

  std::vector<image_id> generate(const path_probe& probe,
                                 access_path_stats* stats) const override {
    require_image(probe, kind());
    std::size_t generated = 0;
    std::vector<image_id> out =
        window_candidates(*spatial_, *probe.image, probe.pad, &generated);
    if (stats != nullptr) *stats = access_path_stats{generated, 0};
    return out;
  }

 private:
  const image_database* db_;
  const spatial_index* spatial_;
};

class combined_path final : public access_path {
 public:
  combined_path(const image_database& db, const spatial_index& spatial)
      : db_(&db), spatial_(&spatial) {}

  access_path_kind kind() const noexcept override {
    return access_path_kind::combined;
  }

  std::size_t estimate(const path_probe& probe) const override {
    require_image(probe, kind());
    return window_mass(*db_, probe);
  }

  std::vector<image_id> generate(const path_probe& probe,
                                 access_path_stats* stats) const override {
    require_image(probe, kind());
    std::size_t generated = 0;
    std::vector<image_id> out =
        combined_candidates(*db_, *spatial_, *probe.image, probe.pad,
                            &generated);
    if (stats != nullptr) *stats = access_path_stats{generated, 0};
    return out;
  }

 private:
  const image_database* db_;
  const spatial_index* spatial_;
};

class hybrid_path final : public access_path {
 public:
  hybrid_path(const image_database& db, const hybrid_index& hybrid)
      : db_(&db), hybrid_(&hybrid) {}

  access_path_kind kind() const noexcept override {
    return access_path_kind::hybrid;
  }

  std::size_t estimate(const path_probe& probe) const override {
    require_image(probe, kind());
    return window_mass(*db_, probe);
  }

  std::vector<image_id> generate(const path_probe& probe,
                                 access_path_stats* stats) const override {
    require_image(probe, kind());
    hybrid_index::traversal_stats traversal;
    std::vector<image_id> out = hybrid_->candidates(
        *probe.image, probe.pad, stats != nullptr ? &traversal : nullptr);
    if (stats != nullptr) {
      *stats = access_path_stats{traversal.raw_hits, traversal.nodes_visited};
    }
    return out;
  }

 private:
  const image_database* db_;
  const hybrid_index* hybrid_;
};

}  // namespace

std::unique_ptr<access_path> make_access_path(access_path_kind kind,
                                              const access_path_context& ctx) {
  if (ctx.db == nullptr) {
    throw std::invalid_argument("make_access_path: null database");
  }
  switch (kind) {
    case access_path_kind::full_scan:
      return std::make_unique<full_scan_path>(*ctx.db);
    case access_path_kind::inverted_index:
      return std::make_unique<inverted_index_path>(*ctx.db);
    case access_path_kind::rtree_window:
      if (ctx.spatial == nullptr) break;
      return std::make_unique<rtree_window_path>(*ctx.db, *ctx.spatial);
    case access_path_kind::combined:
      if (ctx.spatial == nullptr) break;
      return std::make_unique<combined_path>(*ctx.db, *ctx.spatial);
    case access_path_kind::hybrid:
      if (ctx.hybrid == nullptr) break;
      return std::make_unique<hybrid_path>(*ctx.db, *ctx.hybrid);
  }
  throw std::invalid_argument("make_access_path: " +
                              std::string(to_string(kind)) +
                              " needs its index structure in the context");
}

namespace detail {

// The index/full-scan decision every legacy scan makes, now answered
// through the access-path interface: query.cpp and shard.cpp call this and
// never touch the inverted index directly.
std::vector<image_id> scan_ids(const image_database& db,
                               std::span<const symbol_id> query_symbols,
                               const query_options& options,
                               std::size_t* generated) {
  const access_path_kind kind =
      options.use_index && !query_symbols.empty()
          ? access_path_kind::inverted_index
          : access_path_kind::full_scan;
  const access_path_context ctx{&db, nullptr, nullptr};
  access_path_stats stats;
  std::vector<image_id> ids = make_access_path(kind, ctx)->generate(
      path_probe{nullptr, query_symbols, 0}, &stats);
  if (generated != nullptr) *generated = stats.candidates_generated;
  return ids;
}

}  // namespace detail

}  // namespace bes
