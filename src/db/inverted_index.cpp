#include "db/inverted_index.hpp"

#include <algorithm>

namespace bes {

void inverted_index::add(std::uint32_t id, std::span<const symbol_id> symbols) {
  // Phase 1 — all allocations: create missing lists and grow full ones.
  // Anything thrown here leaves only empty lists / spare capacity behind,
  // never a posting for `id`.
  for (symbol_id s : symbols) {
    auto& list = lists_[s];
    if (list.size() == list.capacity()) {
      list.reserve(list.empty() ? 4 : 2 * list.size());
    }
  }
  // Phase 2 — no-throw appends into reserved capacity.
  for (symbol_id s : symbols) {
    auto& list = lists_[s];
    if (list.empty() || list.back() != id) list.push_back(id);
  }
}

std::vector<std::uint32_t> inverted_index::lookup_any(
    std::span<const symbol_id> symbols) const {
  std::vector<std::uint32_t> out;
  for (symbol_id s : symbols) {
    auto it = lists_.find(s);
    if (it == lists_.end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t inverted_index::postings(symbol_id symbol) const noexcept {
  auto it = lists_.find(symbol);
  return it == lists_.end() ? 0 : it->second.size();
}

}  // namespace bes
