#include "db/shard.hpp"

#include <algorithm>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>

#include "db/access_path.hpp"
#include "db/result_cache.hpp"
#include "db/scan.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace bes {

// ------------------------------------------------------------- shard_ring

namespace {

// A shard's virtual-node points depend on the shard index ALONE (two
// SplitMix64 mixes), never on the shard count — the consistent-hashing
// invariant that makes resizes move only the new/removed shard's arcs.
std::uint64_t vnode_point(std::size_t shard, std::size_t replica) {
  return derive_seed(derive_seed(0xBE55A1DBull, shard), replica);
}

std::uint64_t id_point(image_id id) {
  return derive_seed(0x1D5EEDull, id);
}

}  // namespace

shard_ring::shard_ring(std::size_t shard_count, std::size_t replicas)
    : shards_(shard_count), replicas_(replicas) {
  if (shard_count == 0) {
    throw std::invalid_argument("shard_ring: shard_count must be >= 1");
  }
  if (replicas == 0) {
    throw std::invalid_argument("shard_ring: replicas must be >= 1");
  }
  ring_.reserve(shard_count * replicas);
  for (std::size_t s = 0; s < shard_count; ++s) {
    for (std::size_t r = 0; r < replicas; ++r) {
      ring_.push_back(vnode{vnode_point(s, r), static_cast<std::uint32_t>(s)});
    }
  }
  // The shard tiebreak keeps the ring deterministic even on (astronomically
  // unlikely) point collisions.
  std::sort(ring_.begin(), ring_.end(), [](const vnode& a, const vnode& b) {
    if (a.point != b.point) return a.point < b.point;
    return a.shard < b.shard;
  });
}

std::size_t shard_ring::shard_of(image_id id) const noexcept {
  const std::uint64_t h = id_point(id);
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const vnode& v, std::uint64_t point) { return v.point < point; });
  return it == ring_.end() ? ring_.front().shard : it->shard;
}

// -------------------------------------------------------- sharded_database

sharded_database::sharded_database(std::size_t shard_count,
                                   std::size_t ring_replicas)
    : ring_(shard_count, ring_replicas) {
  shards_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    shards_.push_back(std::make_unique<shard_part>());
  }
}

sharded_database::shard_part& sharded_database::route(std::size_t shard) {
  shard_part& part = *shards_[shard];
  // Mirror the master alphabet into the shard before the record lands, so
  // shard-local symbol ids are ALWAYS the master ids (every shard alphabet
  // is a prefix of the master at all times).
  for (std::size_t i = part.db.symbols().size(); i < symbols_.size(); ++i) {
    part.db.symbols().intern(symbols_.names()[i]);
  }
  return part;
}

// The publication order scans depend on. (1) The local->global mapping is
// STAGED (written but unpublished) before the record lands: a scan that sees
// the record — published by the shard db's commit — is guaranteed to see the
// mapping too, because the stage write happens-before that commit. Staging
// instead of pushing keeps the strong guarantee: a throwing add leaves an
// uncommitted slot the next add overwrites, never an orphan mapping that
// would skew every later local id. (2) The spatial/hybrid indexes take their
// own locks. (3) The global locator publishes LAST, so size() (and
// record(global)) only ever cover fully wired records.
image_id sharded_database::install(std::size_t shard, shard_part& part,
                                   image_id global, std::string name,
                                   symbolic_image image, be_string2d strings,
                                   be_histogram2d histograms) {
  part.global_ids.stage(global);
  const image_id local =
      part.db.add_encoded(std::move(name), std::move(image),
                          std::move(strings), std::move(histograms));
  part.global_ids.commit();
  part.spatial.add_image(local);
  part.hybrid.add_image(local);
  locs_.push_back({static_cast<std::uint32_t>(shard), local});
  return global;
}

image_id sharded_database::add(std::string name, symbolic_image image) {
  const auto global = static_cast<image_id>(locs_.size());
  const std::size_t shard = ring_.shard_of(global);
  shard_part& part = route(shard);
  be_string2d strings = encode(image);
  be_histogram2d histograms = make_histograms(strings);
  return install(shard, part, global, std::move(name), std::move(image),
                 std::move(strings), std::move(histograms));
}

image_id sharded_database::add_encoded(std::string name, symbolic_image image,
                                       be_string2d strings,
                                       be_histogram2d histograms) {
  const auto global = static_cast<image_id>(locs_.size());
  const std::size_t shard = ring_.shard_of(global);
  shard_part& part = route(shard);
  return install(shard, part, global, std::move(name), std::move(image),
                 std::move(strings), std::move(histograms));
}

bool sharded_database::remove(image_id id) {
  if (id >= locs_.size()) return false;
  const auto& [shard, local] = locs_[id];
  return shards_[shard]->db.remove(local);
}

sharded_snapshot sharded_database::snapshot() const {
  sharded_snapshot snap;
  snap.shards.reserve(shards_.size());
  for (const auto& part : shards_) snap.shards.push_back(part->db.snapshot());
  return snap;
}

std::size_t sharded_database::tombstone_count() const noexcept {
  std::size_t n = 0;
  for (const auto& part : shards_) n += part->db.tombstone_count();
  return n;
}

const db_record& sharded_database::record(image_id id) const {
  if (id >= locs_.size()) {
    throw std::out_of_range("sharded_database: unknown id " +
                            std::to_string(id));
  }
  const auto& [shard, local] = locs_[id];
  return shards_[shard]->db.record(local);
}

std::size_t sharded_database::shard_of(image_id id) const {
  if (id >= locs_.size()) {
    throw std::out_of_range("sharded_database: unknown id " +
                            std::to_string(id));
  }
  return locs_[id].first;
}

std::uint64_t sharded_database::removed_epoch(image_id id) const {
  if (id >= locs_.size()) {
    throw std::out_of_range("sharded_database: unknown id " +
                            std::to_string(id));
  }
  const auto& [shard, local] = locs_[id];
  return shards_[shard]->db.removed_epoch(local);
}

const image_database& sharded_database::shard_db(std::size_t s) const {
  return shards_.at(s)->db;
}

const spatial_index& sharded_database::shard_spatial(std::size_t s) const {
  return shards_.at(s)->spatial;
}

const hybrid_index& sharded_database::shard_hybrid(std::size_t s) const {
  return shards_.at(s)->hybrid;
}

const stable_vector<image_id>& sharded_database::shard_global_ids(
    std::size_t s) const {
  return shards_.at(s)->global_ids;
}

std::vector<image_id> sharded_database::candidates(
    std::span<const symbol_id> query_symbols) const {
  std::vector<image_id> out;
  for (const auto& part : shards_) {
    // Through the access-path interface, like every other candidate
    // generation in the scan engine.
    const access_path_context ctx{&part->db, nullptr, nullptr};
    const auto path = make_access_path(access_path_kind::inverted_index, ctx);
    for (image_id local :
         path->generate(path_probe{nullptr, query_symbols, 0})) {
      out.push_back(part->global_ids[local]);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<image_id> sharded_database::candidates(
    const symbolic_image& query) const {
  const auto symbols = distinct_symbols(query);
  return candidates(symbols);
}

sharded_database make_sharded(const image_database& db,
                              std::size_t shard_count,
                              std::size_t ring_replicas) {
  sharded_database out(shard_count, ring_replicas);
  for (const std::string& name : db.symbols().names()) {
    out.symbols().intern(name);
  }
  for (const db_record& rec : db.records()) {
    // Re-adding preserves global ids (dense insertion order); tombstones
    // carry over so the partitioned copy answers like the original.
    const image_id global =
        out.add_encoded(rec.name, rec.image, rec.strings, rec.histograms);
    if (rec.removed_at != 0) out.remove(global);
  }
  return out;
}

// ----------------------------------------------------------- query fan-out

namespace {

void accumulate(search_stats& into, const search_stats& part) {
  into.scanned += part.scanned;
  into.scored += part.scored;
  into.pruned += part.pruned;
  into.band_rejected += part.band_rejected;
  into.candidates_generated += part.candidates_generated;
  into.plans.insert(into.plans.end(), part.plans.begin(), part.plans.end());
  into.degraded = into.degraded || part.degraded;
  into.shard_statuses.insert(into.shard_statuses.end(),
                             part.shard_statuses.begin(),
                             part.shard_statuses.end());
}

// Concatenate per-shard top-k lists and re-rank. Each part is already
// min_score-filtered and locally truncated; the merge only has to pick the
// global top_k by the same total order every scan used.
std::vector<query_result> merge_parts(
    std::vector<std::vector<query_result>>& parts,
    const query_options& options) {
  std::vector<query_result> all;
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  all.reserve(total);
  for (auto& part : parts) {
    all.insert(all.end(), part.begin(), part.end());
  }
  std::sort(all.begin(), all.end(), detail::result_better);
  if (options.top_k != 0 && all.size() > options.top_k) {
    all.resize(options.top_k);
  }
  return all;
}

// One query fanned over all shards. `local_candidates`, when non-null,
// replaces the index/full scan with explicit per-shard (local-id) candidate
// lists. Precomputed `histograms`/`transforms` may be null (computed on
// demand inside each shard scan — single-query callers precompute them so
// that happens once, not per shard).
//
// When the pruner engages, every shard scan inserts into ONE shared top-k
// (detail::shared_topk), so the pruning threshold is the running GLOBAL
// k-th score — the same admissibility and the same pruning power as the
// unsharded scan, with the per-candidate threshold read served from an
// atomic. Exhaustive scans have no threshold to share: each shard returns
// its ranked slice and the merge re-ranks the concatenation.
std::vector<query_result> fanout_search(
    const sharded_database& db, const be_string2d& query_strings,
    std::span<const symbol_id> query_symbols,
    const std::vector<std::vector<image_id>>* local_candidates,
    const be_histogram2d* histograms, const query_transforms* transforms,
    const query_options& options, search_stats* stats,
    const sharded_snapshot* snap = nullptr) {
  const std::size_t shards = db.shard_count();
  // Unpinned callers still get ONE consistent view across all their shard
  // scans: capturing per scan instead would let a concurrent remove land
  // between two shards of the same query.
  sharded_snapshot captured;
  if (snap == nullptr) {
    captured = db.snapshot();
    snap = &captured;
  }
  if (snap->shards.size() != shards) {
    throw std::invalid_argument("search: snapshot/shard count mismatch");
  }
  const bool pruned = detail::pruning_applies(options);
  std::optional<detail::shared_topk> shared;
  if (pruned) shared.emplace(options.top_k, options.min_score);
  // Thread budget: shard-per-worker first (dynamic, chunk 1), leftover
  // threads go to candidate-level parallelism inside each scan. With one
  // shard this degrades to exactly the unsharded scan.
  const unsigned outer = static_cast<unsigned>(
      std::max<std::size_t>(1, std::min<std::size_t>(options.threads, shards)));
  query_options inner = options;
  inner.threads = std::max(1u, options.threads / outer);

  std::vector<std::vector<query_result>> parts(shards);
  std::vector<search_stats> part_stats(shards);
  parallel_for(
      shards, outer,
      [&](std::size_t s) {
        const image_database& shard = db.shard_db(s);
        std::size_t generated = 0;
        const std::vector<image_id> ids =
            local_candidates != nullptr
                ? (*local_candidates)[s]
                : detail::scan_ids(shard, query_symbols, options, &generated);
        if (local_candidates != nullptr) generated = ids.size();
        parts[s] = detail::scan_shard(
            shard, query_strings, ids,
            detail::id_map{.chunked = &db.shard_global_ids(s)}, histograms,
            transforms, inner, pruned ? &*shared : nullptr, &part_stats[s],
            &snap->shards[s]);
        // scan_shard resets its stats; the generation accounting goes on top.
        part_stats[s].candidates_generated = generated;
      },
      /*chunk=*/1);

  if (stats != nullptr) {
    *stats = search_stats{};
    for (const search_stats& part : part_stats) accumulate(*stats, part);
  }
  // Pruned survivors already merged inside the shared heap (sorted,
  // min_score-filtered, capacity-trimmed); exhaustive parts need the merge.
  return pruned ? shared->take() : merge_parts(parts, options);
}

// Per-query state a single fan-out needs at most once: the batch plan
// machinery over a one-element span, so the engagement rules live in one
// place (detail::make_plans).
struct fanout_plan {
  std::vector<detail::query_plan> plans;
  const be_histogram2d* histograms_ptr = nullptr;
  const query_transforms* transforms_ptr = nullptr;

  fanout_plan(const be_string2d& query_strings, const query_options& options)
      : plans(detail::make_plans({&query_strings, 1}, options)) {
    if (detail::pruning_applies(options)) {
      histograms_ptr = &plans[0].histograms;
    }
    if (options.transform_invariant) transforms_ptr = &plans[0].transforms;
  }
};

}  // namespace

std::vector<query_result> search(const sharded_database& db,
                                 const be_string2d& query_strings,
                                 std::span<const symbol_id> query_symbols,
                                 const query_options& options,
                                 search_stats* stats) {
  const fanout_plan plan(query_strings, options);
  return fanout_search(db, query_strings, query_symbols, nullptr,
                       plan.histograms_ptr, plan.transforms_ptr, options,
                       stats);
}

std::vector<query_result> search(const sharded_database& db,
                                 const symbolic_image& query,
                                 const query_options& options,
                                 search_stats* stats) {
  const be_string2d strings = encode(query);
  const std::vector<symbol_id> symbols = distinct_symbols(query);
  return search(db, strings, symbols, options, stats);
}

std::vector<query_result> search(const sharded_database& db,
                                 const sharded_snapshot& snap,
                                 const be_string2d& query_strings,
                                 std::span<const symbol_id> query_symbols,
                                 const query_options& options,
                                 search_stats* stats) {
  const fanout_plan plan(query_strings, options);
  return fanout_search(db, query_strings, query_symbols, nullptr,
                       plan.histograms_ptr, plan.transforms_ptr, options,
                       stats, &snap);
}

std::vector<query_result> search(const sharded_database& db,
                                 const sharded_snapshot& snap,
                                 const symbolic_image& query,
                                 const query_options& options,
                                 search_stats* stats) {
  const be_string2d strings = encode(query);
  const std::vector<symbol_id> symbols = distinct_symbols(query);
  return search(db, snap, strings, symbols, options, stats);
}

std::vector<query_result> search_candidates(const sharded_database& db,
                                            const be_string2d& query_strings,
                                            std::span<const image_id> candidates,
                                            const query_options& options,
                                            search_stats* stats) {
  std::vector<std::vector<image_id>> local(db.shard_count());
  for (image_id id : candidates) {
    if (id >= db.size()) {
      throw std::out_of_range("search_candidates: id " + std::to_string(id) +
                              " out of range");
    }
    const std::size_t s = db.shard_of(id);
    // record() is the (shard, local) lookup; its id field IS the local id.
    local[s].push_back(db.record(id).id);
  }
  const fanout_plan plan(query_strings, options);
  return fanout_search(db, query_strings, {}, &local, plan.histograms_ptr,
                       plan.transforms_ptr, options, stats);
}

std::vector<query_result> search_local_candidates(
    const sharded_database& db, const be_string2d& query_strings,
    const std::vector<std::vector<image_id>>& local_candidates,
    const query_options& options, search_stats* stats) {
  if (local_candidates.size() != db.shard_count()) {
    throw std::invalid_argument(
        "search_local_candidates: need one candidate list per shard");
  }
  for (std::size_t s = 0; s < local_candidates.size(); ++s) {
    for (image_id local : local_candidates[s]) {
      if (local >= db.shard_db(s).size()) {
        throw std::out_of_range("search_local_candidates: local id " +
                                std::to_string(local) + " out of range");
      }
    }
  }
  const fanout_plan plan(query_strings, options);
  return fanout_search(db, query_strings, {}, &local_candidates,
                       plan.histograms_ptr, plan.transforms_ptr, options,
                       stats);
}

std::vector<query_result> search_local_candidates(
    const sharded_database& db, const sharded_snapshot& snap,
    const be_string2d& query_strings,
    const std::vector<std::vector<image_id>>& local_candidates,
    const query_options& options, search_stats* stats) {
  if (local_candidates.size() != db.shard_count()) {
    throw std::invalid_argument(
        "search_local_candidates: need one candidate list per shard");
  }
  for (std::size_t s = 0; s < local_candidates.size(); ++s) {
    for (image_id local : local_candidates[s]) {
      if (local >= db.shard_db(s).size()) {
        throw std::out_of_range("search_local_candidates: local id " +
                                std::to_string(local) + " out of range");
      }
    }
  }
  const fanout_plan plan(query_strings, options);
  return fanout_search(db, query_strings, {}, &local_candidates,
                       plan.histograms_ptr, plan.transforms_ptr, options,
                       stats, &snap);
}

// --------------------------------------------------------- cached fan-out

namespace {

std::vector<cache_cut> cuts_of(const sharded_snapshot& snap) {
  std::vector<cache_cut> cuts;
  cuts.reserve(snap.shards.size());
  for (const db_snapshot& s : snap.shards) {
    cuts.push_back(cache_cut{s.visible, s.epoch});
  }
  return cuts;
}

// Sharded delta-scan refresh: re-check the cached hits against each owning
// shard's new cut, then score only each shard's appended local-id suffix
// through the pinned local-candidate fan-out. Nullopt = not upgradeable
// (a deletion hit an incomplete entry); the caller full-scans instead.
//
// The kth-survivor floor is admissible without any id-order argument: both
// the min_score filter and the pruning threshold discard strictly-below
// scores only, and with a FULL surviving top-k every record scoring below
// the k-th survivor is beaten by at least top_k alive records.
std::optional<std::vector<query_result>> sharded_delta_refresh(
    const sharded_database& db, const sharded_snapshot& snap,
    result_cache& cache, const cache_key& key, const cache_entry& entry,
    const std::vector<cache_cut>& now, const be_string2d& query_strings,
    std::span<const symbol_id> query_symbols, const query_options& options,
    search_stats* stats) {
  const std::size_t shards = db.shard_count();

  std::vector<query_result> survivors = entry.results;
  from_canonical_frame(survivors, key.canon);
  std::size_t deaths = 0;
  std::erase_if(survivors, [&](const query_result& r) {
    const std::size_t s = db.shard_of(r.id);
    const bool dead = !snap.shards[s].alive(db.record(r.id).id);
    deaths += dead ? 1 : 0;
    return dead;
  });
  if (deaths > 0 && !entry.complete) return std::nullopt;

  // Each shard's suffix through that shard's own generation rule, exactly
  // as the full fan-out would generate it, restricted to the appended range.
  std::vector<std::vector<image_id>> suffix(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    const std::vector<image_id> ids =
        detail::scan_ids(db.shard_db(s), query_symbols, options, nullptr);
    for (image_id local : ids) {
      if (local >= entry.cuts[s].visible && local < now[s].visible) {
        suffix[s].push_back(local);
      }
    }
  }

  query_options delta_options = options;
  if (options.top_k > 0 && survivors.size() == options.top_k) {
    delta_options.min_score =
        std::max(options.min_score, survivors.back().score);
  }

  search_stats delta_stats;
  std::vector<query_result> fresh = search_local_candidates(
      db, snap, query_strings, suffix, delta_options, &delta_stats);

  std::vector<query_result> merged = std::move(survivors);
  merged.insert(merged.end(), fresh.begin(), fresh.end());
  merged = detail::rank_results(std::move(merged), options);

  cache.note_delta_refresh(delta_stats.scanned);
  if (stats != nullptr) {
    *stats = delta_stats;
    stats->cache_delta_refreshes = 1;
    stats->cache_delta_rescored = delta_stats.scanned;
  }

  cache_entry updated;
  updated.results = merged;
  to_canonical_frame(updated.results, key.canon);
  updated.cuts = now;
  updated.complete = options.top_k == 0 || merged.size() < options.top_k;
  cache.put(key, std::move(updated));
  return merged;
}

std::vector<query_result> sharded_cached_impl(
    const sharded_database& db, const sharded_snapshot& snap,
    result_cache& cache, const be_string2d& query_strings,
    std::span<const symbol_id> query_symbols, const query_options& options,
    search_stats* stats) {
  if (snap.shards.size() != db.shard_count()) {
    throw std::invalid_argument("search_cached: snapshot/shard count mismatch");
  }
  const cache_key key = make_cache_key(
      query_strings, query_symbols, options, cache_scope::sharded,
      static_cast<std::uint32_t>(db.shard_count()),
      static_cast<std::uint32_t>(db.ring().replicas()));
  const std::vector<cache_cut> now = cuts_of(snap);

  const std::optional<cache_entry> entry = cache.find(key);
  if (entry.has_value() && entry->cuts.size() == now.size()) {
    if (entry->cuts == now) {
      cache.note_hit();
      if (stats != nullptr) {
        *stats = search_stats{};
        stats->cache_hits = 1;
      }
      std::vector<query_result> out = entry->results;
      from_canonical_frame(out, key.canon);
      return out;
    }
    bool forward = true;
    std::uint64_t appended = 0;
    for (std::size_t s = 0; s < now.size(); ++s) {
      if (now[s].visible < entry->cuts[s].visible ||
          now[s].epoch < entry->cuts[s].epoch) {
        forward = false;
        break;
      }
      appended += now[s].visible - entry->cuts[s].visible;
    }
    if (forward && appended <= cache.options().max_delta_records) {
      auto refreshed =
          sharded_delta_refresh(db, snap, cache, key, *entry, now,
                                query_strings, query_symbols, options, stats);
      if (refreshed.has_value()) return std::move(*refreshed);
    }
  }

  cache.note_miss();
  std::vector<query_result> out =
      search(db, snap, query_strings, query_symbols, options, stats);
  if (stats != nullptr) stats->cache_misses = 1;
  bool store = true;
  if (entry.has_value() && entry->cuts.size() == now.size()) {
    for (std::size_t s = 0; s < now.size(); ++s) {
      if (now[s].visible < entry->cuts[s].visible ||
          now[s].epoch < entry->cuts[s].epoch) {
        store = false;
        break;
      }
    }
  }
  if (store) {
    cache_entry fresh;
    fresh.results = out;
    to_canonical_frame(fresh.results, key.canon);
    fresh.cuts = now;
    fresh.complete = options.top_k == 0 || out.size() < options.top_k;
    cache.put(key, std::move(fresh));
  }
  return out;
}

}  // namespace

std::vector<query_result> search_cached(const sharded_database& db,
                                        const sharded_snapshot& snap,
                                        result_cache& cache,
                                        const be_string2d& query_strings,
                                        std::span<const symbol_id> query_symbols,
                                        const query_options& options,
                                        search_stats* stats) {
  return sharded_cached_impl(db, snap, cache, query_strings, query_symbols,
                             options, stats);
}

std::vector<query_result> search_cached(const sharded_database& db,
                                        result_cache& cache,
                                        const be_string2d& query_strings,
                                        std::span<const symbol_id> query_symbols,
                                        const query_options& options,
                                        search_stats* stats) {
  const sharded_snapshot snap = db.snapshot();
  return sharded_cached_impl(db, snap, cache, query_strings, query_symbols,
                             options, stats);
}

std::vector<query_result> search_cached(const sharded_database& db,
                                        result_cache& cache,
                                        const symbolic_image& query,
                                        const query_options& options,
                                        search_stats* stats) {
  const be_string2d strings = encode(query);
  const std::vector<symbol_id> symbols = distinct_symbols(query);
  return search_cached(db, cache, strings, symbols, options, stats);
}

std::vector<std::vector<query_result>> search_batch(
    const sharded_database& db, std::span<const be_string2d> queries,
    std::span<const std::vector<symbol_id>> query_symbols,
    const query_options& options, std::vector<search_stats>* stats) {
  if (queries.size() != query_symbols.size()) {
    throw std::invalid_argument(
        "search_batch: queries and query_symbols sizes differ");
  }
  const std::size_t nq = queries.size();
  const std::size_t shards = db.shard_count();
  const bool pruned = detail::pruning_applies(options);
  const bool want_transforms = options.transform_invariant;
  const std::vector<detail::query_plan> plans =
      detail::make_plans(queries, options);

  // Every (query, shard) pair is one item on a single dynamic work queue
  // (chunk 1): workers drain whole shard-scans one at a time, so neither a
  // slow query nor a hot shard strands the batch tail behind it. Scans of
  // the same query share that query's running top-k exactly as in the
  // single-query fan-out (heaps exist only when the pruner engages; the
  // exhaustive path merges per-shard parts instead).
  std::deque<detail::shared_topk> shared;
  for (std::size_t i = 0; pruned && i < nq; ++i) {
    shared.emplace_back(options.top_k, options.min_score);
  }
  // One snapshot for the whole batch: every (query, shard) scan filters
  // against the same instant, so each query's merged result is consistent
  // even while writes land mid-batch.
  const sharded_snapshot snap = db.snapshot();
  std::vector<std::vector<std::vector<query_result>>> parts(
      nq, std::vector<std::vector<query_result>>(shards));
  std::vector<std::vector<search_stats>> part_stats(
      nq, std::vector<search_stats>(shards));
  // Small batches on few shards can have fewer work items than threads;
  // the leftover budget goes inside each scan instead of idling.
  const unsigned outer = static_cast<unsigned>(std::max<std::size_t>(
      1, std::min<std::size_t>(options.threads, nq * shards)));
  query_options inner = options;
  inner.threads = std::max(1u, options.threads / outer);
  parallel_for(
      nq * shards, options.threads,
      [&](std::size_t item) {
        const std::size_t q = item / shards;
        const std::size_t s = item % shards;
        const image_database& shard = db.shard_db(s);
        std::size_t generated = 0;
        const std::vector<image_id> ids =
            detail::scan_ids(shard, query_symbols[q], options, &generated);
        parts[q][s] = detail::scan_shard(
            shard, queries[q], ids,
            detail::id_map{.chunked = &db.shard_global_ids(s)},
            pruned ? &plans[q].histograms : nullptr,
            want_transforms ? &plans[q].transforms : nullptr, inner,
            pruned ? &shared[q] : nullptr, &part_stats[q][s],
            &snap.shards[s]);
        part_stats[q][s].candidates_generated = generated;
      },
      /*chunk=*/1);

  if (stats != nullptr) stats->assign(nq, search_stats{});
  std::vector<std::vector<query_result>> results(nq);
  for (std::size_t q = 0; q < nq; ++q) {
    results[q] = pruned ? shared[q].take() : merge_parts(parts[q], options);
    if (stats != nullptr) {
      for (const search_stats& part : part_stats[q]) {
        accumulate((*stats)[q], part);
      }
    }
  }
  return results;
}

std::vector<std::vector<query_result>> search_batch(
    const sharded_database& db, std::span<const symbolic_image> queries,
    const query_options& options, std::vector<search_stats>* stats) {
  const detail::encoded_queries encoded =
      detail::encode_queries(queries, options.threads);
  return search_batch(db, encoded.strings, encoded.symbols, options, stats);
}

// ------------------------------------------------------- prefilter fan-out

namespace {

// Per-shard candidate generation through one access path, mapped to global
// ids. Shards partition the record set, so the union of per-shard sets IS
// the unsharded set for every path.
std::vector<image_id> fanout_path(const sharded_database& db,
                                  access_path_kind kind,
                                  const symbolic_image& query, int pad) {
  const std::vector<symbol_id> symbols = distinct_symbols(query);
  std::vector<image_id> out;
  for (std::size_t s = 0; s < db.shard_count(); ++s) {
    const access_path_context ctx{&db.shard_db(s), &db.shard_spatial(s),
                                  &db.shard_hybrid(s)};
    const auto& globals = db.shard_global_ids(s);
    for (image_id local : make_access_path(kind, ctx)->generate(
             path_probe{&query, symbols, pad})) {
      out.push_back(globals[local]);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<image_id> window_candidates(const sharded_database& db,
                                        const symbolic_image& query, int pad) {
  return fanout_path(db, access_path_kind::rtree_window, query, pad);
}

std::vector<image_id> combined_candidates(const sharded_database& db,
                                          const symbolic_image& query,
                                          int pad) {
  return fanout_path(db, access_path_kind::combined, query, pad);
}

}  // namespace bes
