// Crash-safe compaction: folds tombstones out of persisted databases and
// merges undersized shards (ROADMAP "Live ingest under traffic").
//
// Deletes never rewrite history — image_database::remove() tombstones, the
// BSEG1 writer appends type-4 records, and the text format grows a trailing
// section — so a long-lived corpus accumulates dead records that every scan
// must still walk past. Compaction rewrites the live subset (ids
// re-densify) and reclaims the bytes.
//
// Both entry points use the rename-aside pattern so a crash at ANY point
// leaves a loadable database on disk:
//
//   segment:  write <out>.compact-tmp fully, then one atomic rename over
//             <out>. A crash leaves either the old segment or the new one,
//             never a torn mix.
//   corpus:   write <dir>.compact-tmp as a complete sibling corpus, then
//             rename <dir> -> <dir>.compact-old, tmp -> <dir>, remove old.
//             The SCRP1 manifest is the LAST thing shard_writer::finish
//             writes, so "tmp has a CRC-valid manifest" is exactly "the
//             rewrite completed" — which is what repair_compaction keys on
//             to roll an interrupted swap forward (manifest loads) or back
//             (it does not).
#pragma once

#include <cstdint>
#include <filesystem>

#include "db/segment.hpp"

namespace bes {

// What a compaction pass did. `compacted == false` means the policy judged
// the rewrite not worth it and the input was left untouched.
struct compaction_stats {
  std::uint64_t records_before = 0;    // records on disk, tombstoned included
  std::uint64_t tombstones_folded = 0; // dead records dropped by the rewrite
  std::uint64_t records_after = 0;     // live records written back
  std::uintmax_t bytes_before = 0;     // file (or directory) footprint
  std::uintmax_t bytes_after = 0;
  std::size_t shards_before = 1;       // 1 for a flat segment
  std::size_t shards_after = 1;
  bool recovered = false;              // recover_tail dropped torn bytes
  bool compacted = false;              // false: policy said leave it alone
};

// When a corpus compaction is worth the rewrite. The zero-initialized
// policy compacts whenever any tombstone (or torn tail) exists.
struct compaction_policy {
  // Skip the rewrite while dead/total stays below this fraction (a corpus
  // with one tombstone in a million records is not worth rewriting).
  double min_dead_fraction = 0.0;
  // Merge shards until every shard holds at least this many live records
  // (never below one shard, never above the source count) — the small-tail
  // merge for corpora that shrank well below their write-time sharding.
  // 0 keeps the source shard count.
  std::uint64_t min_live_per_shard = 0;
};

// Rewrites the BSEG1 segment at `path` with its tombstones folded out and a
// fresh footer, via <out>.compact-tmp + rename. `out` empty = in place.
// `options.recover_tail` additionally salvages a torn segment. Ids
// re-densify: live records keep their order but renumber from zero.
// Always rewrites (stats.compacted is always true) — a no-tombstone compact
// is still the footer-refresh tool it always was.
compaction_stats compact_segment(const std::filesystem::path& path,
                                 const std::filesystem::path& out = {},
                                 segment_read_options options = {});

// Rewrites the SCRP1 corpus directory at `dir` in place: repairs any
// interrupted earlier compaction first, folds tombstones, re-shards per
// `policy`, and swaps the new corpus in with the rename-aside dance above.
// Returns stats.compacted == false (and touches nothing) when there are no
// tombstones to fold, no torn tail to drop, no shard-count change, or the
// dead fraction is below policy.min_dead_fraction.
compaction_stats compact_corpus(const std::filesystem::path& dir,
                                compaction_policy policy = {},
                                segment_read_options options = {});

// When to FIRE a compaction at all — the background-trigger knob (`besdb
// compact --auto`), distinct from compaction_policy, which tunes what the
// rewrite does once it runs. The decision reads only the per-shard footers
// and tombstone records (mmap + parse, no materialization), so polling it
// after every delete burst is cheap.
struct maintenance_policy {
  // Fire when dead/total reaches this fraction.
  double max_dead_fraction = 0.25;
  // ...but never for fewer than this many tombstones (a tiny corpus hits
  // any fraction with one delete; rewriting it buys nothing).
  std::uint64_t min_tombstones = 1;
};

// Tombstone load of a persisted corpus, read from footers only.
struct corpus_usage {
  std::uint64_t records = 0;     // image records on disk, dead included
  std::uint64_t tombstones = 0;  // of which tombstoned
  [[nodiscard]] double dead_fraction() const noexcept {
    return records == 0
               ? 0.0
               : static_cast<double>(tombstones) / static_cast<double>(records);
  }
};

// Sums image and tombstone counts across every shard segment of the SCRP1
// corpus at `dir` (manifest file or directory) without materializing any
// records. Throws std::runtime_error on a bad manifest/segment.
[[nodiscard]] corpus_usage read_corpus_usage(const std::filesystem::path& dir,
                                             segment_read_options options = {});

[[nodiscard]] bool should_compact(const corpus_usage& usage,
                                  const maintenance_policy& policy) noexcept;

// The auto-compaction entry point: repairs any interrupted run, reads the
// corpus usage, and either returns immediately (stats.compacted == false,
// counts filled in) when the maintenance policy says the corpus is healthy,
// or runs compact_corpus under `policy`. The threshold decision is
// maintenance's alone — `policy.min_dead_fraction` is NOT consulted again.
compaction_stats maybe_compact_corpus(const std::filesystem::path& dir,
                                      maintenance_policy maintenance,
                                      compaction_policy policy = {},
                                      segment_read_options options = {});

// Finishes or rolls back a compaction the process died in the middle of:
//   - <dir>.compact-tmp holds a complete corpus (manifest loads): roll
//     FORWARD — complete the swap so the compacted corpus wins.
//   - <dir>.compact-tmp is torn (no valid manifest): roll BACK — remove it;
//     the source corpus was never touched.
//   - only <dir>.compact-old remains: the swap finished but cleanup died —
//     remove the parked copy (or restore it if <dir> itself is gone).
// Returns true when it changed anything. Safe to call on a healthy corpus
// (returns false). compact_corpus calls this first, so simply re-running a
// crashed compaction also repairs it.
bool repair_compaction(const std::filesystem::path& dir);

}  // namespace bes
