#include "db/query.hpp"

#include <algorithm>

#include "util/parallel.hpp"

namespace bes {

namespace {

bool better(const query_result& a, const query_result& b) noexcept {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

std::vector<query_result> rank(std::vector<query_result> hits,
                               const query_options& options) {
  std::erase_if(hits, [&](const query_result& r) {
    return r.score < options.min_score;
  });
  std::sort(hits.begin(), hits.end(), better);
  if (options.top_k != 0 && hits.size() > options.top_k) {
    hits.resize(options.top_k);
  }
  return hits;
}

std::vector<image_id> scan_ids(const image_database& db,
                               std::span<const symbol_id> query_symbols,
                               const query_options& options) {
  if (options.use_index && !query_symbols.empty()) {
    return db.candidates(query_symbols);
  }
  std::vector<image_id> all;
  all.reserve(db.size());
  for (std::size_t i = 0; i < db.size(); ++i) {
    all.push_back(static_cast<image_id>(i));
  }
  return all;
}

// Top-k scan with histogram upper-bound pruning. Candidates are visited in
// decreasing bound order; once k results are held and the next bound cannot
// reach the current k-th score, the remainder of the scan is skipped. The
// result is IDENTICAL to the exhaustive scan (skipping requires
// bound < k-th score, and true scores never exceed their bound).
std::vector<query_result> pruned_search(const image_database& db,
                                        const be_string2d& query_strings,
                                        std::vector<image_id> ids,
                                        const query_options& options,
                                        search_stats* stats) {
  const be_histogram2d query_histograms = make_histograms(query_strings);
  struct bounded {
    double bound;
    image_id id;
  };
  std::vector<bounded> order;
  order.reserve(ids.size());
  for (image_id id : ids) {
    order.push_back(bounded{
        similarity_upper_bound(query_histograms, db.record(id).histograms,
                               options.similarity.norm),
        id});
  }
  std::sort(order.begin(), order.end(), [](const bounded& a, const bounded& b) {
    if (a.bound != b.bound) return a.bound > b.bound;
    return a.id < b.id;
  });

  std::vector<query_result> top;  // kept sorted by better()
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (top.size() == options.top_k && order[i].bound < top.back().score) {
      if (stats != nullptr) stats->pruned += order.size() - i;
      break;
    }
    const db_record& rec = db.record(order[i].id);
    query_result r;
    r.id = rec.id;
    r.score = similarity(query_strings, rec.strings, options.similarity);
    if (stats != nullptr) ++stats->scored;
    if (r.score < options.min_score) continue;
    auto pos = std::lower_bound(top.begin(), top.end(), r, better);
    top.insert(pos, r);
    if (top.size() > options.top_k) top.pop_back();
  }
  return top;
}

}  // namespace

std::vector<query_result> search(const image_database& db,
                                 const be_string2d& query_strings,
                                 std::span<const symbol_id> query_symbols,
                                 const query_options& options,
                                 search_stats* stats) {
  std::vector<image_id> ids = scan_ids(db, query_symbols, options);
  if (stats != nullptr) {
    *stats = search_stats{};
    stats->scanned = ids.size();
  }

  if (options.histogram_pruning && options.top_k > 0 &&
      !options.transform_invariant) {
    return pruned_search(db, query_strings, std::move(ids), options, stats);
  }

  std::vector<query_result> hits(ids.size());
  parallel_for(ids.size(), options.threads, [&](std::size_t k) {
    const db_record& rec = db.record(ids[k]);
    query_result r;
    r.id = rec.id;
    if (options.transform_invariant) {
      const transform_match best = best_transform_similarity(
          query_strings, rec.strings, options.similarity);
      r.score = best.score;
      r.transform = best.transform;
    } else {
      r.score = similarity(query_strings, rec.strings, options.similarity);
    }
    hits[k] = r;
  });
  if (stats != nullptr) stats->scored = hits.size();
  return rank(std::move(hits), options);
}

std::vector<query_result> search(const image_database& db,
                                 const symbolic_image& query,
                                 const query_options& options,
                                 search_stats* stats) {
  const be_string2d strings = encode(query);
  const std::vector<symbol_id> symbols = distinct_symbols(query);
  return search(db, strings, symbols, options, stats);
}

}  // namespace bes
