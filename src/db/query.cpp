#include "db/query.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>

#include "db/result_cache.hpp"
#include "db/scan.hpp"
#include "util/parallel.hpp"

namespace bes {

namespace detail {

bool result_better(const query_result& a, const query_result& b) noexcept {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

std::vector<query_result> rank_results(std::vector<query_result> hits,
                                       const query_options& options) {
  std::erase_if(hits, [&](const query_result& r) {
    return r.score < options.min_score;
  });
  std::sort(hits.begin(), hits.end(), result_better);
  if (options.top_k != 0 && hits.size() > options.top_k) {
    hits.resize(options.top_k);
  }
  return hits;
}

bool pruning_applies(const query_options& options) {
  return options.histogram_pruning && !options.transform_invariant &&
         (options.top_k > 0 || options.min_score > 0.0);
}

shared_topk::shared_topk(std::size_t capacity, double min_score)
    : capacity_(capacity == 0 ? std::numeric_limits<std::size_t>::max()
                              : capacity),
      min_score_(min_score),
      kth_(min_score),
      floor_(min_score) {}

void shared_topk::raise_floor(double f) noexcept {
  // CAS max: concurrent raises keep the largest floor ever offered, and a
  // racing lower offer can never overwrite a higher one.
  double current = floor_.load(std::memory_order_relaxed);
  while (f > current && !floor_.compare_exchange_weak(
                            current, f, std::memory_order_relaxed)) {
  }
}

void shared_topk::insert(const query_result& r) {
  std::lock_guard lock(mutex_);
  const auto pos = std::lower_bound(top_.begin(), top_.end(), r, result_better);
  top_.insert(pos, r);
  if (top_.size() > capacity_) top_.pop_back();
  if (top_.size() == capacity_) {
    // The k-th score is monotone non-decreasing once the heap is full, so
    // a stale read elsewhere is merely a weaker (still admissible) bound.
    kth_.store(top_.back().score, std::memory_order_relaxed);
  }
}

std::vector<query_result> shared_topk::take() { return std::move(top_); }

}  // namespace detail

std::string_view to_string(shard_scan_state state) noexcept {
  switch (state) {
    case shard_scan_state::ok: return "ok";
    case shard_scan_state::timed_out: return "timed_out";
    case shard_scan_state::failed: return "failed";
    case shard_scan_state::expired: return "expired";
    case shard_scan_state::rejected: return "rejected";
  }
  return "?";
}

namespace {

using detail::id_map;
using detail::result_better;
using detail::shared_topk;

// Top-k scan with the two-stage admissible pruner. Stage 1: candidates are
// visited in decreasing histogram-bound order and skipped (or, serially,
// the whole tail dropped) once their bound falls below the running
// threshold. Stage 2: survivors are scored through similarity_bounded, so
// the threshold also cuts the DP short from the inside. Both stages discard
// only candidates provably outside the final result, so the output is
// IDENTICAL to the exhaustive scan for any thread count — and, when several
// shard scans feed one `shared` heap, the union of shards is identical to
// one big scan (the heap defends the GLOBAL k-th score either way).
//
// With a `shared` heap the survivors live there and the return value is
// empty; standalone, the heap is local and the ranked result is returned.
std::vector<query_result> pruned_search(const image_database& db,
                                        const be_string2d& query_strings,
                                        const be_histogram2d& query_histograms,
                                        std::span<const image_id> ids,
                                        id_map globals,
                                        const query_options& options,
                                        shared_topk* shared,
                                        search_stats* stats) {
  struct bounded {
    double bound;
    double y_cap;
    image_id id;
  };
  std::vector<bounded> order(ids.size());
  const norm_kind norm = options.similarity.norm;
  parallel_for(ids.size(), options.threads, [&](std::size_t k) {
    const image_id id = ids[k];
    const be_histogram2d& h = db.record(id).histograms;
    const double x_cap = axis_similarity_upper_bound(
        query_histograms.x, query_histograms.x_len, h.x, h.x_len, norm);
    const double y_cap = axis_similarity_upper_bound(
        query_histograms.y, query_histograms.y_len, h.y, h.y_len, norm);
    order[k] = bounded{0.5 * (x_cap + y_cap), y_cap, id};
  });
  std::sort(order.begin(), order.end(), [](const bounded& a, const bounded& b) {
    if (a.bound != b.bound) return a.bound > b.bound;
    return a.id < b.id;
  });

  std::optional<shared_topk> local;
  if (shared == nullptr) {
    local.emplace(options.top_k, options.min_score);
  }
  shared_topk& top = shared != nullptr ? *shared : *local;
  std::atomic<std::size_t> scored{0};
  std::atomic<std::size_t> pruned{0};
  std::atomic<std::size_t> band_rejected{0};

  // One scoring context per scan worker, bound once to the CPU-dispatched
  // kernel: the per-candidate hot loop pays neither a thread_local lookup
  // nor any kernel re-resolution.
  std::vector<lcs_context> contexts(
      parallel_workers(order.size(), options.threads));

  auto visit = [&](lcs_context& ctx, const bounded& c) {
    const double threshold = top.threshold();
    if (c.bound < threshold) {
      pruned.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const db_record& rec = db.record(c.id);
    scored.fetch_add(1, std::memory_order_relaxed);
    const double score =
        similarity_bounded(query_strings, rec.strings, options.similarity,
                           threshold, ctx, c.y_cap);
    // Below the threshold the value may be an unfinished upper bound; either
    // way the candidate cannot reach the final result.
    if (score < threshold || score < options.min_score) {
      band_rejected.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    top.insert(query_result{globals(rec.id), score, dihedral::identity});
  };

  if (options.threads <= 1) {
    // Serial fast path: bounds are sorted descending, so the first candidate
    // below the threshold ends the scan outright. Valid per shard too: the
    // shared threshold is monotone, so the drop only ever grows stricter.
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i].bound < top.threshold()) {
        pruned.fetch_add(order.size() - i, std::memory_order_relaxed);
        break;
      }
      visit(contexts[0], order[i]);
    }
  } else {
    parallel_for(order.size(), options.threads,
                 [&](unsigned worker, std::size_t i) {
                   visit(contexts[worker], order[i]);
                 });
  }

  if (stats != nullptr) {
    stats->scored = scored.load();
    stats->pruned = pruned.load();
    stats->band_rejected = band_rejected.load();
  }
  return shared != nullptr ? std::vector<query_result>{} : local->take();
}

std::vector<query_result> exhaustive_search(const image_database& db,
                                            const be_string2d& query_strings,
                                            const query_transforms* transforms,
                                            std::span<const image_id> ids,
                                            id_map globals,
                                            const query_options& options,
                                            search_stats* stats) {
  // Transform-invariant scans need the 8 query variants; build them once for
  // the whole scan, never per record.
  query_transforms local;
  if (options.transform_invariant && transforms == nullptr) {
    local = precompute_transforms(query_strings);
    transforms = &local;
  }
  std::vector<query_result> hits(ids.size());
  // Per-worker contexts, same rationale as the pruned scan above.
  std::vector<lcs_context> contexts(
      parallel_workers(ids.size(), options.threads));
  parallel_for(ids.size(), options.threads, [&](unsigned worker,
                                                std::size_t k) {
    const db_record& rec = db.record(ids[k]);
    lcs_context& ctx = contexts[worker];
    query_result r;
    r.id = globals(rec.id);
    if (options.transform_invariant) {
      const transform_match best = best_transform_similarity(
          *transforms, rec.strings, options.similarity, ctx);
      r.score = best.score;
      r.transform = best.transform;
    } else {
      r.score = similarity(query_strings, rec.strings, options.similarity, ctx);
    }
    hits[k] = r;
  });
  if (stats != nullptr) stats->scored = hits.size();
  return detail::rank_results(std::move(hits), options);
}

}  // namespace

namespace detail {

std::vector<query_result> scan_shard(
    const image_database& db, const be_string2d& query_strings,
    std::span<const image_id> ids, id_map globals,
    const be_histogram2d* histograms, const query_transforms* transforms,
    const query_options& options, shared_topk* shared, search_stats* stats,
    const db_snapshot* snap) {
  db_snapshot captured;
  if (snap == nullptr) {
    captured = db.snapshot();
    snap = &captured;
  }
  // Snapshot filter. Candidates the snapshot cannot see (published after its
  // watermark) are dropped before the scan even starts — they do not exist
  // in this view, so they are neither scanned nor pruned. Tombstoned
  // candidates ARE scanned: they count as pruned (the tombstone is a free,
  // always-admissible pruning decision), never as scored. When the snapshot
  // is all-live the scan runs on the caller's span untouched — EXCEPT for
  // past-watermark ids, which must still be dropped: the inverted index
  // publishes a record's postings BEFORE the record itself commits (that
  // order is what makes the local->global mapping safe to read), so an
  // index-generated candidate can precede the watermark bump by one racing
  // add even when no tombstone exists.
  std::vector<image_id> live;
  std::size_t dead = 0;
  std::span<const image_id> scan = ids;
  if (!snap->all_live()) {
    live.reserve(ids.size());
    for (image_id id : ids) {
      if (id >= snap->visible) continue;
      if (snap->alive(id)) {
        live.push_back(id);
      } else {
        ++dead;
      }
    }
    scan = live;
  } else {
    std::size_t keep = 0;
    while (keep < ids.size() && ids[keep] < snap->visible) ++keep;
    if (keep < ids.size()) {
      live.assign(ids.begin(),
                  ids.begin() + static_cast<std::ptrdiff_t>(keep));
      for (std::size_t k = keep + 1; k < ids.size(); ++k) {
        if (ids[k] < snap->visible) live.push_back(ids[k]);
      }
      scan = live;
    }
  }
  if (stats != nullptr) {
    *stats = search_stats{};
    stats->scanned = scan.size() + dead;
  }
  std::vector<query_result> out;
  if (pruning_applies(options)) {
    if (histograms != nullptr) {
      out = pruned_search(db, query_strings, *histograms, scan, globals,
                          options, shared, stats);
    } else {
      out = pruned_search(db, query_strings, make_histograms(query_strings),
                          scan, globals, options, shared, stats);
    }
  } else {
    out = exhaustive_search(db, query_strings, transforms, scan, globals,
                            options, stats);
  }
  if (stats != nullptr) stats->pruned += dead;
  return out;
}

}  // namespace detail

namespace {

std::vector<query_result> search_impl(const image_database& db,
                                      const be_string2d& query_strings,
                                      std::span<const symbol_id> query_symbols,
                                      const be_histogram2d* histograms,
                                      const query_transforms* transforms,
                                      const query_options& options,
                                      search_stats* stats,
                                      const db_snapshot* snap = nullptr) {
  std::size_t generated = 0;
  const std::vector<image_id> ids =
      detail::scan_ids(db, query_symbols, options,
                       stats != nullptr ? &generated : nullptr);
  auto out = detail::scan_shard(db, query_strings, ids, {}, histograms,
                                transforms, options, nullptr, stats, snap);
  // scan_shard resets *stats; generation accounting goes on top.
  if (stats != nullptr) stats->candidates_generated = generated;
  return out;
}

void check_candidates_in_range(const image_database& db,
                               std::span<const image_id> candidates) {
  for (image_id id : candidates) {
    if (id >= db.size()) {
      throw std::out_of_range("search_candidates: id " + std::to_string(id) +
                              " out of range");
    }
  }
}

}  // namespace

std::vector<query_result> search(const image_database& db,
                                 const be_string2d& query_strings,
                                 std::span<const symbol_id> query_symbols,
                                 const query_options& options,
                                 search_stats* stats) {
  return search_impl(db, query_strings, query_symbols, nullptr, nullptr,
                     options, stats);
}

std::vector<query_result> search_candidates(const image_database& db,
                                            const be_string2d& query_strings,
                                            std::span<const image_id> candidates,
                                            const query_options& options,
                                            search_stats* stats) {
  check_candidates_in_range(db, candidates);
  auto out = detail::scan_shard(db, query_strings, candidates, {}, nullptr,
                                nullptr, options, nullptr, stats);
  // Generation happened outside; the handed-in list is what was generated.
  if (stats != nullptr) stats->candidates_generated = candidates.size();
  return out;
}

std::vector<query_result> search(const image_database& db,
                                 const symbolic_image& query,
                                 const query_options& options,
                                 search_stats* stats) {
  const be_string2d strings = encode(query);
  const std::vector<symbol_id> symbols = distinct_symbols(query);
  return search(db, strings, symbols, options, stats);
}

std::vector<query_result> search(const db_snapshot& snap,
                                 const be_string2d& query_strings,
                                 std::span<const symbol_id> query_symbols,
                                 const query_options& options,
                                 search_stats* stats) {
  return search_impl(*snap.db, query_strings, query_symbols, nullptr, nullptr,
                     options, stats, &snap);
}

std::vector<query_result> search(const db_snapshot& snap,
                                 const symbolic_image& query,
                                 const query_options& options,
                                 search_stats* stats) {
  const be_string2d strings = encode(query);
  const std::vector<symbol_id> symbols = distinct_symbols(query);
  return search(snap, strings, symbols, options, stats);
}

namespace detail {

std::vector<query_plan> make_plans(std::span<const be_string2d> queries,
                                   const query_options& options) {
  const bool want_histograms = pruning_applies(options);
  const bool want_transforms = options.transform_invariant;
  std::vector<query_plan> plans(queries.size());
  parallel_for(queries.size(), options.threads, [&](std::size_t i) {
    if (want_histograms) plans[i].histograms = make_histograms(queries[i]);
    if (want_transforms) plans[i].transforms = precompute_transforms(queries[i]);
  });
  return plans;
}

encoded_queries encode_queries(std::span<const symbolic_image> queries,
                               unsigned threads) {
  encoded_queries out;
  out.strings.resize(queries.size());
  out.symbols.resize(queries.size());
  parallel_for(queries.size(), threads, [&](std::size_t i) {
    out.strings[i] = encode(queries[i]);
    out.symbols[i] = distinct_symbols(queries[i]);
  });
  return out;
}

// The batch used to walk queries one after another, each scan fanning its
// candidates over all threads — so the batch tail was serialized behind
// whichever query happened to be slow. Now the queries themselves are work
// items on parallel_for's dynamic queue (chunk = 1: a worker claims ONE
// query at a time), with the thread budget split between query-level and
// candidate-level parallelism. A slow query occupies one worker while the
// others drain the rest of the batch; results are identical either way
// because every scan is thread-count-invariant by construction.
void for_each_query(
    std::size_t count, const query_options& options,
    const std::function<void(std::size_t, const query_options&)>& run_one) {
  if (count <= 1 || options.threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) run_one(i, options);
    return;
  }
  const unsigned outer = static_cast<unsigned>(
      std::min<std::size_t>(options.threads, count));
  query_options per_query = options;
  per_query.threads = std::max(1u, options.threads / outer);
  parallel_for(
      count, outer, [&](std::size_t i) { run_one(i, per_query); },
      /*chunk=*/1);
}

}  // namespace detail

namespace {

using detail::for_each_query;
using detail::make_plans;
using detail::query_plan;

std::vector<std::vector<query_result>> batch_impl(
    const image_database& db, std::span<const be_string2d> queries,
    std::span<const std::vector<symbol_id>> query_symbols,
    const query_options& options, std::vector<search_stats>* stats) {
  if (queries.size() != query_symbols.size()) {
    throw std::invalid_argument(
        "search_batch: queries and query_symbols sizes differ");
  }
  const bool want_histograms = detail::pruning_applies(options);
  const bool want_transforms = options.transform_invariant;
  const std::vector<query_plan> plans = make_plans(queries, options);

  if (stats != nullptr) {
    stats->assign(queries.size(), search_stats{});
  }
  std::vector<std::vector<query_result>> results(queries.size());
  for_each_query(
      queries.size(), options,
      [&](std::size_t i, const query_options& per_query) {
        results[i] = search_impl(
            db, queries[i], query_symbols[i],
            want_histograms ? &plans[i].histograms : nullptr,
            want_transforms ? &plans[i].transforms : nullptr, per_query,
            stats != nullptr ? &(*stats)[i] : nullptr);
      });
  return results;
}

}  // namespace

std::vector<std::vector<query_result>> search_batch(
    const image_database& db, std::span<const be_string2d> queries,
    std::span<const std::vector<symbol_id>> query_symbols,
    const query_options& options, std::vector<search_stats>* stats) {
  return batch_impl(db, queries, query_symbols, options, stats);
}

std::vector<std::vector<query_result>> search_batch(
    const image_database& db, std::span<const symbolic_image> queries,
    const query_options& options, std::vector<search_stats>* stats) {
  const detail::encoded_queries encoded =
      detail::encode_queries(queries, options.threads);
  return batch_impl(db, encoded.strings, encoded.symbols, options, stats);
}

namespace {

// Delta-scan refresh of a flat cache entry: upgrade results valid at the
// entry's cut to `now` by (1) re-checking the cached hits against the new
// snapshot's tombstone view and (2) scoring only the records appended in
// [cut.visible, now.visible). Returns nullopt when the entry cannot be
// upgraded without a full rescan — a deletion hit an INCOMPLETE entry (the
// deletion may promote a runner-up the entry never stored), in which case
// the caller falls back to the full scan.
std::optional<std::vector<query_result>> flat_delta_refresh(
    const image_database& db, const db_snapshot& snap, result_cache& cache,
    const cache_key& key, const cache_entry& entry, const cache_cut& now,
    const be_string2d& query_strings, std::span<const symbol_id> query_symbols,
    const query_options& options, search_stats* stats) {
  const cache_cut& at = entry.cuts[0];

  // Survivors: cached hits still alive at the new cut, back in query frame.
  std::vector<query_result> survivors = entry.results;
  from_canonical_frame(survivors, key.canon);
  std::size_t deaths = 0;
  std::erase_if(survivors, [&](const query_result& r) {
    const bool dead = !snap.alive(r.id);
    deaths += dead ? 1 : 0;
    return dead;
  });
  if (deaths > 0 && !entry.complete) return std::nullopt;

  // Suffix candidates: the full scan's generation rule, restricted to the
  // appended range. Records the entry's cut already saw are NOT regenerated.
  const std::vector<image_id> all_ids =
      detail::scan_ids(db, query_symbols, options, nullptr);
  std::vector<image_id> suffix;
  for (image_id id : all_ids) {
    if (id >= at.visible && id < now.visible) suffix.push_back(id);
  }

  // With a full cached top-k the k-th surviving score is an admissible floor
  // for suffix candidates: every suffix id is larger than every cached id,
  // so an equal score loses the id-ascending tie-break anyway.
  query_options delta_options = options;
  if (options.top_k > 0 && survivors.size() == options.top_k) {
    delta_options.min_score =
        std::max(options.min_score, survivors.back().score);
  }

  search_stats delta_stats;
  std::vector<query_result> fresh =
      detail::scan_shard(db, query_strings, suffix, {}, nullptr, nullptr,
                         delta_options, nullptr, &delta_stats, &snap);

  std::vector<query_result> merged = std::move(survivors);
  merged.insert(merged.end(), fresh.begin(), fresh.end());
  merged = detail::rank_results(std::move(merged), options);

  cache.note_delta_refresh(delta_stats.scanned);
  if (stats != nullptr) {
    *stats = delta_stats;
    stats->candidates_generated = suffix.size();
    stats->cache_delta_refreshes = 1;
    stats->cache_delta_rescored = delta_stats.scanned;
  }

  cache_entry updated;
  updated.results = merged;
  to_canonical_frame(updated.results, key.canon);
  updated.cuts = {now};
  updated.complete = options.top_k == 0 || merged.size() < options.top_k;
  cache.put(key, std::move(updated));
  return merged;
}

std::vector<query_result> flat_cached_impl(
    const image_database& db, const db_snapshot& snap, result_cache& cache,
    const be_string2d& query_strings, std::span<const symbol_id> query_symbols,
    const query_options& options, search_stats* stats) {
  const cache_key key = make_cache_key(query_strings, query_symbols, options,
                                       cache_scope::flat, /*shard_count=*/1,
                                       /*ring_replicas=*/0);
  const cache_cut now{snap.visible, snap.epoch};

  const std::optional<cache_entry> entry = cache.find(key);
  if (entry.has_value() && entry->cuts.size() == 1) {
    if (entry->cuts[0] == now) {
      cache.note_hit();
      if (stats != nullptr) {
        *stats = search_stats{};
        stats->cache_hits = 1;
      }
      std::vector<query_result> out = entry->results;
      from_canonical_frame(out, key.canon);
      return out;
    }
    const cache_cut& at = entry->cuts[0];
    const bool forward = now.visible >= at.visible && now.epoch >= at.epoch;
    if (forward &&
        now.visible - at.visible <= cache.options().max_delta_records) {
      auto refreshed =
          flat_delta_refresh(db, snap, cache, key, *entry, now, query_strings,
                             query_symbols, options, stats);
      if (refreshed.has_value()) return std::move(*refreshed);
    }
  }

  // Miss (no entry, past the staleness budget, or not upgradeable): full
  // pinned scan. Store unless it would REGRESS a fresher entry — a search
  // pinned to an old snapshot must not overwrite results newer readers use.
  cache.note_miss();
  std::vector<query_result> out = search_impl(
      db, query_strings, query_symbols, nullptr, nullptr, options, stats,
      &snap);
  if (stats != nullptr) stats->cache_misses = 1;
  const bool store =
      !entry.has_value() || entry->cuts.size() != 1 ||
      (now.visible >= entry->cuts[0].visible &&
       now.epoch >= entry->cuts[0].epoch);
  if (store) {
    cache_entry fresh;
    fresh.results = out;
    to_canonical_frame(fresh.results, key.canon);
    fresh.cuts = {now};
    fresh.complete = options.top_k == 0 || out.size() < options.top_k;
    cache.put(key, std::move(fresh));
  }
  return out;
}

}  // namespace

std::vector<query_result> search_cached(const db_snapshot& snap,
                                        result_cache& cache,
                                        const be_string2d& query_strings,
                                        std::span<const symbol_id> query_symbols,
                                        const query_options& options,
                                        search_stats* stats) {
  return flat_cached_impl(*snap.db, snap, cache, query_strings, query_symbols,
                          options, stats);
}

std::vector<query_result> search_cached(const image_database& db,
                                        result_cache& cache,
                                        const be_string2d& query_strings,
                                        std::span<const symbol_id> query_symbols,
                                        const query_options& options,
                                        search_stats* stats) {
  const db_snapshot snap = db.snapshot();
  return flat_cached_impl(db, snap, cache, query_strings, query_symbols,
                          options, stats);
}

std::vector<query_result> search_cached(const image_database& db,
                                        result_cache& cache,
                                        const symbolic_image& query,
                                        const query_options& options,
                                        search_stats* stats) {
  const be_string2d strings = encode(query);
  const std::vector<symbol_id> symbols = distinct_symbols(query);
  return search_cached(db, cache, strings, symbols, options, stats);
}

std::vector<std::vector<query_result>> search_batch_candidates(
    const image_database& db, std::span<const be_string2d> queries,
    std::span<const std::vector<image_id>> candidates,
    const query_options& options, std::vector<search_stats>* stats) {
  if (queries.size() != candidates.size()) {
    throw std::invalid_argument(
        "search_batch_candidates: queries and candidates sizes differ");
  }
  for (const std::vector<image_id>& set : candidates) {
    check_candidates_in_range(db, set);
  }
  const bool want_histograms = detail::pruning_applies(options);
  const bool want_transforms = options.transform_invariant;
  const std::vector<query_plan> plans = make_plans(queries, options);

  if (stats != nullptr) {
    stats->assign(queries.size(), search_stats{});
  }
  std::vector<std::vector<query_result>> results(queries.size());
  for_each_query(
      queries.size(), options,
      [&](std::size_t i, const query_options& per_query) {
        results[i] = detail::scan_shard(
            db, queries[i], candidates[i], {},
            want_histograms ? &plans[i].histograms : nullptr,
            want_transforms ? &plans[i].transforms : nullptr, per_query,
            nullptr, stats != nullptr ? &(*stats)[i] : nullptr);
        if (stats != nullptr) {
          (*stats)[i].candidates_generated = candidates[i].size();
        }
      });
  return results;
}

}  // namespace bes
