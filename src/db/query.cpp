#include "db/query.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>

#include "util/parallel.hpp"

namespace bes {

namespace {

bool better(const query_result& a, const query_result& b) noexcept {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

std::vector<query_result> rank(std::vector<query_result> hits,
                               const query_options& options) {
  std::erase_if(hits, [&](const query_result& r) {
    return r.score < options.min_score;
  });
  std::sort(hits.begin(), hits.end(), better);
  if (options.top_k != 0 && hits.size() > options.top_k) {
    hits.resize(options.top_k);
  }
  return hits;
}

std::vector<image_id> scan_ids(const image_database& db,
                               std::span<const symbol_id> query_symbols,
                               const query_options& options) {
  if (options.use_index && !query_symbols.empty()) {
    return db.candidates(query_symbols);
  }
  std::vector<image_id> all;
  all.reserve(db.size());
  for (std::size_t i = 0; i < db.size(); ++i) {
    all.push_back(static_cast<image_id>(i));
  }
  return all;
}

// A running top-k under a mutex, shared by the pruned scan's workers. The
// k-th score only grows as candidates are inserted, so reading it at any
// moment yields an admissible pruning threshold: a candidate provably below
// it can never enter the FINAL top-k either.
class top_k_heap {
 public:
  top_k_heap(std::size_t capacity, double min_score)
      : capacity_(capacity == 0 ? std::numeric_limits<std::size_t>::max()
                                : capacity),
        min_score_(min_score) {}

  // max(min_score, current k-th score): scores strictly below can neither
  // pass the result filter nor displace a held result.
  [[nodiscard]] double threshold() const {
    std::lock_guard lock(mutex_);
    return top_.size() == capacity_ ? std::max(min_score_, top_.back().score)
                                    : min_score_;
  }

  void insert(const query_result& r) {
    std::lock_guard lock(mutex_);
    const auto pos = std::lower_bound(top_.begin(), top_.end(), r, better);
    top_.insert(pos, r);
    if (top_.size() > capacity_) top_.pop_back();
  }

  [[nodiscard]] std::vector<query_result> take() { return std::move(top_); }

 private:
  mutable std::mutex mutex_;
  std::vector<query_result> top_;  // kept sorted by better()
  std::size_t capacity_;
  double min_score_;
};

// Top-k scan with the two-stage admissible pruner. Stage 1: candidates are
// visited in decreasing histogram-bound order and skipped (or, serially,
// the whole tail dropped) once their bound falls below the running
// threshold. Stage 2: survivors are scored through similarity_bounded, so
// the threshold also cuts the DP short from the inside. Both stages discard
// only candidates provably outside the final result, so the output is
// IDENTICAL to the exhaustive scan for any thread count.
std::vector<query_result> pruned_search(const image_database& db,
                                        const be_string2d& query_strings,
                                        const be_histogram2d& query_histograms,
                                        std::span<const image_id> ids,
                                        const query_options& options,
                                        search_stats* stats) {
  struct bounded {
    double bound;
    double y_cap;
    image_id id;
  };
  std::vector<bounded> order(ids.size());
  const norm_kind norm = options.similarity.norm;
  parallel_for(ids.size(), options.threads, [&](std::size_t k) {
    const image_id id = ids[k];
    const be_histogram2d& h = db.record(id).histograms;
    const double x_cap = axis_similarity_upper_bound(
        query_histograms.x, query_histograms.x_len, h.x, h.x_len, norm);
    const double y_cap = axis_similarity_upper_bound(
        query_histograms.y, query_histograms.y_len, h.y, h.y_len, norm);
    order[k] = bounded{0.5 * (x_cap + y_cap), y_cap, id};
  });
  std::sort(order.begin(), order.end(), [](const bounded& a, const bounded& b) {
    if (a.bound != b.bound) return a.bound > b.bound;
    return a.id < b.id;
  });

  top_k_heap top(options.top_k, options.min_score);
  std::atomic<std::size_t> scored{0};
  std::atomic<std::size_t> pruned{0};
  std::atomic<std::size_t> band_rejected{0};

  auto visit = [&](const bounded& c) {
    const double threshold = top.threshold();
    if (c.bound < threshold) {
      pruned.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const db_record& rec = db.record(c.id);
    scored.fetch_add(1, std::memory_order_relaxed);
    const double score =
        similarity_bounded(query_strings, rec.strings, options.similarity,
                           threshold, lcs_context::thread_local_instance(),
                           c.y_cap);
    // Below the threshold the value may be an unfinished upper bound; either
    // way the candidate cannot reach the final result.
    if (score < threshold || score < options.min_score) {
      band_rejected.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    top.insert(query_result{rec.id, score, dihedral::identity});
  };

  if (options.threads <= 1) {
    // Serial fast path: bounds are sorted descending, so the first candidate
    // below the threshold ends the scan outright.
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i].bound < top.threshold()) {
        pruned.fetch_add(order.size() - i, std::memory_order_relaxed);
        break;
      }
      visit(order[i]);
    }
  } else {
    parallel_for(order.size(), options.threads,
                 [&](std::size_t i) { visit(order[i]); });
  }

  if (stats != nullptr) {
    stats->scored = scored.load();
    stats->pruned = pruned.load();
    stats->band_rejected = band_rejected.load();
  }
  return top.take();
}

std::vector<query_result> exhaustive_search(const image_database& db,
                                            const be_string2d& query_strings,
                                            const query_transforms* transforms,
                                            std::span<const image_id> ids,
                                            const query_options& options,
                                            search_stats* stats) {
  // Transform-invariant scans need the 8 query variants; build them once for
  // the whole scan, never per record.
  query_transforms local;
  if (options.transform_invariant && transforms == nullptr) {
    local = precompute_transforms(query_strings);
    transforms = &local;
  }
  std::vector<query_result> hits(ids.size());
  parallel_for(ids.size(), options.threads, [&](std::size_t k) {
    const db_record& rec = db.record(ids[k]);
    lcs_context& ctx = lcs_context::thread_local_instance();
    query_result r;
    r.id = rec.id;
    if (options.transform_invariant) {
      const transform_match best = best_transform_similarity(
          *transforms, rec.strings, options.similarity, ctx);
      r.score = best.score;
      r.transform = best.transform;
    } else {
      r.score = similarity(query_strings, rec.strings, options.similarity, ctx);
    }
    hits[k] = r;
  });
  if (stats != nullptr) stats->scored = hits.size();
  return rank(std::move(hits), options);
}

// The pruner needs a threshold to engage: either a top-k to defend or a
// score floor. Transform-invariant scans bypass it (the histogram bound does
// not cover the 7 non-identity variants).
bool pruning_applies(const query_options& options) {
  return options.histogram_pruning && !options.transform_invariant &&
         (options.top_k > 0 || options.min_score > 0.0);
}

// Candidate-set scan core shared by the symbol-index path and the explicit
// prefilter path. `histograms` and `transforms` are optional precomputed
// per-query state (search_batch amortizes them); null means compute on
// demand for the paths that need them.
std::vector<query_result> scan_candidates(const image_database& db,
                                          const be_string2d& query_strings,
                                          std::span<const image_id> ids,
                                          const be_histogram2d* histograms,
                                          const query_transforms* transforms,
                                          const query_options& options,
                                          search_stats* stats) {
  if (stats != nullptr) {
    *stats = search_stats{};
    stats->scanned = ids.size();
  }
  if (pruning_applies(options)) {
    if (histograms != nullptr) {
      return pruned_search(db, query_strings, *histograms, ids, options,
                           stats);
    }
    return pruned_search(db, query_strings, make_histograms(query_strings),
                         ids, options, stats);
  }
  return exhaustive_search(db, query_strings, transforms, ids, options, stats);
}

std::vector<query_result> search_impl(const image_database& db,
                                      const be_string2d& query_strings,
                                      std::span<const symbol_id> query_symbols,
                                      const be_histogram2d* histograms,
                                      const query_transforms* transforms,
                                      const query_options& options,
                                      search_stats* stats) {
  const std::vector<image_id> ids = scan_ids(db, query_symbols, options);
  return scan_candidates(db, query_strings, ids, histograms, transforms,
                         options, stats);
}

}  // namespace

std::vector<query_result> search(const image_database& db,
                                 const be_string2d& query_strings,
                                 std::span<const symbol_id> query_symbols,
                                 const query_options& options,
                                 search_stats* stats) {
  return search_impl(db, query_strings, query_symbols, nullptr, nullptr,
                     options, stats);
}

std::vector<query_result> search_candidates(const image_database& db,
                                            const be_string2d& query_strings,
                                            std::span<const image_id> candidates,
                                            const query_options& options,
                                            search_stats* stats) {
  for (image_id id : candidates) {
    if (id >= db.size()) {
      throw std::out_of_range("search_candidates: id " + std::to_string(id) +
                              " out of range");
    }
  }
  return scan_candidates(db, query_strings, candidates, nullptr, nullptr,
                         options, stats);
}

std::vector<query_result> search(const image_database& db,
                                 const symbolic_image& query,
                                 const query_options& options,
                                 search_stats* stats) {
  const be_string2d strings = encode(query);
  const std::vector<symbol_id> symbols = distinct_symbols(query);
  return search(db, strings, symbols, options, stats);
}

namespace {

// Precomputed per-query scan state for a batch.
struct query_plan {
  be_histogram2d histograms;
  query_transforms transforms;
};

std::vector<std::vector<query_result>> batch_impl(
    const image_database& db, std::span<const be_string2d> queries,
    std::span<const std::vector<symbol_id>> query_symbols,
    const query_options& options, std::vector<search_stats>* stats) {
  if (queries.size() != query_symbols.size()) {
    throw std::invalid_argument(
        "search_batch: queries and query_symbols sizes differ");
  }
  const bool want_histograms = pruning_applies(options);
  const bool want_transforms = options.transform_invariant;
  std::vector<query_plan> plans(queries.size());
  parallel_for(queries.size(), options.threads, [&](std::size_t i) {
    if (want_histograms) plans[i].histograms = make_histograms(queries[i]);
    if (want_transforms) plans[i].transforms = precompute_transforms(queries[i]);
  });

  if (stats != nullptr) {
    stats->assign(queries.size(), search_stats{});
  }
  std::vector<std::vector<query_result>> results(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    results[i] = search_impl(
        db, queries[i], query_symbols[i],
        want_histograms ? &plans[i].histograms : nullptr,
        want_transforms ? &plans[i].transforms : nullptr, options,
        stats != nullptr ? &(*stats)[i] : nullptr);
  }
  return results;
}

}  // namespace

std::vector<std::vector<query_result>> search_batch(
    const image_database& db, std::span<const be_string2d> queries,
    std::span<const std::vector<symbol_id>> query_symbols,
    const query_options& options, std::vector<search_stats>* stats) {
  return batch_impl(db, queries, query_symbols, options, stats);
}

std::vector<std::vector<query_result>> search_batch(
    const image_database& db, std::span<const symbolic_image> queries,
    const query_options& options, std::vector<search_stats>* stats) {
  std::vector<be_string2d> strings(queries.size());
  std::vector<std::vector<symbol_id>> symbols(queries.size());
  parallel_for(queries.size(), options.threads, [&](std::size_t i) {
    strings[i] = encode(queries[i]);
    symbols[i] = distinct_symbols(queries[i]);
  });
  return batch_impl(db, strings, symbols, options, stats);
}

}  // namespace bes
