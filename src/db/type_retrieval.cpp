#include "db/type_retrieval.hpp"

#include <algorithm>

namespace bes {

std::vector<type_retrieval_result> type_search(
    const image_database& db, const symbolic_image& query,
    const type_similarity_options& options, std::size_t top_k) {
  std::vector<type_retrieval_result> out;
  out.reserve(db.size());
  for (const db_record& rec : db.records()) {
    const type_similarity_result sim =
        type_similarity(query, rec.image, options);
    type_retrieval_result result;
    result.id = rec.id;
    result.matched = sim.matched_objects;
    result.fraction = query.empty()
                          ? 0.0
                          : static_cast<double>(sim.matched_objects) /
                                static_cast<double>(query.size());
    out.push_back(result);
  }
  std::sort(out.begin(), out.end(),
            [](const type_retrieval_result& a, const type_retrieval_result& b) {
              if (a.matched != b.matched) return a.matched > b.matched;
              return a.id < b.id;
            });
  if (top_k != 0 && out.size() > top_k) out.resize(top_k);
  return out;
}

}  // namespace bes
