// Group-commit batching for the durable-delete path (ROADMAP follow-on to
// live ingest). segment_writer::append_tombstones writes one CRC'd type-4
// record — and pays one flush + fsync — per call; under a stream of single
// deletes that is one record and one disk sync EACH. This batcher coalesces
// deletes that arrive within a configurable window (or up to a batch-size
// cap) into ONE type-4 record followed by ONE flush/fsync, amortizing the
// expensive part across the batch exactly like a WAL group commit.
//
// Durability contract: remove() returns only after the batch holding its
// ordinal has been written, flushed, and (when options.fsync) fsynced — the
// same guarantee as a direct append_tombstones call, at up to `window`
// extra latency. remove_async() enqueues without waiting; flush() drains
// everything queued so far. Write errors latch: the failed batch's waiters
// and every later call see the original exception (the segment is in an
// unknown state; the caller owns recovery, same as a failed direct append).
//
// Threading: any number of producer threads may call remove()/remove_async()
// concurrently; one background thread owns the segment_writer while the
// batcher lives (callers must not touch the writer directly until after
// destruction, which drains the queue).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "db/segment.hpp"

namespace bes {

struct group_commit_options {
  // How long the first delete of a batch waits for company.
  std::chrono::milliseconds window{2};
  // Flush early once this many deletes are queued (0 = window only).
  std::size_t max_batch = 256;
  // fsync the segment after each batch's flush (through a separate
  // read-only descriptor; no-op on platforms without fsync).
  bool fsync = true;
};

// Monotone totals since construction.
struct group_commit_stats {
  std::uint64_t deletes = 0;   // ordinals accepted
  std::uint64_t records = 0;   // type-4 records written (== batches)
  std::uint64_t syncs = 0;     // fsync calls issued
};

class tombstone_group_commit {
 public:
  // The writer must outlive the batcher.
  explicit tombstone_group_commit(segment_writer& writer,
                                  group_commit_options options = {});
  // Drains and commits everything still queued (swallowing write errors —
  // call flush() explicitly to observe them), then joins the worker.
  ~tombstone_group_commit();

  tombstone_group_commit(const tombstone_group_commit&) = delete;
  tombstone_group_commit& operator=(const tombstone_group_commit&) = delete;

  // Queues `ordinal` and blocks until its batch is durable. Throws
  // std::runtime_error immediately on an ordinal out of range or already
  // queued/written (append_tombstones' validation, done eagerly so the
  // error surfaces on the offending call, not on an unrelated waiter).
  void remove(std::uint64_t ordinal);

  // Queues without waiting; a later remove()/flush() observes any failure.
  void remove_async(std::uint64_t ordinal);

  // Blocks until everything queued before this call is durable.
  void flush();

  [[nodiscard]] group_commit_stats stats() const;

 private:
  void worker();
  void enqueue(std::uint64_t ordinal, bool wait);
  void wait_for_batch(std::unique_lock<std::mutex>& lock,
                      std::uint64_t batch);

  segment_writer& writer_;
  group_commit_options options_;

  mutable std::mutex m_;
  std::condition_variable batch_cv_;   // wakes the worker
  std::condition_variable done_cv_;    // wakes producers
  std::vector<std::uint64_t> pending_;
  std::unordered_set<std::uint64_t> seen_;  // queued or written ordinals
  std::uint64_t open_batch_ = 0;   // id of the batch now accepting deletes
  std::uint64_t done_batch_ = 0;   // highest batch durably committed + 1
  std::exception_ptr error_;
  bool error_hit_ = false;   // worker-side latch: stop touching the writer
  bool flush_now_ = false;   // a flush() wants the open batch cut early
  group_commit_stats stats_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace bes
