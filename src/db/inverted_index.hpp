// Inverted symbol index: symbol -> posting list of image ids.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "symbolic/alphabet.hpp"

namespace bes {

class inverted_index {
 public:
  // Registers an image under each of its (distinct) symbols. Ids must be
  // added in increasing order so posting lists stay sorted. Two-phase for
  // the strong guarantee: every allocation (hash nodes, posting capacity)
  // happens before any posting lands, so a throwing add never leaves a
  // partial set of postings for `id` — at worst an empty list for a new
  // symbol, which is semantically invisible.
  void add(std::uint32_t id, std::span<const symbol_id> symbols);

  // Pre-sizes the posting-list hash for `symbol_count` distinct symbols so
  // a bulk load never rehashes mid-ingest.
  void reserve(std::size_t symbol_count) { lists_.reserve(symbol_count); }

  // Union of the posting lists of `symbols` (sorted, unique).
  [[nodiscard]] std::vector<std::uint32_t> lookup_any(
      std::span<const symbol_id> symbols) const;

  [[nodiscard]] std::size_t postings(symbol_id symbol) const noexcept;
  [[nodiscard]] std::size_t distinct_symbols() const noexcept {
    return lists_.size();
  }

 private:
  std::unordered_map<symbol_id, std::vector<std::uint32_t>> lists_;
};

}  // namespace bes
