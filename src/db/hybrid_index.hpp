// The fused spatial-visual index (ROADMAP "Hybrid spatial-visual index";
// "Hybrid Indexes to Expedite Spatial-Visual Search", PAPERS.md): one R-tree
// over every icon MBR whose nodes ALSO carry symbol-signature bitmaps, so a
// single traversal prunes on window ∩ signature simultaneously.
//
// The combined prefilter (db/prefilter.hpp) materializes two full candidate
// lists — inverted-index hits and R-tree window hits — and intersects them
// after the fact. Here the intersection happens inside the tree descent: a
// subtree is cut the moment its bounding box misses every padded query
// window OR its signature shares no bit with the query's symbols, whichever
// fires first. The result SET is identical to combined_candidates (an exact
// per-hit recheck removes the signature's hash collisions), but the work to
// produce it is one traversal instead of two generations + an intersection.
#pragma once

#include <shared_mutex>

#include "db/database.hpp"
#include "db/rtree.hpp"

namespace bes {

// Live ingest: same reader/writer discipline as spatial_index — add_image
// takes the exclusive side, fused traversals the shared side.
class hybrid_index {
 public:
  // Indexes all icons of all current records (snapshot; add images first).
  explicit hybrid_index(const image_database& db);

  // Deferred build for bulk-load paths: starts empty, caller indexes each
  // image as it lands (mirrors spatial_index).
  hybrid_index(const image_database& db, deferred_build_t);

  // Indexes the icons of record `id` (already in the database), each under
  // its symbol's signature bit; ancestors pick the bit up on the way down.
  void add_image(image_id id);

  // Fused-traversal accounting, surfaced by besdb explain and bench E9e.
  struct traversal_stats {
    std::size_t nodes_visited = 0;
    std::size_t entries_tested = 0;
    // Leaf hits the traversal produced before the exact recheck/dedup —
    // includes signature hash collisions and duplicate icons per image.
    std::size_t raw_hits = 0;
  };

  // Ids of images with at least one icon d and one query icon q such that
  // d.symbol == q.symbol and d.mbr overlaps q.mbr padded by `pad` pixels on
  // every side (sorted, unique) — the same set as combined_candidates(db,
  // spatial, query, pad), from one fused traversal. pad < 0 throws.
  [[nodiscard]] std::vector<image_id> candidates(
      const symbolic_image& query, int pad,
      traversal_stats* stats = nullptr) const;

  // The signature bit an icon symbol maps to. 64 bits of alphabet are
  // collision-free; beyond that symbols alias (bit symbol % 64), which only
  // weakens pruning — never correctness, thanks to the exact recheck.
  [[nodiscard]] static rtree::signature_t signature_of(
      symbol_id symbol) noexcept {
    return 1ull << (static_cast<unsigned>(symbol) % 64u);
  }

  [[nodiscard]] std::size_t indexed_icons() const {
    std::shared_lock lock(mutex_);
    return tree_.size();
  }
  // Direct tree access bypasses the lock: callers must be quiesced (no
  // concurrent add_image).
  [[nodiscard]] const rtree& tree() const noexcept { return tree_; }

 private:
  const image_database* db_;
  rtree tree_;
  mutable std::shared_mutex mutex_;
};

}  // namespace bes
