// SCRP1 — the sharded corpus directory format (ROADMAP "shard a corpus
// across many segments"). A corpus is a directory of per-shard BSEG1
// segments plus a CRC-checked manifest mapping shard -> segment:
//
//   corpus.scrp/
//     manifest.scrp       SCRP1 manifest (below)
//     shard-0000.bseg     BSEG1 segment of shard 0 (db/segment.hpp)
//     shard-0001.bseg     ...
//
// The manifest is line-oriented:
//
//   SCRP1
//   shards <N>
//   replicas <R>          (consistent-hash ring virtual nodes per shard)
//   images <total>
//   shard <i> <file> <image-count>     (N lines, i = 0..N-1)
//   check <crc32 hex of every preceding byte>
//
// Global ids are NOT stored: records stream to shards in global-id order,
// so shard s holds exactly the ids g with ring.shard_of(g) == s, in
// ascending order — the (shards, replicas, images) triple reconstructs the
// whole assignment, and loaders verify it against the per-segment record
// counts. Each shard's segment carries its own footer index and per-record
// CRCs; opening a corpus merges the per-shard footers into one sharded (or
// one flat) database.
//
// The streaming shard_writer appends records as they arrive — one open
// segment_writer per shard, symbol deltas emitted as the shared alphabet
// grows — so a corpus that never fits in memory can still be written in one
// pass.
#pragma once

#include <filesystem>

#include "db/segment.hpp"
#include "db/shard.hpp"

namespace bes {

// Shard count used when a caller asks for "a sharded corpus" without
// choosing (save_database with db_format::sharded).
inline constexpr std::size_t default_shard_count = 8;
inline constexpr std::size_t default_ring_replicas = 64;
// The manifest's file name inside a corpus directory.
inline constexpr const char* shard_manifest_name = "manifest.scrp";

struct shard_manifest_entry {
  std::string file;           // segment file name, relative to the directory
  std::uint64_t images = 0;   // image records in that segment
};

struct shard_manifest {
  std::size_t shard_count = 0;
  std::size_t ring_replicas = 0;
  std::uint64_t images = 0;
  std::vector<shard_manifest_entry> shards;  // indexed by shard
};

// Reads and CRC-verifies the manifest; `path` may be the manifest file or
// the corpus directory. Throws std::runtime_error on I/O failure, malformed
// content, a checksum mismatch, or entries that disagree (counts that do
// not sum, segment names escaping the directory, ...).
[[nodiscard]] shard_manifest read_shard_manifest(
    const std::filesystem::path& path);

// True when `path` looks like an SCRP1 corpus: a directory containing a
// manifest, or a file starting with the SCRP1 magic. Never throws.
[[nodiscard]] bool is_sharded_corpus(const std::filesystem::path& path);

// Streams records into a sharded corpus. Creates the directory and one
// segment_writer per shard up front; every append routes one record to its
// shard by consistent hash of the NEXT global id (the arrival index) and
// writes it straight through — nothing but per-segment footer offsets is
// held in memory, so the corpus size is unbounded. All errors throw
// std::runtime_error.
class shard_writer {
 public:
  shard_writer(const std::filesystem::path& dir, std::size_t shard_count,
               std::size_t ring_replicas = default_ring_replicas);
  ~shard_writer();

  shard_writer(const shard_writer&) = delete;
  shard_writer& operator=(const shard_writer&) = delete;

  // Appends one record (its global id is returned). `symbols` is the shared
  // alphabet, which may still be growing: each shard's segment records
  // symbol deltas on its own schedule.
  image_id append(const db_record& rec, const alphabet& symbols);
  // Convenience: encodes the image and builds its pruner histograms, then
  // routes as above.
  image_id append(std::string name, symbolic_image image,
                  const alphabet& symbols);

  // Finishes every segment (footers) and writes the manifest. Called by the
  // destructor if needed, but call it explicitly to observe write failures.
  void finish();

  [[nodiscard]] std::size_t images_written() const noexcept {
    return static_cast<std::size_t>(next_global_);
  }

 private:
  std::filesystem::path dir_;
  shard_ring ring_;
  std::vector<std::unique_ptr<segment_writer>> writers_;
  std::vector<std::uint64_t> per_shard_;
  std::uint64_t next_global_ = 0;
  // Exceptions in flight at construction: the destructor must NOT finalize
  // (and so legitimize, via a CRC-valid manifest) a corpus whose write was
  // cut short by an exception — see ~shard_writer.
  int uncaught_at_ctor_ = 0;
  // Latched by a throwing append: once any record failed to land, neither
  // the destructor nor an explicit finish() may write the manifest.
  bool failed_ = false;
  bool finished_ = false;
};

// Opens an SCRP1 corpus (manifest file or directory) into a
// sharded_database: per-shard segments materialize through the pre-encoded
// bulk-load path, per-shard R-trees build in the same pass, and the global
// id assignment is reconstructed from the manifest's ring parameters and
// verified against every segment's record count. `options.recover_tail`
// applies per shard segment.
[[nodiscard]] sharded_database load_sharded_corpus(
    const std::filesystem::path& path, segment_read_options options = {});

// One shard of a corpus, opened ALONE — the unit a shard server (src/net)
// loads: that shard's records as a standalone database plus the corpus-
// global id of each local record (local id i holds global_ids[i], ascending
// — reconstructed from the manifest's ring parameters, not stored). Only
// the named shard's segment is read; a serve fleet across machines never
// touches its siblings' files.
struct loaded_shard {
  image_database db;                 // local ids = positions in global_ids
  std::vector<image_id> global_ids;  // local -> global, strictly ascending
  std::size_t shard_index = 0;
  std::size_t shard_count = 0;       // of the whole corpus
  std::uint64_t corpus_images = 0;   // records in the whole corpus
};

// Throws std::runtime_error on a bad manifest/segment and
// std::invalid_argument when shard_index >= the manifest's shard count.
[[nodiscard]] loaded_shard load_shard(const std::filesystem::path& path,
                                      std::size_t shard_index,
                                      segment_read_options options = {});

// Same corpus, materialized FLAT into one image_database in global-id
// order — so a corpus written from a database round-trips to an equal
// database (the load_database autodetect path for SCRP1).
[[nodiscard]] image_database load_sharded_flat(
    const std::filesystem::path& path, segment_read_options options = {});

// Streams every record of `db` through a shard_writer into `dir`.
void save_sharded(const image_database& db, const std::filesystem::path& dir,
                  std::size_t shard_count,
                  std::size_t ring_replicas = default_ring_replicas);

// Streams corpus `src` into a fresh corpus at `dst` with `new_shard_count`
// shards (besdb shard split/merge): records flow one at a time from the
// source segments into the new shard_writer, so a reshard never
// materializes the corpus either. Global ids (and so the flat view) are
// preserved; consistent hashing keeps all but ~|moved arcs|/ring of the
// records in a same-index shard. `dst` must differ from `src`.
void reshard(const std::filesystem::path& src, const std::filesystem::path& dst,
             std::size_t new_shard_count, segment_read_options options = {});

}  // namespace bes
