// Lossy candidate prefilters over the two access paths the paper contrasts
// (§1): the relation-agnostic spatial index (R-tree windows over icon MBRs)
// and the inverted symbol index, plus their combination (symbol ∩ window,
// ROADMAP "Candidate pruning").
//
// Unlike the histogram pruner in db/query.cpp these filters are NOT
// admissible: an image can be relevant yet share no symbol with the query,
// or have drifted outside every padded window. The eval harness
// (src/eval) therefore measures each prefilter's recall against the
// exhaustive scan and gates it against a documented budget. `pad` absorbs
// expected object displacement: a query icon jittered by up to J pixels
// still overlaps its padded origin window whenever pad >= J.
#pragma once

#include "db/query.hpp"
#include "db/spatial_index.hpp"

namespace bes {

// Images with at least one icon of the same symbol as some query icon
// overlapping that icon's MBR padded by `pad` pixels on every side (union
// over query icons; sorted, unique). pad < 0 throws. `generated` (if
// non-null) receives the raw per-window hit count before dedup — the
// candidates_generated accounting of search_stats (db/query.hpp).
[[nodiscard]] std::vector<image_id> window_candidates(
    const spatial_index& index, const symbolic_image& query, int pad,
    std::size_t* generated = nullptr);

// Sorted intersection of two sorted, unique candidate lists.
[[nodiscard]] std::vector<image_id> intersect_candidates(
    std::span<const image_id> a, std::span<const image_id> b);

// The combined prefilter: inverted-index candidates (>= 1 shared symbol)
// ∩ window candidates. Strictly tighter than either input. `generated` (if
// non-null) receives the summed pre-dedup sizes of both inputs — everything
// materialized to produce the intersection.
[[nodiscard]] std::vector<image_id> combined_candidates(
    const image_database& db, const spatial_index& index,
    const symbolic_image& query, int pad, std::size_t* generated = nullptr);

// Batch retrieval over the combined prefilter (ROADMAP "feeding the
// combined set through search_batch"): computes combined_candidates per
// query — in parallel across the batch — then drives the per-query sets
// through search_batch_candidates, so ranking/pruning/stats behave exactly
// as search_candidates per query. results[i] == search_candidates(db,
// encode(queries[i]), combined_candidates(db, index, queries[i], pad),
// options).
[[nodiscard]] std::vector<std::vector<query_result>> search_batch_combined(
    const image_database& db, const spatial_index& index,
    std::span<const symbolic_image> queries, int pad,
    const query_options& options = {},
    std::vector<search_stats>* stats = nullptr);

}  // namespace bes
