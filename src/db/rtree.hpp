// R-tree (Guttman 1984, the paper's reference [1]) — the "by size and
// location" indexing family the paper contrasts with relation-based
// indexing. We use it as a spatial access path: window queries over all
// icon MBRs in the database ("images with some icon inside this region")
// complement the relation-based BE-string scoring.
//
// Quadratic-split insertion, overlap window search; M = 8 entries per node,
// m = 3 minimum fill. Deletion is not needed by any experiment and is
// intentionally out of scope.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "geometry/rect.hpp"

namespace bes {

class rtree {
 public:
  using payload_t = std::uint64_t;

  rtree() = default;

  // Inserts a box with its payload. Boxes may duplicate and overlap freely.
  // Throws std::invalid_argument on an invalid box.
  void insert(const rect& box, payload_t payload);

  // Payloads of all entries whose box overlaps `window` (shares at least
  // one point), in unspecified order.
  [[nodiscard]] std::vector<payload_t> search(const rect& window) const;

  // Payloads of all entries whose box is fully contained in `window`.
  [[nodiscard]] std::vector<payload_t> search_contained(
      const rect& window) const;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] int height() const noexcept;  // 0 for empty tree

  // Structural invariants (node fills, parent MBR coverage); used by tests.
  [[nodiscard]] bool check_invariants() const;

  static constexpr std::size_t max_entries = 8;
  static constexpr std::size_t min_entries = 3;

 private:
  struct node;
  struct entry {
    rect box;
    payload_t payload = 0;           // leaf entries
    std::unique_ptr<node> child;     // internal entries
  };
  struct node {
    bool leaf = true;
    std::vector<entry> entries;
  };

  static rect bounds_of(const node& n) noexcept;
  static long long enlargement(const rect& current, const rect& extra) noexcept;
  node* choose_leaf(node* from, const rect& box, std::vector<node*>& path);
  static std::unique_ptr<node> split(node& full);
  void insert_entry(entry e);

  std::unique_ptr<node> root_;
  std::size_t size_ = 0;
  int height_ = 0;
};

}  // namespace bes
