// R-tree (Guttman 1984, the paper's reference [1]) — the "by size and
// location" indexing family the paper contrasts with relation-based
// indexing. We use it as a spatial access path: window queries over all
// icon MBRs in the database ("images with some icon inside this region")
// complement the relation-based BE-string scoring.
//
// Quadratic-split insertion, overlap window search; M = 8 entries per node,
// m = 3 minimum fill. Deletion is not needed by any experiment and is
// intentionally out of scope.
//
// Entries optionally carry a symbol-signature bitmap (a 64-bit Bloom-style
// mask, see db/hybrid_index.hpp): internal entries hold the OR of their
// subtree's leaf signatures, maintained through inserts and splits, so a
// fused search can prune a whole subtree the moment its window does not
// overlap OR its signature shares no bit with the query — the hybrid
// spatial-visual traversal of "Hybrid Indexes to Expedite Spatial-Visual
// Search" (PAPERS.md). Plain inserts leave the signature empty (0), which
// fused probes treat as "prune": use signatures on all inserts or none.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "geometry/rect.hpp"

namespace bes {

class rtree {
 public:
  using payload_t = std::uint64_t;
  // Symbol-signature bitmap: bit (symbol % 64). A superset filter — a clear
  // bit proves absence, a set bit may collide — so signature pruning alone
  // admits false positives that an exact check downstream removes.
  using signature_t = std::uint64_t;

  // One predicate of a fused search: a window AND a signature mask that a
  // matching entry must overlap/intersect simultaneously.
  struct fused_probe {
    rect window;
    signature_t mask = 0;
  };

  // Traversal accounting for fused searches (bench E9e, besdb explain).
  struct fused_stats {
    std::size_t nodes_visited = 0;   // nodes popped off the traversal stack
    std::size_t entries_tested = 0;  // entry-vs-probe predicate evaluations
  };

  rtree() = default;

  // Inserts a box with its payload. Boxes may duplicate and overlap freely.
  // Throws std::invalid_argument on an invalid box. `sig` is the entry's
  // symbol signature, OR-ed into every ancestor on the way down.
  void insert(const rect& box, payload_t payload, signature_t sig = 0);

  // Payloads of all entries whose box overlaps `window` (shares at least
  // one point), in unspecified order.
  [[nodiscard]] std::vector<payload_t> search(const rect& window) const;

  // Payloads of all entries whose box is fully contained in `window`.
  [[nodiscard]] std::vector<payload_t> search_contained(
      const rect& window) const;

  // Payloads of all leaf entries matched by at least one probe: the entry's
  // box overlaps the probe window AND its signature intersects the probe
  // mask. ONE traversal serves every probe: a subtree is descended only
  // while some probe passes both predicates against its entry, so spatial
  // and signature pruning compound instead of intersecting two full
  // candidate lists after the fact. Order unspecified; duplicates possible
  // only if duplicate boxes were inserted.
  [[nodiscard]] std::vector<payload_t> search_fused(
      std::span<const fused_probe> probes, fused_stats* stats = nullptr) const;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] int height() const noexcept;  // 0 for empty tree

  // Structural invariants (node fills, parent MBR coverage, parent
  // signature coverage); used by tests.
  [[nodiscard]] bool check_invariants() const;

  static constexpr std::size_t max_entries = 8;
  static constexpr std::size_t min_entries = 3;

 private:
  struct node;
  struct entry {
    rect box;
    payload_t payload = 0;           // leaf entries
    signature_t sig = 0;             // leaf: own bit; internal: OR of subtree
    std::unique_ptr<node> child;     // internal entries
  };
  struct node {
    bool leaf = true;
    std::vector<entry> entries;
  };

  static rect bounds_of(const node& n) noexcept;
  static signature_t sig_of(const node& n) noexcept;
  static long long enlargement(const rect& current, const rect& extra) noexcept;
  node* choose_leaf(node* from, const rect& box, signature_t sig,
                    std::vector<node*>& path);
  static std::unique_ptr<node> split(node& full);
  void insert_entry(entry e);

  std::unique_ptr<node> root_;
  std::size_t size_ = 0;
  int height_ = 0;
};

}  // namespace bes
