// The one candidate-generation interface behind every scan (ISSUE 7
// tentpole, part 1). The repo grew five ways to turn a query into a
// candidate id list — full scan, inverted symbol index, R-tree padded
// windows, symbol ∩ window, and the fused hybrid traversal — each with its
// own entry point that callers (and the eval harness) had to pick by hand.
// An access_path wraps each generator behind one interface yielding a
// sorted, unique candidate list plus a cheap cost estimate, so the scan
// engine (db/query.cpp, db/shard.cpp) and the cost-based planner
// (db/planner.hpp) consume candidate generation without knowing which
// structure produced it.
#pragma once

#include <memory>
#include <string_view>

#include "db/database.hpp"

namespace bes {

class spatial_index;
class hybrid_index;

enum class access_path_kind {
  full_scan,       // every record id; the only admissible-without-index path
  inverted_index,  // >= 1 shared symbol (admissible together with full_scan
                   // under the paper's "no shared symbol => score 0" note)
  rtree_window,    // >= 1 icon of a query symbol inside that icon's padded
                   // window (lossy under displacement > pad)
  combined,        // inverted_index ∩ rtree_window, materialized then
                   // intersected (db/prefilter.hpp)
  hybrid,          // the same set as combined from ONE fused traversal
                   // (db/hybrid_index.hpp)
};

[[nodiscard]] std::string_view to_string(access_path_kind kind) noexcept;
// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] access_path_kind access_path_kind_from(std::string_view name);

// One query, as every generator sees it. `image` may be null for the
// non-spatial paths (full_scan, inverted_index); the spatial paths throw
// std::invalid_argument without it. `pad` widens each query icon's window
// on every side (spatial paths only).
struct path_probe {
  const symbolic_image* image = nullptr;
  std::span<const symbol_id> symbols;
  int pad = 0;
};

// Generation accounting (the candidates_generated side of search_stats).
struct access_path_stats {
  // Raw ids the generator produced before sorting/dedup/intersection —
  // >= the returned list's size, == it only when generation is exact.
  std::size_t candidates_generated = 0;
  // Tree nodes visited (spatial paths; 0 elsewhere).
  std::size_t nodes_visited = 0;
};

class access_path {
 public:
  virtual ~access_path() = default;

  [[nodiscard]] virtual access_path_kind kind() const noexcept = 0;

  // Cheap upper-bound estimate of generate()'s candidate count, from
  // statistics already on hand (db size, posting-list lengths, window/domain
  // area ratios). Never generates candidates; deterministic for a given
  // (probe, database state).
  [[nodiscard]] virtual std::size_t estimate(const path_probe& probe) const = 0;

  // The candidate ids (sorted, unique), ready for scan_shard /
  // search_candidates. `stats` (if non-null) is overwritten.
  [[nodiscard]] virtual std::vector<image_id> generate(
      const path_probe& probe, access_path_stats* stats = nullptr) const = 0;
};

// Everything a path may need to generate from. `db` is required; `spatial`
// only by rtree_window/combined; `hybrid` only by hybrid. make_access_path
// throws std::invalid_argument when the requested kind's structure is null.
struct access_path_context {
  const image_database* db = nullptr;
  const spatial_index* spatial = nullptr;
  const hybrid_index* hybrid = nullptr;
};

[[nodiscard]] std::unique_ptr<access_path> make_access_path(
    access_path_kind kind, const access_path_context& ctx);

}  // namespace bes
