// The cost-based query planner (ISSUE 7 tentpole, part 3): picks ONE access
// path per query from statistics that are already on hand — database size,
// posting-list lengths, the query's window/domain area ratios (the cheap
// spatial-density stand-in), its icon count (the LCS cost driver), top_k
// and min_score — and sizes the prefilter pad adaptively from the query's
// own spread instead of a fixed jitter budget.
//
// The choice is a pure function of (query, database statistics, options):
// no randomness, no wall-clock feedback, so the same inputs always plan the
// same path — the property db_planner_test locks. Sharded databases are
// planned per (query, shard): each shard's own statistics drive its plan,
// so a shard whose postings are dense may scan while a sparse one probes
// its hybrid tree, all feeding one shared top-k.
#pragma once

#include "db/access_path.hpp"
#include "db/query.hpp"

namespace bes {

class spatial_index;
class hybrid_index;
class sharded_database;

// The planner's verdict for one (query, database) pair.
struct access_plan {
  access_path_kind path = access_path_kind::full_scan;
  int pad = 0;                           // adaptive window pad (spatial paths)
  std::size_t estimated_candidates = 0;  // the estimate that won

  friend bool operator==(const access_plan&, const access_plan&) = default;
};

// Everything the planner may plan against. `db` is required; null
// `spatial`/`hybrid` simply take those paths off the menu.
struct planner_context {
  const image_database* db = nullptr;
  const spatial_index* spatial = nullptr;
  const hybrid_index* hybrid = nullptr;
};

// The adaptive prefilter pad: the fixed displacement budget the eval
// harness used (domain/16 + domain/32) computed from the QUERY's own extent
// instead of a corpus-wide constant, plus an eighth of the mean icon extent
// so scenes with large objects (whose MBRs drift further under distortion)
// get wider windows. Never below 2. On the eval corpus this is >= the old
// fixed pad, so planner recall can only match or beat the fixed-pad cells.
[[nodiscard]] int adaptive_pad(const symbolic_image& query);

// Plans one query. Deterministic; never generates candidates. Rules:
// full_scan when the index is off, the query has no symbols, or the
// database is empty; lossy spatial paths are considered only when a
// threshold exists to defend (top_k > 0 or min_score > 0 — with neither,
// the caller wants every score, which only admissible paths provide) and
// the query is not transform-invariant (windows around the identity
// layout are wrong for the 7 other dihedral variants). Among the eligible
// paths the cheapest modeled cost wins: scoring a candidate costs ~16 x
// icon-count generation units, so a path is worth its generation overhead
// exactly when its candidate estimate is enough smaller. Ties go to the
// earlier (more conservative) path.
[[nodiscard]] access_plan plan_query(const planner_context& ctx,
                                     const symbolic_image& query,
                                     std::span<const symbol_id> symbols,
                                     const query_options& options);

// Plan, generate through the chosen access path, scan — one database.
// `stats` additionally records the plan (stats->plans, one entry) and the
// generation accounting (candidates_generated).
[[nodiscard]] std::vector<query_result> search_planned(
    const planner_context& ctx, const symbolic_image& query,
    const query_options& options = {}, search_stats* stats = nullptr);

// Same, for a query already encoded (skips re-encoding; the eval harness
// and batch path use this).
[[nodiscard]] std::vector<query_result> search_planned(
    const planner_context& ctx, const symbolic_image& query,
    const be_string2d& query_strings, std::span<const symbol_id> symbols,
    const query_options& options = {}, search_stats* stats = nullptr);

// Batch counterpart: results[i] == search_planned(ctx, queries[i], options),
// with encoding/histograms/transforms amortized and the queries scheduled
// on one dynamic work queue (detail::for_each_query).
[[nodiscard]] std::vector<std::vector<query_result>> search_batch_planned(
    const planner_context& ctx, std::span<const symbolic_image> queries,
    const query_options& options = {},
    std::vector<search_stats>* stats = nullptr);

// Sharded: one plan per (query, shard) against that shard's own statistics;
// the per-shard candidate lists feed one fan-out sharing one top-k
// (search_local_candidates), so results merge exactly like every other
// sharded search. stats->plans gets shard_count() entries, in shard order.
[[nodiscard]] std::vector<query_result> search_planned(
    const sharded_database& db, const symbolic_image& query,
    const query_options& options = {}, search_stats* stats = nullptr);

[[nodiscard]] std::vector<std::vector<query_result>> search_batch_planned(
    const sharded_database& db, std::span<const symbolic_image> queries,
    const query_options& options = {},
    std::vector<search_stats>* stats = nullptr);

}  // namespace bes
