// Spatial access path over a whole database: every icon MBR of every image
// in one R-tree. Answers "which images have an icon (of symbol S) touching
// / inside this region" — the size-and-location query family (paper §1,
// category 2) that complements relation-based retrieval.
#pragma once

#include <optional>
#include <shared_mutex>

#include "db/database.hpp"
#include "db/rtree.hpp"

namespace bes {

// Live ingest: an internal reader/writer lock lets one add_image() run
// against any number of window queries (the R-tree rebalances on insert, so
// lock-free reads are off the table). Writers are the database's single
// ingest thread; queries only ever take the shared side.
class spatial_index {
 public:
  // Indexes all icons of all current records. The index is a snapshot: add
  // images first, then build.
  explicit spatial_index(const image_database& db);

  // Deferred build for bulk-load paths (the segment loader): starts empty so
  // the caller can index each image in the same pass that materializes it.
  spatial_index(const image_database& db, deferred_build_t);

  // Indexes the icons of record `id` (which must already be in the
  // database). The snapshot constructor above is this, called per record.
  void add_image(image_id id);

  // Ids of images with at least one icon overlapping `window`, optionally
  // restricted to a symbol (sorted, unique).
  [[nodiscard]] std::vector<image_id> images_overlapping(
      const rect& window, std::optional<symbol_id> symbol = {}) const;

  // Same, icon fully inside `window`.
  [[nodiscard]] std::vector<image_id> images_contained(
      const rect& window, std::optional<symbol_id> symbol = {}) const;

  [[nodiscard]] std::size_t indexed_icons() const {
    std::shared_lock lock(mutex_);
    return tree_.size();
  }
  // Direct tree access bypasses the lock: callers must be quiesced (no
  // concurrent add_image).
  [[nodiscard]] const rtree& tree() const noexcept { return tree_; }

 private:
  [[nodiscard]] std::vector<image_id> decode(
      std::vector<rtree::payload_t> hits, std::optional<symbol_id> symbol) const;

  const image_database* db_;
  rtree tree_;
  mutable std::shared_mutex mutex_;
};

}  // namespace bes
