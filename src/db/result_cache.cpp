#include "db/result_cache.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <list>
#include <mutex>
#include <stdexcept>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "core/token.hpp"
#include "lcs/kernel.hpp"
#include "lcs/similarity.hpp"

namespace bes {

namespace {

void append_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void append_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  append_u64(out, bits);
}

// One token as a u64: all-ones for the dummy, else (symbol << 1) | kind —
// the same packing idea BSEG1 uses, widened so no symbol id can collide
// with the dummy sentinel.
void append_token(std::string& out, token t) {
  if (t.is_dummy()) {
    append_u64(out, ~std::uint64_t{0});
    return;
  }
  append_u64(out, (static_cast<std::uint64_t>(t.symbol()) << 1) |
                      static_cast<std::uint64_t>(t.kind()));
}

void append_axis(std::string& out, const axis_string& axis) {
  append_u64(out, axis.size());
  for (token t : axis.tokens()) append_token(out, t);
}

void append_strings(std::string& out, const be_string2d& strings) {
  append_axis(out, strings.x);
  append_axis(out, strings.y);
}

// Serialized token streams ordered lexicographically = canonical-variant
// order. Comparing serializations (not the structures) keeps "smallest
// variant" a pure byte-level fact the key can reproduce forever.
std::string serialize_strings(const be_string2d& strings) {
  std::string out;
  out.reserve(16 + 8 * strings.total_tokens());
  append_strings(out, strings);
  return out;
}

std::uint64_t fnv1a64(const std::string& bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

cache_key make_cache_key(const be_string2d& query_strings,
                         std::span<const symbol_id> query_symbols,
                         const query_options& options, cache_scope scope,
                         std::uint32_t shard_count,
                         std::uint32_t ring_replicas, bool key_top_k) {
  cache_key key;

  // Canonicalize the query first: under transform_invariant the scan scores
  // max over all 8 dihedral variants, so any orientation of the same picture
  // has the same answer set — key them together via the lexicographically
  // smallest serialized variant.
  std::string canonical_strings;
  if (options.transform_invariant) {
    const query_transforms variants = precompute_transforms(query_strings);
    std::size_t best = 0;
    canonical_strings = serialize_strings(variants.strings[0]);
    for (std::size_t i = 1; i < variants.strings.size(); ++i) {
      std::string candidate = serialize_strings(variants.strings[i]);
      if (candidate < canonical_strings) {
        canonical_strings = std::move(candidate);
        best = i;
      }
    }
    key.canon = all_dihedral[best];
  } else {
    canonical_strings = serialize_strings(query_strings);
    key.canon = dihedral::identity;
  }

  std::string& out = key.bytes;
  out.reserve(64 + canonical_strings.size() + 4 * query_symbols.size());
  out.append("BQK1");
  append_u8(out, static_cast<std::uint8_t>(scope));
  append_u32(out, shard_count);
  append_u32(out, ring_replicas);

  const std::string_view kernel = active_lcs_kernel().name;
  append_u32(out, static_cast<std::uint32_t>(kernel.size()));
  out.append(kernel);

  append_u64(out, key_top_k ? options.top_k : 0);
  append_f64(out, options.min_score);
  append_u8(out, options.transform_invariant ? 1 : 0);
  append_u8(out, options.use_index ? 1 : 0);
  append_u8(out, options.histogram_pruning ? 1 : 0);
  append_u8(out, static_cast<std::uint8_t>(options.similarity.norm));
  append_u8(out, options.similarity.exact_lcs ? 1 : 0);

  // The symbol set drives the index filter (empty forces a full scan), so
  // two queries with equal strings but different symbol lists can scan
  // different candidate sets — the set is part of the answer's identity.
  append_u32(out, static_cast<std::uint32_t>(query_symbols.size()));
  for (symbol_id s : query_symbols) append_u32(out, s);

  out.append(canonical_strings);
  key.digest = fnv1a64(out);
  return key;
}

void to_canonical_frame(std::vector<query_result>& results, dihedral canon) {
  if (canon == dihedral::identity) return;
  const dihedral undo = inverse(canon);
  for (query_result& r : results) r.transform = compose(undo, r.transform);
}

void from_canonical_frame(std::vector<query_result>& results, dihedral canon) {
  if (canon == dihedral::identity) return;
  for (query_result& r : results) r.transform = compose(canon, r.transform);
}

// ---------------------------------------------------------------------------
// The store.

struct result_cache::shard_state {
  struct node {
    std::string key;
    cache_entry entry;
    bool is_protected = false;
  };
  using node_list = std::list<node>;

  std::mutex m;
  node_list probation;   // first-touch entries, evicted first
  node_list protected_;  // re-referenced entries
  std::unordered_map<std::string_view, node_list::iterator> index;
};

struct result_cache::counters {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> delta_refreshes{0};
  std::atomic<std::uint64_t> delta_rescored{0};
  std::atomic<std::uint64_t> insertions{0};
  std::atomic<std::uint64_t> evictions{0};
};

result_cache::result_cache(result_cache_options options)
    : options_(options), counters_(std::make_unique<counters>()) {
  if (options_.capacity == 0) {
    throw std::invalid_argument("result_cache: capacity must be > 0");
  }
  if (options_.shards == 0) options_.shards = 1;
  shard_count_ = std::min(options_.shards, options_.capacity);
  per_shard_capacity_ =
      (options_.capacity + shard_count_ - 1) / shard_count_;
  const double frac = std::clamp(options_.protected_fraction, 0.0, 1.0);
  protected_capacity_ = static_cast<std::size_t>(
      static_cast<double>(per_shard_capacity_) * frac);
  if (protected_capacity_ >= per_shard_capacity_ && per_shard_capacity_ > 1) {
    protected_capacity_ = per_shard_capacity_ - 1;
  }
  shards_ = std::make_unique<shard_state[]>(shard_count_);
}

result_cache::~result_cache() = default;

const result_cache_options& result_cache::options() const noexcept {
  return options_;
}

result_cache::shard_state& result_cache::shard_for(
    std::uint64_t digest) noexcept {
  return shards_[digest % shard_count_];
}

std::optional<cache_entry> result_cache::find(const cache_key& key) {
  shard_state& s = shard_for(key.digest);
  std::lock_guard lock(s.m);
  const auto it = s.index.find(std::string_view{key.bytes});
  if (it == s.index.end()) return std::nullopt;
  const auto node_it = it->second;
  if (node_it->is_protected) {
    // Refresh recency within the protected segment.
    s.protected_.splice(s.protected_.begin(), s.protected_, node_it);
  } else {
    // Promote probation -> protected; demote the protected tail back to
    // probation when the segment overflows (it keeps a second chance).
    node_it->is_protected = true;
    s.protected_.splice(s.protected_.begin(), s.probation, node_it);
    while (s.protected_.size() > protected_capacity_ &&
           s.protected_.size() > 1) {
      const auto tail = std::prev(s.protected_.end());
      tail->is_protected = false;
      s.probation.splice(s.probation.begin(), s.protected_, tail);
    }
  }
  return node_it->entry;
}

void result_cache::put(const cache_key& key, cache_entry entry) {
  shard_state& s = shard_for(key.digest);
  std::lock_guard lock(s.m);
  const auto it = s.index.find(std::string_view{key.bytes});
  if (it != s.index.end()) {
    const auto node_it = it->second;
    node_it->entry = std::move(entry);
    shard_state::node_list& home =
        node_it->is_protected ? s.protected_ : s.probation;
    home.splice(home.begin(), home, node_it);
    return;
  }
  s.probation.push_front(
      shard_state::node{key.bytes, std::move(entry), false});
  s.index.emplace(std::string_view{s.probation.front().key},
                  s.probation.begin());
  counters_->insertions.fetch_add(1, std::memory_order_relaxed);
  while (s.probation.size() + s.protected_.size() > per_shard_capacity_) {
    shard_state::node_list& victim_list =
        s.probation.empty() ? s.protected_ : s.probation;
    const auto victim = std::prev(victim_list.end());
    s.index.erase(std::string_view{victim->key});
    victim_list.erase(victim);
    counters_->evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

void result_cache::clear() {
  for (std::size_t i = 0; i < shard_count_; ++i) {
    shard_state& s = shards_[i];
    std::lock_guard lock(s.m);
    s.index.clear();
    s.probation.clear();
    s.protected_.clear();
  }
}

std::size_t result_cache::size() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    shard_state& s = shards_[i];
    std::lock_guard lock(s.m);
    total += s.probation.size() + s.protected_.size();
  }
  return total;
}

result_cache_stats result_cache::stats() const noexcept {
  result_cache_stats out;
  out.hits = counters_->hits.load(std::memory_order_relaxed);
  out.misses = counters_->misses.load(std::memory_order_relaxed);
  out.delta_refreshes =
      counters_->delta_refreshes.load(std::memory_order_relaxed);
  out.delta_rescored =
      counters_->delta_rescored.load(std::memory_order_relaxed);
  out.insertions = counters_->insertions.load(std::memory_order_relaxed);
  out.evictions = counters_->evictions.load(std::memory_order_relaxed);
  return out;
}

void result_cache::note_hit() noexcept {
  counters_->hits.fetch_add(1, std::memory_order_relaxed);
}

void result_cache::note_miss() noexcept {
  counters_->misses.fetch_add(1, std::memory_order_relaxed);
}

void result_cache::note_delta_refresh(std::uint64_t rescored) noexcept {
  counters_->delta_refreshes.fetch_add(1, std::memory_order_relaxed);
  counters_->delta_rescored.fetch_add(rescored, std::memory_order_relaxed);
}

bool result_cache::debug_mutate(const cache_key& key,
                                const std::function<void(cache_entry&)>& fn) {
  shard_state& s = shard_for(key.digest);
  std::lock_guard lock(s.m);
  const auto it = s.index.find(std::string_view{key.bytes});
  if (it == s.index.end()) return false;
  fn(it->second->entry);
  return true;
}

}  // namespace bes
