#include "db/rtree.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace bes {

namespace {

long long area_ll(const rect& r) noexcept { return r.area(); }

}  // namespace

rect rtree::bounds_of(const node& n) noexcept {
  rect out = n.entries.front().box;
  for (std::size_t i = 1; i < n.entries.size(); ++i) {
    out = rect{hull(out.x, n.entries[i].box.x),
               hull(out.y, n.entries[i].box.y)};
  }
  return out;
}

rtree::signature_t rtree::sig_of(const node& n) noexcept {
  signature_t out = 0;
  for (const entry& e : n.entries) out |= e.sig;
  return out;
}

long long rtree::enlargement(const rect& current, const rect& extra) noexcept {
  const rect merged{hull(current.x, extra.x), hull(current.y, extra.y)};
  return area_ll(merged) - area_ll(current);
}

int rtree::height() const noexcept { return height_; }

rtree::node* rtree::choose_leaf(node* from, const rect& box, signature_t sig,
                                std::vector<node*>& path) {
  node* current = from;
  for (;;) {
    path.push_back(current);
    if (current->leaf) return current;
    // Least enlargement, ties by smallest area (Guttman ChooseLeaf).
    entry* best = nullptr;
    long long best_enlargement = std::numeric_limits<long long>::max();
    long long best_area = std::numeric_limits<long long>::max();
    for (entry& e : current->entries) {
      const long long grow = enlargement(e.box, box);
      const long long area = area_ll(e.box);
      if (grow < best_enlargement ||
          (grow == best_enlargement && area < best_area)) {
        best = &e;
        best_enlargement = grow;
        best_area = area;
      }
    }
    best->box = rect{hull(best->box.x, box.x), hull(best->box.y, box.y)};
    best->sig |= sig;
    current = best->child.get();
  }
}

std::unique_ptr<rtree::node> rtree::split(node& full) {
  // Guttman quadratic split: pick the pair wasting the most area as seeds,
  // then assign each remaining entry to the group needing less enlargement
  // (forced assignment once a group must absorb the rest to stay >= m).
  std::vector<entry> entries = std::move(full.entries);
  full.entries.clear();

  std::size_t seed_a = 0;
  std::size_t seed_b = 1;
  long long worst = std::numeric_limits<long long>::min();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (std::size_t j = i + 1; j < entries.size(); ++j) {
      const rect merged{hull(entries[i].box.x, entries[j].box.x),
                        hull(entries[i].box.y, entries[j].box.y)};
      const long long waste =
          area_ll(merged) - area_ll(entries[i].box) - area_ll(entries[j].box);
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  auto sibling = std::make_unique<node>();
  sibling->leaf = full.leaf;
  rect box_a = entries[seed_a].box;
  rect box_b = entries[seed_b].box;
  full.entries.push_back(std::move(entries[seed_a]));
  sibling->entries.push_back(std::move(entries[seed_b]));

  std::vector<entry> rest;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i != seed_a && i != seed_b) rest.push_back(std::move(entries[i]));
  }
  for (std::size_t i = 0; i < rest.size(); ++i) {
    entry& e = rest[i];
    const std::size_t remaining = rest.size() - i;
    if (full.entries.size() + remaining <= min_entries) {
      box_a = rect{hull(box_a.x, e.box.x), hull(box_a.y, e.box.y)};
      full.entries.push_back(std::move(e));
      continue;
    }
    if (sibling->entries.size() + remaining <= min_entries) {
      box_b = rect{hull(box_b.x, e.box.x), hull(box_b.y, e.box.y)};
      sibling->entries.push_back(std::move(e));
      continue;
    }
    const long long grow_a = enlargement(box_a, e.box);
    const long long grow_b = enlargement(box_b, e.box);
    if (grow_a < grow_b ||
        (grow_a == grow_b && full.entries.size() <= sibling->entries.size())) {
      box_a = rect{hull(box_a.x, e.box.x), hull(box_a.y, e.box.y)};
      full.entries.push_back(std::move(e));
    } else {
      box_b = rect{hull(box_b.x, e.box.x), hull(box_b.y, e.box.y)};
      sibling->entries.push_back(std::move(e));
    }
  }
  return sibling;
}

void rtree::insert(const rect& box, payload_t payload, signature_t sig) {
  if (!box.valid()) {
    throw std::invalid_argument("rtree::insert: invalid box " + to_string(box));
  }
  if (!root_) {
    root_ = std::make_unique<node>();
    height_ = 1;
  }
  std::vector<node*> path;
  node* leaf = choose_leaf(root_.get(), box, sig, path);
  leaf->entries.push_back(entry{box, payload, sig, nullptr});
  ++size_;

  // Split upward while nodes overflow.
  for (auto level = static_cast<std::ptrdiff_t>(path.size()) - 1; level >= 0;
       --level) {
    node* current = path[static_cast<std::size_t>(level)];
    if (current->entries.size() <= max_entries) break;
    std::unique_ptr<node> sibling = split(*current);
    if (level == 0) {
      // Grow a new root over the two halves.
      auto new_root = std::make_unique<node>();
      new_root->leaf = false;
      auto old_root = std::move(root_);
      new_root->entries.push_back(entry{bounds_of(*old_root), 0,
                                        sig_of(*old_root),
                                        std::move(old_root)});
      new_root->entries.push_back(
          entry{bounds_of(*sibling), 0, sig_of(*sibling), std::move(sibling)});
      root_ = std::move(new_root);
      ++height_;
    } else {
      node* parent = path[static_cast<std::size_t>(level) - 1];
      // Refresh the MBR and signature of the entry pointing at `current`
      // (the split moved entries out of it), then add the sibling next to
      // it. The ancestors' signatures stay supersets: split only
      // redistributes, never adds bits.
      for (entry& e : parent->entries) {
        if (e.child.get() == current) {
          e.box = bounds_of(*current);
          e.sig = sig_of(*current);
          break;
        }
      }
      parent->entries.push_back(
          entry{bounds_of(*sibling), 0, sig_of(*sibling), std::move(sibling)});
    }
  }
}

std::vector<rtree::payload_t> rtree::search(const rect& window) const {
  std::vector<payload_t> out;
  if (!root_) return out;
  std::vector<const node*> stack = {root_.get()};
  while (!stack.empty()) {
    const node* current = stack.back();
    stack.pop_back();
    for (const entry& e : current->entries) {
      if (!overlaps(e.box, window)) continue;
      if (current->leaf) {
        out.push_back(e.payload);
      } else {
        stack.push_back(e.child.get());
      }
    }
  }
  return out;
}

std::vector<rtree::payload_t> rtree::search_contained(
    const rect& window) const {
  std::vector<payload_t> out;
  if (!root_) return out;
  std::vector<const node*> stack = {root_.get()};
  while (!stack.empty()) {
    const node* current = stack.back();
    stack.pop_back();
    for (const entry& e : current->entries) {
      if (!overlaps(e.box, window)) continue;
      if (current->leaf) {
        if (contains(window, e.box)) out.push_back(e.payload);
      } else {
        stack.push_back(e.child.get());
      }
    }
  }
  return out;
}

std::vector<rtree::payload_t> rtree::search_fused(
    std::span<const fused_probe> probes, fused_stats* stats) const {
  std::vector<payload_t> out;
  if (!root_ || probes.empty()) return out;
  std::vector<const node*> stack = {root_.get()};
  while (!stack.empty()) {
    const node* current = stack.back();
    stack.pop_back();
    if (stats != nullptr) ++stats->nodes_visited;
    for (const entry& e : current->entries) {
      bool matched = false;
      for (const fused_probe& p : probes) {
        if (stats != nullptr) ++stats->entries_tested;
        // Both predicates at once: a subtree survives only if some single
        // probe finds its window overlapping AND its signature non-disjoint.
        if ((e.sig & p.mask) != 0 && overlaps(e.box, p.window)) {
          matched = true;
          break;
        }
      }
      if (!matched) continue;
      if (current->leaf) {
        out.push_back(e.payload);
      } else {
        stack.push_back(e.child.get());
      }
    }
  }
  return out;
}

bool rtree::check_invariants() const {
  if (!root_) return size_ == 0;
  bool ok = true;
  std::size_t leaves = 0;
  // (node, is_root, expected bounding box or nullptr)
  struct frame {
    const node* n;
    bool is_root;
    const rect* cover;
    signature_t cover_sig;
    bool has_cover_sig;
    int depth;
  };
  int leaf_depth = -1;
  std::vector<frame> stack = {{root_.get(), true, nullptr, 0, false, 0}};
  while (!stack.empty() && ok) {
    const frame f = stack.back();
    stack.pop_back();
    if (f.n->entries.empty()) {
      ok = f.is_root && size_ == 0;
      continue;
    }
    if (!f.is_root && (f.n->entries.size() < min_entries ||
                       f.n->entries.size() > max_entries)) {
      ok = false;
    }
    if (f.cover != nullptr) {
      for (const entry& e : f.n->entries) {
        if (!contains(*f.cover, e.box)) ok = false;
      }
    }
    if (f.has_cover_sig) {
      // Parent signature must be a superset of every child entry's bits.
      for (const entry& e : f.n->entries) {
        if ((e.sig & ~f.cover_sig) != 0) ok = false;
      }
    }
    if (f.n->leaf) {
      if (leaf_depth == -1) leaf_depth = f.depth;
      if (leaf_depth != f.depth) ok = false;  // all leaves at same level
      leaves += f.n->entries.size();
    } else {
      for (const entry& e : f.n->entries) {
        if (!e.child) {
          ok = false;
          continue;
        }
        stack.push_back(
            frame{e.child.get(), false, &e.box, e.sig, true, f.depth + 1});
      }
    }
  }
  return ok && leaves == size_;
}

}  // namespace bes
