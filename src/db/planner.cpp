#include "db/planner.hpp"

#include <algorithm>
#include <vector>

#include "db/hybrid_index.hpp"
#include "db/scan.hpp"
#include "db/shard.hpp"
#include "db/spatial_index.hpp"

namespace bes {

int adaptive_pad(const symbolic_image& query) {
  const int domain = std::max(query.width(), query.height());
  long long extent = 0;
  for (const icon& obj : query.icons()) {
    extent += (obj.mbr.x.hi - obj.mbr.x.lo) + (obj.mbr.y.hi - obj.mbr.y.lo);
  }
  const int mean_extent =
      query.size() == 0
          ? 0
          : static_cast<int>(extent / (2 * static_cast<long long>(query.size())));
  return std::max(2, domain / 16 + domain / 32 + mean_extent / 8);
}

access_plan plan_query(const planner_context& ctx, const symbolic_image& query,
                       std::span<const symbol_id> symbols,
                       const query_options& options) {
  const image_database& db = *ctx.db;
  const std::size_t n = db.size();
  const access_plan full{access_path_kind::full_scan, 0, n};
  if (n == 0 || symbols.empty() || !options.use_index) return full;

  // Cost unit: emitting one raw candidate id during generation. Scoring one
  // candidate runs an LCS DP whose work grows with the query's icon count,
  // so a smaller candidate set buys its generation overhead back at
  // score_weight : 1.
  const std::size_t score_weight = 16 * std::max<std::size_t>(1, query.size());

  struct costed {
    access_plan plan;
    std::size_t cost;
  };
  std::vector<costed> menu;
  menu.push_back({full, n * score_weight});

  std::size_t mass = 0;  // Σ posting-list lengths == index generation work
  for (symbol_id s : symbols) mass += db.postings(s);
  const std::size_t est_index = std::min(n, mass);
  menu.push_back({access_plan{access_path_kind::inverted_index, 0, est_index},
                  est_index * score_weight + mass});

  // Lossy spatial paths need a threshold to defend (otherwise the caller
  // wants every score, which only admissible paths deliver) and an identity
  // query layout (padded windows around the identity icons are wrong for
  // the 7 other dihedral variants).
  const bool lossy_ok = !options.transform_invariant && query.size() > 0 &&
                        (options.top_k > 0 || options.min_score > 0.0);
  const access_path_context actx{ctx.db, ctx.spatial, ctx.hybrid};
  const int pad = adaptive_pad(query);
  const path_probe probe{&query, symbols, pad};
  if (lossy_ok && ctx.hybrid != nullptr) {
    const std::size_t est =
        make_access_path(access_path_kind::hybrid, actx)->estimate(probe);
    // One fused traversal: each level tests at most max_entries entries per
    // query-icon probe, plus the exact recheck over the raw hits.
    const std::size_t traversal =
        query.size() *
        static_cast<std::size_t>(ctx.hybrid->tree().height() + 1) *
        rtree::max_entries;
    menu.push_back({access_plan{access_path_kind::hybrid, pad, est},
                    est * score_weight + traversal + est});
  } else if (lossy_ok && ctx.spatial != nullptr) {
    const std::size_t est =
        make_access_path(access_path_kind::combined, actx)->estimate(probe);
    // Two full materializations (index union + window hits) intersected
    // after the fact — the overhead the hybrid path exists to avoid.
    menu.push_back({access_plan{access_path_kind::combined, pad, est},
                    est * score_weight + mass + 2 * est});
  }

  // Strictly-cheaper wins; ties keep the earlier, more conservative entry.
  costed best = menu.front();
  for (const costed& c : menu) {
    if (c.cost < best.cost) best = c;
  }
  return best.plan;
}

namespace {

// Plan + generate for one (query, database): the shared front half of every
// planned search.
struct generation {
  access_plan plan;
  std::vector<image_id> ids;
  std::size_t generated = 0;
};

generation generate_planned(const planner_context& ctx,
                            const symbolic_image& query,
                            std::span<const symbol_id> symbols,
                            const query_options& options) {
  generation out;
  out.plan = plan_query(ctx, query, symbols, options);
  const access_path_context actx{ctx.db, ctx.spatial, ctx.hybrid};
  access_path_stats gen;
  out.ids = make_access_path(out.plan.path, actx)
                ->generate(path_probe{&query, symbols, out.plan.pad}, &gen);
  out.generated = gen.candidates_generated;
  return out;
}

std::vector<query_result> planned_impl(
    const planner_context& ctx, const symbolic_image& query,
    const be_string2d& strings, std::span<const symbol_id> symbols,
    const be_histogram2d* histograms, const query_transforms* transforms,
    const query_options& options, search_stats* stats) {
  generation g = generate_planned(ctx, query, symbols, options);
  auto out = detail::scan_shard(*ctx.db, strings, g.ids, {}, histograms,
                                transforms, options, nullptr, stats);
  if (stats != nullptr) {
    stats->candidates_generated = g.generated;
    stats->plans.push_back(planned_scan{g.plan.path, g.plan.pad,
                                        g.plan.estimated_candidates,
                                        g.ids.size()});
  }
  return out;
}

std::vector<query_result> sharded_planned_impl(
    const sharded_database& db, const symbolic_image& query,
    const be_string2d& strings, std::span<const symbol_id> symbols,
    const query_options& options, search_stats* stats) {
  const std::size_t shards = db.shard_count();
  std::vector<std::vector<image_id>> local(shards);
  std::vector<planned_scan> plans;
  plans.reserve(shards);
  std::size_t generated = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    // Each shard is planned against ITS statistics: postings and density
    // differ per partition, so so may the chosen path.
    const planner_context ctx{&db.shard_db(s), &db.shard_spatial(s),
                              &db.shard_hybrid(s)};
    generation g = generate_planned(ctx, query, symbols, options);
    generated += g.generated;
    plans.push_back(planned_scan{g.plan.path, g.plan.pad,
                                 g.plan.estimated_candidates, g.ids.size()});
    local[s] = std::move(g.ids);
  }
  auto out = search_local_candidates(db, strings, local, options, stats);
  if (stats != nullptr) {
    stats->candidates_generated = generated;
    stats->plans = std::move(plans);
  }
  return out;
}

}  // namespace

std::vector<query_result> search_planned(const planner_context& ctx,
                                         const symbolic_image& query,
                                         const be_string2d& query_strings,
                                         std::span<const symbol_id> symbols,
                                         const query_options& options,
                                         search_stats* stats) {
  return planned_impl(ctx, query, query_strings, symbols, nullptr, nullptr,
                      options, stats);
}

std::vector<query_result> search_planned(const planner_context& ctx,
                                         const symbolic_image& query,
                                         const query_options& options,
                                         search_stats* stats) {
  const be_string2d strings = encode(query);
  const std::vector<symbol_id> symbols = distinct_symbols(query);
  return planned_impl(ctx, query, strings, symbols, nullptr, nullptr, options,
                      stats);
}

std::vector<std::vector<query_result>> search_batch_planned(
    const planner_context& ctx, std::span<const symbolic_image> queries,
    const query_options& options, std::vector<search_stats>* stats) {
  const detail::encoded_queries encoded =
      detail::encode_queries(queries, options.threads);
  const bool want_histograms = detail::pruning_applies(options);
  const bool want_transforms = options.transform_invariant;
  const std::vector<detail::query_plan> plans =
      detail::make_plans(encoded.strings, options);

  if (stats != nullptr) stats->assign(queries.size(), search_stats{});
  std::vector<std::vector<query_result>> results(queries.size());
  detail::for_each_query(
      queries.size(), options,
      [&](std::size_t i, const query_options& per_query) {
        results[i] = planned_impl(
            ctx, queries[i], encoded.strings[i], encoded.symbols[i],
            want_histograms ? &plans[i].histograms : nullptr,
            want_transforms ? &plans[i].transforms : nullptr, per_query,
            stats != nullptr ? &(*stats)[i] : nullptr);
      });
  return results;
}

std::vector<query_result> search_planned(const sharded_database& db,
                                         const symbolic_image& query,
                                         const query_options& options,
                                         search_stats* stats) {
  const be_string2d strings = encode(query);
  const std::vector<symbol_id> symbols = distinct_symbols(query);
  return sharded_planned_impl(db, query, strings, symbols, options, stats);
}

std::vector<std::vector<query_result>> search_batch_planned(
    const sharded_database& db, std::span<const symbolic_image> queries,
    const query_options& options, std::vector<search_stats>* stats) {
  const detail::encoded_queries encoded =
      detail::encode_queries(queries, options.threads);
  if (stats != nullptr) stats->assign(queries.size(), search_stats{});
  std::vector<std::vector<query_result>> results(queries.size());
  detail::for_each_query(
      queries.size(), options,
      [&](std::size_t i, const query_options& per_query) {
        results[i] = sharded_planned_impl(
            db, queries[i], encoded.strings[i], encoded.symbols[i], per_query,
            stats != nullptr ? &(*stats)[i] : nullptr);
      });
  return results;
}

}  // namespace bes
