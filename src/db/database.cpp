#include "db/database.hpp"

#include <algorithm>
#include <stdexcept>

namespace bes {

std::vector<symbol_id> distinct_symbols(const symbolic_image& image) {
  std::vector<symbol_id> out;
  out.reserve(image.size());
  for (const icon& obj : image.icons()) out.push_back(obj.symbol);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// ------------------------------------------------------------- db_snapshot

bool db_snapshot::alive(image_id id) const noexcept {
  if (id >= visible) return false;
  const std::uint64_t removed = db->removed_epoch(id);
  return removed == 0 || removed > epoch;
}

bool db_snapshot::all_live() const noexcept {
  return db->tombstone_count() == 0 && visible >= db->size();
}

// ----------------------------------------------------------- image_database

image_id image_database::add(std::string name, symbolic_image image) {
  be_string2d strings = encode(image);
  return add_encoded(std::move(name), std::move(image), std::move(strings));
}

image_id image_database::add_encoded(std::string name, symbolic_image image,
                                     be_string2d strings) {
  be_histogram2d histograms = make_histograms(strings);
  return add_encoded(std::move(name), std::move(image), std::move(strings),
                     std::move(histograms));
}

image_id image_database::add_encoded(std::string name, symbolic_image image,
                                     be_string2d strings,
                                     be_histogram2d histograms) {
  // Validate before any mutation: a rejected record must leave no trace.
  for (const icon& obj : image.icons()) {
    if (obj.symbol >= alphabet_.size()) {
      throw std::invalid_argument(
          "image_database: icon references un-interned symbol " +
          std::to_string(obj.symbol));
    }
  }
  const std::vector<symbol_id> symbols = distinct_symbols(image);

  std::lock_guard lock(ingest_->write_mutex);
  const auto id = static_cast<image_id>(records_.size());
  // Stage the record first, index it second, publish last: if the index
  // update throws, the staged record is never published (the next add
  // overwrites the slot) — no phantom posting can outlive a failed add, and
  // a scan racing this add sees either nothing or the fully indexed record.
  records_.stage(db_record{id, std::move(name), std::move(image),
                           std::move(strings), std::move(histograms)});
  {
    std::unique_lock index_lock(ingest_->index_mutex);
    index_.add(id, symbols);
  }
  records_.commit();
  return id;
}

bool image_database::remove(image_id id) {
  std::lock_guard lock(ingest_->write_mutex);
  if (id >= records_.size()) return false;
  std::atomic_ref<std::uint64_t> mark(records_.mutable_ref(id).removed_at);
  if (mark.load(std::memory_order_relaxed) != 0) return false;
  const std::uint64_t removal =
      ingest_->epoch.load(std::memory_order_relaxed) + 1;
  mark.store(removal, std::memory_order_release);
  ingest_->tombstones.fetch_add(1, std::memory_order_release);
  // Epoch publishes last: a snapshot that reads this epoch sees the mark.
  ingest_->epoch.store(removal, std::memory_order_release);
  return true;
}

db_snapshot image_database::snapshot() const noexcept {
  db_snapshot snap;
  snap.db = this;
  // Watermark before epoch: a removal landing between the two loads targets
  // either a visible record (its epoch <= snap.epoch applies cleanly) or an
  // unpublished one (invisible anyway) — every interleaving is a consistent
  // cut.
  snap.visible = records_.size();
  snap.epoch = ingest_->epoch.load(std::memory_order_acquire);
  return snap;
}

std::uint64_t image_database::removed_epoch(image_id id) const noexcept {
  if (id >= records_.size()) return 0;
  // const_cast is confined here: atomic_ref needs a mutable lvalue, and the
  // field is only ever written under the write mutex.
  auto& rec = const_cast<db_record&>(records_[id]);
  return std::atomic_ref<std::uint64_t>(rec.removed_at)
      .load(std::memory_order_acquire);
}

const db_record& image_database::record(image_id id) const {
  if (id >= records_.size()) {
    throw std::out_of_range("image_database: unknown id " + std::to_string(id));
  }
  return records_[id];
}

std::vector<image_id> image_database::candidates(
    std::span<const symbol_id> query_symbols) const {
  std::shared_lock lock(ingest_->index_mutex);
  return index_.lookup_any(query_symbols);
}

std::vector<image_id> image_database::candidates(
    const symbolic_image& query) const {
  const auto symbols = distinct_symbols(query);
  return candidates(symbols);
}

std::size_t image_database::postings(symbol_id symbol) const {
  std::shared_lock lock(ingest_->index_mutex);
  return index_.postings(symbol);
}

}  // namespace bes
