#include "db/database.hpp"

#include <algorithm>
#include <stdexcept>

namespace bes {

std::vector<symbol_id> distinct_symbols(const symbolic_image& image) {
  std::vector<symbol_id> out;
  out.reserve(image.size());
  for (const icon& obj : image.icons()) out.push_back(obj.symbol);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

image_id image_database::add(std::string name, symbolic_image image) {
  be_string2d strings = encode(image);
  return add_encoded(std::move(name), std::move(image), std::move(strings));
}

image_id image_database::add_encoded(std::string name, symbolic_image image,
                                     be_string2d strings) {
  be_histogram2d histograms = make_histograms(strings);
  return add_encoded(std::move(name), std::move(image), std::move(strings),
                     std::move(histograms));
}

image_id image_database::add_encoded(std::string name, symbolic_image image,
                                     be_string2d strings,
                                     be_histogram2d histograms) {
  const auto id = static_cast<image_id>(records_.size());
  index_.add(id, distinct_symbols(image));
  records_.push_back(db_record{id, std::move(name), std::move(image),
                               std::move(strings), std::move(histograms)});
  return id;
}

const db_record& image_database::record(image_id id) const {
  if (id >= records_.size()) {
    throw std::out_of_range("image_database: unknown id " + std::to_string(id));
  }
  return records_[id];
}

std::vector<image_id> image_database::candidates(
    std::span<const symbol_id> query_symbols) const {
  return index_.lookup_any(query_symbols);
}

std::vector<image_id> image_database::candidates(
    const symbolic_image& query) const {
  const auto symbols = distinct_symbols(query);
  return candidates(symbols);
}

}  // namespace bes
