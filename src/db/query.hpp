// The retrieval engine: rank database images by BE-string similarity to a
// query picture (paper §4), optionally under the best of the 8 linear
// transformations (paper §4/§5) and optionally in parallel.
#pragma once

#include <vector>

#include "db/access_path.hpp"
#include "db/database.hpp"
#include "lcs/similarity.hpp"

namespace bes {

struct query_options {
  std::size_t top_k = 10;          // 0 = unlimited
  double min_score = 0.0;          // drop results strictly below this
  bool transform_invariant = false;  // try all 8 dihedral variants of the query
  bool use_index = true;           // scan only images sharing >= 1 symbol
  unsigned threads = 1;            // parallel scoring workers
  // Two-stage admissible pruning: candidates whose token-histogram upper
  // bound cannot reach max(min_score, current k-th score) are skipped
  // outright, and candidates that are scored run their LCS DPs under an
  // early-exit band at that same threshold, bailing as soon as the best
  // still-achievable score falls below it. Results are identical to the
  // unpruned scan. Honors `threads`; needs a threshold to engage (top_k > 0
  // or min_score > 0) and is ignored for transform-invariant queries.
  bool histogram_pruning = false;
  similarity_options similarity;
};

struct query_result {
  image_id id = 0;
  double score = 0.0;
  // Transform of the query that realized `score` (identity unless
  // transform_invariant).
  dihedral transform = dihedral::identity;

  friend bool operator==(const query_result&, const query_result&) = default;
};

// One planned scan's record in search_stats: what the planner chose and how
// its estimate compared to reality. Sharded searches append one entry per
// shard (each shard is planned against its own statistics); flat planned
// searches append exactly one.
struct planned_scan {
  access_path_kind path = access_path_kind::full_scan;
  int pad = 0;                           // adaptive window pad (spatial paths)
  std::size_t estimated_candidates = 0;  // the planner's pre-generation bound
  std::size_t actual_candidates = 0;     // what generate() returned

  friend bool operator==(const planned_scan&, const planned_scan&) = default;
};

// How one shard's contribution to a scattered query ended. In-process scans
// always complete (their statuses stay empty); the network coordinator
// (src/net) records one entry per remote shard so a partial answer names
// exactly which partitions degraded it and why.
enum class shard_scan_state : std::uint8_t {
  ok,         // full contribution merged
  timed_out,  // no response before the query deadline
  failed,     // connection refused/lost or a malformed response
  expired,    // the shard gave up mid-scan (deadline/cancel); partial results
  rejected,   // the shard's admission queue was full
};

[[nodiscard]] std::string_view to_string(shard_scan_state state) noexcept;

struct shard_scan_status {
  std::uint32_t shard = 0;
  shard_scan_state state = shard_scan_state::ok;

  friend bool operator==(const shard_scan_status&,
                         const shard_scan_status&) = default;
};

// Scan accounting (filled when a non-null pointer is passed to search).
// Every scanned candidate is either scored or pruned, on every scan path:
// scanned == scored + pruned always holds. Tombstoned candidates (live
// ingest: image_database::remove) count as scanned AND pruned — never
// scored — so an exhaustive scan reports scored == scanned, pruned == 0
// exactly when every scanned candidate was live in the scan's snapshot.
// Candidates published after the snapshot's watermark do not exist in that
// view and are excluded from scanned entirely.
//
// `scanned` counts the candidates handed to the scoring scan — AFTER the
// access path deduplicated, window-rejected, and intersected its raw hits.
// `candidates_generated` counts those raw hits (access_path_stats), so the
// prefiltered paths' generated-but-rejected work is visible too:
// candidates_generated >= scanned always, with equality exactly when
// generation was already exact (full scan, explicit candidate lists).
struct search_stats {
  std::size_t scanned = 0;  // candidates considered (== scored + pruned)
  std::size_t scored = 0;   // LCS evaluations started
  std::size_t pruned = 0;   // skipped outright via the histogram upper bound
  // Of the scored, how many the early-exit band rejected: their banded DP
  // either bailed before finishing or completed below the pruning threshold.
  std::size_t band_rejected = 0;
  // Raw candidate ids generated before dedup/rejection (>= scanned).
  std::size_t candidates_generated = 0;
  // Filled by the planned searches (db/planner.hpp): the chosen plan(s),
  // one per scan. Empty on the legacy fixed-path entry points.
  std::vector<planned_scan> plans;
  // Filled by the network coordinator (src/net): true when at least one
  // shard's contribution is missing or partial, with one status entry per
  // remote shard saying how it ended. In-process scans never degrade:
  // degraded stays false and shard_statuses stays empty.
  bool degraded = false;
  std::vector<shard_scan_status> shard_statuses;
  // Filled by the search_cached entry points (db/result_cache.hpp). A pure
  // hit reports cache_hits == 1 and touches nothing else; a miss reports
  // cache_misses == 1 plus the full scan's accounting; a delta refresh
  // reports cache_delta_refreshes == 1 with scanned/scored/pruned covering
  // ONLY the appended suffix and cache_delta_rescored == that suffix's
  // scanned count (the O(appended) claim, measurable per query). Plain
  // search() leaves all four at zero.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_delta_refreshes = 0;
  std::size_t cache_delta_rescored = 0;
};

// Ranks by score descending, ties by id ascending; truncates to top_k.
[[nodiscard]] std::vector<query_result> search(const image_database& db,
                                               const symbolic_image& query,
                                               const query_options& options = {},
                                               search_stats* stats = nullptr);

// Same, for a query already encoded (query_symbols drive the index filter;
// pass empty to force a full scan).
[[nodiscard]] std::vector<query_result> search(
    const image_database& db, const be_string2d& query_strings,
    std::span<const symbol_id> query_symbols, const query_options& options = {},
    search_stats* stats = nullptr);

// Pinned searches: score against an explicit snapshot (db.snapshot()) so
// several queries observe the SAME instant while add()/remove() proceed
// underneath. Results are exactly what searching a quiesced database in the
// snapshot's state would return. The snapshot's database must outlive the
// call; the unpinned overloads are equivalent to pinning a fresh snapshot
// per search.
[[nodiscard]] std::vector<query_result> search(
    const db_snapshot& snap, const be_string2d& query_strings,
    std::span<const symbol_id> query_symbols, const query_options& options = {},
    search_stats* stats = nullptr);
[[nodiscard]] std::vector<query_result> search(const db_snapshot& snap,
                                               const symbolic_image& query,
                                               const query_options& options = {},
                                               search_stats* stats = nullptr);

class result_cache;  // db/result_cache.hpp

// Cached searches: identical results to the matching search() overload —
// bit-identical ids, scores, and transforms — consulting/populating `cache`
// around the scan. A fresh entry is stamped with the scan's snapshot cut;
// a later identical query at the same cut is a pure hit, at a newer cut it
// is upgraded by scoring only the records appended since (delta-scan
// refresh; see db/result_cache.hpp for the invalidation rules). The
// unpinned overloads evaluate at a fresh db.snapshot(); the pinned overload
// evaluates exactly at `snap` and never serves results the snapshot cannot
// see. Safe to call concurrently with add()/remove() and with other cached
// or uncached searches.
[[nodiscard]] std::vector<query_result> search_cached(
    const image_database& db, result_cache& cache, const symbolic_image& query,
    const query_options& options = {}, search_stats* stats = nullptr);
[[nodiscard]] std::vector<query_result> search_cached(
    const image_database& db, result_cache& cache,
    const be_string2d& query_strings, std::span<const symbol_id> query_symbols,
    const query_options& options = {}, search_stats* stats = nullptr);
[[nodiscard]] std::vector<query_result> search_cached(
    const db_snapshot& snap, result_cache& cache,
    const be_string2d& query_strings, std::span<const symbol_id> query_symbols,
    const query_options& options = {}, search_stats* stats = nullptr);

// Scores exactly the given candidate set (sorted or not, duplicates scored
// twice — callers pass the sorted/unique output of a prefilter). This is the
// entry point for external access paths (R-tree window prefilter, combined
// symbol ∩ window prefilter, db/prefilter.hpp): candidate generation is the
// caller's, ranking/pruning/threads behave exactly as in search().
// options.use_index is ignored. Throws std::out_of_range on an id >= size.
[[nodiscard]] std::vector<query_result> search_candidates(
    const image_database& db, const be_string2d& query_strings,
    std::span<const image_id> candidates, const query_options& options = {},
    search_stats* stats = nullptr);

// Batch retrieval: results[i] == search(db, queries[i], options), with the
// per-query precomputation amortized. Encoding, symbol extraction, the
// histograms backing the pruner, and — under transform_invariant — the 8
// dihedral query variants are each computed exactly once per query up front
// (in parallel across the batch), never per database record; the candidate
// loops then run through parallel_for with options.threads workers,
// including the histogram-pruned path. When `stats` is non-null it is
// resized to queries.size() with per-query accounting.
[[nodiscard]] std::vector<std::vector<query_result>> search_batch(
    const image_database& db, std::span<const symbolic_image> queries,
    const query_options& options = {},
    std::vector<search_stats>* stats = nullptr);

// Same, for queries already encoded; query_symbols[i] drives the index
// filter for queries[i] (empty forces a full scan). The two spans must have
// equal length.
[[nodiscard]] std::vector<std::vector<query_result>> search_batch(
    const image_database& db, std::span<const be_string2d> queries,
    std::span<const std::vector<symbol_id>> query_symbols,
    const query_options& options = {},
    std::vector<search_stats>* stats = nullptr);

// Batch counterpart of search_candidates: results[i] ==
// search_candidates(db, queries[i], candidates[i], options), with per-query
// precomputation amortized and the queries scheduled on one dynamic work
// queue. This is how a prefiltered candidate set (e.g. combined_candidates,
// see db/prefilter.hpp) rides the batch path. The two spans must have equal
// length; options.use_index is ignored; throws std::out_of_range on any id
// >= db.size().
[[nodiscard]] std::vector<std::vector<query_result>> search_batch_candidates(
    const image_database& db, std::span<const be_string2d> queries,
    std::span<const std::vector<image_id>> candidates,
    const query_options& options = {},
    std::vector<search_stats>* stats = nullptr);

}  // namespace bes
