// The retrieval engine: rank database images by BE-string similarity to a
// query picture (paper §4), optionally under the best of the 8 linear
// transformations (paper §4/§5) and optionally in parallel.
#pragma once

#include <vector>

#include "db/database.hpp"
#include "lcs/similarity.hpp"

namespace bes {

struct query_options {
  std::size_t top_k = 10;          // 0 = unlimited
  double min_score = 0.0;          // drop results strictly below this
  bool transform_invariant = false;  // try all 8 dihedral variants of the query
  bool use_index = true;           // scan only images sharing >= 1 symbol
  unsigned threads = 1;            // parallel scoring workers
  // Skip the O(mn) LCS for candidates whose token-histogram upper bound
  // cannot reach the current k-th score (results are identical to the
  // unpruned scan; requires top_k > 0; implies a serial scan and is ignored
  // for transform-invariant queries).
  bool histogram_pruning = false;
  similarity_options similarity;
};

struct query_result {
  image_id id = 0;
  double score = 0.0;
  // Transform of the query that realized `score` (identity unless
  // transform_invariant).
  dihedral transform = dihedral::identity;

  friend bool operator==(const query_result&, const query_result&) = default;
};

// Scan accounting (filled when a non-null pointer is passed to search).
struct search_stats {
  std::size_t scanned = 0;  // candidates considered
  std::size_t scored = 0;   // LCS evaluations actually run
  std::size_t pruned = 0;   // skipped via the histogram upper bound
};

// Ranks by score descending, ties by id ascending; truncates to top_k.
[[nodiscard]] std::vector<query_result> search(const image_database& db,
                                               const symbolic_image& query,
                                               const query_options& options = {},
                                               search_stats* stats = nullptr);

// Same, for a query already encoded (query_symbols drive the index filter;
// pass empty to force a full scan).
[[nodiscard]] std::vector<query_result> search(
    const image_database& db, const be_string2d& query_strings,
    std::span<const symbol_id> query_symbols, const query_options& options = {},
    search_stats* stats = nullptr);

}  // namespace bes
