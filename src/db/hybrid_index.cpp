#include "db/hybrid_index.hpp"

#include <algorithm>
#include <stdexcept>

namespace bes {

namespace {

// Payload layout shared with spatial_index: (image id << 32) | icon index.
constexpr rtree::payload_t pack(image_id image, std::size_t icon_index) {
  return (static_cast<rtree::payload_t>(image) << 32) |
         static_cast<rtree::payload_t>(icon_index);
}

constexpr image_id image_of(rtree::payload_t payload) {
  return static_cast<image_id>(payload >> 32);
}

constexpr std::size_t icon_of(rtree::payload_t payload) {
  return static_cast<std::size_t>(payload & 0xffffffffull);
}

rect padded(const rect& mbr, int pad) {
  return rect{interval{mbr.x.lo - pad, mbr.x.hi + pad},
              interval{mbr.y.lo - pad, mbr.y.hi + pad}};
}

}  // namespace

hybrid_index::hybrid_index(const image_database& db) : db_(&db) {
  for (const db_record& rec : db.records()) add_image(rec.id);
}

hybrid_index::hybrid_index(const image_database& db, deferred_build_t)
    : db_(&db) {}

void hybrid_index::add_image(image_id id) {
  const db_record& rec = db_->record(id);
  std::unique_lock lock(mutex_);
  for (std::size_t i = 0; i < rec.image.size(); ++i) {
    const icon& obj = rec.image.icons()[i];
    tree_.insert(obj.mbr, pack(rec.id, i), signature_of(obj.symbol));
  }
}

std::vector<image_id> hybrid_index::candidates(const symbolic_image& query,
                                               int pad,
                                               traversal_stats* stats) const {
  if (pad < 0) {
    throw std::invalid_argument("hybrid_index::candidates: pad must be >= 0");
  }
  std::vector<rtree::fused_probe> probes;
  probes.reserve(query.size());
  for (const icon& obj : query.icons()) {
    probes.push_back(
        rtree::fused_probe{padded(obj.mbr, pad), signature_of(obj.symbol)});
  }

  rtree::fused_stats fused;
  std::vector<rtree::payload_t> hits;
  {
    std::shared_lock lock(mutex_);
    hits = tree_.search_fused(probes, stats != nullptr ? &fused : nullptr);
  }
  if (stats != nullptr) {
    stats->nodes_visited = fused.nodes_visited;
    stats->entries_tested = fused.entries_tested;
    stats->raw_hits = hits.size();
  }

  // Exact recheck: the signature is a superset filter (bit symbol % 64), so
  // a hit may owe its survival to a colliding symbol. Accept an icon only if
  // some query icon of the SAME symbol has its padded window overlapping it
  // — exactly the per-icon predicate of window_candidates, which makes this
  // set equal to combined_candidates for the same pad.
  std::vector<image_id> out;
  out.reserve(hits.size());
  for (rtree::payload_t payload : hits) {
    const image_id id = image_of(payload);
    const icon& obj = db_->record(id).image.icons()[icon_of(payload)];
    for (const icon& q : query.icons()) {
      if (q.symbol == obj.symbol && overlaps(padded(q.mbr, pad), obj.mbr)) {
        out.push_back(id);
        break;
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace bes
