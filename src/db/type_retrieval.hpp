// Database-scale retrieval with the type-i clique assessment — what a
// 2D-string-family system would actually run per query (paper §2). Shared
// by the benchmarks and the comparison examples.
#pragma once

#include <vector>

#include "baselines/type_similarity.hpp"
#include "db/database.hpp"

namespace bes {

struct type_retrieval_result {
  image_id id = 0;
  // Matched-object count and its query-relative fraction.
  std::size_t matched = 0;
  double fraction = 0.0;

  friend bool operator==(const type_retrieval_result&,
                         const type_retrieval_result&) = default;
};

// Ranks all database images by type-i matched-object count (descending,
// ties by id). O(images * (m^2 n^2 + clique)) — the cost profile the
// BE-string LCS replaces.
[[nodiscard]] std::vector<type_retrieval_result> type_search(
    const image_database& db, const symbolic_image& query,
    const type_similarity_options& options = {}, std::size_t top_k = 0);

}  // namespace bes
