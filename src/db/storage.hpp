// Database persistence facade over two on-disk formats (see README
// "Persistence"):
//
// Text, `BESDB 1|2` — line-oriented and diff-friendly:
//
//   BESDB 2
//   alphabet <count>
//   <one symbol name per line>
//   images <count>
//   image <width> <height> <icon-count> <name (rest of line)>
//   icon <symbol-id> <x.lo> <x.hi> <y.lo> <y.hi>      (icon-count times)
//   check <crc32 hex of the encoded BE-strings>       (version 2; optional
//                                                      on load)
//
// Icons are authoritative; BE-strings are re-encoded on load, verified
// well-formed, and — when a `check` line is present — verified to re-encode
// to exactly the strings the writer saw (a hand-edited icon rect that
// produces a *different* valid BE-string fails closed). Saves write
// version 2; the loader accepts 1 (no check lines) and 2.
//
// Binary, `BSEG1` — the append-only mmap segment format of db/segment.hpp:
// pre-encoded token streams with per-record CRCs, no re-encode on load.
//
// Sharded, `SCRP1` — a corpus DIRECTORY of per-shard BSEG1 segments plus a
// CRC-checked manifest (db/shard_storage.hpp). load_database materializes
// it flat, in global-id order; use load_sharded_corpus to keep the
// partitions.
//
// load_database autodetects the format from the file magic (or, for a
// directory, the manifest inside it), so `BESDB 1` files stay loadable
// forever; save_database picks the format explicitly.
#pragma once

#include <filesystem>

#include "db/database.hpp"

namespace bes {

enum class db_format {
  text,     // BESDB 1
  binary,   // BSEG1 (db/segment.hpp)
  sharded,  // SCRP1 corpus directory (db/shard_storage.hpp)
};

// Throws std::runtime_error on I/O failure or malformed content.
// `shard_count` applies only to db_format::sharded (0 = the default count,
// see db/shard_storage.hpp); the single-file formats ignore it.
void save_database(const image_database& db, const std::filesystem::path& path,
                   db_format format = db_format::text,
                   std::size_t shard_count = 0);
[[nodiscard]] image_database load_database(const std::filesystem::path& path);

// The format of an existing file (or corpus directory), judged by its
// magic. Throws std::runtime_error when the path cannot be read or matches
// no known magic.
[[nodiscard]] db_format detect_format(const std::filesystem::path& path);

}  // namespace bes
