// Database persistence: a versioned, line-oriented text format.
//
//   BESDB 1
//   alphabet <count>
//   <one symbol name per line>
//   images <count>
//   image <width> <height> <icon-count> <name (rest of line)>
//   icon <symbol-id> <x.lo> <x.hi> <y.lo> <y.hi>      (icon-count times)
//
// Icons are authoritative; BE-strings are re-encoded on load and verified
// well-formed, which doubles as an integrity check.
#pragma once

#include <filesystem>

#include "db/database.hpp"

namespace bes {

// Throws std::runtime_error on I/O failure or malformed content.
void save_database(const image_database& db, const std::filesystem::path& path);
[[nodiscard]] image_database load_database(const std::filesystem::path& path);

}  // namespace bes
