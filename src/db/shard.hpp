// Shard-per-core database partitions with a fan-out/merge query layer
// (ROADMAP "Scan parallelism beyond one box").
//
// The paper's BE-string model makes every record independent — similarity
// is a pure function of (query, record) — so the database partitions
// embarrassingly: a sharded_database splits records across N shards by
// consistent hashing on the global image_id, and each shard owns its own
// image_database (records + inverted symbol index), its own spatial R-tree,
// and its own histogram-bound scan order. Queries fan out one scan per
// shard; the scans share a single running top-k threshold (an atomic
// min-score floor, db/scan.hpp) and their local top-k heaps merge into a
// final ranking that is provably IDENTICAL to the unsharded exhaustive
// result — see the admissibility note in db/scan.hpp.
//
// Why consistent hashing instead of id % N: growing or shrinking the shard
// count (besdb shard split/merge) must not reshuffle the whole corpus. On
// the ring, adding shard N+1 only claims the ids whose hash lands in the
// new shard's arcs — every other record stays where it was, which is what
// keeps an on-disk reshard (and the future cross-process move) ~1/N of the
// data instead of all of it.
#pragma once

#include <memory>

#include "db/database.hpp"
#include "db/hybrid_index.hpp"
#include "db/query.hpp"
#include "db/spatial_index.hpp"

namespace bes {

// The consistent-hash ring mapping global image ids to shards. Each shard
// contributes `replicas` virtual nodes (points derived from the shard index
// alone, never from the shard count); an id belongs to the shard owning the
// first virtual node at or after hash(id), wrapping at the top. Because a
// shard's points do not move when other shards come or go, resizing from N
// to N+1 shards reassigns only ids captured by the new shard's points —
// expected 1/(N+1) of the corpus.
class shard_ring {
 public:
  explicit shard_ring(std::size_t shard_count, std::size_t replicas = 64);

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_; }
  [[nodiscard]] std::size_t replicas() const noexcept { return replicas_; }
  [[nodiscard]] std::size_t shard_of(image_id id) const noexcept;

 private:
  struct vnode {
    std::uint64_t point;
    std::uint32_t shard;
  };
  std::vector<vnode> ring_;  // sorted by (point, shard)
  std::size_t shards_;
  std::size_t replicas_;
};

// N shard partitions behind one logical database. Global ids are dense in
// insertion order (exactly the ids the same records would get in one
// unsharded image_database); each record lives in the shard the ring
// assigns its global id, under a dense shard-local id. All shards mirror
// one master alphabet, so symbol ids, BE-string tokens, and inverted-index
// keys mean the same thing in every partition.
//
// Live ingest: like image_database, the sharded database is single-writer/
// many-reader — one thread may add()/remove() while any number of scans
// run. The local->global mapping and the global locator table live in
// chunked stable storage and publish in the order scans need them (mapping
// staged before the record becomes visible, locator last), so a racing
// scan sees either nothing or a fully wired record. snapshot() captures
// one db_snapshot per shard for pinned fan-out searches.
struct sharded_snapshot;

class sharded_database {
 public:
  explicit sharded_database(std::size_t shard_count,
                            std::size_t ring_replicas = 64);

  [[nodiscard]] const shard_ring& ring() const noexcept { return ring_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  // The master alphabet shared by every shard. Build scenes against this;
  // adds mirror it into the owning shard's local alphabet.
  [[nodiscard]] alphabet& symbols() noexcept { return symbols_; }
  [[nodiscard]] const alphabet& symbols() const noexcept { return symbols_; }

  // Encodes and stores a picture; returns its GLOBAL id (dense, insertion
  // order — identical to what an unsharded image_database would assign).
  image_id add(std::string name, symbolic_image image);

  // Bulk-load entry point for the sharded-corpus loader: installs a record
  // that already carries its encoded strings and histograms. Records must
  // arrive in global-id order (the streaming writer's order); the global id
  // assigned is returned.
  image_id add_encoded(std::string name, symbolic_image image,
                       be_string2d strings, be_histogram2d histograms);

  // Tombstones global id `id` in its owning shard (image_database::remove
  // semantics: the record stays addressable, searches skip it from the next
  // snapshot on). Returns false when unknown or already removed. Safe
  // against concurrent scans.
  bool remove(image_id id);

  // One db_snapshot per shard, captured now: pass to the pinned sharded
  // search overload so several queries observe the same instant.
  [[nodiscard]] sharded_snapshot snapshot() const;

  [[nodiscard]] std::size_t size() const noexcept { return locs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return locs_.empty(); }
  // Tombstoned records across all shards / records not tombstoned.
  [[nodiscard]] std::size_t tombstone_count() const noexcept;
  [[nodiscard]] std::size_t live_size() const noexcept {
    return size() - tombstone_count();
  }

  // The record with global id `id`. NOTE: the returned record's `.id` field
  // is the shard-LOCAL id; query results carry global ids.
  [[nodiscard]] const db_record& record(image_id id) const;
  // Which shard holds global id `id`.
  [[nodiscard]] std::size_t shard_of(image_id id) const;
  // Epoch at which global id `id` was removed (0 = live), read from the
  // owning shard. Safe against a concurrent remove, like the flat
  // image_database::removed_epoch.
  [[nodiscard]] std::uint64_t removed_epoch(image_id id) const;

  // Per-shard views (s < shard_count()).
  [[nodiscard]] const image_database& shard_db(std::size_t s) const;
  [[nodiscard]] const spatial_index& shard_spatial(std::size_t s) const;
  [[nodiscard]] const hybrid_index& shard_hybrid(std::size_t s) const;
  // Shard-local id -> global id, in local insertion order (ascending).
  // Chunked stable storage: safe to read while adds grow it.
  [[nodiscard]] const stable_vector<image_id>& shard_global_ids(
      std::size_t s) const;

  // Global ids of images sharing at least one symbol with `query_symbols`
  // (union of the per-shard inverted indexes; sorted, unique).
  [[nodiscard]] std::vector<image_id> candidates(
      std::span<const symbol_id> query_symbols) const;
  [[nodiscard]] std::vector<image_id> candidates(
      const symbolic_image& query) const;

 private:
  struct shard_part {
    image_database db;
    spatial_index spatial{db, deferred_build};
    hybrid_index hybrid{db, deferred_build};
    stable_vector<image_id> global_ids;  // local -> global
  };

  shard_part& route(std::size_t shard);
  image_id install(std::size_t shard, shard_part& part, image_id global,
                   std::string name, symbolic_image image, be_string2d strings,
                   be_histogram2d histograms);

  shard_ring ring_;
  alphabet symbols_;
  // Stable addresses: spatial_index borrows its sibling db by reference.
  std::vector<std::unique_ptr<shard_part>> shards_;
  // global id -> (shard, local id); grows last in an add, so size() counts
  // only fully wired records.
  stable_vector<std::pair<std::uint32_t, image_id>> locs_;
};

// One db_snapshot per shard, captured at one instant
// (sharded_database::snapshot()): pins a fan-out search so every shard scan
// filters against the same view while add()/remove() proceed.
struct sharded_snapshot {
  std::vector<db_snapshot> shards;
};

// Partitions a copy of `db` into `shard_count` shards. Record i of `db`
// becomes global id i, so sharded results compare 1:1 against unsharded
// ones over the same database.
[[nodiscard]] sharded_database make_sharded(const image_database& db,
                                            std::size_t shard_count,
                                            std::size_t ring_replicas = 64);

// ----------------------------------------------------------- query fan-out
//
// Each call fans one scan per shard — outer parallel_for over shards with a
// chunk of 1 (shard-per-core when shards >= threads), inner candidate
// parallelism with the leftover thread budget — and merges the per-shard
// top-k heaps. Results (global ids) are identical to running the same
// options over one unsharded database holding the same records in global-id
// order, for every kernel, thread count, and shard count; `stats` sums the
// per-shard accounting (scanned == scored + pruned still holds).

[[nodiscard]] std::vector<query_result> search(const sharded_database& db,
                                               const symbolic_image& query,
                                               const query_options& options = {},
                                               search_stats* stats = nullptr);

[[nodiscard]] std::vector<query_result> search(
    const sharded_database& db, const be_string2d& query_strings,
    std::span<const symbol_id> query_symbols, const query_options& options = {},
    search_stats* stats = nullptr);

// Pinned fan-out: every shard scan filters against the matching entry of
// `snap` (db.snapshot()), so several searches can observe one instant while
// writes continue. snap.shards.size() must equal db.shard_count(); throws
// std::invalid_argument otherwise. The unpinned overloads are equivalent to
// pinning a fresh snapshot per search.
[[nodiscard]] std::vector<query_result> search(
    const sharded_database& db, const sharded_snapshot& snap,
    const be_string2d& query_strings, std::span<const symbol_id> query_symbols,
    const query_options& options = {}, search_stats* stats = nullptr);
[[nodiscard]] std::vector<query_result> search(const sharded_database& db,
                                               const sharded_snapshot& snap,
                                               const symbolic_image& query,
                                               const query_options& options = {},
                                               search_stats* stats = nullptr);

// Scores exactly the given GLOBAL-id candidate set (sorted or not;
// duplicates scored twice), partitioned to the owning shards. Throws
// std::out_of_range on an id >= size(). options.use_index is ignored.
[[nodiscard]] std::vector<query_result> search_candidates(
    const sharded_database& db, const be_string2d& query_strings,
    std::span<const image_id> candidates, const query_options& options = {},
    search_stats* stats = nullptr);

// Scores exactly the given per-shard LOCAL-id candidate lists (one list per
// shard; shard-local record ids). The planned sharded search
// (db/planner.cpp) generates each shard's candidates through that shard's
// own access paths and feeds the lists here; ranking/pruning/stats/merge
// behave exactly as search_candidates. local_candidates.size() must equal
// shard_count(); throws std::invalid_argument otherwise.
[[nodiscard]] std::vector<query_result> search_local_candidates(
    const sharded_database& db, const be_string2d& query_strings,
    const std::vector<std::vector<image_id>>& local_candidates,
    const query_options& options = {}, search_stats* stats = nullptr);

// Pinned variant: every shard scan filters its candidate list against the
// matching entry of `snap`. This is how the cached search scores exactly
// the per-shard appended suffixes of a delta refresh.
[[nodiscard]] std::vector<query_result> search_local_candidates(
    const sharded_database& db, const sharded_snapshot& snap,
    const be_string2d& query_strings,
    const std::vector<std::vector<image_id>>& local_candidates,
    const query_options& options = {}, search_stats* stats = nullptr);

// Cached fan-out searches (db/result_cache.hpp): identical results to the
// matching sharded search() overload, consulting/populating `cache` around
// the fan-out. Entries are stamped with one {visible, epoch} cut PER SHARD;
// a delta refresh rescans only each shard's appended suffix. Semantics
// otherwise match the flat search_cached family (db/query.hpp).
[[nodiscard]] std::vector<query_result> search_cached(
    const sharded_database& db, result_cache& cache,
    const symbolic_image& query, const query_options& options = {},
    search_stats* stats = nullptr);
[[nodiscard]] std::vector<query_result> search_cached(
    const sharded_database& db, result_cache& cache,
    const be_string2d& query_strings, std::span<const symbol_id> query_symbols,
    const query_options& options = {}, search_stats* stats = nullptr);
[[nodiscard]] std::vector<query_result> search_cached(
    const sharded_database& db, const sharded_snapshot& snap,
    result_cache& cache, const be_string2d& query_strings,
    std::span<const symbol_id> query_symbols, const query_options& options = {},
    search_stats* stats = nullptr);

// Batch retrieval: results[i] == search(db, queries[i], options). The
// (query, shard) pairs become work items on ONE dynamic queue, so neither a
// slow query nor a hot shard can serialize the batch tail; per-query
// precomputation is amortized exactly as in the unsharded search_batch.
[[nodiscard]] std::vector<std::vector<query_result>> search_batch(
    const sharded_database& db, std::span<const symbolic_image> queries,
    const query_options& options = {},
    std::vector<search_stats>* stats = nullptr);

[[nodiscard]] std::vector<std::vector<query_result>> search_batch(
    const sharded_database& db, std::span<const be_string2d> queries,
    std::span<const std::vector<symbol_id>> query_symbols,
    const query_options& options = {},
    std::vector<search_stats>* stats = nullptr);

// ------------------------------------------------------- prefilter fan-out

// window_candidates / combined_candidates over the per-shard R-trees and
// inverted indexes; global ids, sorted, unique. Equal to the unsharded
// prefilters over the same records.
[[nodiscard]] std::vector<image_id> window_candidates(
    const sharded_database& db, const symbolic_image& query, int pad);
[[nodiscard]] std::vector<image_id> combined_candidates(
    const sharded_database& db, const symbolic_image& query, int pad);

}  // namespace bes
