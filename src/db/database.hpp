// The symbolic image database (paper §3.2: "While building an image database
// of 2D BE-string, we only require to call algorithm Convert_2D_Be_String
// ... and save the results, the 2D BE-string, to database").
//
// Each record keeps the symbolic picture (authoritative), its 2D BE-string
// (the retrieval representation, encoded on insert) and a name. An inverted
// symbol index narrows query scans to images sharing at least one icon
// symbol with the query.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/be_string.hpp"
#include "core/encoder.hpp"
#include "db/inverted_index.hpp"
#include "lcs/token_histogram.hpp"
#include "symbolic/symbolic_image.hpp"

namespace bes {

using image_id = std::uint32_t;

// Tag selecting the deferred-build constructors of the db-side indexes
// (spatial_index, hybrid_index): the index starts empty so a bulk-load path
// can index each image in the same pass that materializes it.
struct deferred_build_t {
  explicit deferred_build_t() = default;
};
inline constexpr deferred_build_t deferred_build{};

struct db_record {
  image_id id = 0;
  std::string name;
  symbolic_image image;
  be_string2d strings;
  // Precomputed token histograms backing the top-k scan pruner.
  be_histogram2d histograms;
};

class image_database {
 public:
  image_database() = default;

  // The alphabet shared by every image in this database.
  [[nodiscard]] alphabet& symbols() noexcept { return alphabet_; }
  [[nodiscard]] const alphabet& symbols() const noexcept { return alphabet_; }

  // Encodes and stores a picture; returns its id (dense, insertion order).
  image_id add(std::string name, symbolic_image image);

  // Bulk-load entry point for persistence paths that already carry the
  // encoded BE-strings (the BSEG1 segment reader): installs the record
  // without re-running Convert_2D_Be_String, rebuilds its histograms, and
  // feeds the inverted index — the same invariants as add(), one encode
  // cheaper. Precondition: `strings == encode(image)`; loaders enforce it
  // via checksums before calling.
  image_id add_encoded(std::string name, symbolic_image image,
                       be_string2d strings);

  // Same, with the pruner histograms also supplied (the segment persists
  // them); precondition: `histograms == make_histograms(strings)`.
  image_id add_encoded(std::string name, symbolic_image image,
                       be_string2d strings, be_histogram2d histograms);

  // Pre-sizes the record vector ahead of a bulk load.
  void reserve(std::size_t record_count) { records_.reserve(record_count); }

  [[nodiscard]] const db_record& record(image_id id) const;
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  [[nodiscard]] const std::vector<db_record>& records() const noexcept {
    return records_;
  }

  // Ids of images sharing at least one symbol with `query_symbols`
  // (sorted, unique).
  [[nodiscard]] std::vector<image_id> candidates(
      std::span<const symbol_id> query_symbols) const;
  [[nodiscard]] std::vector<image_id> candidates(
      const symbolic_image& query) const;

  // Posting-list length for `symbol` (0 when absent): the cheapest
  // selectivity statistic there is, read per query symbol by the cost-based
  // planner (db/planner.hpp) to estimate candidate counts before generating
  // anything.
  [[nodiscard]] std::size_t postings(symbol_id symbol) const noexcept {
    return index_.postings(symbol);
  }

 private:
  alphabet alphabet_;
  std::vector<db_record> records_;
  inverted_index index_;
};

// The distinct symbols of a picture (sorted).
[[nodiscard]] std::vector<symbol_id> distinct_symbols(
    const symbolic_image& image);

}  // namespace bes
