// The symbolic image database (paper §3.2: "While building an image database
// of 2D BE-string, we only require to call algorithm Convert_2D_Be_String
// ... and save the results, the 2D BE-string, to database").
//
// Each record keeps the symbolic picture (authoritative), its 2D BE-string
// (the retrieval representation, encoded on insert) and a name. An inverted
// symbol index narrows query scans to images sharing at least one icon
// symbol with the query.
//
// Live ingest (ROADMAP "Live ingest under traffic"): the database is safely
// writable under concurrent reads. Records live in chunked stable storage
// (util/stable_vector.hpp) so no add() ever moves an existing record, adds
// publish through an atomic visible-watermark (the stable_vector size), and
// remove() marks per-record tombstone epochs instead of erasing. snapshot()
// captures (watermark, epoch) — an immutable view scans filter against while
// writers keep going. Writers serialize on an internal mutex; readers never
// block. The alphabet is the one structure scans do NOT touch, so interning
// new symbols during adds is safe against concurrent searches — but callers
// reading symbol NAMES (display paths) must not race a writer.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/be_string.hpp"
#include "core/encoder.hpp"
#include "db/inverted_index.hpp"
#include "lcs/token_histogram.hpp"
#include "symbolic/symbolic_image.hpp"
#include "util/stable_vector.hpp"

namespace bes {

using image_id = std::uint32_t;

// Tag selecting the deferred-build constructors of the db-side indexes
// (spatial_index, hybrid_index): the index starts empty so a bulk-load path
// can index each image in the same pass that materializes it.
struct deferred_build_t {
  explicit deferred_build_t() = default;
};
inline constexpr deferred_build_t deferred_build{};

struct db_record {
  image_id id = 0;
  std::string name;
  symbolic_image image;
  be_string2d strings;
  // Precomputed token histograms backing the top-k scan pruner.
  be_histogram2d histograms;
  // Tombstone epoch: 0 = live, otherwise the removal epoch (accessed through
  // std::atomic_ref so scans may read it while remove() writes it).
  std::uint64_t removed_at = 0;
};

class image_database;

// An immutable view of the database at one instant: records [0, visible)
// exist, and removals with epoch <= `epoch` are applied. Scans filter their
// candidates through alive() so a search pinned to a snapshot returns
// exactly what a quiesced database in that state would — while add()/
// remove() proceed underneath. Valid as long as the database outlives it
// (records are never moved or erased, only appended and tombstoned).
struct db_snapshot {
  const image_database* db = nullptr;
  std::uint64_t visible = 0;
  std::uint64_t epoch = 0;

  [[nodiscard]] bool alive(image_id id) const noexcept;
  // True when nothing needs filtering: every current record is visible and
  // no tombstone exists — the hot-path escape that keeps a static database's
  // scan byte-identical to the pre-ingest engine.
  [[nodiscard]] bool all_live() const noexcept;
};

class image_database {
 public:
  image_database() = default;

  image_database(image_database&&) noexcept = default;
  image_database& operator=(image_database&&) noexcept = default;

  // The alphabet shared by every image in this database.
  [[nodiscard]] alphabet& symbols() noexcept { return alphabet_; }
  [[nodiscard]] const alphabet& symbols() const noexcept { return alphabet_; }

  // Encodes and stores a picture; returns its id (dense, insertion order).
  // Safe to call while scans run; the record becomes visible atomically.
  image_id add(std::string name, symbolic_image image);

  // Bulk-load entry point for persistence paths that already carry the
  // encoded BE-strings (the BSEG1 segment reader): installs the record
  // without re-running Convert_2D_Be_String, rebuilds its histograms, and
  // feeds the inverted index — the same invariants as add(), one encode
  // cheaper. Precondition: `strings == encode(image)`; loaders enforce it
  // via checksums before calling.
  image_id add_encoded(std::string name, symbolic_image image,
                       be_string2d strings);

  // Same, with the pruner histograms also supplied (the segment persists
  // them); precondition: `histograms == make_histograms(strings)`.
  //
  // Strong exception guarantee: the record is staged into stable storage and
  // the inverted index updated BEFORE the visible-watermark publishes, and
  // an icon referencing a symbol the alphabet has not interned throws
  // std::invalid_argument before anything mutates — a throwing add leaves no
  // phantom posting and no half-visible record.
  image_id add_encoded(std::string name, symbolic_image image,
                       be_string2d strings, be_histogram2d histograms);

  // Tombstones record `id`: it stays addressable (record(id) still works;
  // persistence still writes it) but snapshots taken from now on treat it as
  // gone and searches skip it. Returns false when `id` is unknown or already
  // removed. Safe against concurrent scans.
  bool remove(image_id id);

  // The view every new scan uses; capture one explicitly to pin several
  // searches to the same instant while writes continue.
  [[nodiscard]] db_snapshot snapshot() const noexcept;

  // Removal epoch of `id` (0 = live). Safe against a concurrent remove().
  [[nodiscard]] std::uint64_t removed_epoch(image_id id) const noexcept;
  [[nodiscard]] bool removed(image_id id) const noexcept {
    return removed_epoch(id) != 0;
  }
  // Latest removal epoch (monotone; 0 before any remove).
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return ingest_->epoch.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t tombstone_count() const noexcept {
    return ingest_->tombstones.load(std::memory_order_acquire);
  }
  // Records not tombstoned (size() counts tombstoned ones too).
  [[nodiscard]] std::size_t live_size() const noexcept {
    return size() - tombstone_count();
  }

  // Pre-sizes the record storage AND the inverted index ahead of a bulk
  // load: `distinct_symbols` (when known) reserves the posting-list hash so
  // the load never rehashes mid-ingest.
  void reserve(std::size_t record_count, std::size_t symbol_count = 0) {
    records_.reserve(record_count);
    if (symbol_count > 0) index_.reserve(symbol_count);
  }

  [[nodiscard]] const db_record& record(image_id id) const;
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  [[nodiscard]] const stable_vector<db_record>& records() const noexcept {
    return records_;
  }

  // Ids of images sharing at least one symbol with `query_symbols`
  // (sorted, unique). May include tombstoned ids — scans filter them against
  // their snapshot (and count them as pruned).
  [[nodiscard]] std::vector<image_id> candidates(
      std::span<const symbol_id> query_symbols) const;
  [[nodiscard]] std::vector<image_id> candidates(
      const symbolic_image& query) const;

  // Posting-list length for `symbol` (0 when absent): the cheapest
  // selectivity statistic there is, read per query symbol by the cost-based
  // planner (db/planner.hpp) to estimate candidate counts before generating
  // anything.
  [[nodiscard]] std::size_t postings(symbol_id symbol) const;

 private:
  // Writer serialization + index guard, behind a unique_ptr so the database
  // stays movable (loaders return it by value before any concurrency).
  struct ingest_state {
    std::mutex write_mutex;
    mutable std::shared_mutex index_mutex;
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<std::uint64_t> tombstones{0};
  };

  alphabet alphabet_;
  stable_vector<db_record> records_;
  inverted_index index_;
  std::unique_ptr<ingest_state> ingest_ = std::make_unique<ingest_state>();
};

// The distinct symbols of a picture (sorted).
[[nodiscard]] std::vector<symbol_id> distinct_symbols(
    const symbolic_image& image);

}  // namespace bes
