#include "db/group_commit.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace bes {

namespace {

// Durability past the page cache: fsync the segment through a throwaway
// read-only descriptor. The writer's own ofstream has no portable handle to
// sync, and opening a second descriptor to the same file syncs the same
// inode. No-op where fsync does not exist.
void sync_file(const std::filesystem::path& path) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("group commit: cannot open for fsync: " +
                             path.string());
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    throw std::runtime_error("group commit: fsync failed: " + path.string());
  }
#else
  (void)path;
#endif
}

}  // namespace

tombstone_group_commit::tombstone_group_commit(segment_writer& writer,
                                               group_commit_options options)
    : writer_(writer), options_(options) {
  thread_ = std::thread([this] { worker(); });
}

tombstone_group_commit::~tombstone_group_commit() {
  {
    std::lock_guard<std::mutex> lock(m_);
    stop_ = true;
  }
  batch_cv_.notify_all();
  thread_.join();
}

void tombstone_group_commit::enqueue(std::uint64_t ordinal, bool wait) {
  std::unique_lock<std::mutex> lock(m_);
  if (error_) std::rethrow_exception(error_);
  // Mirror append_tombstones' validation eagerly so the offending call gets
  // the error, instead of poisoning a batch shared with innocent waiters.
  if (ordinal >= writer_.images_written()) {
    throw std::runtime_error(
        "group commit: tombstone ordinal out of range: " +
        std::to_string(ordinal));
  }
  if (!seen_.insert(ordinal).second) {
    throw std::runtime_error("group commit: ordinal already tombstoned: " +
                             std::to_string(ordinal));
  }
  pending_.push_back(ordinal);
  ++stats_.deletes;
  const std::uint64_t my_batch = open_batch_;
  batch_cv_.notify_all();
  if (wait) wait_for_batch(lock, my_batch);
}

void tombstone_group_commit::remove(std::uint64_t ordinal) {
  enqueue(ordinal, /*wait=*/true);
}

void tombstone_group_commit::remove_async(std::uint64_t ordinal) {
  enqueue(ordinal, /*wait=*/false);
}

void tombstone_group_commit::flush() {
  std::unique_lock<std::mutex> lock(m_);
  // Everything enqueued so far lives either in pending_ (will become batch
  // open_batch_) or in a batch the worker already took (< open_batch_).
  const std::uint64_t target = pending_.empty() ? open_batch_ : open_batch_ + 1;
  if (done_batch_ >= target) {
    if (error_) std::rethrow_exception(error_);
    return;
  }
  flush_now_ = true;
  batch_cv_.notify_all();
  done_cv_.wait(lock, [&] { return done_batch_ >= target; });
  if (error_) std::rethrow_exception(error_);
}

void tombstone_group_commit::wait_for_batch(std::unique_lock<std::mutex>& lock,
                                            std::uint64_t batch) {
  done_cv_.wait(lock, [&] { return done_batch_ > batch; });
  if (error_) std::rethrow_exception(error_);
}

group_commit_stats tombstone_group_commit::stats() const {
  std::lock_guard<std::mutex> lock(m_);
  return stats_;
}

void tombstone_group_commit::worker() {
  for (;;) {
    std::unique_lock<std::mutex> lock(m_);
    batch_cv_.wait(lock, [&] { return stop_ || !pending_.empty(); });
    if (pending_.empty()) break;  // stop_ set and nothing left to drain
    // Hold the batch open for the window so siblings can pile in; cut it
    // early when it fills, a flush demands it, or shutdown begins.
    batch_cv_.wait_for(lock, options_.window, [&] {
      return stop_ || flush_now_ ||
             (options_.max_batch != 0 && pending_.size() >= options_.max_batch);
    });
    std::vector<std::uint64_t> batch = std::move(pending_);
    pending_.clear();
    flush_now_ = false;
    const std::uint64_t my_batch = open_batch_++;
    const bool do_sync = options_.fsync;
    lock.unlock();

    std::exception_ptr failure;
    bool synced = false;
    if (!error_hit_) {
      try {
        writer_.append_tombstones(batch);
        writer_.flush();
        if (do_sync) {
          sync_file(writer_.path());
          synced = true;
        }
      } catch (...) {
        failure = std::current_exception();
      }
    }

    lock.lock();
    if (failure) {
      if (!error_) error_ = failure;
      error_hit_ = true;
    } else if (!error_hit_) {
      ++stats_.records;
      if (synced) ++stats_.syncs;
    }
    done_batch_ = my_batch + 1;
    lock.unlock();
    done_cv_.notify_all();
  }
}

}  // namespace bes
