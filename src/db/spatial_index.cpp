#include "db/spatial_index.hpp"

#include <algorithm>

namespace bes {

namespace {

constexpr rtree::payload_t pack(image_id image, std::size_t icon_index) {
  return (static_cast<rtree::payload_t>(image) << 32) |
         static_cast<rtree::payload_t>(icon_index);
}

constexpr image_id image_of(rtree::payload_t payload) {
  return static_cast<image_id>(payload >> 32);
}

constexpr std::size_t icon_of(rtree::payload_t payload) {
  return static_cast<std::size_t>(payload & 0xffffffffull);
}

}  // namespace

spatial_index::spatial_index(const image_database& db) : db_(&db) {
  for (const db_record& rec : db.records()) add_image(rec.id);
}

spatial_index::spatial_index(const image_database& db, deferred_build_t)
    : db_(&db) {}

void spatial_index::add_image(image_id id) {
  const db_record& rec = db_->record(id);
  std::unique_lock lock(mutex_);
  for (std::size_t i = 0; i < rec.image.size(); ++i) {
    tree_.insert(rec.image.icons()[i].mbr, pack(rec.id, i));
  }
}

std::vector<image_id> spatial_index::decode(
    std::vector<rtree::payload_t> hits,
    std::optional<symbol_id> symbol) const {
  std::vector<image_id> out;
  out.reserve(hits.size());
  for (rtree::payload_t payload : hits) {
    const image_id id = image_of(payload);
    if (symbol) {
      const icon& obj = db_->record(id).image.icons()[icon_of(payload)];
      if (obj.symbol != *symbol) continue;
    }
    out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<image_id> spatial_index::images_overlapping(
    const rect& window, std::optional<symbol_id> symbol) const {
  std::vector<rtree::payload_t> hits;
  {
    std::shared_lock lock(mutex_);
    hits = tree_.search(window);
  }
  // decode() touches only database records (stable storage), not the tree.
  return decode(std::move(hits), symbol);
}

std::vector<image_id> spatial_index::images_contained(
    const rect& window, std::optional<symbol_id> symbol) const {
  std::vector<rtree::payload_t> hits;
  {
    std::shared_lock lock(mutex_);
    hits = tree_.search_contained(window);
  }
  return decode(std::move(hits), symbol);
}

}  // namespace bes
