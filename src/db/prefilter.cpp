#include "db/prefilter.hpp"

#include <algorithm>
#include <iterator>
#include <stdexcept>

#include "util/parallel.hpp"

namespace bes {

std::vector<image_id> window_candidates(const spatial_index& index,
                                        const symbolic_image& query, int pad,
                                        std::size_t* generated) {
  if (pad < 0) {
    throw std::invalid_argument("window_candidates: pad must be >= 0");
  }
  std::vector<image_id> out;
  for (const icon& obj : query.icons()) {
    // Padded windows may extend past the image domain; the R-tree only
    // requires lo < hi, and out-of-domain area matches nothing.
    const rect window{interval{obj.mbr.x.lo - pad, obj.mbr.x.hi + pad},
                      interval{obj.mbr.y.lo - pad, obj.mbr.y.hi + pad}};
    const auto hits = index.images_overlapping(window, obj.symbol);
    out.insert(out.end(), hits.begin(), hits.end());
  }
  if (generated != nullptr) *generated = out.size();
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<image_id> intersect_candidates(std::span<const image_id> a,
                                           std::span<const image_id> b) {
  std::vector<image_id> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<image_id> combined_candidates(const image_database& db,
                                          const spatial_index& index,
                                          const symbolic_image& query, int pad,
                                          std::size_t* generated) {
  std::size_t window_generated = 0;
  const std::vector<image_id> from_index = db.candidates(query);
  const std::vector<image_id> from_window =
      window_candidates(index, query, pad, &window_generated);
  if (generated != nullptr) *generated = from_index.size() + window_generated;
  return intersect_candidates(from_index, from_window);
}

std::vector<std::vector<query_result>> search_batch_combined(
    const image_database& db, const spatial_index& index,
    std::span<const symbolic_image> queries, int pad,
    const query_options& options, std::vector<search_stats>* stats) {
  std::vector<be_string2d> strings(queries.size());
  std::vector<std::vector<image_id>> candidates(queries.size());
  parallel_for(queries.size(), options.threads, [&](std::size_t i) {
    strings[i] = encode(queries[i]);
    candidates[i] = combined_candidates(db, index, queries[i], pad);
  });
  return search_batch_candidates(db, strings, candidates, options, stats);
}

}  // namespace bes
