// BSEG1 — a versioned, append-only binary segment format for image
// databases, with mmap readback (ROADMAP "Persistence at scale").
//
// The text format (db/storage.hpp) re-encodes every BE-string on load; a
// segment instead stores the *pre-encoded* token streams, so loading is a
// bounds-checked copy out of the mapping — no Convert_2D_Be_String pass. A
// footer index gives O(1) seeks to any record, which is what the lazy
// per-record reader and the future sharding layer build on.
//
// File layout (all integers native little-endian; the header carries an
// endianness marker and loading rejects a mismatch):
//
//   file header (8 bytes)   "BSEG1\n" + u8 version(=1) + u8 endian(=0x01)
//   record*                 appended in order; see below
//   footer record           record type 3, written by segment_writer::finish
//   footer tail (16 bytes)  u64 footer-record offset + "BSEGFTR\n"
//
// Every record is a 16-byte header followed by its payload:
//
//   u32 type | u32 payload_bytes | u32 payload_crc32 | u32 header_crc32
//
// where header_crc32 covers the first 12 header bytes and payload_crc32 the
// payload, so corruption anywhere in a record fails closed. Record types:
//
//   1  symbol delta   u32 count, then count x (u32 len, bytes) — the symbol
//                     names interned since the previous delta. Appending to
//                     a live segment emits deltas as the alphabet grows, so
//                     a segment never rewrites earlier bytes.
//   2  image          u32 name_len, name bytes, i32 width, i32 height,
//                     u32 icon_count, icons (u32 symbol, i32 x.lo, i32 x.hi,
//                     i32 y.lo, i32 y.hi), then both token streams
//                     (u32 count, count x u32 packed token) for x and y,
//                     then both pruner histograms (u32 bucket_count,
//                     bucket_count x (u32 packed token, u32 count)) for x
//                     and y — persisted derived data, so a load neither
//                     re-encodes nor re-sorts anything.
//   3  footer index   u64 image_count, u64 symbol_count, u64 record_count,
//                     record_count x u64 absolute record offsets.
//   4  tombstone      u64 count, then count x u64 image ordinal — the
//                     position of a deleted image among this segment's
//                     type-2 records, NOT its database id. Ordinals must
//                     reference images already written (append-only
//                     causality) and no ordinal may repeat across the
//                     segment; loaders reject violations. Segments with no
//                     deletes carry no tombstone record and stay
//                     byte-identical to the pre-tombstone format.
//
// A token packs into a u32: 0xFFFFFFFF is the dummy E, otherwise
// (symbol_id << 1) | kind with kind 0 = begin, 1 = end.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "db/database.hpp"
#include "db/spatial_index.hpp"

namespace bes {

// CRC-32 over both packed token streams of a 2D BE-string. The binary
// format's per-record CRC covers it implicitly; the text format records it
// explicitly (`check` line) so a loader can prove the icons it parsed
// re-encode to exactly the strings the writer saw.
[[nodiscard]] std::uint32_t strings_checksum(const be_string2d& strings);

struct segment_read_options {
  // Accept a segment whose footer or tail is missing/invalid (e.g. a crash
  // truncated the file) by scanning records sequentially and recovering the
  // longest valid prefix. Corruption *inside* that prefix still throws; the
  // recovered records are CRC-verified, never silently wrong.
  bool recover_tail = false;
};

// Appends records to a BSEG1 segment. All errors throw std::runtime_error.
class segment_writer {
 public:
  // Creates (truncates) `path` and writes a fresh header; or, with
  // `append = true`, validates an existing segment, drops its footer, and
  // continues after the last record. With `options.recover_tail`, a torn
  // segment (crashed writer) is accepted: the longest CRC-valid record
  // prefix is kept and everything after it is PHYSICALLY truncated before
  // the first new byte lands — a later strict reopen can never resurrect
  // the torn records.
  explicit segment_writer(const std::filesystem::path& path,
                          bool append = false,
                          segment_read_options options = {});
  ~segment_writer();

  segment_writer(const segment_writer&) = delete;
  segment_writer& operator=(const segment_writer&) = delete;

  // Appends one image record, preceded by a symbol-delta record whenever
  // `symbols` has grown since the last append. A tombstoned record
  // (rec.removed_at != 0) is written like any other and its ordinal queued;
  // finish() emits one batched tombstone record covering every queued
  // delete.
  void append(const db_record& rec, const alphabet& symbols);

  // Writes a tombstone record for `ordinals` (positions among this
  // segment's image records) immediately — the durable path for deletes
  // against an already-written segment. Throws on an ordinal >= the images
  // written so far or one already tombstoned. Empty spans are a no-op.
  void append_tombstones(std::span<const std::uint64_t> ordinals);

  // Writes the footer index and tail (preceded by the queued tombstone
  // record, if any). Called by the destructor if needed, but call it
  // explicitly to observe write failures.
  void finish();

  [[nodiscard]] std::size_t images_written() const noexcept { return images_; }

  // Pushes buffered bytes to the OS (std::ofstream::flush), throwing on
  // failure. Durability beyond the page cache is the caller's business —
  // db/group_commit.hpp fsyncs through a separate descriptor after this.
  void flush();

  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }

 private:
  void write_record(std::uint32_t type, const std::string& payload);
  void write_tombstone_record(std::span<const std::uint64_t> ordinals);

  std::filesystem::path path_;
  std::ofstream out_;
  std::vector<std::uint64_t> offsets_;  // every record written so far
  std::vector<std::uint64_t> pending_tombstones_;  // queued by append()
  std::unordered_set<std::uint64_t> tombstoned_;   // every ordinal on disk
  std::uint64_t pos_ = 0;
  std::uint64_t images_ = 0;
  std::size_t symbols_written_ = 0;
  bool finished_ = false;
};

// One materialized image record of a segment.
struct segment_image {
  std::string name;
  symbolic_image image;
  be_string2d strings;
  be_histogram2d histograms;
};

// Maps a segment and serves O(1) per-record reads via the footer index — the
// lazy alternative to materializing a whole image_database. The mapping
// lives as long as the reader; reads are bounds- and CRC-checked.
class segment_reader {
 public:
  explicit segment_reader(const std::filesystem::path& path,
                          segment_read_options options = {});
  ~segment_reader();

  segment_reader(const segment_reader&) = delete;
  segment_reader& operator=(const segment_reader&) = delete;

  [[nodiscard]] const std::filesystem::path& path() const noexcept;
  [[nodiscard]] std::size_t image_count() const noexcept;
  // All symbol names, in interning order (union of the delta records).
  [[nodiscard]] const std::vector<std::string>& symbol_names() const noexcept;
  // Decodes image record `index` straight from the mapping (no re-encode).
  [[nodiscard]] segment_image read_image(std::size_t index) const;
  // Ordinals of tombstoned images (sorted, unique; validated on parse).
  [[nodiscard]] const std::vector<std::uint64_t>& tombstones() const noexcept;
  // Whether image `index` carries a tombstone (binary search).
  [[nodiscard]] bool image_tombstoned(std::size_t index) const noexcept;
  // True when recover_tail engaged and dropped trailing bytes.
  [[nodiscard]] bool recovered() const noexcept;

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

// Materializes the whole segment into a database: symbols interned in
// recorded order, records installed through the pre-encoded bulk-load path
// (image_database::add_encoded), inverted index rebuilt as records land,
// tombstones applied afterwards (the records stay addressable, searches
// skip them — image_database::remove semantics).
[[nodiscard]] image_database load_segment(const std::filesystem::path& path,
                                          segment_read_options options = {});

// Same, from an already-open reader (reuses its mapping and parsed layout).
[[nodiscard]] image_database materialize_segment(const segment_reader& reader);

// Same, plus the spatial R-tree built in the same pass over the segment.
// The index borrows the database, so both live behind stable pointers.
struct loaded_corpus {
  std::unique_ptr<image_database> db;
  std::unique_ptr<spatial_index> spatial;
};
[[nodiscard]] loaded_corpus load_segment_corpus(
    const std::filesystem::path& path, segment_read_options options = {});

// Convenience: stream every record of `db` through a segment_writer.
void save_segment(const image_database& db, const std::filesystem::path& path);

}  // namespace bes
