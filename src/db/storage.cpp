#include "db/storage.hpp"

#include <fstream>
#include <sstream>

namespace bes {

namespace {

[[noreturn]] void malformed(const std::filesystem::path& path,
                            const std::string& detail) {
  throw std::runtime_error("besdb: malformed " + path.string() + ": " + detail);
}

}  // namespace

void save_database(const image_database& db,
                   const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("besdb: cannot write " + path.string());
  }
  out << "BESDB 1\n";
  out << "alphabet " << db.symbols().size() << '\n';
  for (const std::string& name : db.symbols().names()) out << name << '\n';
  out << "images " << db.size() << '\n';
  for (const db_record& rec : db.records()) {
    out << "image " << rec.image.width() << ' ' << rec.image.height() << ' '
        << rec.image.size() << ' ' << rec.name << '\n';
    for (const icon& obj : rec.image.icons()) {
      out << "icon " << obj.symbol << ' ' << obj.mbr.x.lo << ' ' << obj.mbr.x.hi
          << ' ' << obj.mbr.y.lo << ' ' << obj.mbr.y.hi << '\n';
    }
  }
  if (!out) {
    throw std::runtime_error("besdb: write failed for " + path.string());
  }
}

image_database load_database(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("besdb: cannot open " + path.string());

  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "BESDB" || version != 1) {
    malformed(path, "bad header");
  }

  std::string keyword;
  std::size_t alphabet_count = 0;
  if (!(in >> keyword >> alphabet_count) || keyword != "alphabet") {
    malformed(path, "missing alphabet section");
  }
  image_database db;
  {
    std::string line;
    std::getline(in, line);  // consume rest of count line
    for (std::size_t i = 0; i < alphabet_count; ++i) {
      if (!std::getline(in, line)) malformed(path, "truncated alphabet");
      const symbol_id id = db.symbols().intern(line);
      if (id != i) malformed(path, "duplicate symbol '" + line + "'");
    }
  }

  std::size_t image_count = 0;
  if (!(in >> keyword >> image_count) || keyword != "images") {
    malformed(path, "missing images section");
  }
  for (std::size_t k = 0; k < image_count; ++k) {
    int width = 0;
    int height = 0;
    std::size_t icon_count = 0;
    if (!(in >> keyword >> width >> height >> icon_count) ||
        keyword != "image") {
      malformed(path, "bad image record " + std::to_string(k));
    }
    std::string name;
    std::getline(in, name);
    if (!name.empty() && name.front() == ' ') name.erase(0, 1);

    symbolic_image image(width, height);
    for (std::size_t i = 0; i < icon_count; ++i) {
      symbol_id symbol = 0;
      int x_lo = 0;
      int x_hi = 0;
      int y_lo = 0;
      int y_hi = 0;
      if (!(in >> keyword >> symbol >> x_lo >> x_hi >> y_lo >> y_hi) ||
          keyword != "icon") {
        malformed(path, "bad icon record in image " + std::to_string(k));
      }
      if (symbol >= db.symbols().size()) {
        malformed(path, "icon references unknown symbol id");
      }
      image.add(symbol,
                rect{interval::checked(x_lo, x_hi), interval::checked(y_lo, y_hi)});
    }
    const image_id id = db.add(std::move(name), std::move(image));
    // Integrity: the freshly encoded strings must be well formed.
    if (!db.record(id).strings.well_formed()) {
      malformed(path, "image " + std::to_string(k) + " encodes malformed");
    }
  }
  return db;
}

}  // namespace bes
