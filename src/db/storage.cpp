#include "db/storage.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "db/segment.hpp"
#include "db/shard_storage.hpp"

namespace bes {

namespace {

[[noreturn]] void malformed(const std::filesystem::path& path,
                            const std::string& detail) {
  throw std::runtime_error("besdb: malformed " + path.string() + ": " + detail);
}

void save_text(const image_database& db, const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("besdb: cannot write " + path.string());
  }
  // Version 2 = version 1 plus per-image `check` lines; version 3 = 2 plus
  // a trailing `tombstones` section. Each bump is emitted only when the
  // feature is present, so databases without deletes stay byte-identical to
  // what a version-2 writer produced (and version-2 readers keep loading
  // them).
  const bool tombstones = db.tombstone_count() > 0;
  out << (tombstones ? "BESDB 3\n" : "BESDB 2\n");
  out << "alphabet " << db.symbols().size() << '\n';
  for (const std::string& name : db.symbols().names()) out << name << '\n';
  out << "images " << db.size() << '\n';
  for (const db_record& rec : db.records()) {
    out << "image " << rec.image.width() << ' ' << rec.image.height() << ' '
        << rec.image.size() << ' ' << rec.name << '\n';
    for (const icon& obj : rec.image.icons()) {
      out << "icon " << obj.symbol << ' ' << obj.mbr.x.lo << ' ' << obj.mbr.x.hi
          << ' ' << obj.mbr.y.lo << ' ' << obj.mbr.y.hi << '\n';
    }
    char check[16];
    std::snprintf(check, sizeof(check), "%08x", strings_checksum(rec.strings));
    out << "check " << check << '\n';
  }
  if (tombstones) {
    out << "tombstones " << db.tombstone_count() << '\n';
    for (const db_record& rec : db.records()) {
      if (rec.removed_at != 0) out << rec.id << '\n';
    }
  }
  if (!out) {
    throw std::runtime_error("besdb: write failed for " + path.string());
  }
}

image_database load_text(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("besdb: cannot open " + path.string());

  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "BESDB" ||
      (version != 1 && version != 2 && version != 3)) {
    malformed(path, "bad header");
  }

  std::string keyword;
  std::size_t alphabet_count = 0;
  if (!(in >> keyword >> alphabet_count) || keyword != "alphabet") {
    malformed(path, "missing alphabet section");
  }
  image_database db;
  {
    std::string line;
    std::getline(in, line);  // consume rest of count line
    for (std::size_t i = 0; i < alphabet_count; ++i) {
      if (!std::getline(in, line)) malformed(path, "truncated alphabet");
      const symbol_id id = db.symbols().intern(line);
      if (id != i) malformed(path, "duplicate symbol '" + line + "'");
    }
  }

  std::size_t image_count = 0;
  if (!(in >> keyword >> image_count) || keyword != "images") {
    malformed(path, "missing images section");
  }
  for (std::size_t k = 0; k < image_count; ++k) {
    int width = 0;
    int height = 0;
    std::size_t icon_count = 0;
    if (!(in >> keyword >> width >> height >> icon_count) ||
        keyword != "image") {
      malformed(path, "bad image record " + std::to_string(k));
    }
    std::string name;
    std::getline(in, name);
    if (!name.empty() && name.front() == ' ') name.erase(0, 1);

    symbolic_image image(width, height);
    for (std::size_t i = 0; i < icon_count; ++i) {
      symbol_id symbol = 0;
      int x_lo = 0;
      int x_hi = 0;
      int y_lo = 0;
      int y_hi = 0;
      if (!(in >> keyword >> symbol >> x_lo >> x_hi >> y_lo >> y_hi) ||
          keyword != "icon") {
        malformed(path, "bad icon record in image " + std::to_string(k));
      }
      if (symbol >= db.symbols().size()) {
        malformed(path, "icon references unknown symbol id");
      }
      image.add(symbol,
                rect{interval::checked(x_lo, x_hi), interval::checked(y_lo, y_hi)});
    }
    const image_id id = db.add(std::move(name), std::move(image));
    // Integrity: the freshly encoded strings must be well formed.
    if (!db.record(id).strings.well_formed()) {
      malformed(path, "image " + std::to_string(k) + " encodes malformed");
    }
    // Older files have no check line; current saves record the CRC of the
    // encoded strings, so icon tampering that still encodes to a valid but
    // different BE-string fails closed instead of loading silently wrong.
    const std::streampos mark = in.tellg();
    std::string peek;
    if (in >> peek && peek == "check") {
      std::string recorded_hex;
      if (!(in >> recorded_hex)) {
        malformed(path, "bad check line in image " + std::to_string(k));
      }
      char* end = nullptr;
      const unsigned long recorded = std::strtoul(recorded_hex.c_str(), &end, 16);
      if (end == nullptr || *end != '\0') {
        malformed(path, "bad check line in image " + std::to_string(k));
      }
      if (static_cast<std::uint32_t>(recorded) !=
          strings_checksum(db.record(id).strings)) {
        malformed(path, "image " + std::to_string(k) +
                            " fails its checksum: icons do not encode to the "
                            "recorded BE-strings");
      }
    } else {
      in.clear();
      in.seekg(mark);
    }
  }
  // Version 3: a trailing tombstones section re-applies the deletes. Ids
  // must be in range and unique (remove() returns false on a repeat).
  std::string peek;
  if (in >> peek) {
    if (peek != "tombstones" || version < 3) {
      malformed(path, "trailing content after images");
    }
    std::size_t tombstone_count = 0;
    if (!(in >> tombstone_count)) malformed(path, "bad tombstones section");
    for (std::size_t i = 0; i < tombstone_count; ++i) {
      image_id id = 0;
      if (!(in >> id)) malformed(path, "truncated tombstones section");
      if (id >= db.size() || !db.remove(id)) {
        malformed(path, "bad tombstone id " + std::to_string(id));
      }
    }
  }
  return db;
}

}  // namespace

void save_database(const image_database& db, const std::filesystem::path& path,
                   db_format format, std::size_t shard_count) {
  switch (format) {
    case db_format::text:
      save_text(db, path);
      return;
    case db_format::binary:
      save_segment(db, path);
      return;
    case db_format::sharded:
      save_sharded(db, path,
                   shard_count == 0 ? default_shard_count : shard_count);
      return;
  }
  throw std::runtime_error("besdb: unknown format");
}

db_format detect_format(const std::filesystem::path& path) {
  // A corpus directory (or its manifest) is the SCRP1 sharded layout.
  if (std::filesystem::is_directory(path)) {
    if (is_sharded_corpus(path)) return db_format::sharded;
    malformed(path, "directory without an SCRP1 manifest");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("besdb: cannot open " + path.string());
  char magic[6] = {};
  in.read(magic, sizeof(magic));
  if (in.gcount() >= 5 && std::memcmp(magic, "BSEG1", 5) == 0) {
    return db_format::binary;
  }
  if (in.gcount() >= 6 && std::memcmp(magic, "BESDB ", 6) == 0) {
    return db_format::text;
  }
  if (in.gcount() >= 6 && std::memcmp(magic, "SCRP1\n", 6) == 0) {
    return db_format::sharded;
  }
  malformed(path,
            "neither a BESDB text file, a BSEG1 segment, nor an SCRP1 corpus");
}

image_database load_database(const std::filesystem::path& path) {
  switch (detect_format(path)) {
    case db_format::binary:
      return load_segment(path);
    case db_format::text:
      return load_text(path);
    case db_format::sharded:
      return load_sharded_flat(path);
  }
  throw std::runtime_error("besdb: unknown format");
}

}  // namespace bes
