#include "db/shard_storage.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/checksum.hpp"

namespace bes {

namespace {

namespace fs = std::filesystem;

[[noreturn]] void bad_manifest(const fs::path& path,
                               const std::string& detail) {
  throw std::runtime_error("besdb: bad sharded corpus " + path.string() +
                           ": " + detail);
}

std::string shard_file_name(std::size_t shard) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "shard-%04zu.bseg", shard);
  return buf;
}

// Resolves `path` (manifest file or corpus directory) to the manifest file.
fs::path manifest_path_of(const fs::path& path) {
  if (fs::is_directory(path)) return path / shard_manifest_name;
  return path;
}

}  // namespace

shard_manifest read_shard_manifest(const fs::path& path) {
  const fs::path manifest_path = manifest_path_of(path);
  std::ifstream in(manifest_path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("besdb: cannot open " + manifest_path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  // The check line covers every byte before it; find it from the back so a
  // (hypothetical) file name containing "check" cannot confuse the parse.
  const std::string marker = "\ncheck ";
  const std::size_t at = content.rfind(marker);
  if (at == std::string::npos) {
    bad_manifest(manifest_path, "missing check line");
  }
  const std::size_t covered = at + 1;  // includes the newline before "check"
  char* end = nullptr;
  const std::string hex = content.substr(covered + 6);
  const unsigned long recorded = std::strtoul(hex.c_str(), &end, 16);
  if (end == hex.c_str()) bad_manifest(manifest_path, "malformed check line");
  // The CRC only covers bytes BEFORE the check line, so anything after the
  // hex digits other than one newline is unverifiable junk — reject it
  // (e.g. a partially doubled manifest from an interrupted copy).
  const std::string_view after_hex(end);
  if (!after_hex.empty() && after_hex != "\n" && after_hex != "\r\n") {
    bad_manifest(manifest_path, "trailing bytes after the check line");
  }
  if (static_cast<std::uint32_t>(recorded) !=
      crc32(content.data(), covered)) {
    bad_manifest(manifest_path, "manifest checksum mismatch");
  }

  std::istringstream text(content.substr(0, covered));
  std::string magic;
  if (!std::getline(text, magic) || magic != "SCRP1") {
    bad_manifest(manifest_path, "bad magic");
  }
  shard_manifest manifest;
  std::string keyword;
  // Sanity caps: a CRC-valid but bogus manifest must still fail closed
  // with a runtime_error, not a ~terabyte resize or an unbounded
  // ring-construction loop. Both limits are far beyond any real corpus.
  constexpr std::size_t max_shards = 1u << 16;
  constexpr std::size_t max_replicas = 1u << 12;
  if (!(text >> keyword >> manifest.shard_count) || keyword != "shards" ||
      manifest.shard_count == 0 || manifest.shard_count > max_shards) {
    bad_manifest(manifest_path, "missing or implausible shards line");
  }
  if (!(text >> keyword >> manifest.ring_replicas) || keyword != "replicas" ||
      manifest.ring_replicas == 0 || manifest.ring_replicas > max_replicas) {
    bad_manifest(manifest_path, "missing or implausible replicas line");
  }
  if (!(text >> keyword >> manifest.images) || keyword != "images") {
    bad_manifest(manifest_path, "missing images line");
  }
  manifest.shards.resize(manifest.shard_count);
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < manifest.shard_count; ++s) {
    std::size_t index = 0;
    shard_manifest_entry entry;
    if (!(text >> keyword >> index >> entry.file >> entry.images) ||
        keyword != "shard" || index != s) {
      bad_manifest(manifest_path,
                   "bad shard line " + std::to_string(s));
    }
    // Segment names must stay inside the corpus directory.
    if (entry.file.empty() || entry.file.find('/') != std::string::npos ||
        entry.file.find('\\') != std::string::npos || entry.file[0] == '.') {
      bad_manifest(manifest_path, "segment name '" + entry.file +
                                      "' escapes the corpus directory");
    }
    total += entry.images;
    manifest.shards[s] = std::move(entry);
  }
  std::string rest;
  if (text >> rest) bad_manifest(manifest_path, "trailing content");
  if (total != manifest.images) {
    bad_manifest(manifest_path, "shard image counts do not sum to the total");
  }
  return manifest;
}

bool is_sharded_corpus(const fs::path& path) {
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    return fs::exists(path / shard_manifest_name, ec);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[6] = {};
  in.read(magic, sizeof(magic));
  return in.gcount() >= 6 && std::string_view(magic, 6) == "SCRP1\n";
}

// ----------------------------------------------------------- shard_writer

namespace {

// True for names of the form shard-<digits>.bseg — the only segment names
// this writer ever emits (4+ digits: %04zu is a MINIMUM width), and
// therefore the only files it may clean up.
bool is_shard_segment_name(const std::string& name) {
  constexpr std::string_view prefix = "shard-";
  constexpr std::string_view suffix = ".bseg";
  if (name.size() < prefix.size() + 4 + suffix.size() ||
      name.rfind(prefix, 0) != 0 ||
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  for (std::size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
  }
  return true;
}

}  // namespace

shard_writer::shard_writer(const fs::path& dir, std::size_t shard_count,
                           std::size_t ring_replicas)
    : dir_(dir),
      ring_(shard_count, ring_replicas),
      uncaught_at_ctor_(std::uncaught_exceptions()) {
  fs::create_directories(dir_);
  // Writing into an existing corpus directory with FEWER shards must not
  // leave the old higher-numbered segments behind (a stale shard-0007.bseg
  // next to a 2-shard manifest is dead weight and confuses any tool that
  // sums the directory). Only this writer's own naming pattern is touched.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.is_regular_file() &&
        is_shard_segment_name(entry.path().filename().string())) {
      fs::remove(entry.path());
    }
  }
  writers_.reserve(shard_count);
  per_shard_.assign(shard_count, 0);
  for (std::size_t s = 0; s < shard_count; ++s) {
    writers_.push_back(
        std::make_unique<segment_writer>(dir_ / shard_file_name(s)));
  }
}

shard_writer::~shard_writer() {
  // After a failed append, or while unwinding from any other exception, do
  // NOT write footers + a CRC-valid manifest: that would legitimize a
  // partial corpus that loads cleanly at a smaller size. Left unfinished,
  // any stale manifest disagrees with the footerless segments and every
  // load fails closed instead.
  if (!finished_ && !failed_ &&
      std::uncaught_exceptions() == uncaught_at_ctor_) {
    try {
      finish();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
      // Destructors must not throw; call finish() explicitly to observe
      // write failures.
    }
  }
}

image_id shard_writer::append(const db_record& rec, const alphabet& symbols) {
  if (finished_ || failed_) {
    throw std::runtime_error("besdb: append after " +
                             std::string(failed_ ? "a failed append" : "finish") +
                             " on " + dir_.string());
  }
  const auto global = static_cast<image_id>(next_global_);
  const std::size_t s = ring_.shard_of(global);
  try {
    writers_[s]->append(rec, symbols);
  } catch (...) {
    // A record failed to land: latch the failure so nothing (not even the
    // destructor) finalizes this partial corpus into a loadable one.
    failed_ = true;
    throw;
  }
  ++per_shard_[s];
  ++next_global_;
  return global;
}

image_id shard_writer::append(std::string name, symbolic_image image,
                              const alphabet& symbols) {
  be_string2d strings = encode(image);
  be_histogram2d histograms = make_histograms(strings);
  const db_record rec{0, std::move(name), std::move(image),
                      std::move(strings), std::move(histograms)};
  return append(rec, symbols);
}

void shard_writer::finish() {
  if (finished_) return;
  if (failed_) {
    throw std::runtime_error("besdb: cannot finalize " + dir_.string() +
                             " after a failed append");
  }
  for (const auto& writer : writers_) writer->finish();

  std::ostringstream body;
  body << "SCRP1\n";
  body << "shards " << ring_.shard_count() << '\n';
  body << "replicas " << ring_.replicas() << '\n';
  body << "images " << next_global_ << '\n';
  for (std::size_t s = 0; s < ring_.shard_count(); ++s) {
    body << "shard " << s << ' ' << shard_file_name(s) << ' ' << per_shard_[s]
         << '\n';
  }
  const std::string text = body.str();
  char check[16];
  std::snprintf(check, sizeof check, "%08x", crc32(text.data(), text.size()));

  const fs::path manifest_path = dir_ / shard_manifest_name;
  std::ofstream out(manifest_path, std::ios::binary | std::ios::trunc);
  out << text << "check " << check << '\n';
  out.flush();
  if (!out) {
    throw std::runtime_error("besdb: write failed for " +
                             manifest_path.string());
  }
  finished_ = true;
}

// ----------------------------------------------------------------- loaders

namespace {

// An opened corpus: verified manifest, one reader per shard segment, and
// the merged master symbol list.
struct open_corpus {
  fs::path manifest_path;
  shard_manifest manifest;
  shard_ring ring;
  std::vector<std::unique_ptr<segment_reader>> readers;
  std::vector<std::string> symbols;  // union, prefix-verified
  // recover_tail mode: a shard segment that lost its tail may hold fewer
  // records than the manifest promises; the missing globals are skipped
  // (and ids re-densified by the caller's add order). The manifest itself
  // has no recovery path — it is tiny and regenerated by any reshard.
  bool allow_loss = false;
};

open_corpus open_sharded(const fs::path& path,
                         const segment_read_options& options) {
  open_corpus corpus{manifest_path_of(path),
                     read_shard_manifest(path),
                     shard_ring(1),
                     {},
                     {},
                     options.recover_tail};
  const shard_manifest& manifest = corpus.manifest;
  corpus.ring = shard_ring(manifest.shard_count, manifest.ring_replicas);
  const fs::path dir = corpus.manifest_path.parent_path();

  corpus.readers.reserve(manifest.shard_count);
  for (std::size_t s = 0; s < manifest.shard_count; ++s) {
    // A missing or corrupt segment throws here, naming the file.
    corpus.readers.push_back(std::make_unique<segment_reader>(
        dir / manifest.shards[s].file, options));
    const std::uint64_t held = corpus.readers[s]->image_count();
    const std::uint64_t expected = manifest.shards[s].images;
    const bool salvaged_short = corpus.allow_loss &&
                                corpus.readers[s]->recovered() &&
                                held < expected;
    if (held != expected && !salvaged_short) {
      bad_manifest(corpus.manifest_path,
                   "segment " + manifest.shards[s].file + " holds " +
                       std::to_string(held) + " images, manifest says " +
                       std::to_string(expected));
    }
  }

  // Shards intern from one shared alphabet at different moments, so every
  // per-segment symbol list must be a prefix of the longest one; the
  // longest IS the master list.
  for (const auto& reader : corpus.readers) {
    if (reader->symbol_names().size() > corpus.symbols.size()) {
      corpus.symbols = reader->symbol_names();
    }
  }
  for (std::size_t s = 0; s < corpus.readers.size(); ++s) {
    const std::vector<std::string>& names = corpus.readers[s]->symbol_names();
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] != corpus.symbols[i]) {
        bad_manifest(corpus.manifest_path,
                     "segment " + manifest.shards[s].file +
                         " disagrees with the corpus alphabet at symbol " +
                         std::to_string(i));
      }
    }
  }
  return corpus;
}

// Walks records in GLOBAL id order: global id g lives at the next unread
// position of shard ring.shard_of(g). `install` receives each materialized
// record plus whether its segment tombstoned it; a cursor overrun means the
// manifest's ring parameters do not reproduce the writer's assignment.
template <typename Install>
void for_each_global(const open_corpus& corpus, const Install& install) {
  std::vector<std::size_t> cursor(corpus.manifest.shard_count, 0);
  for (std::uint64_t g = 0; g < corpus.manifest.images; ++g) {
    const std::size_t s = corpus.ring.shard_of(static_cast<image_id>(g));
    if (cursor[s] >= corpus.readers[s]->image_count()) {
      // A salvaged shard lost its tail: these globals are gone, skip them.
      if (corpus.allow_loss && corpus.readers[s]->recovered()) continue;
      bad_manifest(corpus.manifest_path,
                   "ring assignment does not match segment " +
                       corpus.manifest.shards[s].file);
    }
    const bool dead = corpus.readers[s]->image_tombstoned(cursor[s]);
    install(corpus.readers[s]->read_image(cursor[s]++), dead);
  }
  for (std::size_t s = 0; s < cursor.size(); ++s) {
    if (cursor[s] != corpus.readers[s]->image_count()) {
      bad_manifest(corpus.manifest_path,
                   "segment " + corpus.manifest.shards[s].file +
                       " holds records the ring never assigned to it");
    }
  }
}

}  // namespace

sharded_database load_sharded_corpus(const fs::path& path,
                                     segment_read_options options) {
  const open_corpus corpus = open_sharded(path, options);
  sharded_database db(corpus.manifest.shard_count,
                      corpus.manifest.ring_replicas);
  for (const std::string& name : corpus.symbols) db.symbols().intern(name);
  for_each_global(corpus, [&](segment_image record, bool dead) {
    const image_id global = db.add_encoded(
        std::move(record.name), std::move(record.image),
        std::move(record.strings), std::move(record.histograms));
    // Tombstones re-apply AFTER install so ids stay positional (the record
    // remains addressable, searches skip it — image_database::remove
    // semantics, sharded).
    if (dead) db.remove(global);
  });
  return db;
}

loaded_shard load_shard(const fs::path& path, std::size_t shard_index,
                        segment_read_options options) {
  const fs::path manifest_path = manifest_path_of(path);
  const shard_manifest manifest = read_shard_manifest(path);
  if (shard_index >= manifest.shard_count) {
    throw std::invalid_argument(
        "besdb: shard " + std::to_string(shard_index) + " out of range (" +
        std::to_string(manifest.shard_count) + " shards)");
  }
  const fs::path dir = manifest_path.parent_path();

  segment_reader reader(dir / manifest.shards[shard_index].file, options);
  const std::uint64_t held = reader.image_count();
  const std::uint64_t expected = manifest.shards[shard_index].images;
  const bool salvaged_short =
      options.recover_tail && reader.recovered() && held < expected;
  if (held != expected && !salvaged_short) {
    bad_manifest(manifest_path,
                 "segment " + manifest.shards[shard_index].file + " holds " +
                     std::to_string(held) + " images, manifest says " +
                     std::to_string(expected));
  }

  loaded_shard out;
  out.shard_index = shard_index;
  out.shard_count = manifest.shard_count;
  out.corpus_images = manifest.images;
  // The ring reproduces the writer's assignment: this shard holds exactly
  // the globals it hashes, in ascending order. A salvaged segment lost a
  // TAIL, so its records are the first `held` of that sequence.
  const shard_ring ring(manifest.shard_count, manifest.ring_replicas);
  out.global_ids.reserve(static_cast<std::size_t>(expected));
  for (std::uint64_t g = 0;
       g < manifest.images && out.global_ids.size() < held; ++g) {
    if (ring.shard_of(static_cast<image_id>(g)) == shard_index) {
      out.global_ids.push_back(static_cast<image_id>(g));
    }
  }
  if (out.global_ids.size() != held) {
    bad_manifest(manifest_path,
                 "ring assignment does not match segment " +
                     manifest.shards[shard_index].file);
  }

  // This shard's alphabet is a prefix of the corpus master (the shared-
  // alphabet streaming invariant); ids in it agree with every sibling, and
  // query symbols beyond it simply never match here.
  for (const std::string& name : reader.symbol_names()) {
    out.db.symbols().intern(name);
  }
  out.db.reserve(static_cast<std::size_t>(held));
  for (std::size_t i = 0; i < held; ++i) {
    segment_image record = reader.read_image(i);
    const image_id local = out.db.add_encoded(
        std::move(record.name), std::move(record.image),
        std::move(record.strings), std::move(record.histograms));
    // The segment's tombstone ordinals ARE local ids (both count type-2
    // records positionally), so deletes re-apply directly.
    if (reader.image_tombstoned(i)) out.db.remove(local);
  }
  return out;
}

image_database load_sharded_flat(const fs::path& path,
                                 segment_read_options options) {
  const open_corpus corpus = open_sharded(path, options);
  image_database db;
  for (const std::string& name : corpus.symbols) db.symbols().intern(name);
  db.reserve(static_cast<std::size_t>(corpus.manifest.images));
  for_each_global(corpus, [&](segment_image record, bool dead) {
    const image_id id = db.add_encoded(
        std::move(record.name), std::move(record.image),
        std::move(record.strings), std::move(record.histograms));
    if (dead) db.remove(id);
  });
  return db;
}

void save_sharded(const image_database& db, const fs::path& dir,
                  std::size_t shard_count, std::size_t ring_replicas) {
  shard_writer writer(dir, shard_count, ring_replicas);
  for (const db_record& rec : db.records()) writer.append(rec, db.symbols());
  writer.finish();
}

void reshard(const fs::path& src, const fs::path& dst,
             std::size_t new_shard_count, segment_read_options options) {
  if (fs::weakly_canonical(src) == fs::weakly_canonical(dst)) {
    throw std::runtime_error(
        "besdb: reshard needs a destination different from the source");
  }
  const open_corpus corpus = open_sharded(src, options);
  alphabet symbols;
  for (const std::string& name : corpus.symbols) symbols.intern(name);
  shard_writer writer(dst, new_shard_count, corpus.manifest.ring_replicas);
  for_each_global(corpus, [&](segment_image record, bool dead) {
    // A non-zero removed_at makes the new shard's segment_writer queue a
    // tombstone for this record's NEW ordinal, so deletes survive the
    // reshard while global ids stay positional.
    const db_record rec{0, std::move(record.name), std::move(record.image),
                        std::move(record.strings),
                        std::move(record.histograms),
                        dead ? std::uint64_t{1} : std::uint64_t{0}};
    writer.append(rec, symbols);
  });
  writer.finish();
}

}  // namespace bes
