// The candidate-scan engine shared by db/query.cpp (one database) and
// db/shard.cpp (fan-out/merge over shard partitions). Internal: the stable
// user-facing entry points are search()/search_batch() in db/query.hpp and
// their sharded overloads in db/shard.hpp; everything here may change shape
// as the sharding layer grows toward cross-process partitions.
//
// The sharded scan keeps the unsharded admissibility argument intact by
// sharing ONE running top-k across every scan of a query: shard scans (like
// PR 2's worker threads) insert into the same shared_topk, whose k-th score
// only grows and is served to the hot pruning checks from a lock-free
// atomic cache. A candidate pruned at max(min_score, cached k-th) provably
// has >= k strictly better rivals across the union of shards, so dropping
// it cannot change the merged result — the same argument that makes the
// single-database pruned scan identical to the exhaustive one. (A per-shard
// heap would NOT work: it defends k results per shard, so its threshold is
// only the k-th best of one partition — measurably weaker pruning the more
// shards there are.)
#pragma once

#include <algorithm>
#include <atomic>
#include <functional>
#include <mutex>

#include "db/database.hpp"
#include "db/query.hpp"
#include "lcs/similarity.hpp"

namespace bes::detail {

// Strict total order on results: score descending, id ascending. Ids are
// unique within a scan, so there are no equal elements to destabilize
// top-k eviction.
[[nodiscard]] bool result_better(const query_result& a,
                                 const query_result& b) noexcept;

// min_score filter + sort by result_better + top_k truncation.
[[nodiscard]] std::vector<query_result> rank_results(
    std::vector<query_result> hits, const query_options& options);

// Whether the histogram pruner engages for these options (needs a threshold
// to defend and is bypassed by transform-invariant scans).
[[nodiscard]] bool pruning_applies(const query_options& options);

// Candidate ids for an index/full scan over one database (flat or one
// shard): the inverted-index hits when the index engages, else every record
// id — answered through the access-path interface (db/access_path.hpp), and
// shared so the flat and sharded paths can never diverge on
// index-engagement rules. `generated` (if non-null) receives the raw
// pre-dedup hit count (search_stats::candidates_generated). Defined in
// access_path.cpp.
[[nodiscard]] std::vector<image_id> scan_ids(
    const image_database& db, std::span<const symbol_id> query_symbols,
    const query_options& options, std::size_t* generated = nullptr);

// Drives `run_one(i, per_query_options)` over every query of a batch on
// parallel_for's dynamic queue (chunk 1: a worker claims ONE query at a
// time), splitting the thread budget between query-level and
// candidate-level parallelism. Shared by the flat batch entry points and
// the planned batches (db/planner.cpp); results are identical to a serial
// loop because every scan is thread-count-invariant by construction.
void for_each_query(
    std::size_t count, const query_options& options,
    const std::function<void(std::size_t, const query_options&)>& run_one);

// Precomputed per-query scan state for a batch: the pruner histograms when
// pruning engages, the 8 dihedral query variants when transform-invariant
// (each left empty otherwise). Computed once per query up front, in
// parallel across the batch — shared by the flat and sharded batch paths.
struct query_plan {
  be_histogram2d histograms;
  query_transforms transforms;
};
[[nodiscard]] std::vector<query_plan> make_plans(
    std::span<const be_string2d> queries, const query_options& options);

// Encoded strings and distinct symbols for a batch of symbolic queries,
// computed in parallel across the batch — shared by the flat and sharded
// search_batch overloads.
struct encoded_queries {
  std::vector<be_string2d> strings;
  std::vector<std::vector<symbol_id>> symbols;
};
[[nodiscard]] encoded_queries encode_queries(
    std::span<const symbolic_image> queries, unsigned threads);

// The running top-k shared by every worker of a scan — and, in a fan-out,
// by every shard scan of a query. The heap lives under a mutex, but the
// k-th score (the pruning threshold) is mirrored into an atomic on every
// insert that keeps the heap full, so the per-candidate threshold() read
// on the hot path never takes the lock. The k-th score only grows as
// candidates are inserted, so reading the cache at any moment yields an
// admissible threshold: a candidate provably below it can never enter the
// FINAL top-k either.
class shared_topk {
 public:
  // capacity == 0 means unlimited (min_score is then the only threshold).
  shared_topk(std::size_t capacity, double min_score);

  // max(min_score, current cached k-th score, remote floor); lock-free.
  [[nodiscard]] double threshold() const noexcept {
    return std::max({min_score_, kth_.load(std::memory_order_relaxed),
                     floor_.load(std::memory_order_relaxed)});
  }

  // Raises the external pruning floor (never lowers it) — the remote
  // threshold-gossip entry point (src/net): a coordinator that already
  // holds k results scoring >= f may broadcast f to in-flight shard scans,
  // because any candidate below f provably has >= k better rivals
  // somewhere in the union of shards. Lock-free; safe to call concurrently
  // with scans reading threshold(). Callers own admissibility: an
  // inadmissible floor silently changes results.
  void raise_floor(double f) noexcept;

  void insert(const query_result& r);

  // The held results, sorted by result_better. Call once, after all
  // inserting scans have finished.
  [[nodiscard]] std::vector<query_result> take();

 private:
  mutable std::mutex mutex_;
  std::vector<query_result> top_;  // kept sorted by result_better()
  std::size_t capacity_;
  double min_score_;
  // Cached k-th score; only meaningful once the heap is full. Starts at
  // min_score so threshold() is min_score until then.
  std::atomic<double> kth_;
  // Externally gossiped pruning floor (raise_floor); starts at min_score.
  std::atomic<double> floor_;
};

// Maps scan-local record ids to the ids reported in results. Default-
// constructed = identity (the unsharded scan). `flat` serves a loaded,
// static mapping (the shard server); `chunked` serves a live sharded part
// whose mapping grows under concurrent adds — chunked storage never moves,
// so the read is safe mid-ingest where a reallocating span would not be.
struct id_map {
  std::span<const image_id> flat{};
  const stable_vector<image_id>* chunked = nullptr;

  [[nodiscard]] image_id operator()(image_id local) const noexcept {
    if (chunked != nullptr) return (*chunked)[local];
    return flat.empty() ? local : flat[local];
  }
};

// One shard-local scan: scores `ids` (record ids local to `db`) under
// `options`.
//
// `globals` maps local record ids to the ids reported in results (and used
// for top-k tie-breaks); pass {} for identity (the unsharded scan).
// `histograms`/`transforms` are optional precomputed per-query state
// (search_batch amortizes them across scans); null means compute on demand.
// `stats` (if non-null) is overwritten with this scan's accounting
// (scanned == scored + pruned).
//
// `snap` pins the scan to a database snapshot; null means "capture
// db.snapshot() now". Candidates not yet visible in the snapshot are
// dropped before the scan (they do not exist in that view, so they are not
// scanned); tombstoned candidates count as scanned AND pruned — never
// scored. When the snapshot is all-live the filter is skipped outright and
// the scan is byte-identical to the pre-ingest engine.
//
// `shared` is the query's cross-scan top-k, or null for a lone scan. When
// null (or when the scan is exhaustive — no threshold to share), the
// return value is this scan's ranked result: min_score-filtered, sorted,
// truncated to top_k, ready to merge by concatenation + re-rank. When
// `shared` is non-null and the pruner engages, survivors go into `shared`
// instead and the return value is EMPTY — the caller takes the shared heap
// once, after every scan of the query finished.
[[nodiscard]] std::vector<query_result> scan_shard(
    const image_database& db, const be_string2d& query_strings,
    std::span<const image_id> ids, id_map globals,
    const be_histogram2d* histograms, const query_transforms* transforms,
    const query_options& options, shared_topk* shared, search_stats* stats,
    const db_snapshot* snap = nullptr);

}  // namespace bes::detail
