#include "db/compaction.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "db/shard_storage.hpp"

namespace bes {

namespace {

namespace fs = std::filesystem;

// `dir` as callers spell it may carry a trailing slash or name the manifest
// file; the rename-aside dance needs the directory itself.
fs::path corpus_directory(fs::path path) {
  if (path.filename().empty()) path = path.parent_path();
  // Only a manifest FILE resolves to its parent; a missing directory stays
  // as-is (repair must still find its .compact-tmp/.compact-old siblings
  // when a crash left no corpus at all).
  std::error_code ec;
  if (fs::is_regular_file(path, ec) && path.has_parent_path()) {
    path = path.parent_path();
  }
  return path;
}

fs::path sibling(const fs::path& corpus, const char* suffix) {
  return corpus.parent_path() / (corpus.filename().string() + suffix);
}

std::uintmax_t directory_bytes(const fs::path& dir) {
  std::uintmax_t total = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) total += entry.file_size();
  }
  return total;
}

// The live subset of `db`, re-densified: live records keep their relative
// order but renumber from zero, and no tombstone survives.
image_database fold_tombstones(const image_database& db) {
  image_database out;
  for (const std::string& name : db.symbols().names()) {
    out.symbols().intern(name);
  }
  out.reserve(db.live_size(), db.symbols().size());
  for (const db_record& rec : db.records()) {
    if (rec.removed_at != 0) continue;
    out.add_encoded(rec.name, rec.image, rec.strings, rec.histograms);
  }
  return out;
}

}  // namespace

compaction_stats compact_segment(const fs::path& path, const fs::path& out,
                                 segment_read_options options) {
  const fs::path target = out.empty() ? path : out;
  compaction_stats stats;
  stats.bytes_before = fs::file_size(path);

  const segment_reader reader(path, options);
  stats.recovered = reader.recovered();
  const image_database db = materialize_segment(reader);
  stats.records_before = db.size();
  stats.tombstones_folded = db.tombstone_count();
  stats.records_after = db.live_size();

  // Full tmp write, then ONE rename: a crash leaves either the old segment
  // or the new one on disk, never a torn mix.
  fs::path tmp = target;
  tmp += ".compact-tmp";
  if (db.tombstone_count() == 0) {
    save_segment(db, tmp);
  } else {
    save_segment(fold_tombstones(db), tmp);
  }
  fs::rename(tmp, target);

  stats.bytes_after = fs::file_size(target);
  stats.compacted = true;
  return stats;
}

corpus_usage read_corpus_usage(const fs::path& dir,
                               segment_read_options options) {
  const fs::path corpus = corpus_directory(dir);
  const shard_manifest manifest = read_shard_manifest(corpus);
  corpus_usage usage;
  for (const shard_manifest_entry& entry : manifest.shards) {
    const segment_reader reader(corpus / entry.file, options);
    usage.records += reader.image_count();
    usage.tombstones += reader.tombstones().size();
  }
  return usage;
}

bool should_compact(const corpus_usage& usage,
                    const maintenance_policy& policy) noexcept {
  if (usage.tombstones < policy.min_tombstones) return false;
  return usage.dead_fraction() >= policy.max_dead_fraction;
}

compaction_stats maybe_compact_corpus(const fs::path& dir,
                                      maintenance_policy maintenance,
                                      compaction_policy policy,
                                      segment_read_options options) {
  const fs::path corpus = corpus_directory(dir);
  repair_compaction(corpus);

  const corpus_usage usage = read_corpus_usage(corpus, options);
  if (!should_compact(usage, maintenance)) {
    const shard_manifest manifest = read_shard_manifest(corpus);
    compaction_stats stats;
    stats.records_before = usage.records;
    stats.records_after = usage.records;
    // Matches compact_corpus' own skip path: the count OBSERVED, with
    // compacted == false saying none were actually folded.
    stats.tombstones_folded = usage.tombstones;
    stats.bytes_before = directory_bytes(corpus);
    stats.bytes_after = stats.bytes_before;
    stats.shards_before = manifest.shard_count;
    stats.shards_after = manifest.shard_count;
    return stats;  // compacted == false: policy said leave it alone
  }
  // Maintenance made the go/no-go call; compact_corpus must not veto it on
  // its own fraction knob.
  policy.min_dead_fraction = 0.0;
  return compact_corpus(corpus, policy, options);
}

bool repair_compaction(const fs::path& dir) {
  const fs::path corpus = corpus_directory(dir);
  const fs::path tmp = sibling(corpus, ".compact-tmp");
  const fs::path old = sibling(corpus, ".compact-old");
  std::error_code ec;
  const bool has_tmp = fs::exists(tmp, ec);
  const bool has_old = fs::exists(old, ec);
  const bool has_dir = fs::exists(corpus, ec);
  if (!has_tmp && !has_old) return false;

  // The SCRP1 manifest is the last thing shard_writer::finish writes, so a
  // CRC-valid manifest in tmp means the rewrite ran to completion and the
  // crash hit somewhere in the swap: roll forward. No manifest = the
  // rewrite itself was torn: roll back (the source was never touched).
  bool tmp_complete = false;
  if (has_tmp) {
    try {
      (void)read_shard_manifest(tmp);
      tmp_complete = true;
    } catch (...) {  // NOLINT(bugprone-empty-catch)
      // Torn tmp corpus; handled below.
    }
  }

  if (!has_dir) {
    // Crash mid-swap: the source is parked at .compact-old.
    if (tmp_complete) {
      fs::rename(tmp, corpus);
      fs::remove_all(old);
      return true;
    }
    if (has_old) {
      fs::rename(old, corpus);
      fs::remove_all(tmp);
      return true;
    }
    throw std::runtime_error(
        "besdb: interrupted compaction left no usable corpus at " +
        corpus.string());
  }
  if (tmp_complete) {
    fs::remove_all(old);  // a stale parked copy from an even earlier run
    fs::rename(corpus, old);
    fs::rename(tmp, corpus);
    fs::remove_all(old);
    return true;
  }
  // A torn tmp and/or a leftover parked copy beside a live corpus: the
  // source is authoritative, discard the debris.
  fs::remove_all(tmp);
  fs::remove_all(old);
  return true;
}

compaction_stats compact_corpus(const fs::path& dir, compaction_policy policy,
                                segment_read_options options) {
  const fs::path corpus = corpus_directory(dir);
  repair_compaction(corpus);

  const shard_manifest manifest = read_shard_manifest(corpus);
  compaction_stats stats;
  stats.shards_before = manifest.shard_count;
  stats.shards_after = manifest.shard_count;
  stats.records_before = manifest.images;
  stats.bytes_before = directory_bytes(corpus);

  // A torn segment only surfaces through recover_tail (a strict open of a
  // torn corpus throws before reaching here); probe each shard's reader so
  // "recovered" reflects dropped FOOTERS too, not just lost records.
  if (options.recover_tail) {
    for (const shard_manifest_entry& entry : manifest.shards) {
      const segment_reader probe(corpus / entry.file, options);
      if (probe.recovered()) {
        stats.recovered = true;
        break;
      }
    }
  }

  image_database flat = load_sharded_flat(corpus, options);
  stats.tombstones_folded = flat.tombstone_count();
  const std::uint64_t live = flat.live_size();
  if (flat.size() < manifest.images) stats.recovered = true;

  std::size_t shards_after = manifest.shard_count;
  if (policy.min_live_per_shard > 0) {
    const std::uint64_t fit = live / policy.min_live_per_shard;
    shards_after = static_cast<std::size_t>(std::clamp<std::uint64_t>(
        fit, 1, static_cast<std::uint64_t>(manifest.shard_count)));
  }
  stats.shards_after = shards_after;

  const double dead_fraction =
      flat.size() == 0 ? 0.0
                       : static_cast<double>(stats.tombstones_folded) /
                             static_cast<double>(flat.size());
  const bool fold_worth = stats.tombstones_folded > 0 &&
                          dead_fraction >= policy.min_dead_fraction;
  if (!fold_worth && !stats.recovered &&
      shards_after == manifest.shard_count) {
    // Nothing to reclaim (or not enough to bother): leave the corpus alone.
    stats.records_after = flat.size();
    stats.bytes_after = stats.bytes_before;
    return stats;
  }
  stats.records_after = live;

  const fs::path tmp = sibling(corpus, ".compact-tmp");
  const fs::path old = sibling(corpus, ".compact-old");
  fs::remove_all(tmp);
  if (flat.tombstone_count() == 0) {
    save_sharded(flat, tmp, shards_after, manifest.ring_replicas);
  } else {
    save_sharded(fold_tombstones(flat), tmp, shards_after,
                 manifest.ring_replicas);
  }
  // The swap. Every intermediate state here is one repair_compaction call
  // away from a loadable corpus: tmp is complete (its manifest just
  // landed), so any crash from now on rolls forward.
  fs::rename(corpus, old);
  fs::rename(tmp, corpus);
  fs::remove_all(old);

  stats.bytes_after = directory_bytes(corpus);
  stats.compacted = true;
  return stats;
}

}  // namespace bes
