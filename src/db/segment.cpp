#include "db/segment.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <utility>

#include "util/checksum.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define BES_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace bes {

namespace {

constexpr char file_magic[6] = {'B', 'S', 'E', 'G', '1', '\n'};
constexpr char tail_magic[8] = {'B', 'S', 'E', 'G', 'F', 'T', 'R', '\n'};
constexpr std::uint8_t format_version = 1;
constexpr std::size_t header_bytes = 8;
constexpr std::size_t record_header_bytes = 16;
constexpr std::size_t tail_bytes = 16;
constexpr std::uint32_t dummy_token = 0xFFFFFFFFu;

enum record_type : std::uint32_t {
  rec_symbol_delta = 1,
  rec_image = 2,
  rec_footer = 3,
  rec_tombstone = 4,
};

constexpr std::uint8_t endian_marker() {
  return std::endian::native == std::endian::little ? 0x01 : 0x02;
}

[[noreturn]] void bad_segment(const std::filesystem::path& path,
                              const std::string& detail) {
  throw std::runtime_error("besdb: bad segment " + path.string() + ": " +
                           detail);
}

// ------------------------------------------------------------- serialization

template <typename T>
void put(std::string& out, T value) {
  char raw[sizeof(T)];
  std::memcpy(raw, &value, sizeof(T));
  out.append(raw, sizeof(T));
}

void put_bytes(std::string& out, const std::string& bytes) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(bytes.size()));
  out.append(bytes);
}

std::uint32_t pack_token(token t) {
  if (t.is_dummy()) return dummy_token;
  const auto symbol = static_cast<std::uint32_t>(t.symbol());
  if (symbol >= (dummy_token >> 1)) {
    throw std::runtime_error("besdb: symbol id too large for segment format");
  }
  return (symbol << 1) |
         static_cast<std::uint32_t>(t.kind() == boundary_kind::end);
}

void put_axis(std::string& out, const axis_string& axis) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(axis.size()));
  for (token t : axis.tokens()) put<std::uint32_t>(out, pack_token(t));
}

void put_histogram(std::string& out, const token_histogram& histogram) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(
                              histogram.buckets().size()));
  for (const token_histogram::bucket& b : histogram.buckets()) {
    put<std::uint32_t>(out, pack_token(b.value));
    put<std::uint32_t>(out, b.count);
  }
}

// A bounds-checked read cursor over one record payload.
struct cursor {
  const std::byte* data;
  std::size_t size;
  std::size_t pos = 0;
  const std::filesystem::path* path;

  template <typename T>
  T get() {
    if (size - pos < sizeof(T)) {
      bad_segment(*path, "record payload underruns a field");
    }
    T value;
    std::memcpy(&value, data + pos, sizeof(T));
    pos += sizeof(T);
    return value;
  }

  std::string get_bytes() {
    const auto n = get<std::uint32_t>();
    if (size - pos < n) bad_segment(*path, "record payload underruns a string");
    std::string out(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return out;
  }

  void expect_end() const {
    if (pos != size) bad_segment(*path, "trailing bytes in record payload");
  }
};

token unpack_token(std::uint32_t value, std::size_t symbol_count,
                   const std::filesystem::path& path) {
  if (value == dummy_token) return token::dummy();
  const symbol_id symbol = value >> 1;
  if (symbol >= symbol_count) {
    bad_segment(path, "token references unknown symbol id");
  }
  return token::boundary(
      symbol, (value & 1u) ? boundary_kind::end : boundary_kind::begin);
}

axis_string get_axis(cursor& in, std::size_t symbol_count) {
  const auto count = in.get<std::uint32_t>();
  std::vector<token> tokens;
  tokens.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    tokens.push_back(unpack_token(in.get<std::uint32_t>(), symbol_count,
                                  *in.path));
  }
  return axis_string(std::move(tokens));
}

token_histogram get_histogram(cursor& in, std::size_t symbol_count) {
  const auto count = in.get<std::uint32_t>();
  std::vector<token_histogram::bucket> buckets;
  buckets.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const token value =
        unpack_token(in.get<std::uint32_t>(), symbol_count, *in.path);
    buckets.push_back(
        token_histogram::bucket{value, in.get<std::uint32_t>()});
  }
  return token_histogram::from_buckets(std::move(buckets));
}

// -------------------------------------------------------------- file mapping

// Read-only view of a whole file: mmap where available, a heap buffer
// elsewhere, so the reader stays portable without new dependencies.
struct file_mapping {
  const std::byte* data = nullptr;
  std::size_t size = 0;

  explicit file_mapping(const std::filesystem::path& path) {
#if defined(BES_HAVE_MMAP)
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      throw std::runtime_error("besdb: cannot open " + path.string());
    }
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      throw std::runtime_error("besdb: cannot stat " + path.string());
    }
    size = static_cast<std::size_t>(st.st_size);
    if (size > 0) {
      void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      if (mapped == MAP_FAILED) {
        ::close(fd);
        throw std::runtime_error("besdb: cannot mmap " + path.string());
      }
      data = static_cast<const std::byte*>(mapped);
    }
    ::close(fd);
#else
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("besdb: cannot open " + path.string());
    in.seekg(0, std::ios::end);
    buffer_.resize(static_cast<std::size_t>(in.tellg()));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(buffer_.data()),
            static_cast<std::streamsize>(buffer_.size()));
    if (!in) throw std::runtime_error("besdb: cannot read " + path.string());
    data = buffer_.data();
    size = buffer_.size();
#endif
  }

  ~file_mapping() {
#if defined(BES_HAVE_MMAP)
    if (data != nullptr) {
      ::munmap(const_cast<std::byte*>(data), size);
    }
#endif
  }

  file_mapping(const file_mapping&) = delete;
  file_mapping& operator=(const file_mapping&) = delete;

#if !defined(BES_HAVE_MMAP)
 private:
  std::vector<std::byte> buffer_;
#endif
};

// ------------------------------------------------------------ record headers

struct record_header {
  std::uint32_t type = 0;
  std::uint32_t payload_bytes = 0;
  std::uint32_t payload_crc = 0;
};

std::string encode_record_header(const record_header& h) {
  std::string out;
  put<std::uint32_t>(out, h.type);
  put<std::uint32_t>(out, h.payload_bytes);
  put<std::uint32_t>(out, h.payload_crc);
  put<std::uint32_t>(out, crc32(out.data(), out.size()));
  return out;
}

// Decodes and CRC-verifies the 16-byte record header at `offset`; returns
// nothing on a bad header CRC so the recovery scan can stop instead of throw.
bool decode_record_header(const std::byte* data, std::uint64_t offset,
                          record_header& out) {
  std::uint32_t header_crc = 0;
  std::memcpy(&out.type, data + offset, 4);
  std::memcpy(&out.payload_bytes, data + offset + 4, 4);
  std::memcpy(&out.payload_crc, data + offset + 8, 4);
  std::memcpy(&header_crc, data + offset + 12, 4);
  return crc32(data + offset, 12) == header_crc;
}

// ----------------------------------------------------------- segment layout

// The parsed structural view of a mapped segment: where every record lives,
// which are images, and the full interned symbol list. Shared between the
// reader and the writer's append mode.
struct segment_layout {
  std::vector<std::uint64_t> offsets;        // every non-footer record
  std::vector<std::uint64_t> image_offsets;  // type-2 records, in order
  std::vector<std::uint64_t> tombstones;     // image ordinals; sorted post-parse
  std::vector<std::string> symbols;
  std::uint64_t data_end = header_bytes;  // where the footer record begins
  std::uint64_t image_count = 0;
  bool recovered = false;
};

void check_file_header(const file_mapping& map,
                       const std::filesystem::path& path) {
  if (map.size < header_bytes) bad_segment(path, "truncated file header");
  if (std::memcmp(map.data, file_magic, sizeof(file_magic)) != 0) {
    bad_segment(path, "bad magic");
  }
  const auto version = static_cast<std::uint8_t>(map.data[6]);
  const auto endian = static_cast<std::uint8_t>(map.data[7]);
  if (version != format_version) {
    bad_segment(path, "unsupported version " + std::to_string(version));
  }
  if (endian != endian_marker()) bad_segment(path, "endianness mismatch");
}

void parse_symbol_delta(const file_mapping& map, std::uint64_t offset,
                        const record_header& header,
                        const std::filesystem::path& path,
                        std::vector<std::string>& symbols) {
  cursor in{map.data + offset + record_header_bytes, header.payload_bytes, 0,
            &path};
  const auto count = in.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < count; ++i) symbols.push_back(in.get_bytes());
  in.expect_end();
}

// Decodes one tombstone payload. Append-only causality: every ordinal must
// reference an image record already seen at this point in the walk
// (`images_so_far`), so a tombstone can never point forward.
std::vector<std::uint64_t> parse_tombstone(const file_mapping& map,
                                           std::uint64_t offset,
                                           const record_header& header,
                                           const std::filesystem::path& path,
                                           std::uint64_t images_so_far) {
  cursor in{map.data + offset + record_header_bytes, header.payload_bytes, 0,
            &path};
  const auto count = in.get<std::uint64_t>();
  if (header.payload_bytes != 8 + count * 8) {
    bad_segment(path, "tombstone record size mismatch");
  }
  std::vector<std::uint64_t> ordinals;
  ordinals.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto ordinal = in.get<std::uint64_t>();
    if (ordinal >= images_so_far) {
      bad_segment(path, "tombstone references an image not yet written");
    }
    ordinals.push_back(ordinal);
  }
  in.expect_end();
  return ordinals;
}

// Post-walk tombstone normalization shared by both parsers: sorted, unique.
void finish_tombstones(segment_layout& layout,
                       const std::filesystem::path& path) {
  std::sort(layout.tombstones.begin(), layout.tombstones.end());
  if (std::adjacent_find(layout.tombstones.begin(),
                         layout.tombstones.end()) !=
      layout.tombstones.end()) {
    bad_segment(path, "duplicate tombstone ordinal");
  }
}

// Strict parse: the footer tail and index are authoritative and every
// structural invariant (contiguity, counts, CRCs of the header/delta/footer
// records) must hold. Image payload CRCs are deferred to read_image so a
// lazy reader never touches payloads it does not need.
segment_layout parse_strict(const file_mapping& map,
                            const std::filesystem::path& path) {
  check_file_header(map, path);
  const std::uint64_t min_size = header_bytes + record_header_bytes + 24 +
                                 tail_bytes;
  if (map.size < min_size) bad_segment(path, "truncated segment");
  const std::uint64_t tail_at = map.size - tail_bytes;
  if (std::memcmp(map.data + tail_at + 8, tail_magic, sizeof(tail_magic)) !=
      0) {
    bad_segment(path, "missing footer tail (truncated or unfinished write)");
  }
  std::uint64_t footer_at = 0;
  std::memcpy(&footer_at, map.data + tail_at, 8);
  // Subtraction form: the tail has no CRC of its own, so footer_at is
  // attacker/corruption-controlled and the additive comparison could wrap.
  if (footer_at < header_bytes || footer_at > tail_at ||
      tail_at - footer_at < record_header_bytes + 24) {
    bad_segment(path, "footer offset out of range");
  }

  record_header footer;
  if (!decode_record_header(map.data, footer_at, footer)) {
    bad_segment(path, "footer record header corrupt");
  }
  if (footer.type != rec_footer) bad_segment(path, "footer record wrong type");
  if (footer_at + record_header_bytes + footer.payload_bytes != tail_at) {
    bad_segment(path, "footer does not reach the tail");
  }
  const std::byte* footer_payload = map.data + footer_at + record_header_bytes;
  if (crc32(footer_payload, footer.payload_bytes) != footer.payload_crc) {
    bad_segment(path, "footer payload corrupt");
  }

  segment_layout layout;
  layout.data_end = footer_at;
  cursor in{footer_payload, footer.payload_bytes, 0, &path};
  layout.image_count = in.get<std::uint64_t>();
  const auto symbol_count = in.get<std::uint64_t>();
  const auto record_count = in.get<std::uint64_t>();
  // Divide instead of multiply: a crafted record_count must not wrap the
  // size check and reach the reserve() below as a giant allocation.
  if ((footer.payload_bytes - 24) % 8 != 0 ||
      record_count != (footer.payload_bytes - 24) / 8) {
    bad_segment(path, "footer index size mismatch");
  }
  layout.offsets.reserve(record_count);
  for (std::uint64_t i = 0; i < record_count; ++i) {
    layout.offsets.push_back(in.get<std::uint64_t>());
  }
  in.expect_end();

  // Walk the index: records must tile [header, footer) exactly.
  std::uint64_t expected = header_bytes;
  for (std::uint64_t offset : layout.offsets) {
    if (offset != expected) bad_segment(path, "footer index is not contiguous");
    if (offset + record_header_bytes > footer_at) {
      bad_segment(path, "record overruns the footer");
    }
    record_header header;
    if (!decode_record_header(map.data, offset, header)) {
      bad_segment(path, "record header corrupt");
    }
    if (offset + record_header_bytes + header.payload_bytes > footer_at) {
      bad_segment(path, "record payload overruns the footer");
    }
    if (header.type == rec_image) {
      layout.image_offsets.push_back(offset);
    } else if (header.type == rec_symbol_delta) {
      const std::byte* payload = map.data + offset + record_header_bytes;
      if (crc32(payload, header.payload_bytes) != header.payload_crc) {
        bad_segment(path, "symbol delta corrupt");
      }
      parse_symbol_delta(map, offset, header, path, layout.symbols);
    } else if (header.type == rec_tombstone) {
      // Eager CRC: tombstones change which images are live, so a corrupt
      // one must fail the whole load, not lurk until some later read.
      const std::byte* payload = map.data + offset + record_header_bytes;
      if (crc32(payload, header.payload_bytes) != header.payload_crc) {
        bad_segment(path, "tombstone record corrupt");
      }
      const std::vector<std::uint64_t> ordinals = parse_tombstone(
          map, offset, header, path, layout.image_offsets.size());
      layout.tombstones.insert(layout.tombstones.end(), ordinals.begin(),
                               ordinals.end());
    } else {
      bad_segment(path, "unexpected record type in index");
    }
    expected = offset + record_header_bytes + header.payload_bytes;
  }
  if (expected != footer_at) bad_segment(path, "records do not reach footer");
  if (layout.image_offsets.size() != layout.image_count) {
    bad_segment(path, "footer image count mismatch");
  }
  if (layout.symbols.size() != symbol_count) {
    bad_segment(path, "footer symbol count mismatch");
  }
  finish_tombstones(layout, path);
  return layout;
}

// Recovery scan: ignore the footer, walk records from the top, and keep the
// longest CRC-valid prefix. Used when a crash or truncation lost the tail;
// everything recovered is still checksum-verified.
segment_layout parse_recover(const file_mapping& map,
                             const std::filesystem::path& path) {
  check_file_header(map, path);
  segment_layout layout;
  layout.recovered = true;
  std::uint64_t pos = header_bytes;
  while (pos + record_header_bytes <= map.size) {
    record_header header;
    if (!decode_record_header(map.data, pos, header)) break;
    if (pos + record_header_bytes + header.payload_bytes > map.size) break;
    const std::byte* payload = map.data + pos + record_header_bytes;
    if (crc32(payload, header.payload_bytes) != header.payload_crc) break;
    if (header.type == rec_footer) break;  // a valid footer ends the data
    if (header.type == rec_symbol_delta) {
      try {
        parse_symbol_delta(map, pos, header, path, layout.symbols);
      } catch (const std::runtime_error&) {
        break;
      }
    } else if (header.type == rec_image) {
      layout.image_offsets.push_back(pos);
    } else if (header.type == rec_tombstone) {
      // All-or-nothing per record: a tombstone that fails validation drops
      // the prefix HERE, applying none of its ordinals.
      try {
        const std::vector<std::uint64_t> ordinals = parse_tombstone(
            map, pos, header, path, layout.image_offsets.size());
        layout.tombstones.insert(layout.tombstones.end(), ordinals.begin(),
                                 ordinals.end());
      } catch (const std::runtime_error&) {
        break;
      }
    } else {
      break;
    }
    layout.offsets.push_back(pos);
    pos += record_header_bytes + header.payload_bytes;
  }
  layout.data_end = pos;
  layout.image_count = layout.image_offsets.size();
  finish_tombstones(layout, path);
  return layout;
}

segment_layout parse_layout(const file_mapping& map,
                            const std::filesystem::path& path,
                            const segment_read_options& options) {
  if (!options.recover_tail) return parse_strict(map, path);
  try {
    return parse_strict(map, path);
  } catch (const std::runtime_error&) {
    return parse_recover(map, path);
  }
}

}  // namespace

// ----------------------------------------------------------- strings_checksum

std::uint32_t strings_checksum(const be_string2d& strings) {
  std::string packed;
  put_axis(packed, strings.x);
  put_axis(packed, strings.y);
  return crc32(packed.data(), packed.size());
}

// ---------------------------------------------------------------- writer

segment_writer::segment_writer(const std::filesystem::path& path, bool append,
                               segment_read_options options)
    : path_(path) {
  if (append) {
    segment_layout layout;
    {
      const file_mapping map(path_);
      layout = parse_layout(map, path_, options);
    }
    offsets_ = std::move(layout.offsets);
    symbols_written_ = layout.symbols.size();
    images_ = layout.image_count;
    tombstoned_.insert(layout.tombstones.begin(), layout.tombstones.end());
    pos_ = layout.data_end;
    // Drop the old footer + tail — and, after a recover_tail parse, every
    // torn byte past the valid prefix: the truncation is physical, so no
    // later strict reopen can resurrect a record this writer rejected.
    std::filesystem::resize_file(path_, pos_);
    out_.open(path_, std::ios::binary | std::ios::app);
    if (!out_) {
      throw std::runtime_error("besdb: cannot reopen " + path_.string());
    }
  } else {
    out_.open(path_, std::ios::binary | std::ios::trunc);
    if (!out_) {
      throw std::runtime_error("besdb: cannot write " + path_.string());
    }
    out_.write(file_magic, sizeof(file_magic));
    out_.put(static_cast<char>(format_version));
    out_.put(static_cast<char>(endian_marker()));
    pos_ = header_bytes;
  }
}

segment_writer::~segment_writer() {
  if (!finished_) {
    try {
      finish();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
      // Destructors must not throw; call finish() explicitly to observe
      // write failures.
    }
  }
}

void segment_writer::flush() {
  out_.flush();
  if (!out_) {
    throw std::runtime_error("segment_writer: flush failed: " +
                             path_.string());
  }
}

void segment_writer::write_record(std::uint32_t type,
                                  const std::string& payload) {
  record_header header;
  header.type = type;
  header.payload_bytes = static_cast<std::uint32_t>(payload.size());
  header.payload_crc = crc32(payload.data(), payload.size());
  const std::string raw = encode_record_header(header);
  out_.write(raw.data(), static_cast<std::streamsize>(raw.size()));
  out_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  pos_ += record_header_bytes + payload.size();
}

void segment_writer::append(const db_record& rec, const alphabet& symbols) {
  if (finished_) {
    throw std::runtime_error("besdb: append after finish on " + path_.string());
  }
  if (symbols.size() < symbols_written_) {
    throw std::runtime_error("besdb: alphabet shrank while writing " +
                             path_.string());
  }
  if (symbols.size() > symbols_written_) {
    std::string delta;
    put<std::uint32_t>(delta, static_cast<std::uint32_t>(symbols.size() -
                                                         symbols_written_));
    for (std::size_t i = symbols_written_; i < symbols.size(); ++i) {
      put_bytes(delta, symbols.names()[i]);
    }
    offsets_.push_back(pos_);
    write_record(rec_symbol_delta, delta);
    symbols_written_ = symbols.size();
  }

  std::string payload;
  put_bytes(payload, rec.name);
  put<std::int32_t>(payload, rec.image.width());
  put<std::int32_t>(payload, rec.image.height());
  put<std::uint32_t>(payload, static_cast<std::uint32_t>(rec.image.size()));
  for (const icon& obj : rec.image.icons()) {
    if (obj.symbol >= symbols_written_) {
      throw std::runtime_error("besdb: icon references an uninterned symbol");
    }
    put<std::uint32_t>(payload, obj.symbol);
    put<std::int32_t>(payload, obj.mbr.x.lo);
    put<std::int32_t>(payload, obj.mbr.x.hi);
    put<std::int32_t>(payload, obj.mbr.y.lo);
    put<std::int32_t>(payload, obj.mbr.y.hi);
  }
  put_axis(payload, rec.strings.x);
  put_axis(payload, rec.strings.y);
  put_histogram(payload, rec.histograms.x);
  put_histogram(payload, rec.histograms.y);
  offsets_.push_back(pos_);
  write_record(rec_image, payload);
  ++images_;
  if (rec.removed_at != 0) pending_tombstones_.push_back(images_ - 1);
  if (!out_) {
    throw std::runtime_error("besdb: write failed for " + path_.string());
  }
}

void segment_writer::write_tombstone_record(
    std::span<const std::uint64_t> ordinals) {
  std::string payload;
  put<std::uint64_t>(payload, static_cast<std::uint64_t>(ordinals.size()));
  for (std::uint64_t ordinal : ordinals) {
    put<std::uint64_t>(payload, ordinal);
  }
  offsets_.push_back(pos_);
  write_record(rec_tombstone, payload);
  if (!out_) {
    throw std::runtime_error("besdb: write failed for " + path_.string());
  }
}

void segment_writer::append_tombstones(
    std::span<const std::uint64_t> ordinals) {
  if (finished_) {
    throw std::runtime_error("besdb: append after finish on " + path_.string());
  }
  if (ordinals.empty()) return;
  // Validate the whole batch before any byte lands: a rejected batch must
  // not leave a partial tombstone record.
  std::unordered_set<std::uint64_t> batch;
  for (std::uint64_t ordinal : ordinals) {
    if (ordinal >= images_) {
      throw std::runtime_error(
          "besdb: tombstone ordinal " + std::to_string(ordinal) +
          " out of range for " + path_.string());
    }
    if (tombstoned_.contains(ordinal) || !batch.insert(ordinal).second) {
      throw std::runtime_error(
          "besdb: duplicate tombstone ordinal " + std::to_string(ordinal) +
          " for " + path_.string());
    }
  }
  write_tombstone_record(ordinals);
  tombstoned_.insert(ordinals.begin(), ordinals.end());
}

void segment_writer::finish() {
  if (finished_) return;
  if (!pending_tombstones_.empty()) {
    // Queued by append() from records carried in with removed_at set;
    // append() only queues fresh ordinals, so no dedup pass is needed.
    write_tombstone_record(pending_tombstones_);
    tombstoned_.insert(pending_tombstones_.begin(),
                       pending_tombstones_.end());
    pending_tombstones_.clear();
  }
  std::string footer;
  put<std::uint64_t>(footer, images_);
  put<std::uint64_t>(footer, static_cast<std::uint64_t>(symbols_written_));
  put<std::uint64_t>(footer, static_cast<std::uint64_t>(offsets_.size()));
  for (std::uint64_t offset : offsets_) put<std::uint64_t>(footer, offset);
  const std::uint64_t footer_at = pos_;
  write_record(rec_footer, footer);
  std::string tail;
  put<std::uint64_t>(tail, footer_at);
  tail.append(tail_magic, sizeof(tail_magic));
  out_.write(tail.data(), static_cast<std::streamsize>(tail.size()));
  out_.flush();
  if (!out_) {
    throw std::runtime_error("besdb: write failed for " + path_.string());
  }
  finished_ = true;
}

// ---------------------------------------------------------------- reader

struct segment_reader::impl {
  std::filesystem::path path;
  file_mapping map;
  segment_layout layout;

  impl(const std::filesystem::path& p, const segment_read_options& options)
      : path(p), map(p), layout(parse_layout(map, path, options)) {}
};

segment_reader::segment_reader(const std::filesystem::path& path,
                               segment_read_options options)
    : impl_(std::make_unique<impl>(path, options)) {}

segment_reader::~segment_reader() = default;

const std::filesystem::path& segment_reader::path() const noexcept {
  return impl_->path;
}

std::size_t segment_reader::image_count() const noexcept {
  return impl_->layout.image_offsets.size();
}

const std::vector<std::string>& segment_reader::symbol_names() const noexcept {
  return impl_->layout.symbols;
}

const std::vector<std::uint64_t>& segment_reader::tombstones()
    const noexcept {
  return impl_->layout.tombstones;
}

bool segment_reader::image_tombstoned(std::size_t index) const noexcept {
  return std::binary_search(impl_->layout.tombstones.begin(),
                            impl_->layout.tombstones.end(),
                            static_cast<std::uint64_t>(index));
}

bool segment_reader::recovered() const noexcept {
  return impl_->layout.recovered;
}

segment_image segment_reader::read_image(std::size_t index) const {
  if (index >= impl_->layout.image_offsets.size()) {
    throw std::out_of_range("segment_reader: image index out of range");
  }
  const std::filesystem::path& path = impl_->path;
  const std::uint64_t offset = impl_->layout.image_offsets[index];
  record_header header;
  if (!decode_record_header(impl_->map.data, offset, header)) {
    bad_segment(path, "image record header corrupt");
  }
  const std::byte* payload = impl_->map.data + offset + record_header_bytes;
  if (crc32(payload, header.payload_bytes) != header.payload_crc) {
    bad_segment(path, "image record " + std::to_string(index) + " corrupt");
  }

  const std::size_t symbol_count = impl_->layout.symbols.size();
  cursor in{payload, header.payload_bytes, 0, &path};
  try {
    std::string name = in.get_bytes();
    const auto width = in.get<std::int32_t>();
    const auto height = in.get<std::int32_t>();
    symbolic_image image(width, height);
    const auto icon_count = in.get<std::uint32_t>();
    for (std::uint32_t i = 0; i < icon_count; ++i) {
      const auto symbol = in.get<std::uint32_t>();
      if (symbol >= symbol_count) {
        bad_segment(path, "icon references unknown symbol id");
      }
      const auto x_lo = in.get<std::int32_t>();
      const auto x_hi = in.get<std::int32_t>();
      const auto y_lo = in.get<std::int32_t>();
      const auto y_hi = in.get<std::int32_t>();
      image.add(symbol, rect{interval::checked(x_lo, x_hi),
                             interval::checked(y_lo, y_hi)});
    }
    be_string2d strings;
    strings.x = get_axis(in, symbol_count);
    strings.y = get_axis(in, symbol_count);
    be_histogram2d histograms;
    histograms.x = get_histogram(in, symbol_count);
    histograms.y = get_histogram(in, symbol_count);
    histograms.x_len = strings.x.size();
    histograms.y_len = strings.y.size();
    in.expect_end();
    if (!strings.well_formed()) {
      bad_segment(path,
                  "image record " + std::to_string(index) + " malformed");
    }
    if (histograms.x.total() != strings.x.size() ||
        histograms.y.total() != strings.y.size()) {
      bad_segment(path, "image record " + std::to_string(index) +
                            " histogram totals disagree with its strings");
    }
    return segment_image{std::move(name), std::move(image),
                         std::move(strings), std::move(histograms)};
  } catch (const std::runtime_error&) {
    throw;
  } catch (const std::exception& error) {
    // interval/rect/symbolic_image validation throws std::invalid_argument;
    // from a loader's point of view that is still a bad file, not a bug.
    bad_segment(path, std::string("invalid image record: ") + error.what());
  }
}

// ------------------------------------------------------------- bulk loading

namespace {

void materialize(const segment_reader& reader,
                 const std::filesystem::path& path, image_database& db,
                 spatial_index* spatial) {
  for (std::size_t i = 0; i < reader.symbol_names().size(); ++i) {
    symbol_id id = 0;
    try {
      id = db.symbols().intern(reader.symbol_names()[i]);
    } catch (const std::exception& error) {
      bad_segment(path, std::string("invalid symbol name: ") + error.what());
    }
    if (id != i) bad_segment(path, "duplicate symbol in delta records");
  }
  db.reserve(reader.image_count());
  for (std::size_t i = 0; i < reader.image_count(); ++i) {
    segment_image record = reader.read_image(i);
    const image_id id = db.add_encoded(
        std::move(record.name), std::move(record.image),
        std::move(record.strings), std::move(record.histograms));
    if (spatial != nullptr) spatial->add_image(id);
  }
  // Segment ordinals ARE the dense database ids of the loop above, so
  // tombstones apply positionally. Applied after the load so the records
  // stay addressable (and re-saving the database round-trips them).
  for (std::uint64_t ordinal : reader.tombstones()) {
    db.remove(static_cast<image_id>(ordinal));
  }
}

}  // namespace

image_database load_segment(const std::filesystem::path& path,
                            segment_read_options options) {
  return materialize_segment(segment_reader(path, options));
}

image_database materialize_segment(const segment_reader& reader) {
  image_database db;
  materialize(reader, reader.path(), db, nullptr);
  return db;
}

loaded_corpus load_segment_corpus(const std::filesystem::path& path,
                                  segment_read_options options) {
  const segment_reader reader(path, options);
  loaded_corpus corpus;
  corpus.db = std::make_unique<image_database>();
  corpus.spatial =
      std::make_unique<spatial_index>(*corpus.db, deferred_build);
  materialize(reader, path, *corpus.db, corpus.spatial.get());
  return corpus;
}

void save_segment(const image_database& db,
                  const std::filesystem::path& path) {
  segment_writer writer(path);
  for (const db_record& rec : db.records()) writer.append(rec, db.symbols());
  writer.finish();
}

}  // namespace bes
