// Epoch-aware query-result cache with delta-scan refresh.
//
// Production retrieval traffic is heavily skewed: a small set of hot queries
// dominates, yet every repeat pays a full scan/plan/score pass even when
// nothing relevant changed. This cache closes that gap at the whole-query
// layer. Entries are keyed on a CANONICAL serialization of everything that
// can change the answer — the encoded query token streams (dihedral-
// canonicalized under transform_invariant so all 8 variants of one picture
// share an entry), the query's symbol set (it drives the index filter), the
// result-shaping options, the active LCS kernel's name, and the shard-set /
// ring parameters — and stamped with the `{visible, epoch}` snapshot cut(s)
// they were computed at.
//
// Correctness comes from the epoch model; performance comes from delta-scan
// refresh. Record storage is append-only with in-place tombstones, so a
// cached top-k valid at watermark W upgrades to W′ by scoring ONLY the
// records appended in [W, W′) plus re-checking the cached hits against
// tombstone epochs — never a full rescan — falling back to a fresh scan past
// a configurable staleness budget (see search_cached in db/query.hpp and
// db/shard.hpp; the refresh logic lives with the scans, this file owns the
// keying, the store, and the canonical-frame transform algebra).
//
// The store itself is a sharded segmented LRU: keys hash-partition over
// independently locked shards; within a shard an entry enters a probation
// list and is promoted to a protected list on its first re-reference, so a
// burst of one-off queries cannot flush the hot working set. Lookups compare
// the FULL canonical key bytes (the 64-bit digest only picks the shard and
// the bucket), so a digest collision can never serve the wrong results.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/be_string.hpp"
#include "db/query.hpp"
#include "geometry/dihedral.hpp"

namespace bes {

struct result_cache_options {
  std::size_t capacity = 4096;  // total entries across all cache shards
  std::size_t shards = 8;       // independently locked partitions
  // Fraction of each shard's capacity reserved for re-referenced entries.
  double protected_fraction = 0.8;
  // Delta-refresh staleness budget: if more than this many records were
  // appended since an entry's cut, refresh falls back to a full scan (the
  // suffix scan would no longer be meaningfully cheaper).
  std::size_t max_delta_records = 4096;
};

// Monotone counters, readable while the cache is in use. hits/misses/
// delta_refreshes/delta_rescored are noted by the search_cached layers (the
// cache cannot tell a pure hit from a refresh by itself); insertions/
// evictions are counted by the store.
struct result_cache_stats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t delta_refreshes = 0;
  std::uint64_t delta_rescored = 0;  // records scored by delta refreshes
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
};

// Which search surface an entry answers for. Scopes never share entries:
// a flat database, a sharded database, and a remote scatter/gather return
// identical results but stamp different cut shapes.
enum class cache_scope : std::uint8_t { flat = 0, sharded = 1, remote = 2 };

// One shard's snapshot cut: the entry's results are exactly what a pinned
// search at {visible, epoch} returns.
struct cache_cut {
  std::uint64_t visible = 0;
  std::uint64_t epoch = 0;

  friend bool operator==(const cache_cut&, const cache_cut&) = default;
};

// A computed cache key. `bytes` is the full canonical serialization (stored
// and compared exactly on every lookup); `digest` is its 64-bit FNV-1a hash
// (shard pick + hash buckets only). `canon` is the dihedral that maps the
// query onto its canonical variant — identity unless transform_invariant —
// and is what converts result transforms into/out of the canonical frame.
struct cache_key {
  std::string bytes;
  std::uint64_t digest = 0;
  dihedral canon = dihedral::identity;
};

// Serializes (query, symbols, options, kernel, scope/ring params) into a
// canonical key. Everything that can change the answer is included; thread
// count is deliberately NOT (results are thread-count-invariant by
// construction). Under options.transform_invariant the key uses the
// lexicographically smallest of the query's 8 dihedral variants, so every
// orientation of the same picture lands on one entry. `key_top_k` = false
// omits top_k from the key (the remote scope stores the gathered union and
// serves any k up to the gathered depth from one entry).
[[nodiscard]] cache_key make_cache_key(const be_string2d& query_strings,
                                       std::span<const symbol_id> query_symbols,
                                       const query_options& options,
                                       cache_scope scope,
                                       std::uint32_t shard_count,
                                       std::uint32_t ring_replicas,
                                       bool key_top_k = true);

// One cached answer. `results` hold transforms in the CANONICAL frame (see
// to_canonical_frame); ids and scores are frame-independent. `cuts` is one
// cache_cut per database shard (exactly one for the flat scope; empty for
// the remote scope — remote corpora are immutable, the coordinator
// invalidates wholesale on topology change). `complete` records whether the
// entry holds EVERY record >= min_score (top_k == 0, or the scan returned
// fewer than top_k hits): a complete entry survives deletions without a
// rescan, an incomplete one cannot (a deletion may promote an unknown
// runner-up). `gathered_k` is the remote scope's gather depth (0 =
// unlimited): the union serves any request with top_k <= gathered_k.
struct cache_entry {
  std::vector<query_result> results;
  std::vector<cache_cut> cuts;
  std::size_t gathered_k = 0;
  bool complete = false;
};

// Rewrites result transforms between the query frame and the canonical
// frame. Storing: u = compose(inverse(canon), t) — "undo the canonicalizer,
// then the realized transform" — so the entry is frame-independent.
// Serving a query whose canonicalizer is `canon`: t = compose(canon, u).
// Round-tripping with the same canon is exactly identity, so repeated
// identical queries get bit-identical transforms back; sibling orientations
// of the same picture get identical ids/scores and a transform that realizes
// the same score (when a symmetric query has several realizing transforms,
// the reported element may differ from a fresh scan's enumeration pick).
// Both are no-ops when canon == identity.
void to_canonical_frame(std::vector<query_result>& results, dihedral canon);
void from_canonical_frame(std::vector<query_result>& results, dihedral canon);

// The sharded segmented-LRU store. All methods are thread-safe; find()
// returns a copy so the caller never holds a reference into a shard.
class result_cache {
 public:
  explicit result_cache(result_cache_options options = {});
  ~result_cache();

  result_cache(const result_cache&) = delete;
  result_cache& operator=(const result_cache&) = delete;

  [[nodiscard]] const result_cache_options& options() const noexcept;

  // Copy of the entry, promoting it probation -> protected; nullopt on miss.
  // Matches on the full key bytes, never on the digest alone.
  [[nodiscard]] std::optional<cache_entry> find(const cache_key& key);

  // Inserts or replaces. New keys enter probation; replacing an existing key
  // refreshes its position in whichever segment it occupies.
  void put(const cache_key& key, cache_entry entry);

  // Drops every entry (corpus swapped / topology changed). Stats survive.
  void clear();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] result_cache_stats stats() const noexcept;

  // Outcome accounting, called by the search_cached layers.
  void note_hit() noexcept;
  void note_miss() noexcept;
  void note_delta_refresh(std::uint64_t rescored) noexcept;

  // TEST HOOK: mutates the stored entry for `key` in place (no promotion),
  // returning false if the key is absent. Exists so tests can FORGE a stale
  // entry — e.g. advance its cuts without rescanning — and prove the suite
  // would catch a real staleness bug. Never call outside tests.
  bool debug_mutate(const cache_key& key,
                    const std::function<void(cache_entry&)>& fn);

 private:
  struct shard_state;
  struct counters;

  shard_state& shard_for(std::uint64_t digest) noexcept;

  result_cache_options options_;
  std::size_t per_shard_capacity_ = 0;
  std::size_t protected_capacity_ = 0;
  std::unique_ptr<shard_state[]> shards_;
  std::size_t shard_count_ = 0;
  std::unique_ptr<counters> counters_;
};

}  // namespace bes
