// Convert_2D_Be_String (paper §3.2, Algorithm 1): symbolic image -> 2D
// BE-string.
//
// Per axis: project every icon's MBR to its begin/end boundary events, sort
// by (coordinate, symbol, begin-before-end), then emit the boundary symbols
// with a dummy E wherever two adjacent projections land on distinct
// coordinates, plus leading/trailing dummies when the outermost boundaries
// leave a gap to the image edges. O(n log n) with the sort, O(n) beyond it.
#pragma once

#include <span>
#include <vector>

#include "core/be_string.hpp"
#include "symbolic/symbolic_image.hpp"

namespace bes {

// A single boundary projection on one axis.
struct boundary_event {
  int coord = 0;
  token tok;  // never a dummy

  // Paper line 13: "Combine MBR coordinate and object identifier as a key,
  // sort the input data by ascending order."
  friend constexpr bool operator<(const boundary_event& a,
                                  const boundary_event& b) noexcept {
    if (a.coord != b.coord) return a.coord < b.coord;
    return a.tok < b.tok;
  }
  friend constexpr bool operator==(const boundary_event&,
                                   const boundary_event&) = default;
};

enum class axis : std::uint8_t { x, y };

// The 2n sorted boundary events of the icons on one axis.
[[nodiscard]] std::vector<boundary_event> boundary_events(
    std::span<const icon> icons, axis which);

// Renders sorted events into an axis string over the domain [0, max_coord).
// An empty event list yields the single-dummy string (the whole axis is one
// gap). Precondition: events sorted, all coords within [0, max_coord].
[[nodiscard]] axis_string render_axis(std::span<const boundary_event> events,
                                      int max_coord);

// Algorithm 1: the full conversion.
[[nodiscard]] be_string2d encode(const symbolic_image& image);

// Upper/lower bounds from paper §3.1: an axis of an n-object image holds at
// least 2n and at most 4n+1 tokens.
[[nodiscard]] constexpr std::size_t min_axis_tokens(std::size_t n) noexcept {
  return 2 * n;
}
[[nodiscard]] constexpr std::size_t max_axis_tokens(std::size_t n) noexcept {
  return 4 * n + 1;
}

}  // namespace bes
