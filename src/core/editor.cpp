#include "core/editor.hpp"

#include <algorithm>
#include <stdexcept>

namespace bes {

namespace {

bool event_less(const boundary_event& a, const boundary_event& b) noexcept {
  return a < b;
}

}  // namespace

be_editor::be_editor(int width, int height) : width_(width), height_(height) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("be_editor: dimensions must be positive");
  }
}

be_editor::be_editor(const symbolic_image& image)
    : be_editor(image.width(), image.height()) {
  x_events_.reserve(image.size() * 2);
  y_events_.reserve(image.size() * 2);
  for (const icon& obj : image.icons()) {
    const instance_id id = next_id_++;
    instances_.emplace_back(id, instance_record{obj.symbol, obj.mbr});
    x_events_.push_back(
        {{obj.mbr.x.lo, token::boundary(obj.symbol, boundary_kind::begin)},
         id});
    x_events_.push_back(
        {{obj.mbr.x.hi, token::boundary(obj.symbol, boundary_kind::end)}, id});
    y_events_.push_back(
        {{obj.mbr.y.lo, token::boundary(obj.symbol, boundary_kind::begin)},
         id});
    y_events_.push_back(
        {{obj.mbr.y.hi, token::boundary(obj.symbol, boundary_kind::end)}, id});
  }
  auto by_event = [](const annotated_event& a, const annotated_event& b) {
    return event_less(a.event, b.event);
  };
  std::sort(x_events_.begin(), x_events_.end(), by_event);
  std::sort(y_events_.begin(), y_events_.end(), by_event);
}

void be_editor::insert_axis(std::vector<annotated_event>& events, int coord,
                            token tok, instance_id id) {
  const boundary_event key{coord, tok};
  // Paper: "binary search with key MBR coordinates and identifier".
  auto pos = std::lower_bound(
      events.begin(), events.end(), key,
      [](const annotated_event& a, const boundary_event& k) {
        return event_less(a.event, k);
      });
  events.insert(pos, annotated_event{key, id});
}

instance_id be_editor::insert(symbol_id symbol, const rect& mbr) {
  if (!mbr.valid() || mbr.x.lo < 0 || mbr.x.hi > width_ || mbr.y.lo < 0 ||
      mbr.y.hi > height_) {
    throw std::invalid_argument("be_editor::insert: invalid MBR " +
                                to_string(mbr));
  }
  const instance_id id = next_id_++;
  instances_.emplace_back(id, instance_record{symbol, mbr});
  insert_axis(x_events_, mbr.x.lo,
              token::boundary(symbol, boundary_kind::begin), id);
  insert_axis(x_events_, mbr.x.hi, token::boundary(symbol, boundary_kind::end),
              id);
  insert_axis(y_events_, mbr.y.lo,
              token::boundary(symbol, boundary_kind::begin), id);
  insert_axis(y_events_, mbr.y.hi, token::boundary(symbol, boundary_kind::end),
              id);
  return id;
}

void be_editor::erase_axis(std::vector<annotated_event>& events,
                           instance_id id) {
  // Paper: sequential search; redundant dummies disappear on render because
  // dummies are derived from adjacent coordinates, never stored.
  events.erase(std::remove_if(
                   events.begin(), events.end(),
                   [id](const annotated_event& e) { return e.instance == id; }),
               events.end());
}

bool be_editor::erase(instance_id id) {
  auto it = std::find_if(instances_.begin(), instances_.end(),
                         [id](const auto& entry) { return entry.first == id; });
  if (it == instances_.end()) return false;
  instances_.erase(it);
  erase_axis(x_events_, id);
  erase_axis(y_events_, id);
  return true;
}

std::optional<instance_id> be_editor::erase_first(symbol_id symbol) {
  for (const annotated_event& e : x_events_) {
    if (!e.event.tok.is_dummy() && e.event.tok.symbol() == symbol) {
      const instance_id id = e.instance;
      erase(id);
      return id;
    }
  }
  return std::nullopt;
}

be_string2d be_editor::strings() const {
  std::vector<boundary_event> xs;
  std::vector<boundary_event> ys;
  xs.reserve(x_events_.size());
  ys.reserve(y_events_.size());
  for (const annotated_event& e : x_events_) xs.push_back(e.event);
  for (const annotated_event& e : y_events_) ys.push_back(e.event);
  return be_string2d{render_axis(xs, width_), render_axis(ys, height_)};
}

symbolic_image be_editor::image() const {
  symbolic_image out(width_, height_);
  for (const auto& [id, record] : instances_) {
    out.add(record.symbol, record.mbr);
  }
  return out;
}

}  // namespace bes
