#include "core/token.hpp"

// token is fully inline; this TU exists so the target has a home for the
// header and for potential future out-of-line members.
