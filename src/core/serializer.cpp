#include "core/serializer.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

namespace bes {

namespace {

std::string token_text(token t, const alphabet& names) {
  if (t.is_dummy()) return "E";
  return names.name_of(t.symbol()) +
         (t.kind() == boundary_kind::begin ? ":b" : ":e");
}

token parse_token(std::string_view word, alphabet& names) {
  if (word == "E") return token::dummy();
  const auto colon = word.rfind(':');
  if (colon == std::string_view::npos || colon + 2 != word.size()) {
    throw std::invalid_argument("parse_axis: malformed token '" +
                                std::string(word) + "'");
  }
  const char role = word[colon + 1];
  if (role != 'b' && role != 'e') {
    throw std::invalid_argument("parse_axis: bad boundary role in '" +
                                std::string(word) + "'");
  }
  const symbol_id id = names.intern(word.substr(0, colon));
  return token::boundary(
      id, role == 'b' ? boundary_kind::begin : boundary_kind::end);
}

}  // namespace

std::string to_text(const axis_string& s, const alphabet& names) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i != 0) out += ' ';
    out += token_text(s.at(i), names);
  }
  return out;
}

std::string to_text(const be_string2d& s, const alphabet& names) {
  return "( " + to_text(s.x, names) + " , " + to_text(s.y, names) + " )";
}

std::string paper_style(const axis_string& s, const alphabet& names) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    token t = s.at(i);
    if (t.is_dummy()) {
      out += 'E';
    } else {
      out += names.name_of(t.symbol());
      out += (t.kind() == boundary_kind::begin) ? 'b' : 'e';
    }
  }
  return out;
}

std::string paper_style(const be_string2d& s, const alphabet& names) {
  return "(" + paper_style(s.x, names) + ", " + paper_style(s.y, names) + ")";
}

axis_string parse_axis(std::string_view text, alphabet& names) {
  std::vector<token> tokens;
  std::istringstream in{std::string(text)};
  std::string word;
  while (in >> word) tokens.push_back(parse_token(word, names));
  return axis_string(std::move(tokens));
}

be_string2d parse_be_string(std::string_view text, alphabet& names) {
  // Expected shape: ( <x tokens> , <y tokens> )
  const auto open = text.find('(');
  const auto close = text.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close <= open) {
    throw std::invalid_argument("parse_be_string: missing parentheses");
  }
  const std::string_view body = text.substr(open + 1, close - open - 1);
  const auto comma = body.find(',');
  if (comma == std::string_view::npos) {
    throw std::invalid_argument("parse_be_string: missing axis separator ','");
  }
  return be_string2d{parse_axis(body.substr(0, comma), names),
                     parse_axis(body.substr(comma + 1), names)};
}

}  // namespace bes
