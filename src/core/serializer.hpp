// Textual forms of BE-strings.
//
// Machine form (round-trippable): whitespace-separated tokens, `E` for the
// dummy object and `NAME:b` / `NAME:e` for boundaries; the 2D form is
// `( <x tokens> , <y tokens> )`.
// Paper form (display only): the compact notation of the paper's worked
// example, e.g. "EAbEBbEAeCb..." with one-letter symbols.
#pragma once

#include <string>
#include <string_view>

#include "core/be_string.hpp"
#include "symbolic/alphabet.hpp"

namespace bes {

[[nodiscard]] std::string to_text(const axis_string& s, const alphabet& names);
[[nodiscard]] std::string to_text(const be_string2d& s, const alphabet& names);

// Compact display form: `E` + `<name>b` / `<name>e` run together.
[[nodiscard]] std::string paper_style(const axis_string& s,
                                      const alphabet& names);
[[nodiscard]] std::string paper_style(const be_string2d& s,
                                      const alphabet& names);

// Parses the machine form. Unknown symbol names are interned into `names`.
// Throws std::invalid_argument on malformed input.
[[nodiscard]] axis_string parse_axis(std::string_view text, alphabet& names);
[[nodiscard]] be_string2d parse_be_string(std::string_view text,
                                          alphabet& names);

}  // namespace bes
