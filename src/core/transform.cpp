#include "core/transform.hpp"

#include <algorithm>

namespace bes {

axis_string reverse_swap(const axis_string& s) {
  std::vector<token> out;
  out.reserve(s.size());
  for (auto it = s.tokens().rbegin(); it != s.tokens().rend(); ++it) {
    out.push_back(it->role_swapped());
  }
  // Boundaries separated by no dummy project onto one shared coordinate; the
  // encoder orders such ties canonically (symbol, then begin-before-end), so
  // restore that order inside every maximal dummy-free run.
  auto run_begin = out.begin();
  while (run_begin != out.end()) {
    if (run_begin->is_dummy()) {
      ++run_begin;
      continue;
    }
    auto run_end = run_begin;
    while (run_end != out.end() && !run_end->is_dummy()) ++run_end;
    std::sort(run_begin, run_end);
    run_begin = run_end;
  }
  return axis_string(std::move(out));
}

be_string2d apply(dihedral t, const be_string2d& s) {
  switch (t) {
    case dihedral::identity:
      return s;
    case dihedral::rot90:  // (x,y) -> (y, W-x)
      return be_string2d{s.y, reverse_swap(s.x)};
    case dihedral::rot180:  // (x,y) -> (W-x, H-y)
      return be_string2d{reverse_swap(s.x), reverse_swap(s.y)};
    case dihedral::rot270:  // (x,y) -> (H-y, x)
      return be_string2d{reverse_swap(s.y), s.x};
    case dihedral::flip_x:  // (x,y) -> (x, H-y)
      return be_string2d{s.x, reverse_swap(s.y)};
    case dihedral::flip_y:  // (x,y) -> (W-x, y)
      return be_string2d{reverse_swap(s.x), s.y};
    case dihedral::transpose:  // (x,y) -> (y, x)
      return be_string2d{s.y, s.x};
    case dihedral::anti_transpose:  // (x,y) -> (H-y, W-x)
      return be_string2d{reverse_swap(s.y), reverse_swap(s.x)};
  }
  return s;
}

}  // namespace bes
