// String-level linear transformations (paper §1, §4, conclusions).
//
// "For the similarity retrieval of rotation and reflection, our approaches
// only need to reverse the string then apply the similarity retrieval and
// evaluation ... without any conversion of spatial operators."
//
// Reversing an axis string with begin/end roles swapped is exactly the
// mirror image of that axis: gaps (dummies) reverse along with the boundary
// symbols, and each begin boundary becomes the end boundary of the mirrored
// object. The 8 dihedral elements are combinations of axis reversal and axis
// swap; apply() here commutes with the geometric transform in symbolic/
// (property-tested in tests/core_transform_test.cpp):
//
//     encode(apply(t, image)) == apply(t, encode(image))
#pragma once

#include "core/be_string.hpp"
#include "geometry/dihedral.hpp"

namespace bes {

// The mirrored axis: tokens reversed, begin<->end swapped, and boundary runs
// that share a coordinate (maximal dummy-free runs) re-sorted into canonical
// encoder order so the result is bit-identical to re-encoding the mirrored
// geometry.
[[nodiscard]] axis_string reverse_swap(const axis_string& s);

// The transformed 2D BE-string.
[[nodiscard]] be_string2d apply(dihedral t, const be_string2d& s);

}  // namespace bes
