// BE-strings: the axis string (1-D) and the 2D BE-string pair.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/token.hpp"

namespace bes {

// One axis of a 2D BE-string. A thin vector-of-token value type with
// well-formedness checks; construction is normally via the encoder.
class axis_string {
 public:
  axis_string() = default;
  explicit axis_string(std::vector<token> tokens) : tokens_(std::move(tokens)) {}

  [[nodiscard]] const std::vector<token>& tokens() const noexcept {
    return tokens_;
  }
  [[nodiscard]] std::span<const token> span() const noexcept {
    return tokens_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return tokens_.size(); }
  [[nodiscard]] bool empty() const noexcept { return tokens_.empty(); }
  [[nodiscard]] token at(std::size_t i) const { return tokens_.at(i); }

  [[nodiscard]] std::size_t dummy_count() const noexcept;
  [[nodiscard]] std::size_t boundary_count() const noexcept;

  // A BE-string is well formed iff
  //  * no two dummies are adjacent (one dummy fully describes a gap),
  //  * for every symbol, begin- and end-boundary counts are equal, and in
  //    every prefix ends never outnumber begins (instances are [lo, hi) with
  //    lo < hi, so each end is preceded by its begin).
  [[nodiscard]] bool well_formed() const noexcept;

  friend bool operator==(const axis_string&, const axis_string&) = default;

 private:
  std::vector<token> tokens_;
};

// The 2D BE-string (u, v) of paper §3.1.
struct be_string2d {
  axis_string x;
  axis_string y;

  [[nodiscard]] std::size_t total_tokens() const noexcept {
    return x.size() + y.size();
  }
  [[nodiscard]] bool well_formed() const noexcept {
    return x.well_formed() && y.well_formed();
  }

  friend bool operator==(const be_string2d&, const be_string2d&) = default;
};

}  // namespace bes
