// Tokens of a BE-string: MBR boundary symbols and the dummy object 'E'.
//
// Paper §3.1: an axis string is a sequence d0 s1 d1 s2 d2 ... s2n d2n where
// each s is the begin or end boundary of an icon object and each d is either
// the dummy object E (adjacent boundary projections are DISTINCT) or the null
// string (they coincide). We materialize only the non-null tokens, so a
// dummy is simply one more token in the vector.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "symbolic/alphabet.hpp"

namespace bes {

enum class boundary_kind : std::uint8_t {
  begin,  // the lower MBR boundary of the object on this axis (paper: c_b)
  end,    // the upper boundary (paper: c_e)
};

// The opposite boundary role (used by reversal-based transforms).
[[nodiscard]] constexpr boundary_kind flipped(boundary_kind k) noexcept {
  return k == boundary_kind::begin ? boundary_kind::end : boundary_kind::begin;
}

class token {
 public:
  // Tokens are comparable values; LCS matching is operator==.
  token() = default;

  [[nodiscard]] static constexpr token dummy() noexcept { return token{}; }
  [[nodiscard]] static constexpr token boundary(symbol_id symbol,
                                                boundary_kind kind) noexcept {
    return token{symbol, kind};
  }

  [[nodiscard]] constexpr bool is_dummy() const noexcept {
    return symbol_ == dummy_symbol;
  }
  // Preconditions for both accessors: !is_dummy().
  [[nodiscard]] constexpr symbol_id symbol() const noexcept { return symbol_; }
  [[nodiscard]] constexpr boundary_kind kind() const noexcept { return kind_; }

  // The same boundary with begin/end swapped; dummy stays dummy.
  [[nodiscard]] constexpr token role_swapped() const noexcept {
    return is_dummy() ? *this : boundary(symbol_, flipped(kind_));
  }

  friend constexpr bool operator==(token, token) = default;

  // Canonical intra-tie ordering used by the encoder for boundaries that
  // project onto the same coordinate: by symbol id, then begin before end.
  friend constexpr bool operator<(token a, token b) noexcept {
    if (a.symbol_ != b.symbol_) return a.symbol_ < b.symbol_;
    return static_cast<int>(a.kind_) < static_cast<int>(b.kind_);
  }

 private:
  static constexpr symbol_id dummy_symbol =
      std::numeric_limits<symbol_id>::max();

  constexpr token(symbol_id symbol, boundary_kind kind) noexcept
      : symbol_(symbol), kind_(kind) {}

  symbol_id symbol_ = dummy_symbol;
  boundary_kind kind_ = boundary_kind::begin;
};

}  // namespace bes

template <>
struct std::hash<bes::token> {
  std::size_t operator()(bes::token t) const noexcept {
    if (t.is_dummy()) return 0x9e3779b97f4a7c15ull;
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(t.symbol()) << 1) |
        static_cast<std::uint64_t>(t.kind()));
  }
};
