// Incremental maintenance of a 2D BE-string image (paper §3.2, last
// paragraph):
//
//   "Because the 2D BE-string is an order data, if we save the 2D BE-string
//    with their MBR coordinates, we can easy find the location to be
//    inserted for a new object ... using binary search ... When we want to
//    drop an object ... we search the dropping object sequentially, delete
//    it directly and eliminate the redundant dummy object."
//
// be_editor keeps, per axis, the coordinate-annotated boundary events in
// sorted order (the "2D BE-string with their MBR coordinates"). Insertion is
// two binary searches + ordered inserts per axis; deletion is a sequential
// scan. Dummy objects are a pure function of adjacent coordinates, so
// insertion/elimination of redundant dummies is implicit and the rendered
// string is always exactly what a full re-encode would produce (property-
// tested in tests/core_editor_test.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/be_string.hpp"
#include "core/encoder.hpp"
#include "symbolic/symbolic_image.hpp"

namespace bes {

using instance_id = std::uint32_t;

class be_editor {
 public:
  // Starts from an existing picture (one bulk sort), or empty.
  explicit be_editor(const symbolic_image& image);
  be_editor(int width, int height);

  // Inserts a new object; O(log n) locate + O(n) ordered insert per axis.
  // Throws std::invalid_argument on an invalid or out-of-domain MBR.
  instance_id insert(symbol_id symbol, const rect& mbr);

  // Drops an object previously returned by insert()/the constructor order.
  // Returns false if the instance is unknown (already removed).
  bool erase(instance_id id);

  // Drops the first (lowest x-begin) instance with the given symbol.
  // Returns the removed instance id, or nullopt if no such symbol exists.
  std::optional<instance_id> erase_first(symbol_id symbol);

  // The current 2D BE-string; O(n) render from the maintained event lists.
  [[nodiscard]] be_string2d strings() const;

  // Reconstructs the symbolic picture (icons in instance-id order).
  [[nodiscard]] symbolic_image image() const;

  [[nodiscard]] std::size_t size() const noexcept { return instances_.size(); }
  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }

 private:
  struct annotated_event {
    boundary_event event;
    instance_id instance = 0;
  };

  struct instance_record {
    symbol_id symbol = 0;
    rect mbr;
  };

  void insert_axis(std::vector<annotated_event>& events, int coord, token tok,
                   instance_id id);
  static void erase_axis(std::vector<annotated_event>& events, instance_id id);

  int width_;
  int height_;
  std::vector<annotated_event> x_events_;  // sorted by (coord, token)
  std::vector<annotated_event> y_events_;
  std::vector<std::pair<instance_id, instance_record>> instances_;  // id order
  instance_id next_id_ = 0;
};

}  // namespace bes
