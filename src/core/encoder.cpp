#include "core/encoder.hpp"

#include <algorithm>
#include <stdexcept>

namespace bes {

std::vector<boundary_event> boundary_events(std::span<const icon> icons,
                                            axis which) {
  std::vector<boundary_event> events;
  events.reserve(icons.size() * 2);
  for (const icon& obj : icons) {
    const interval side = which == axis::x ? obj.mbr.x : obj.mbr.y;
    events.push_back(
        {side.lo, token::boundary(obj.symbol, boundary_kind::begin)});
    events.push_back(
        {side.hi, token::boundary(obj.symbol, boundary_kind::end)});
  }
  std::sort(events.begin(), events.end());
  return events;
}

axis_string render_axis(std::span<const boundary_event> events,
                        int max_coord) {
  if (max_coord <= 0) {
    throw std::invalid_argument("render_axis: max_coord must be positive");
  }
  std::vector<token> out;
  if (events.empty()) {
    // An empty picture is a single gap spanning the whole axis.
    out.push_back(token::dummy());
    return axis_string(std::move(out));
  }
  out.reserve(events.size() * 2 + 1);
  if (events.front().coord != 0) out.push_back(token::dummy());
  for (std::size_t i = 0; i < events.size(); ++i) {
    out.push_back(events[i].tok);
    if (i + 1 < events.size() && events[i + 1].coord != events[i].coord) {
      out.push_back(token::dummy());
    }
  }
  if (events.back().coord != max_coord) out.push_back(token::dummy());
  return axis_string(std::move(out));
}

be_string2d encode(const symbolic_image& image) {
  const auto ex = boundary_events(image.icons(), axis::x);
  const auto ey = boundary_events(image.icons(), axis::y);
  return be_string2d{render_axis(ex, image.width()),
                     render_axis(ey, image.height())};
}

}  // namespace bes
