#include "core/be_string.hpp"

#include <unordered_map>

namespace bes {

std::size_t axis_string::dummy_count() const noexcept {
  std::size_t count = 0;
  for (token t : tokens_) count += t.is_dummy() ? 1 : 0;
  return count;
}

std::size_t axis_string::boundary_count() const noexcept {
  return tokens_.size() - dummy_count();
}

namespace {

// Fallback for axes with many distinct symbols; the common case below keeps
// balances in a small flat array instead (no hashing, no allocation), which
// matters because loaders run well_formed() on every record.
bool well_formed_large(const std::vector<token>& tokens) {
  bool previous_dummy = false;
  std::unordered_map<symbol_id, long> balance;
  for (token t : tokens) {
    if (t.is_dummy()) {
      if (previous_dummy) return false;
      previous_dummy = true;
      continue;
    }
    previous_dummy = false;
    long& open = balance[t.symbol()];
    open += (t.kind() == boundary_kind::begin) ? 1 : -1;
    if (open < 0) return false;
  }
  for (const auto& [symbol, open] : balance) {
    if (open != 0) return false;
  }
  return true;
}

}  // namespace

bool axis_string::well_formed() const noexcept {
  struct slot {
    symbol_id symbol;
    long open;
  };
  slot slots[32];
  std::size_t used = 0;
  bool previous_dummy = false;
  for (token t : tokens_) {
    if (t.is_dummy()) {
      if (previous_dummy) return false;
      previous_dummy = true;
      continue;
    }
    previous_dummy = false;
    slot* found = nullptr;
    for (std::size_t i = 0; i < used; ++i) {
      if (slots[i].symbol == t.symbol()) {
        found = &slots[i];
        break;
      }
    }
    if (found == nullptr) {
      if (used == std::size(slots)) return well_formed_large(tokens_);
      slots[used] = slot{t.symbol(), 0};
      found = &slots[used++];
    }
    found->open += (t.kind() == boundary_kind::begin) ? 1 : -1;
    if (found->open < 0) return false;
  }
  for (std::size_t i = 0; i < used; ++i) {
    if (slots[i].open != 0) return false;
  }
  return true;
}

}  // namespace bes
