#include "core/be_string.hpp"

#include <unordered_map>

namespace bes {

std::size_t axis_string::dummy_count() const noexcept {
  std::size_t count = 0;
  for (token t : tokens_) count += t.is_dummy() ? 1 : 0;
  return count;
}

std::size_t axis_string::boundary_count() const noexcept {
  return tokens_.size() - dummy_count();
}

bool axis_string::well_formed() const noexcept {
  bool previous_dummy = false;
  std::unordered_map<symbol_id, long> balance;
  for (token t : tokens_) {
    if (t.is_dummy()) {
      if (previous_dummy) return false;
      previous_dummy = true;
      continue;
    }
    previous_dummy = false;
    long& open = balance[t.symbol()];
    open += (t.kind() == boundary_kind::begin) ? 1 : -1;
    if (open < 0) return false;
  }
  for (const auto& [symbol, open] : balance) {
    if (open != 0) return false;
  }
  return true;
}

}  // namespace bes
