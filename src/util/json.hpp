// Minimal JSON value type for the eval report / baseline files.
//
// Self-contained (no third-party dependency): supports objects, arrays,
// strings, numbers, booleans and null — everything the machine-readable
// eval report needs, nothing more. Objects preserve insertion order so the
// emitted report keeps its cells in matrix order and diffs stay readable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

namespace bes {

class json_value {
 public:
  using array = std::vector<json_value>;
  using object = std::vector<std::pair<std::string, json_value>>;

  json_value() : value_(nullptr) {}
  json_value(std::nullptr_t) : value_(nullptr) {}
  json_value(bool b) : value_(b) {}
  json_value(double d) : value_(d) {}
  // Any other arithmetic type narrows to double (the only JSON number).
  template <typename T>
    requires(std::is_arithmetic_v<T> && !std::is_same_v<T, bool>)
  json_value(T n) : value_(static_cast<double>(n)) {}
  json_value(const char* s) : value_(std::string(s)) {}
  json_value(std::string s) : value_(std::move(s)) {}
  json_value(array a) : value_(std::move(a)) {}
  json_value(object o) : value_(std::move(o)) {}

  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_number() const noexcept {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_array() const noexcept {
    return std::holds_alternative<array>(value_);
  }
  [[nodiscard]] bool is_object() const noexcept {
    return std::holds_alternative<object>(value_);
  }

  // Typed accessors; throw std::runtime_error on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const array& as_array() const;
  [[nodiscard]] const object& as_object() const;

  // Object member lookup; `get` throws std::runtime_error when the key is
  // missing, `find` returns nullptr instead.
  [[nodiscard]] const json_value& get(std::string_view key) const;
  [[nodiscard]] const json_value* find(std::string_view key) const;

  // Appends a member (no duplicate-key check; callers emit unique keys).
  void set(std::string key, json_value value);

  // Serialization. indent < 0 emits one line; indent >= 0 pretty-prints with
  // that many spaces per level. Numbers round-trip exactly (shortest form).
  [[nodiscard]] std::string dump(int indent = -1) const;

  // Parses a complete JSON document. Throws std::runtime_error with a byte
  // offset on malformed input: trailing junk after the top-level value,
  // unescaped control characters inside strings, and object/array nesting
  // deeper than 256 levels are all rejected — this parser sits on the
  // wire/eval data path, so hostile or corrupt input must fail closed
  // rather than parse loosely (or overflow the stack).
  [[nodiscard]] static json_value parse(std::string_view text);

  friend bool operator==(const json_value&, const json_value&) = default;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, array, object> value_;
};

}  // namespace bes
