#include "util/checksum.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace bes {

namespace {

// Slicing-by-8 (Intel's technique): eight derived tables let the hot loop
// fold 8 input bytes per iteration instead of 1, which matters because the
// segment loader CRCs every record payload it touches.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables[k - 1][i];
      tables[k][i] = tables[0][prev & 0xFFu] ^ (prev >> 8);
    }
  }
  return tables;
}

constexpr auto tables = make_tables();

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  if constexpr (std::endian::native == std::endian::little) {
    while (size >= 8) {
      std::uint32_t lo = 0;
      std::uint32_t hi = 0;
      std::memcpy(&lo, bytes, 4);
      std::memcpy(&hi, bytes + 4, 4);
      lo ^= c;
      c = tables[7][lo & 0xFFu] ^ tables[6][(lo >> 8) & 0xFFu] ^
          tables[5][(lo >> 16) & 0xFFu] ^ tables[4][lo >> 24] ^
          tables[3][hi & 0xFFu] ^ tables[2][(hi >> 8) & 0xFFu] ^
          tables[1][(hi >> 16) & 0xFFu] ^ tables[0][hi >> 24];
      bytes += 8;
      size -= 8;
    }
  }
  for (std::size_t i = 0; i < size; ++i) {
    c = tables[0][(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace bes
