// Plain-text table formatting for paper-style result rows.
//
// The benchmark binaries print the tables/series from EXPERIMENTS.md with
// this helper so every experiment's output is uniformly readable and easy to
// diff against the recorded results.
#pragma once

#include <string>
#include <vector>

namespace bes {

class text_table {
 public:
  explicit text_table(std::vector<std::string> headers);

  // Each row must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  // Renders with column alignment, a header underline, and 2-space gutters.
  [[nodiscard]] std::string str() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Fixed-precision double -> string (printf "%.*f").
[[nodiscard]] std::string fmt_double(double value, int digits = 3);

}  // namespace bes
