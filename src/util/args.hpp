// Minimal command-line flag parser for the example binaries.
//
// Supports `--name value`, `--name=value`, and boolean `--name` flags.
// Unknown flags raise an error listing the registered flags, so example
// programs fail loudly rather than silently ignoring a typo.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bes {

class arg_parser {
 public:
  // `description` is printed by usage().
  explicit arg_parser(std::string description);

  // Register flags before parse(). `help` is shown in usage().
  void add_string(std::string name, std::string default_value, std::string help);
  void add_int(std::string name, std::int64_t default_value, std::string help);
  void add_double(std::string name, double default_value, std::string help);
  void add_bool(std::string name, bool default_value, std::string help);

  // Parses argv. Returns false (after printing usage) if --help was given.
  // Throws std::invalid_argument on unknown flags or malformed values.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] const std::string& get_string(std::string_view name) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name) const;
  [[nodiscard]] double get_double(std::string_view name) const;
  [[nodiscard]] bool get_bool(std::string_view name) const;

  // True iff the flag appeared on the command line (as opposed to holding
  // its registered default) — lets a command layer its own defaults under
  // shared flags. Throws std::invalid_argument for unregistered names.
  [[nodiscard]] bool was_supplied(std::string_view name) const;

  // Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] std::string usage() const;

 private:
  enum class kind { string, integer, real, boolean };
  struct flag {
    kind type;
    std::string value;  // canonical textual form
    std::string help;
    bool supplied = false;  // set by parse() when seen on the command line
  };

  const flag& find(std::string_view name, kind expected) const;

  std::string description_;
  std::map<std::string, flag, std::less<>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace bes
