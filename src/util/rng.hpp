// Deterministic random number utilities.
//
// All stochastic components of the library (workload generators, property
// tests, benchmarks) take an explicit `bes::rng&` so every run is seeded and
// reproducible. Never use global random state.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

namespace bes {

// Decorrelated sub-seed for stream `stream` of a master seed (SplitMix64
// finalizer). Components that need several independent random streams — the
// per-knob streams of workload::distort, the per-scene streams of the eval
// corpus generator — derive one seed per stream instead of threading a single
// rng through, so enabling one consumer never shifts another consumer's
// sequence and generation order (or thread schedule) cannot change results.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t seed,
                                                  std::uint64_t stream) noexcept {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// A seeded pseudo-random generator with convenience samplers.
//
// Thin wrapper over std::mt19937_64; cheap to construct, movable, and
// explicitly not copyable so two components never silently share a stream.
class rng {
 public:
  explicit rng(std::uint64_t seed) : engine_(seed) {}

  rng(const rng&) = delete;
  rng& operator=(const rng&) = delete;
  rng(rng&&) = default;
  rng& operator=(rng&&) = default;

  // Uniform integer in the inclusive range [lo, hi]. Precondition: lo <= hi.
  int uniform_int(int lo, int hi) {
    if (lo > hi) throw std::invalid_argument("rng::uniform_int: lo > hi");
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  // Uniform 64-bit value.
  std::uint64_t next_u64() { return engine_(); }

  // Uniform real in [0, 1).
  double uniform01() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  // Bernoulli trial with success probability p in [0, 1].
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  // Uniformly chosen element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    if (items.empty()) throw std::invalid_argument("rng::pick: empty span");
    return items[static_cast<std::size_t>(
        uniform_int(0, static_cast<int>(items.size()) - 1))];
  }

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  // Sample k distinct indices from [0, n) in increasing order.
  // Precondition: k <= n.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k) {
    if (k > n) throw std::invalid_argument("rng::sample_indices: k > n");
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    shuffle(all);
    all.resize(k);
    std::sort(all.begin(), all.end());
    return all;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace bes
