// Deterministic random number utilities.
//
// All stochastic components of the library (workload generators, property
// tests, benchmarks) take an explicit `bes::rng&` so every run is seeded and
// reproducible. Never use global random state.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

namespace bes {

// A seeded pseudo-random generator with convenience samplers.
//
// Thin wrapper over std::mt19937_64; cheap to construct, movable, and
// explicitly not copyable so two components never silently share a stream.
class rng {
 public:
  explicit rng(std::uint64_t seed) : engine_(seed) {}

  rng(const rng&) = delete;
  rng& operator=(const rng&) = delete;
  rng(rng&&) = default;
  rng& operator=(rng&&) = default;

  // Uniform integer in the inclusive range [lo, hi]. Precondition: lo <= hi.
  int uniform_int(int lo, int hi) {
    if (lo > hi) throw std::invalid_argument("rng::uniform_int: lo > hi");
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  // Uniform 64-bit value.
  std::uint64_t next_u64() { return engine_(); }

  // Uniform real in [0, 1).
  double uniform01() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  // Bernoulli trial with success probability p in [0, 1].
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  // Uniformly chosen element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    if (items.empty()) throw std::invalid_argument("rng::pick: empty span");
    return items[static_cast<std::size_t>(
        uniform_int(0, static_cast<int>(items.size()) - 1))];
  }

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  // Sample k distinct indices from [0, n) in increasing order.
  // Precondition: k <= n.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k) {
    if (k > n) throw std::invalid_argument("rng::sample_indices: k > n");
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    shuffle(all);
    all.resize(k);
    std::sort(all.begin(), all.end());
    return all;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace bes
