#include "util/args.hpp"

#include <sstream>
#include <stdexcept>

namespace bes {

namespace {

std::string kind_name(int k) {
  switch (k) {
    case 0: return "string";
    case 1: return "int";
    case 2: return "double";
    default: return "bool";
  }
}

}  // namespace

arg_parser::arg_parser(std::string description)
    : description_(std::move(description)) {}

void arg_parser::add_string(std::string name, std::string default_value,
                            std::string help) {
  flags_[std::move(name)] = flag{kind::string, std::move(default_value),
                                 std::move(help)};
}

void arg_parser::add_int(std::string name, std::int64_t default_value,
                         std::string help) {
  flags_[std::move(name)] =
      flag{kind::integer, std::to_string(default_value), std::move(help)};
}

void arg_parser::add_double(std::string name, double default_value,
                            std::string help) {
  flags_[std::move(name)] =
      flag{kind::real, std::to_string(default_value), std::move(help)};
}

void arg_parser::add_bool(std::string name, bool default_value,
                          std::string help) {
  flags_[std::move(name)] =
      flag{kind::boolean, default_value ? "true" : "false", std::move(help)};
}

bool arg_parser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") return false;
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string name;
    std::optional<std::string> value;
    if (auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      throw std::invalid_argument("unknown flag --" + name + "\n" + usage());
    }
    flag& f = it->second;
    if (!value) {
      if (f.type == kind::boolean) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        throw std::invalid_argument("flag --" + name + " requires a value");
      }
    }
    // Validate the textual form eagerly so errors surface at parse time.
    try {
      switch (f.type) {
        case kind::integer: (void)std::stoll(*value); break;
        case kind::real: (void)std::stod(*value); break;
        case kind::boolean:
          if (*value != "true" && *value != "false") {
            throw std::invalid_argument("bad bool");
          }
          break;
        case kind::string: break;
      }
    } catch (const std::exception&) {
      throw std::invalid_argument("flag --" + name + ": cannot parse '" +
                                  *value + "' as " +
                                  kind_name(static_cast<int>(f.type)));
    }
    f.value = *value;
    f.supplied = true;
  }
  return true;
}

const arg_parser::flag& arg_parser::find(std::string_view name,
                                         kind expected) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::invalid_argument("flag not registered: " + std::string(name));
  }
  if (it->second.type != expected) {
    throw std::invalid_argument("flag type mismatch for: " + std::string(name));
  }
  return it->second;
}

const std::string& arg_parser::get_string(std::string_view name) const {
  return find(name, kind::string).value;
}

std::int64_t arg_parser::get_int(std::string_view name) const {
  return std::stoll(find(name, kind::integer).value);
}

double arg_parser::get_double(std::string_view name) const {
  return std::stod(find(name, kind::real).value);
}

bool arg_parser::get_bool(std::string_view name) const {
  return find(name, kind::boolean).value == "true";
}

bool arg_parser::was_supplied(std::string_view name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::invalid_argument("flag not registered: " + std::string(name));
  }
  return it->second.supplied;
}

std::string arg_parser::usage() const {
  std::ostringstream out;
  out << description_ << "\n\nFlags:\n";
  for (const auto& [name, f] : flags_) {
    out << "  --" << name << " (" << kind_name(static_cast<int>(f.type))
        << ", default: " << f.value << ")\n      " << f.help << "\n";
  }
  return out.str();
}

}  // namespace bes
