#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace bes {

namespace {

[[noreturn]] void type_error(const char* wanted) {
  throw std::runtime_error(std::string("json: value is not ") + wanted);
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no inf/nan; the eval metrics are all finite by construction,
    // so treat an escapee as the bug it is rather than emitting null.
    throw std::runtime_error("json: non-finite number");
  }
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof buf, d);
  out.append(buf, result.ptr);
}

// Deepest object/array nesting parse() accepts. The parser recurses per
// level, so without a cap a hostile/corrupt report of a few kilobytes
// ("[[[[[…") can overflow the stack; 256 is far beyond any real report
// (the eval files nest 4 deep) while keeping worst-case stack use trivial.
constexpr int max_parse_depth = 256;

class parser {
 public:
  explicit parser(std::string_view text) : text_(text) {}

  json_value parse_document() {
    json_value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json: " + std::string(what) + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  json_value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return json_value(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return json_value(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return json_value(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return json_value(nullptr);
    }
    return parse_number();
  }

  // Balances the ++depth_ of parse_object/parse_array on every exit path
  // (including the throwing ones, where the parse is abandoned anyway).
  struct depth_guard {
    int& depth;
    ~depth_guard() { --depth; }
  };

  json_value parse_object() {
    if (++depth_ > max_parse_depth) fail("nesting too deep");
    depth_guard guard{depth_};
    expect('{');
    json_value::object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return json_value(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return json_value(std::move(members));
    }
  }

  json_value parse_array() {
    if (++depth_ > max_parse_depth) fail("nesting too deep");
    depth_guard guard{depth_};
    expect('[');
    json_value::array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return json_value(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return json_value(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        // RFC 8259: control characters MUST be escaped inside strings. A
        // raw one here means truncation/corruption (or an embedded NUL
        // aimed at whatever consumes the string later) — fail closed.
        if (static_cast<unsigned char>(c) < 0x20) {
          --pos_;
          fail("unescaped control character in string");
        }
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The report writer only escapes control characters; decode the
          // BMP code point as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  json_value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    double d = 0.0;
    const auto result =
        std::from_chars(text_.data() + start, text_.data() + pos_, d);
    if (result.ec != std::errc{} || result.ptr != text_.data() + pos_ ||
        start == pos_) {
      pos_ = start;
      fail("bad number");
    }
    return json_value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void dump_to(const json_value& v, std::string& out, int indent, int depth);

void append_newline(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

void dump_to(const json_value& v, std::string& out, int indent, int depth) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    append_number(out, v.as_number());
  } else if (v.is_string()) {
    append_escaped(out, v.as_string());
  } else if (v.is_array()) {
    const auto& items = v.as_array();
    if (items.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out += ',';
      append_newline(out, indent, depth + 1);
      dump_to(items[i], out, indent, depth + 1);
    }
    append_newline(out, indent, depth);
    out += ']';
  } else {
    const auto& members = v.as_object();
    if (members.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i > 0) out += ',';
      append_newline(out, indent, depth + 1);
      append_escaped(out, members[i].first);
      out += indent < 0 ? ":" : ": ";
      dump_to(members[i].second, out, indent, depth + 1);
    }
    append_newline(out, indent, depth);
    out += '}';
  }
}

}  // namespace

bool json_value::as_bool() const {
  if (!is_bool()) type_error("a bool");
  return std::get<bool>(value_);
}

double json_value::as_number() const {
  if (!is_number()) type_error("a number");
  return std::get<double>(value_);
}

const std::string& json_value::as_string() const {
  if (!is_string()) type_error("a string");
  return std::get<std::string>(value_);
}

const json_value::array& json_value::as_array() const {
  if (!is_array()) type_error("an array");
  return std::get<array>(value_);
}

const json_value::object& json_value::as_object() const {
  if (!is_object()) type_error("an object");
  return std::get<object>(value_);
}

const json_value* json_value::find(std::string_view key) const {
  if (!is_object()) type_error("an object");
  for (const auto& [name, value] : std::get<object>(value_)) {
    if (name == key) return &value;
  }
  return nullptr;
}

const json_value& json_value::get(std::string_view key) const {
  const json_value* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("json: missing key '" + std::string(key) + "'");
  }
  return *v;
}

void json_value::set(std::string key, json_value value) {
  if (!is_object()) {
    if (is_null()) value_ = object{};
    else type_error("an object");
  }
  std::get<object>(value_).emplace_back(std::move(key), std::move(value));
}

std::string json_value::dump(int indent) const {
  std::string out;
  dump_to(*this, out, indent, 0);
  if (indent >= 0) out += '\n';
  return out;
}

json_value json_value::parse(std::string_view text) {
  return parser(text).parse_document();
}

}  // namespace bes
