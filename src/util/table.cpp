#include "util/table.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace bes {

text_table::text_table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("text_table: need at least one column");
  }
}

void text_table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("text_table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string text_table::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << std::string(width[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) out << "  ";
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt_double(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

}  // namespace bes
