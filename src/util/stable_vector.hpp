// An append-only vector whose elements NEVER move: storage is a chain of
// geometrically growing chunks behind a small fixed directory of atomic
// pointers, so a push never reallocates earlier elements. This is what lets
// live ingest (db/database.hpp) publish records to concurrent scans — a scan
// holding `const db_record&` stays valid across any number of later adds,
// which a std::vector cannot promise across a reallocation.
//
// Concurrency contract (single-writer / many-reader):
//   - One writer at a time may call stage()/commit()/push_back()/reserve()
//     (callers serialize writers externally; image_database uses a mutex).
//   - Any number of readers may concurrently call size(), operator[], and
//     iterate — they observe the committed prefix only. Publication is a
//     release store of the size counter after the element (and its chunk
//     pointer) are fully written; readers acquire the counter, so every
//     element below the size they read is fully constructed.
//   - stage() writes the NEXT slot without publishing it; commit() makes it
//     visible. If the caller throws between the two (e.g. an index update
//     fails), the staged slot is simply overwritten by the next stage() —
//     the strong exception guarantee for "append record + update index"
//     falls out of the ordering.
//   - Move construction/assignment and the destructor are NOT thread-safe;
//     quiesce readers first (loaders move databases before any scan exists).
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <iterator>
#include <stdexcept>
#include <utility>

namespace bes {

template <typename T>
class stable_vector {
  // Chunk k holds (64 << k) elements; 30 chunks cover ~2^36 elements, far
  // past the u32 image_id space, for a 240-byte directory.
  static constexpr std::size_t base_log2 = 6;
  static constexpr std::size_t max_chunks = 30;

 public:
  stable_vector() = default;

  stable_vector(stable_vector&& other) noexcept { steal(other); }

  stable_vector& operator=(stable_vector&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }

  stable_vector(const stable_vector&) = delete;
  stable_vector& operator=(const stable_vector&) = delete;

  ~stable_vector() { release(); }

  [[nodiscard]] std::size_t size() const noexcept {
    return size_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    std::size_t chunk = 0;
    std::size_t offset = 0;
    locate(i, chunk, offset);
    return chunks_[chunk].load(std::memory_order_acquire)[offset];
  }

  // Writer-side mutable access (e.g. marking a tombstone epoch in place).
  [[nodiscard]] T& mutable_ref(std::size_t i) noexcept {
    std::size_t chunk = 0;
    std::size_t offset = 0;
    locate(i, chunk, offset);
    return chunks_[chunk].load(std::memory_order_relaxed)[offset];
  }

  [[nodiscard]] const T& front() const noexcept { return (*this)[0]; }
  [[nodiscard]] const T& back() const noexcept { return (*this)[size() - 1]; }

  // Writes `value` into the slot that the NEXT commit() publishes and
  // returns it. The slot is invisible to readers until commit(); calling
  // stage() again before commit() overwrites it.
  T& stage(T value) {
    const std::size_t i = size_.load(std::memory_order_relaxed);
    T* slot = slot_for(i);
    *slot = std::move(value);
    return *slot;
  }

  // Publishes the staged slot (release: readers that see the new size see
  // the fully written element and its chunk pointer).
  void commit() noexcept {
    size_.store(size_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

  void push_back(T value) {
    stage(std::move(value));
    commit();
  }

  // Preallocates chunks covering `n` elements so a bulk load never pauses to
  // allocate. Throws std::length_error past the directory's capacity (a
  // deliberate clean failure for absurd requests — nothing is allocated).
  void reserve(std::size_t n) {
    if (n == 0) return;
    if (n > max_size()) {
      throw std::length_error("stable_vector: reserve beyond capacity");
    }
    std::size_t chunk = 0;
    std::size_t offset = 0;
    locate(n - 1, chunk, offset);
    for (std::size_t k = 0; k <= chunk; ++k) (void)ensure_chunk(k);
  }

  [[nodiscard]] static constexpr std::size_t max_size() noexcept {
    return ((std::size_t{1} << max_chunks) - 1) << base_log2;
  }

  // Forward const iterator over the prefix committed when begin()/end() were
  // taken; safe to use while a writer keeps appending.
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = const T*;
    using reference = const T&;

    const_iterator() = default;
    const_iterator(const stable_vector* v, std::size_t i) : v_(v), i_(i) {}

    reference operator*() const noexcept { return (*v_)[i_]; }
    pointer operator->() const noexcept { return &(*v_)[i_]; }
    const_iterator& operator++() noexcept {
      ++i_;
      return *this;
    }
    const_iterator operator++(int) noexcept {
      const_iterator old = *this;
      ++i_;
      return old;
    }
    friend bool operator==(const const_iterator& a,
                           const const_iterator& b) noexcept {
      return a.i_ == b.i_;
    }

   private:
    const stable_vector* v_ = nullptr;
    std::size_t i_ = 0;
  };

  [[nodiscard]] const_iterator begin() const noexcept {
    return const_iterator(this, 0);
  }
  [[nodiscard]] const_iterator end() const noexcept {
    return const_iterator(this, size());
  }

 private:
  static void locate(std::size_t i, std::size_t& chunk,
                     std::size_t& offset) noexcept {
    const std::size_t q = (i >> base_log2) + 1;
    chunk = static_cast<std::size_t>(std::bit_width(q)) - 1;
    offset = i - (((std::size_t{1} << chunk) - 1) << base_log2);
  }

  T* ensure_chunk(std::size_t k) {
    T* chunk = chunks_[k].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new T[std::size_t{1} << (base_log2 + k)]();
      // Release so a reader that acquires a later size() sees the pointer.
      chunks_[k].store(chunk, std::memory_order_release);
    }
    return chunk;
  }

  T* slot_for(std::size_t i) {
    if (i >= max_size()) {
      throw std::length_error("stable_vector: capacity exhausted");
    }
    std::size_t chunk = 0;
    std::size_t offset = 0;
    locate(i, chunk, offset);
    return ensure_chunk(chunk) + offset;
  }

  void steal(stable_vector& other) noexcept {
    for (std::size_t k = 0; k < max_chunks; ++k) {
      chunks_[k].store(other.chunks_[k].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      other.chunks_[k].store(nullptr, std::memory_order_relaxed);
    }
    size_.store(other.size_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    other.size_.store(0, std::memory_order_relaxed);
  }

  void release() noexcept {
    for (std::size_t k = 0; k < max_chunks; ++k) {
      delete[] chunks_[k].load(std::memory_order_relaxed);
      chunks_[k].store(nullptr, std::memory_order_relaxed);
    }
    size_.store(0, std::memory_order_relaxed);
  }

  std::atomic<T*> chunks_[max_chunks] = {};
  std::atomic<std::size_t> size_{0};
};

}  // namespace bes
