#include "util/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace bes {

unsigned hardware_threads() noexcept {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(unsigned, std::size_t)>& fn,
                  std::size_t chunk) {
  if (count == 0) return;
  if (chunk == 0) chunk = 1;
  if (threads <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(0, i);
    return;
  }
  const unsigned workers = parallel_workers(count, threads);

  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> abort{false};
  std::exception_ptr first_error;
  std::size_t first_error_index = 0;
  std::mutex error_mutex;

  auto worker = [&](unsigned me) {
    // The abort flag stops HEALTHY workers once any worker has thrown:
    // without it they would keep draining the cursor and run fn on every
    // remaining index while the exception waits for the join below.
    while (!abort.load(std::memory_order_relaxed)) {
      const std::size_t begin = cursor.fetch_add(chunk);
      if (begin >= count) return;
      const std::size_t end = std::min(begin + chunk, count);
      for (std::size_t i = begin; i < end; ++i) {
        if (abort.load(std::memory_order_relaxed)) return;
        try {
          fn(me, i);
        } catch (...) {
          // Workers that throw AFTER the abort flag is up (their fn was
          // already in flight when a sibling failed) must neither swallow
          // their exception nor race it: every thrown exception is
          // recorded, and the one from the LOWEST index wins — the same
          // exception a serial loop over [0, count) would have surfaced —
          // so which worker reached the error lock first never changes
          // what the caller sees.
          std::lock_guard lock(error_mutex);
          if (!first_error || i < first_error_index) {
            first_error = std::current_exception();
            first_error_index = i;
          }
          abort.store(true, std::memory_order_relaxed);
          return;
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker, t);
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t chunk) {
  parallel_for(
      count, threads, [&fn](unsigned, std::size_t i) { fn(i); }, chunk);
}

}  // namespace bes
