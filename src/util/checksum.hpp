// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven and incremental.
//
// The persistence layer stamps every on-disk record with a CRC so byte
// corruption fails closed at load time instead of materializing a silently
// wrong database. A single flipped byte always changes the CRC, which is the
// property the storage fuzz battery leans on.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bes {

// CRC of `size` bytes starting at `data`. Chain blocks by feeding the
// previous result back in as `seed` (the default seed starts a fresh CRC).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0) noexcept;

}  // namespace bes
