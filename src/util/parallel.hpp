// Thread-parallel index loop used by the database scan path.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>

namespace bes {

// Invokes fn(i) for every i in [0, count), distributing indices over up to
// `threads` worker threads (dynamic chunking over an atomic cursor, so skewed
// per-item costs still balance). threads <= 1 runs inline on the caller.
//
// `chunk` is how many consecutive indices a worker claims per fetch of the
// atomic cursor. The default 16 suits scans of thousands of cheap items;
// pass 1 when each item is itself expensive and skewed (a whole query of a
// batch, a whole shard of a fan-out) so one slow item can never strand a
// tail of work behind it. The result of fn is chunk-invariant by contract;
// only scheduling changes.
//
// fn must be safe to invoke concurrently from multiple threads for distinct
// indices. Exceptions thrown by fn are captured and exactly one is rethrown
// on the caller thread after all workers join: when several in-flight
// invocations throw concurrently (including ones that throw after the abort
// flag is already up), the exception from the LOWEST index wins,
// deterministically — none is ever swallowed or allowed to escape a worker
// thread into std::terminate. A throw also trips an abort flag checked
// before every invocation, so remaining work is cancelled best-effort:
// in-flight fn calls finish, at most a bounded handful of further calls
// start, and indices are NOT guaranteed to have been visited once any fn
// has thrown.
void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t chunk = 16);

// Worker-indexed variant: fn(worker, i) with a worker id that is stable for
// the whole call and dense in [0, parallel_workers(count, threads)). Lets a
// caller hand each worker its own reusable scratch (an lcs_context, a local
// accumulator) looked up once per item by index — no thread_local access,
// no sharing between concurrent workers. The inline (threads <= 1) path
// always reports worker 0.
void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(unsigned, std::size_t)>& fn,
                  std::size_t chunk = 16);

// Number of distinct worker ids the indexed overload can observe: 0 when
// there is no work, else min(max(threads, 1), count). Size per-worker state
// with this.
[[nodiscard]] constexpr unsigned parallel_workers(std::size_t count,
                                                  unsigned threads) noexcept {
  if (count == 0) return 0;
  const std::size_t cap = threads == 0 ? 1 : threads;
  return static_cast<unsigned>(std::min<std::size_t>(cap, count));
}

// Number of hardware threads, never less than 1.
unsigned hardware_threads() noexcept;

}  // namespace bes
