// Thread-parallel index loop used by the database scan path.
#pragma once

#include <cstddef>
#include <functional>

namespace bes {

// Invokes fn(i) for every i in [0, count), distributing indices over up to
// `threads` worker threads (dynamic chunking over an atomic cursor, so skewed
// per-item costs still balance). threads <= 1 runs inline on the caller.
//
// fn must be safe to invoke concurrently from multiple threads for distinct
// indices. Exceptions thrown by fn are captured and the first one is
// rethrown on the caller thread after all workers join.
void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t)>& fn);

// Number of hardware threads, never less than 1.
unsigned hardware_threads() noexcept;

}  // namespace bes
