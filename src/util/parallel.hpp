// Thread-parallel index loop used by the database scan path.
#pragma once

#include <cstddef>
#include <functional>

namespace bes {

// Invokes fn(i) for every i in [0, count), distributing indices over up to
// `threads` worker threads (dynamic chunking over an atomic cursor, so skewed
// per-item costs still balance). threads <= 1 runs inline on the caller.
//
// `chunk` is how many consecutive indices a worker claims per fetch of the
// atomic cursor. The default 16 suits scans of thousands of cheap items;
// pass 1 when each item is itself expensive and skewed (a whole query of a
// batch, a whole shard of a fan-out) so one slow item can never strand a
// tail of work behind it. The result of fn is chunk-invariant by contract;
// only scheduling changes.
//
// fn must be safe to invoke concurrently from multiple threads for distinct
// indices. Exceptions thrown by fn are captured and the first one is
// rethrown on the caller thread after all workers join.
void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t chunk = 16);

// Number of hardware threads, never less than 1.
unsigned hardware_threads() noexcept;

}  // namespace bes
