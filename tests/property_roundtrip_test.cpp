// Round-trip property: encode -> serialize -> parse reproduces the original
// BE-string pair exactly, for 100 seeded random scenes spanning the
// generator's modes (repeated symbols, grid snapping, disjoint placement).
#include <gtest/gtest.h>

#include <cstdint>

#include "core/encoder.hpp"
#include "core/serializer.hpp"
#include "support/test_support.hpp"
#include "util/rng.hpp"

namespace bes {
namespace {

using testsupport::be_string_invariants;
using testsupport::make_scene;
using testsupport::scene_opts;

// Scene shape varies with the seed so the sweep covers empty scenes, dense
// ties (grid mode), and unique-symbol pictures.
scene_opts opts_for_seed(std::uint64_t seed) {
  rng r(seed ^ 0xabcdef12345678ull);
  scene_opts opts;
  opts.object_count = static_cast<std::size_t>(r.uniform_int(0, 24));
  opts.domain = r.chance(0.3) ? 32 : 256;
  opts.grid = r.chance(0.4) ? 8 : 0;
  opts.unique_symbols = r.chance(0.25);
  return opts;
}

class RoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTrip, SerializeParseReproducesBeString) {
  alphabet names;
  const symbolic_image scene = make_scene(GetParam(), names, opts_for_seed(GetParam()));
  const be_string2d original = encode(scene);
  ASSERT_TRUE(be_string_invariants(original, scene.size()));

  const std::string text = to_text(original, names);
  const be_string2d reparsed = parse_be_string(text, names);
  EXPECT_EQ(reparsed, original);
  // Serialization is canonical: a second trip emits byte-identical text.
  EXPECT_EQ(to_text(reparsed, names), text);
}

TEST_P(RoundTrip, SurvivesAFreshAlphabet) {
  // Parsing into an empty alphabet interns symbols in first-seen order; the
  // result must still print back to the same text even though ids may differ.
  alphabet names;
  const symbolic_image scene = make_scene(GetParam(), names, opts_for_seed(GetParam()));
  const be_string2d original = encode(scene);
  const std::string text = to_text(original, names);

  alphabet fresh;
  const be_string2d reparsed = parse_be_string(text, fresh);
  EXPECT_EQ(to_text(reparsed, fresh), text);
  EXPECT_TRUE(be_string_invariants(reparsed, scene.size()));
}

TEST_P(RoundTrip, AxisRoundTripMatchesPairRoundTrip) {
  alphabet names;
  const symbolic_image scene = make_scene(GetParam(), names, opts_for_seed(GetParam()));
  const be_string2d original = encode(scene);
  EXPECT_EQ(parse_axis(to_text(original.x, names), names), original.x);
  EXPECT_EQ(parse_axis(to_text(original.y, names), names), original.y);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip,
                         ::testing::Range<std::uint64_t>(0, 100));

}  // namespace
}  // namespace bes
