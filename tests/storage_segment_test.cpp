// The BSEG1 binary segment format (db/segment.hpp): round-trip equality,
// edge cases, convert idempotence, append mode, the lazy reader, and the
// committed golden fixture that locks the format against version drift.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/encoder.hpp"
#include "db/compaction.hpp"
#include "db/group_commit.hpp"
#include "db/query.hpp"
#include "db/segment.hpp"
#include "db/storage.hpp"
#include "support/test_support.hpp"
#include "util/checksum.hpp"

namespace bes {
namespace {

namespace fs = std::filesystem;

fs::path temp_file(const char* stem) {
  return fs::temp_directory_path() /
         (std::string("bestring_seg_") + stem + "_" + std::to_string(::getpid()));
}

std::string read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::string out((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return out;
}

// A mixed seeded database: repeated symbols, names with spaces, and one
// 0-icon image.
image_database seeded_db(std::size_t images = 10) {
  image_database db;
  for (std::size_t i = 0; i < images; ++i) {
    testsupport::scene_opts opts;
    opts.object_count = 3 + i % 5;
    db.add("scene " + std::to_string(i),
           testsupport::make_scene(i + 1, db.symbols(), opts));
  }
  db.add("blank", symbolic_image(40, 30));  // 0-icon edge case
  return db;
}

void expect_equal_dbs(const image_database& actual,
                      const image_database& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  EXPECT_EQ(actual.symbols().names(), expected.symbols().names());
  EXPECT_EQ(actual.tombstone_count(), expected.tombstone_count());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const auto id = static_cast<image_id>(i);
    EXPECT_EQ(actual.record(id).name, expected.record(id).name);
    EXPECT_EQ(actual.record(id).image, expected.record(id).image);
    EXPECT_EQ(actual.record(id).strings, expected.record(id).strings);
    EXPECT_EQ(actual.record(id).histograms, expected.record(id).histograms);
    EXPECT_EQ(actual.removed(id), expected.removed(id)) << "record " << i;
  }
}

// ------------------------------------------------------------- round trips

TEST(Segment, SaveLoadRoundTrip) {
  const image_database db = seeded_db();
  const auto path = temp_file("roundtrip");
  save_database(db, path, db_format::binary);
  const image_database loaded = load_database(path);  // autodetects BSEG1
  expect_equal_dbs(loaded, db);
  // The decisive property: the loaded strings are byte-identical to a fresh
  // re-encode of the loaded icons — yet the loader never ran the encoder.
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    const auto id = static_cast<image_id>(i);
    EXPECT_EQ(loaded.record(id).strings, encode(loaded.record(id).image));
  }
  fs::remove(path);
}

TEST(Segment, EmptyDatabaseRoundTrips) {
  const image_database db;
  const auto path = temp_file("empty");
  save_database(db, path, db_format::binary);
  const image_database loaded = load_database(path);
  EXPECT_EQ(loaded.size(), 0u);
  EXPECT_EQ(loaded.symbols().size(), 0u);
  fs::remove(path);
}

TEST(Segment, ZeroIconImageRoundTrips) {
  image_database db;
  db.add("void", symbolic_image(7, 5));
  const auto path = temp_file("zeroicon");
  save_database(db, path, db_format::binary);
  const image_database loaded = load_database(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_TRUE(loaded.record(0).image.empty());
  EXPECT_EQ(loaded.record(0).image.width(), 7);
  EXPECT_EQ(loaded.record(0).image.height(), 5);
  // A 0-icon axis is the single-dummy string.
  EXPECT_EQ(loaded.record(0).strings.x.size(), 1u);
  EXPECT_EQ(loaded.record(0).strings, db.record(0).strings);
  fs::remove(path);
}

TEST(Segment, LoadedDatabaseAnswersQueriesIdentically) {
  const image_database db = seeded_db();
  const auto path = temp_file("queries");
  save_database(db, path, db_format::binary);
  const image_database loaded = load_database(path);
  const symbolic_image& query = db.record(4).image;
  EXPECT_EQ(search(db, query), search(loaded, query));
  fs::remove(path);
}

TEST(Segment, ConvertIsIdempotentBothWays) {
  const image_database db = seeded_db(6);
  const auto text1 = temp_file("conv_t1");
  const auto bin1 = temp_file("conv_b1");
  const auto text2 = temp_file("conv_t2");
  const auto bin2 = temp_file("conv_b2");
  save_database(db, text1, db_format::text);
  // text -> binary -> text reproduces the text file byte for byte...
  save_database(load_database(text1), bin1, db_format::binary);
  save_database(load_database(bin1), text2, db_format::text);
  EXPECT_EQ(read_bytes(text1), read_bytes(text2));
  // ...and binary -> text -> binary reproduces the segment byte for byte.
  save_database(load_database(text2), bin2, db_format::binary);
  EXPECT_EQ(read_bytes(bin1), read_bytes(bin2));
  for (const auto& p : {text1, bin1, text2, bin2}) fs::remove(p);
}

// ------------------------------------------------------------- append mode

TEST(Segment, AppendContinuesAnExistingSegment) {
  image_database db = seeded_db(3);
  const auto path = temp_file("append");
  {
    segment_writer writer(path);
    for (const db_record& rec : db.records()) writer.append(rec, db.symbols());
    writer.finish();
  }
  // Grow the database (new symbols force a fresh delta record), then append
  // only the new records.
  const std::size_t already = db.size();
  testsupport::scene_opts opts;
  opts.symbol_pool = 12;  // wider pool => new names to intern
  db.add("late 0", testsupport::make_scene(77, db.symbols(), opts));
  db.add("late 1", testsupport::make_scene(78, db.symbols(), opts));
  {
    segment_writer writer(path, /*append=*/true);
    EXPECT_EQ(writer.images_written(), already);
    for (std::size_t i = already; i < db.size(); ++i) {
      writer.append(db.record(static_cast<image_id>(i)), db.symbols());
    }
    writer.finish();
  }
  expect_equal_dbs(load_database(path), db);
  fs::remove(path);
}

TEST(Segment, AppendToCorruptSegmentRefuses) {
  const auto path = temp_file("append_bad");
  {
    std::ofstream out(path, std::ios::binary);
    out << "BSEG1\nnot really a segment";
  }
  EXPECT_THROW(segment_writer(path, /*append=*/true), std::runtime_error);
  fs::remove(path);
}

// --------------------------------------------------------------- tombstones

TEST(SegmentTombstones, BinaryRoundTripPreservesDeletes) {
  image_database db = seeded_db(8);
  ASSERT_TRUE(db.remove(1));
  ASSERT_TRUE(db.remove(5));
  const auto path = temp_file("tomb_bin");
  save_database(db, path, db_format::binary);
  const image_database loaded = load_database(path);
  expect_equal_dbs(loaded, db);
  EXPECT_EQ(loaded.tombstone_count(), 2u);
  EXPECT_TRUE(loaded.removed(1));
  EXPECT_TRUE(loaded.removed(5));
  // Searches skip the dead records exactly as on the source database.
  EXPECT_EQ(search(loaded, db.record(2).image), search(db, db.record(2).image));
  // Save -> load -> save is byte-stable with tombstones present.
  const auto again = temp_file("tomb_bin2");
  save_database(loaded, again, db_format::binary);
  EXPECT_EQ(read_bytes(again), read_bytes(path));
  fs::remove(path);
  fs::remove(again);
}

TEST(SegmentTombstones, TextRoundTripUsesVersion3OnlyWhenNeeded) {
  image_database db = seeded_db(6);
  const auto clean = temp_file("tomb_text_clean");
  save_database(db, clean, db_format::text);
  // No deletes: the header (and so the whole file) stays version 2.
  EXPECT_EQ(read_bytes(clean).substr(0, 8), "BESDB 2\n");

  ASSERT_TRUE(db.remove(3));
  const auto dirty = temp_file("tomb_text");
  save_database(db, dirty, db_format::text);
  EXPECT_EQ(read_bytes(dirty).substr(0, 8), "BESDB 3\n");
  const image_database loaded = load_database(dirty);
  expect_equal_dbs(loaded, db);
  EXPECT_TRUE(loaded.removed(3));
  // Tombstones survive a text -> binary -> text conversion chain.
  const auto bin = temp_file("tomb_text_bin");
  save_database(loaded, bin, db_format::binary);
  const auto text2 = temp_file("tomb_text2");
  save_database(load_database(bin), text2, db_format::text);
  EXPECT_EQ(read_bytes(text2), read_bytes(dirty));
  for (const auto& p : {clean, dirty, bin, text2}) fs::remove(p);
}

TEST(SegmentTombstones, TextLoaderRejectsBadTombstoneSections) {
  image_database db = seeded_db(4);
  ASSERT_TRUE(db.remove(0));
  const auto path = temp_file("tomb_text_bad");
  save_database(db, path, db_format::text);
  const std::string good = read_bytes(path);

  // An id past the image count fails closed.
  std::string out_of_range = good;
  const auto at = out_of_range.rfind("tombstones 1\n0\n");
  ASSERT_NE(at, std::string::npos);
  out_of_range.replace(at, std::string("tombstones 1\n0\n").size(),
                       "tombstones 1\n99\n");
  const auto bad1 = temp_file("tomb_text_bad1");
  {
    std::ofstream out(bad1, std::ios::binary);
    out << out_of_range;
  }
  EXPECT_THROW((void)load_database(bad1), std::runtime_error);

  // A repeated id fails closed (remove() reports the duplicate).
  std::string duplicated = good;
  duplicated.replace(at, std::string("tombstones 1\n0\n").size(),
                     "tombstones 2\n0\n0\n");
  const auto bad2 = temp_file("tomb_text_bad2");
  {
    std::ofstream out(bad2, std::ios::binary);
    out << duplicated;
  }
  EXPECT_THROW((void)load_database(bad2), std::runtime_error);

  // A version-2 file with a trailing tombstones section fails closed.
  std::string wrong_version = good;
  wrong_version.replace(0, 8, "BESDB 2\n");
  const auto bad3 = temp_file("tomb_text_bad3");
  {
    std::ofstream out(bad3, std::ios::binary);
    out << wrong_version;
  }
  EXPECT_THROW((void)load_database(bad3), std::runtime_error);

  for (const auto& p : {path, bad1, bad2, bad3}) fs::remove(p);
}

TEST(SegmentTombstones, AppendTombstonesWritesDurableDeletes) {
  const image_database db = seeded_db(5);
  const auto path = temp_file("tomb_append");
  {
    segment_writer writer(path);
    for (const db_record& rec : db.records()) writer.append(rec, db.symbols());
    writer.finish();
  }
  // Reopen in append mode and tombstone two already-written records.
  {
    segment_writer writer(path, /*append=*/true);
    const std::uint64_t ordinals[] = {0, 3};
    writer.append_tombstones(ordinals);
    writer.finish();
  }
  const segment_reader reader(path);
  EXPECT_EQ(reader.tombstones(), (std::vector<std::uint64_t>{0, 3}));
  EXPECT_TRUE(reader.image_tombstoned(0));
  EXPECT_FALSE(reader.image_tombstoned(1));
  const image_database loaded = load_segment(path);
  EXPECT_EQ(loaded.tombstone_count(), 2u);
  EXPECT_TRUE(loaded.removed(0));
  EXPECT_TRUE(loaded.removed(3));

  // Validation: out-of-range ordinals, already-dead ordinals, and in-batch
  // duplicates all throw — and a throwing batch writes nothing.
  {
    segment_writer writer(path, /*append=*/true);
    const std::uint64_t past[] = {99};
    EXPECT_THROW(writer.append_tombstones(past), std::runtime_error);
    const std::uint64_t twice[] = {0};
    EXPECT_THROW(writer.append_tombstones(twice), std::runtime_error);
    const std::uint64_t dup[] = {2, 2};
    EXPECT_THROW(writer.append_tombstones(dup), std::runtime_error);
    writer.finish();
  }
  EXPECT_EQ(load_segment(path).tombstone_count(), 2u);
  fs::remove(path);
}

TEST(SegmentTombstones, CompactFoldsDeletesAndRedensifiesIds) {
  image_database db = seeded_db(9);
  ASSERT_TRUE(db.remove(2));
  ASSERT_TRUE(db.remove(6));
  ASSERT_TRUE(db.remove(8));
  const auto path = temp_file("tomb_compact");
  save_database(db, path, db_format::binary);
  const auto before_bytes = fs::file_size(path);

  const compaction_stats stats = compact_segment(path);
  EXPECT_TRUE(stats.compacted);
  EXPECT_EQ(stats.records_before, db.size());
  EXPECT_EQ(stats.tombstones_folded, 3u);
  EXPECT_EQ(stats.records_after, db.size() - 3);
  EXPECT_EQ(stats.bytes_before, before_bytes);
  EXPECT_LT(stats.bytes_after, stats.bytes_before);

  const image_database compacted = load_database(path);
  ASSERT_EQ(compacted.size(), db.size() - 3);
  EXPECT_EQ(compacted.tombstone_count(), 0u);
  // Live records keep their order under the re-densified ids.
  std::size_t next = 0;
  for (std::size_t i = 0; i < db.size(); ++i) {
    const auto id = static_cast<image_id>(i);
    if (db.removed(id)) continue;
    const auto new_id = static_cast<image_id>(next++);
    EXPECT_EQ(compacted.record(new_id).name, db.record(id).name);
    EXPECT_EQ(compacted.record(new_id).strings, db.record(id).strings);
  }
  fs::remove(path);
}

// ------------------------------------------------------------- group commit

TEST(GroupCommit, AsyncDeletesCoalesceIntoOneDurableRecord) {
  const image_database db = seeded_db(8);
  const auto path = temp_file("gc_coalesce");
  {
    segment_writer writer(path);
    for (const db_record& rec : db.records()) writer.append(rec, db.symbols());
    writer.finish();
  }
  {
    segment_writer writer(path, /*append=*/true);
    // A generous window so all four enqueues land in the same batch.
    tombstone_group_commit commit(
        writer, {.window = std::chrono::milliseconds(250), .max_batch = 0});
    commit.remove_async(1);
    commit.remove_async(4);
    commit.remove_async(6);
    commit.remove_async(2);
    commit.flush();
    const group_commit_stats stats = commit.stats();
    EXPECT_EQ(stats.deletes, 4u);
    EXPECT_EQ(stats.records, 1u);  // ONE type-4 record for the whole batch
    EXPECT_EQ(stats.syncs, 1u);
    writer.finish();
  }
  const segment_reader reader(path);
  EXPECT_EQ(reader.tombstones(), (std::vector<std::uint64_t>{1, 2, 4, 6}));
  fs::remove(path);
}

TEST(GroupCommit, ConcurrentBlockingProducersAreAllDurableAndCoalesced) {
  constexpr std::size_t kImages = 24;
  const image_database db = seeded_db(kImages);
  const auto path = temp_file("gc_race");
  {
    segment_writer writer(path);
    for (const db_record& rec : db.records()) writer.append(rec, db.symbols());
    writer.finish();
  }
  group_commit_stats stats;
  {
    segment_writer writer(path, /*append=*/true);
    tombstone_group_commit commit(
        writer, {.window = std::chrono::milliseconds(5)});
    // Every producer's remove() blocks until its batch is fsynced, so after
    // the joins each ordinal is already durable.
    std::vector<std::thread> producers;
    for (std::size_t t = 0; t < 4; ++t) {
      producers.emplace_back([&commit, t] {
        for (std::uint64_t ordinal = t; ordinal < kImages; ordinal += 4) {
          commit.remove(ordinal);
        }
      });
    }
    for (std::thread& thread : producers) thread.join();
    stats = commit.stats();
    writer.finish();
  }
  EXPECT_EQ(stats.deletes, kImages);
  EXPECT_EQ(stats.records, stats.syncs);
  // Coalescing is timing-dependent, but 24 deletes racing into 5ms windows
  // must not degenerate to one record each.
  EXPECT_LT(stats.records, kImages);

  const segment_reader reader(path);
  std::vector<std::uint64_t> expected(kImages);
  for (std::size_t i = 0; i < kImages; ++i) expected[i] = i;
  EXPECT_EQ(reader.tombstones(), expected);
  fs::remove(path);
}

TEST(GroupCommit, ValidationThrowsEagerlyAndLeavesTheBatcherUsable) {
  const image_database db = seeded_db(5);
  const auto path = temp_file("gc_validate");
  {
    segment_writer writer(path);
    for (const db_record& rec : db.records()) writer.append(rec, db.symbols());
    writer.finish();
  }
  {
    segment_writer writer(path, /*append=*/true);
    tombstone_group_commit commit(writer);
    // Out-of-range and duplicate ordinals throw on the calling thread,
    // before anything is queued; the batcher keeps working afterwards.
    EXPECT_THROW(commit.remove(99), std::runtime_error);
    commit.remove_async(3);
    EXPECT_THROW(commit.remove_async(3), std::runtime_error);
    commit.remove(1);
    EXPECT_EQ(commit.stats().deletes, 2u);
    writer.finish();
  }
  EXPECT_EQ(segment_reader(path).tombstones(),
            (std::vector<std::uint64_t>{1, 3}));
  fs::remove(path);
}

TEST(GroupCommit, BlockingRemoveIsDurableBeforeFinish) {
  const image_database db = seeded_db(4);
  const auto path = temp_file("gc_durable");
  {
    segment_writer writer(path);
    for (const db_record& rec : db.records()) writer.append(rec, db.symbols());
    writer.finish();
  }
  segment_writer writer(path, /*append=*/true);
  tombstone_group_commit commit(writer);
  commit.remove(2);
  // No finish() yet: the footer is missing, but the type-4 record must
  // already be on disk — exactly what a crash right now would leave behind.
  const segment_reader crashed(path, {.recover_tail = true});
  EXPECT_EQ(crashed.tombstones(), (std::vector<std::uint64_t>{2}));
  writer.finish();
  fs::remove(path);
}

// -------------------------------------------------------------- lazy reader

TEST(Segment, ReaderServesRandomAccessWithoutMaterializing) {
  const image_database db = seeded_db();
  const auto path = temp_file("lazy");
  save_database(db, path, db_format::binary);
  const segment_reader reader(path);
  EXPECT_FALSE(reader.recovered());
  ASSERT_EQ(reader.image_count(), db.size());
  EXPECT_EQ(reader.symbol_names(), db.symbols().names());
  // Read out of order: each record is an independent O(1) seek.
  for (const std::size_t i : {std::size_t{7}, std::size_t{0}, std::size_t{3}}) {
    const segment_image record = reader.read_image(i);
    const auto id = static_cast<image_id>(i);
    EXPECT_EQ(record.name, db.record(id).name);
    EXPECT_EQ(record.image, db.record(id).image);
    EXPECT_EQ(record.strings, db.record(id).strings);
    EXPECT_EQ(record.histograms, db.record(id).histograms);
  }
  EXPECT_THROW((void)reader.read_image(db.size()), std::out_of_range);
  fs::remove(path);
}

TEST(Segment, CorpusLoadBuildsSpatialIndexInSamePass) {
  const image_database db = seeded_db();
  const auto path = temp_file("corpus");
  save_database(db, path, db_format::binary);
  const loaded_corpus corpus = load_segment_corpus(path);
  expect_equal_dbs(*corpus.db, db);
  const spatial_index reference(db);
  EXPECT_EQ(corpus.spatial->indexed_icons(), reference.indexed_icons());
  const rect window = rect::checked(0, 64, 0, 64);
  EXPECT_EQ(corpus.spatial->images_overlapping(window),
            reference.images_overlapping(window));
  fs::remove(path);
}

// ---------------------------------------------------------------- integrity

TEST(Segment, MismatchedChecksumRejected) {
  const image_database db = seeded_db(4);
  const auto path = temp_file("tamper");
  save_database(db, path, db_format::binary);
  // Flip one byte in the middle of the file (inside some record payload)
  // without touching sizes: the per-record CRC must fail closed.
  std::string bytes = read_bytes(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW((void)load_database(path), std::runtime_error);
  fs::remove(path);
}

// Crafted (CRC-consistent) structural fields must fail closed too — these
// two lock the unsigned-overflow guards in the footer validation.

TEST(Segment, CraftedFooterOffsetFailsClosed) {
  const image_database db = seeded_db(3);
  const auto path = temp_file("evil_tail");
  save_database(db, path, db_format::binary);
  std::string bytes = read_bytes(path);
  // The tail's footer offset has no CRC; point it near 2^64 so an additive
  // range check would wrap. The loader must throw, not dereference it.
  const std::uint64_t evil = 0xFFFFFFFFFFFFFFD8ull;
  std::memcpy(bytes.data() + bytes.size() - 16, &evil, 8);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW((void)load_database(path), std::runtime_error);
  fs::remove(path);
}

TEST(Segment, CraftedFooterRecordCountFailsClosed) {
  const image_database db = seeded_db(3);
  const auto path = temp_file("evil_count");
  save_database(db, path, db_format::binary);
  std::string bytes = read_bytes(path);
  // Locate the footer record via the tail, bump record_count by 2^61 (which
  // keeps record_count * 8 + 24 equal mod 2^64), and refresh both CRCs so
  // only the overflow guard stands between the file and a giant reserve().
  std::uint64_t footer_at = 0;
  std::memcpy(&footer_at, bytes.data() + bytes.size() - 16, 8);
  std::uint32_t payload_bytes = 0;
  std::memcpy(&payload_bytes, bytes.data() + footer_at + 4, 4);
  char* payload = bytes.data() + footer_at + 16;
  std::uint64_t record_count = 0;
  std::memcpy(&record_count, payload + 16, 8);
  record_count += 1ull << 61;
  std::memcpy(payload + 16, &record_count, 8);
  const std::uint32_t payload_crc = crc32(payload, payload_bytes);
  std::memcpy(bytes.data() + footer_at + 8, &payload_crc, 4);
  const std::uint32_t header_crc = crc32(bytes.data() + footer_at, 12);
  std::memcpy(bytes.data() + footer_at + 12, &header_crc, 4);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW((void)load_database(path), std::runtime_error);
  // Recovery mode walks the records instead of trusting the footer, so it
  // either salvages the intact prefix or throws — never crashes.
  try {
    const image_database recovered =
        load_segment(path, segment_read_options{.recover_tail = true});
    EXPECT_LE(recovered.size(), db.size());
  } catch (const std::runtime_error&) {
  }
  fs::remove(path);
}

TEST(Segment, DetectFormatSeesBothMagics) {
  const image_database db = seeded_db(2);
  const auto text_path = temp_file("fmt_text");
  const auto bin_path = temp_file("fmt_bin");
  save_database(db, text_path, db_format::text);
  save_database(db, bin_path, db_format::binary);
  EXPECT_EQ(detect_format(text_path), db_format::text);
  EXPECT_EQ(detect_format(bin_path), db_format::binary);
  const auto junk = temp_file("fmt_junk");
  {
    std::ofstream out(junk);
    out << "neither format\n";
  }
  EXPECT_THROW((void)detect_format(junk), std::runtime_error);
  fs::remove(text_path);
  fs::remove(bin_path);
  fs::remove(junk);
}

// ------------------------------------------------------------ golden fixture

// The committed fixture database: hand-built (no RNG) so it never shifts
// under workload-generator changes. Covers repeated symbols, a name with a
// space, shared boundary coordinates, and a 0-icon image.
image_database golden_db() {
  image_database db;
  {
    symbolic_image meadow(32, 24);
    meadow.add(db.symbols().intern("tree"), rect::checked(2, 6, 3, 9));
    meadow.add(db.symbols().intern("house"), rect::checked(10, 20, 2, 12));
    meadow.add(db.symbols().intern("sky"), rect::checked(0, 32, 12, 24));
    db.add("meadow", std::move(meadow));
  }
  db.add("empty sky", symbolic_image(16, 16));
  {
    symbolic_image twins(24, 24);
    twins.add(db.symbols().id_of("tree"), rect::checked(2, 8, 2, 8));
    twins.add(db.symbols().id_of("tree"), rect::checked(2, 8, 10, 16));
    db.add("twins", std::move(twins));
  }
  {
    symbolic_image felled(20, 20);
    felled.add(db.symbols().id_of("tree"), rect::checked(1, 5, 1, 5));
    felled.add(db.symbols().intern("stump"), rect::checked(6, 9, 1, 3));
    db.add("felled", std::move(felled));
  }
  // One deleted image so the committed bytes pin the type-4 tombstone wire
  // format alongside the other record types.
  if (!db.remove(1)) std::abort();
  return db;
}

TEST(GoldenSegment, ReaderParsesCommittedFixtureBitExactly) {
  const fs::path golden_path = BES_GOLDEN_SEGMENT_PATH;
  const image_database expected = golden_db();
  if (std::getenv("BES_REGEN_GOLDEN") != nullptr) {
    save_database(expected, golden_path, db_format::binary);
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  ASSERT_TRUE(fs::exists(golden_path))
      << golden_path << " missing; run with BES_REGEN_GOLDEN=1 to create it";
  // Bit-exact both ways: today's reader materializes the committed bytes to
  // exactly the expected database, and today's writer reproduces the
  // committed bytes exactly. Either failing means the format drifted.
  expect_equal_dbs(load_database(golden_path), expected);
  const auto rewritten = temp_file("golden_rewrite");
  save_database(expected, rewritten, db_format::binary);
  EXPECT_EQ(read_bytes(rewritten), read_bytes(golden_path))
      << "segment writer no longer reproduces the committed BSEG1 fixture";
  fs::remove(rewritten);
}

}  // namespace
}  // namespace bes
