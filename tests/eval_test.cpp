#include <gtest/gtest.h>

#include <cmath>

#include "eval/corpus.hpp"
#include "eval/harness.hpp"
#include "eval/report.hpp"
#include "util/json.hpp"

namespace bes {
namespace {

// ---------------------------------------------------------------- json

TEST(Json, ScalarRoundTrip) {
  for (const char* text : {"null", "true", "false", "0", "-3.25", "\"hi\""}) {
    const json_value v = json_value::parse(text);
    EXPECT_EQ(json_value::parse(v.dump()), v) << text;
  }
}

TEST(Json, ParsesNestedDocument) {
  const json_value v = json_value::parse(
      R"({"a": [1, 2.5, {"b": "x\ny"}], "c": true, "d": {}})");
  EXPECT_DOUBLE_EQ(v.get("a").as_array()[1].as_number(), 2.5);
  EXPECT_EQ(v.get("a").as_array()[2].get("b").as_string(), "x\ny");
  EXPECT_TRUE(v.get("c").as_bool());
  EXPECT_TRUE(v.get("d").as_object().empty());
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW((void)v.get("missing"), std::runtime_error);
}

TEST(Json, NumbersRoundTripExactly) {
  json_value obj = json_value::object{};
  obj.set("x", 0.1);
  obj.set("y", 1.0 / 3.0);
  obj.set("z", 1234567890.0);
  const json_value back = json_value::parse(obj.dump(2));
  EXPECT_EQ(back.get("x").as_number(), 0.1);
  EXPECT_EQ(back.get("y").as_number(), 1.0 / 3.0);
  EXPECT_EQ(back.get("z").as_number(), 1234567890.0);
}

TEST(Json, StringEscapes) {
  json_value v("quote\" slash\\ newline\n tab\t");
  EXPECT_EQ(json_value::parse(v.dump()).as_string(), v.as_string());
}

TEST(Json, RejectsMalformedInput) {
  for (const char* text :
       {"", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "{\"a\":}", "nan"}) {
    EXPECT_THROW((void)json_value::parse(text), std::runtime_error) << text;
  }
}

TEST(Json, RejectsNonFiniteNumbers) {
  const json_value v(std::nan(""));
  EXPECT_THROW((void)v.dump(), std::runtime_error);
}

TEST(Json, RejectsTrailingGarbage) {
  // A valid document followed by ANYTHING is a parse error — a truncated
  // write that happens to end on a balanced brace must not pass as the
  // shorter document.
  for (const char* text : {"{\"a\":1} x", "[] []", "{\"a\":1}}", "1,", "{}{"}) {
    EXPECT_THROW((void)json_value::parse(text), std::runtime_error) << text;
  }
}

TEST(Json, RejectsUnescapedControlCharacters) {
  // Regression: raw control bytes inside string literals used to be
  // accepted and then re-emitted escaped, so parse(dump(x)) != x for
  // attacker-shaped input. RFC 8259 requires \u escapes below 0x20.
  for (const std::string& text :
       {std::string("\"a\nb\""), std::string("\"a\tb\""),
        std::string("\"a\rb\""), std::string("\"\x01\"")}) {
    EXPECT_THROW((void)json_value::parse(text), std::runtime_error) << text;
  }
  // The escaped spellings of the same strings stay accepted.
  EXPECT_EQ(json_value::parse("\"a\\nb\"").as_string(), "a\nb");
  EXPECT_EQ(json_value::parse("\"a\\tb\"").as_string(), "a\tb");
}

TEST(Json, RecursionDepthIsBoundedNotStackFatal) {
  // Regression: nesting depth was unbounded, so a few KB of '[' overflowed
  // the parser's stack. The limit must reject deep documents with a clean
  // exception and keep accepting anything reasonable.
  const auto nested = [](std::size_t depth, char open, char close) {
    std::string text(depth, open);
    if (open == '{') {
      // {"a":{"a":…{"a":1}…}} — objects recurse through their values.
      text.clear();
      for (std::size_t i = 0; i < depth; ++i) text += "{\"a\":";
      text += "1";
      text.append(depth, close);
      return text;
    }
    text += "1";
    text.append(depth, close);
    return text;
  };
  EXPECT_NO_THROW((void)json_value::parse(nested(256, '[', ']')));
  EXPECT_THROW((void)json_value::parse(nested(257, '[', ']')),
               std::runtime_error);
  EXPECT_NO_THROW((void)json_value::parse(nested(256, '{', '}')));
  EXPECT_THROW((void)json_value::parse(nested(2000, '{', '}')),
               std::runtime_error);
}

// ---------------------------------------------------------------- corpus

eval_corpus_params tiny_params() {
  eval_corpus_params p;
  p.base_scenes = 4;
  p.objects = 6;
  p.domain = 128;
  p.queries_per_base = 1;
  return p;
}

TEST(EvalCorpus, FamilyStructure) {
  const eval_corpus corpus = build_eval_corpus(tiny_params());
  EXPECT_EQ(corpus.db.size(), 4 * eval_family_size);
  EXPECT_EQ(corpus.base_ids.size(), 4u);
  EXPECT_EQ(corpus.queries.size(), 4u);
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(corpus.base_ids[b], eval_family_size * b);
    const eval_query& q = corpus.queries[b];
    EXPECT_EQ(q.base, b);
    ASSERT_EQ(q.relevance.size(), eval_family_size);
    // Judgments sorted by id, base graded highest, all positive.
    EXPECT_EQ(q.relevance[0].id, corpus.base_ids[b]);
    EXPECT_EQ(q.relevance[0].grade, 3);
    for (std::size_t m = 1; m < eval_family_size; ++m) {
      EXPECT_GT(q.relevance[m].id, q.relevance[m - 1].id);
      EXPECT_GT(q.relevance[m].grade, 0);
      EXPECT_LT(q.relevance[m].grade, 3);
    }
  }
}

TEST(EvalCorpus, DeterministicAcrossRuns) {
  const eval_corpus a = build_eval_corpus(tiny_params());
  const eval_corpus b = build_eval_corpus(tiny_params());
  ASSERT_EQ(a.db.size(), b.db.size());
  for (std::size_t i = 0; i < a.db.size(); ++i) {
    const auto id = static_cast<image_id>(i);
    EXPECT_EQ(a.db.record(id).image, b.db.record(id).image) << "image " << i;
    EXPECT_EQ(a.db.record(id).name, b.db.record(id).name);
  }
  EXPECT_EQ(a.queries, b.queries);
}

TEST(EvalCorpus, DeterministicAcrossThreadCounts) {
  const eval_corpus serial = build_eval_corpus(tiny_params(), 1);
  for (unsigned threads : {2u, 8u}) {
    const eval_corpus parallel = build_eval_corpus(tiny_params(), threads);
    ASSERT_EQ(serial.db.size(), parallel.db.size());
    for (std::size_t i = 0; i < serial.db.size(); ++i) {
      const auto id = static_cast<image_id>(i);
      EXPECT_EQ(serial.db.record(id).image, parallel.db.record(id).image)
          << "threads=" << threads << " image " << i;
    }
    EXPECT_EQ(serial.db.symbols().names(), parallel.db.symbols().names());
    EXPECT_EQ(serial.queries, parallel.queries) << "threads=" << threads;
  }
}

TEST(EvalCorpus, SeedChangesCorpus) {
  eval_corpus_params other = tiny_params();
  other.seed += 1;
  const eval_corpus a = build_eval_corpus(tiny_params());
  const eval_corpus b = build_eval_corpus(other);
  EXPECT_NE(a.db.record(0).image, b.db.record(0).image);
}

// ---------------------------------------------------------------- harness

const eval_corpus& shared_corpus() {
  static const eval_corpus corpus = build_eval_corpus(tiny_params());
  return corpus;
}

const eval_report& shared_report() {
  static const eval_report report = [] {
    const auto matrix = default_eval_matrix(2);
    return run_eval(shared_corpus(), matrix);
  }();
  return report;
}

const eval_cell_result* find_cell(const eval_report& report,
                                  std::string_view name) {
  for (const eval_cell_result& cell : report.cells) {
    if (cell.config.name() == name) return &cell;
  }
  return nullptr;
}

TEST(EvalHarness, MatrixCoversEveryPathAndIsUniquelyNamed) {
  const auto matrix = default_eval_matrix(2);
  std::vector<std::string> names;
  bool seen[5] = {};
  for (const eval_cell_config& cell : matrix) {
    names.push_back(cell.name());
    seen[static_cast<std::size_t>(cell.path)] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

TEST(EvalHarness, MetricsAreNormalizedAndFinite) {
  const eval_report& report = shared_report();
  ASSERT_FALSE(report.cells.empty());
  for (const eval_cell_result& cell : report.cells) {
    SCOPED_TRACE(cell.config.name());
    for (double m : {cell.metrics.p_at_1, cell.metrics.p_at_10,
                     cell.metrics.mrr, cell.metrics.ndcg_at_10,
                     cell.metrics.recall_vs_exhaustive}) {
      EXPECT_GE(m, 0.0);
      EXPECT_LE(m, 1.0);
    }
    EXPECT_EQ(cell.metrics.scanned,
              cell.metrics.scored + cell.metrics.pruned);
  }
}

TEST(EvalHarness, AdmissiblePathsMatchExhaustiveExactly) {
  // pruned is provably identical to exhaustive; thread and batch variants of
  // both must not change a single metric.
  const eval_report& report = shared_report();
  const eval_cell_result* reference =
      find_cell(report, "exhaustive/signed-query/t1");
  ASSERT_NE(reference, nullptr);
  for (const char* name :
       {"pruned/signed-query/t1", "exhaustive/signed-query/t2",
        "pruned/signed-query/t2", "exhaustive/signed-query/t1/batch",
        "pruned/signed-query/t2/batch"}) {
    const eval_cell_result* cell = find_cell(report, name);
    ASSERT_NE(cell, nullptr) << name;
    EXPECT_DOUBLE_EQ(cell->metrics.recall_vs_exhaustive, 1.0) << name;
    EXPECT_DOUBLE_EQ(cell->metrics.p_at_1, reference->metrics.p_at_1) << name;
    EXPECT_DOUBLE_EQ(cell->metrics.mrr, reference->metrics.mrr) << name;
    EXPECT_DOUBLE_EQ(cell->metrics.ndcg_at_10, reference->metrics.ndcg_at_10)
        << name;
  }
}

TEST(EvalHarness, PrunedCellActuallyPrunes) {
  // The tiny shared corpus has too few images for the top-10 threshold to
  // bite; a corpus several times top_k wide must show real pruning.
  eval_corpus_params params = tiny_params();
  params.base_scenes = 12;
  const eval_corpus corpus = build_eval_corpus(params, 2);
  eval_cell_config cell;
  cell.path = scan_path::pruned;
  const eval_report report = run_eval(corpus, std::array{cell});
  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_GT(report.cells[0].metrics.pruned, 0u);
  EXPECT_LT(report.cells[0].metrics.scored,
            report.cells[0].metrics.scanned);
  EXPECT_DOUBLE_EQ(report.cells[0].metrics.recall_vs_exhaustive, 1.0);
}

TEST(EvalHarness, PrefilterCellsReportRecall) {
  // Prefilter scans consider fewer candidates than the exhaustive scan and
  // report their (possibly lossy) recall against it.
  const eval_report& report = shared_report();
  const eval_cell_result* exhaustive =
      find_cell(report, "exhaustive/signed-query/t1");
  ASSERT_NE(exhaustive, nullptr);
  for (const char* name :
       {"rtree/signed-query/t1", "combined/signed-query/t1"}) {
    const eval_cell_result* cell = find_cell(report, name);
    ASSERT_NE(cell, nullptr) << name;
    EXPECT_LE(cell->metrics.scanned, exhaustive->metrics.scanned) << name;
    EXPECT_GT(cell->metrics.recall_vs_exhaustive, 0.0) << name;
  }
  // The combined filter is an intersection: never looser than either input.
  const eval_cell_result* rtree = find_cell(report, "rtree/signed-query/t1");
  const eval_cell_result* combined =
      find_cell(report, "combined/signed-query/t1");
  EXPECT_LE(combined->metrics.scanned, rtree->metrics.scanned);
}

TEST(EvalHarness, SeedsAbove53BitsRoundTripThroughJson) {
  // JSON numbers are doubles; the seed is serialized as a string so a full
  // 64-bit seed survives report -> baseline -> params exactly.
  eval_report report;
  report.params.seed = (1ull << 60) + 3;
  const eval_report back =
      report_from_json(json_value::parse(report_to_json(report).dump()));
  EXPECT_EQ(back.params.seed, report.params.seed);
  const eval_report from_baseline =
      report_from_json(json_value::parse(make_baseline(report).dump(2)));
  EXPECT_EQ(from_baseline.params.seed, report.params.seed);
}

TEST(EvalHarness, ReportJsonRoundTrips) {
  const eval_report& report = shared_report();
  const eval_report back =
      report_from_json(json_value::parse(report_to_json(report).dump(2)));
  EXPECT_EQ(back.params, report.params);
  ASSERT_EQ(back.cells.size(), report.cells.size());
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    EXPECT_EQ(back.cells[i], report.cells[i])
        << report.cells[i].config.name();
  }
}

TEST(EvalHarness, ReportParseRejectsOutOfEnumNorm) {
  // Regression: `"norm"` used to be static_cast straight into norm_kind,
  // so a corrupted or hand-edited baseline flowed an out-of-enum value
  // into the scoring switch (which then normalized by a silent 1.0).
  std::string text = report_to_json(shared_report()).dump(2);
  const std::size_t pos = text.find("\"norm\":");
  ASSERT_NE(pos, std::string::npos);
  const std::size_t value_at = text.find_first_of("0123456789", pos);
  ASSERT_NE(value_at, std::string::npos);
  text.insert(value_at, "20");  // norm_kind has 4 enumerators; 20x is not one
  EXPECT_THROW((void)report_from_json(json_value::parse(text)),
               std::invalid_argument);
}

// ---------------------------------------------------------------- gate

TEST(EvalGate, FreshBaselinePasses) {
  const eval_report& report = shared_report();
  const gate_result gate =
      check_against_baseline(report, make_baseline(report));
  EXPECT_TRUE(gate.pass);
  EXPECT_TRUE(gate.failures.empty());
}

TEST(EvalGate, CatchesDegradedMetric) {
  const eval_report& report = shared_report();
  const json_value baseline = make_baseline(report);
  eval_report degraded = report;
  degraded.cells[0].metrics.mrr -= 0.5;
  const gate_result gate = check_against_baseline(degraded, baseline);
  EXPECT_FALSE(gate.pass);
  ASSERT_FALSE(gate.failures.empty());
  EXPECT_NE(gate.failures[0].find("mrr"), std::string::npos);
}

TEST(EvalGate, ToleranceAbsorbsSmallDrift) {
  const eval_report& report = shared_report();
  const json_value baseline = make_baseline(report);  // tolerance 0.02
  eval_report drifted = report;
  for (eval_cell_result& cell : drifted.cells) {
    cell.metrics.ndcg_at_10 = std::max(0.0, cell.metrics.ndcg_at_10 - 0.01);
  }
  EXPECT_TRUE(check_against_baseline(drifted, baseline).pass);
}

TEST(EvalGate, CatchesRecallBudgetViolation) {
  const eval_report& report = shared_report();
  baseline_policy tight;
  tight.tolerance = 1.0;  // disable the metric floors; isolate the budget
  tight.prefilter_headroom = 0.0;
  const json_value baseline = make_baseline(report, tight);
  eval_report degraded = report;
  for (eval_cell_result& cell : degraded.cells) {
    if (cell.config.path == scan_path::combined) {
      cell.metrics.recall_vs_exhaustive -= 0.1;
    }
  }
  const gate_result gate = check_against_baseline(degraded, baseline);
  EXPECT_FALSE(gate.pass);
}

TEST(EvalGate, ZeroBudgetForAdmissiblePaths) {
  const json_value baseline = make_baseline(shared_report());
  for (const json_value& cell : baseline.get("cells").as_array()) {
    const std::string& path = cell.get("path").as_string();
    if (path == "exhaustive" || path == "pruned") {
      EXPECT_DOUBLE_EQ(cell.get("recall_budget").as_number(), 0.0)
          << cell.get("name").as_string();
    } else {
      EXPECT_GT(cell.get("recall_budget").as_number(), 0.0);
    }
  }
}

TEST(EvalGate, CatchesMissingCell) {
  const eval_report& report = shared_report();
  const json_value baseline = make_baseline(report);
  eval_report partial = report;
  partial.cells.erase(partial.cells.begin());
  const gate_result gate = check_against_baseline(partial, baseline);
  EXPECT_FALSE(gate.pass);
  EXPECT_NE(gate.failures[0].find("missing"), std::string::npos);
}

TEST(EvalGate, RejectsParamsMismatch) {
  const eval_report& report = shared_report();
  const json_value baseline = make_baseline(report);
  eval_report other = report;
  other.params.seed += 1;
  const gate_result gate = check_against_baseline(other, baseline);
  EXPECT_FALSE(gate.pass);
  EXPECT_NE(gate.failures[0].find("params"), std::string::npos);
}

}  // namespace
}  // namespace bes
