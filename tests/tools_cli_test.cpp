// End-to-end tests of the besdb binary's exit-code / stderr contract and of
// the serve/connect subcommands as real processes:
//
//   0  success (including --help)
//   1  runtime failure (I/O, corrupt corpora, unreachable fleets)
//   2  usage error, with diagnostics on stderr and NOTHING on stdout
//
// The serve fleet half doubles as the process-level kill test: a shard
// server SIGKILLed mid-fleet must degrade the connect answer (stderr says
// so), not sink it.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#ifndef BES_BESDB_PATH
#error "BES_BESDB_PATH must point at the besdb binary"
#endif

namespace {

namespace fs = std::filesystem;

struct run_result {
  int exit_code = -1;
  std::string out;
  std::string err;
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class BesdbCli : public ::testing::Test {
 protected:
  BesdbCli() {
    dir_ = fs::temp_directory_path() /
           ("besdb_cli_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~BesdbCli() override {
    // Reap any background server still running before deleting its cwd.
    if (fs::exists(dir_ / "serve.pid")) {
      (void)std::system(("kill -9 $(cat '" + (dir_ / "serve.pid").string() +
                         "') 2>/dev/null; true")
                            .c_str());
    }
    fs::remove_all(dir_);
  }

  // Runs `besdb <args>` capturing exit code, stdout, and stderr.
  run_result run(const std::string& args) {
    const fs::path out = dir_ / "stdout.txt";
    const fs::path err = dir_ / "stderr.txt";
    const std::string cmd = std::string(BES_BESDB_PATH) + " " + args + " > '" +
                            out.string() + "' 2> '" + err.string() + "'";
    const int status = std::system(cmd.c_str());
    run_result r;
    r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    r.out = slurp(out);
    r.err = slurp(err);
    return r;
  }

  // Launches `besdb serve` in the background; returns the port it printed.
  // The pid lands in serve.pid (one background server per test is plenty).
  int serve_in_background(const std::string& corpus, int shard) {
    const fs::path log = dir_ / ("serve" + std::to_string(shard) + ".log");
    const std::string cmd = std::string(BES_BESDB_PATH) + " serve --corpus '" +
                            corpus + "' --shard " + std::to_string(shard) +
                            " > '" + log.string() + "' 2>&1 & echo $! >> '" +
                            (dir_ / "serve.pid").string() + "'";
    EXPECT_EQ(std::system(cmd.c_str()), 0);
    // The server prints "... on 127.0.0.1:PORT" once it is accepting.
    for (int spin = 0; spin < 200; ++spin) {
      const std::string text = slurp(log);
      const auto at = text.rfind("127.0.0.1:");
      if (at != std::string::npos) {
        return std::atoi(text.c_str() + at + 10);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    ADD_FAILURE() << "serve never reported a port; log:\n" << slurp(log);
    return 0;
  }

  fs::path dir_;
};

// ------------------------------------------------------------- exit codes

TEST_F(BesdbCli, HelpExitsZeroWithUsageOnStdout) {
  const run_result r = run("--help");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("besdb <"), std::string::npos);
  EXPECT_TRUE(r.err.empty()) << r.err;
}

TEST_F(BesdbCli, NoArgumentsIsAUsageErrorOnStderr) {
  const run_result r = run("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_TRUE(r.out.empty()) << r.out;
  EXPECT_NE(r.err.find("besdb <"), std::string::npos);
}

TEST_F(BesdbCli, UnknownCommandIsAUsageError) {
  const run_result r = run("frobnicate");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
  EXPECT_TRUE(r.out.empty()) << r.out;
}

TEST_F(BesdbCli, UnknownFlagIsAUsageError) {
  const run_result r = run("create --no-such-flag");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_FALSE(r.err.empty());
  EXPECT_TRUE(r.out.empty()) << r.out;
}

TEST_F(BesdbCli, MissingDatabaseFileIsAUsageError) {
  const run_result r = run("info");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("missing database file"), std::string::npos);
}

TEST_F(BesdbCli, MissingRequiredFlagIsAUsageError) {
  EXPECT_EQ(run("create").exit_code, 2);              // no --out
  EXPECT_EQ(run("serve").exit_code, 2);               // no --corpus
  EXPECT_EQ(run("connect --sketch x").exit_code, 2);  // no --servers
}

TEST_F(BesdbCli, MalformedServerListIsAUsageError) {
  const run_result r = run("connect --servers nocolon --sketch x");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("malformed server"), std::string::npos);
  const run_result r2 = run("connect --servers 127.0.0.1:0 --sketch x");
  EXPECT_EQ(r2.exit_code, 2);
}

TEST_F(BesdbCli, RuntimeFailuresExitOne) {
  // A missing database is an environment problem, not a usage problem.
  EXPECT_EQ(run("info " + (dir_ / "nope.besdb").string()).exit_code, 1);
  // So is a fleet with nobody home (nothing listens on port 1).
  const run_result r = run("connect --servers 127.0.0.1:1 --sketch "
                           "\"8x8: S0 1 2 1 2\"");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("besdb:"), std::string::npos);
}

TEST_F(BesdbCli, HappyPathsExitZero) {
  const std::string db = (dir_ / "tiny.besdb").string();
  EXPECT_EQ(run("create --out " + db + " --images 4 --objects 3").exit_code,
            0);
  EXPECT_EQ(run("info " + db).exit_code, 0);
  EXPECT_EQ(run("query " + db + " --id 1 --top-k 2").exit_code, 0);
}

// ----------------------------------------------------- cache + compact auto

TEST_F(BesdbCli, QueryCacheRepeatPrintsHitLine) {
  const std::string db = (dir_ / "tiny.besdb").string();
  ASSERT_EQ(run("create --out " + db + " --images 6 --objects 3").exit_code,
            0);
  const run_result r =
      run("query " + db + " --id 1 --top-k 2 --cache --repeat 3");
  EXPECT_EQ(r.exit_code, 0) << r.err;
  // First pass misses and fills; the other two are pure hits.
  EXPECT_NE(r.out.find("cache: hits 2 misses 1"), std::string::npos) << r.out;

  // Without --cache there is no cache line at all.
  const run_result plain = run("query " + db + " --id 1 --top-k 2");
  EXPECT_EQ(plain.exit_code, 0);
  EXPECT_EQ(plain.out.find("cache:"), std::string::npos) << plain.out;
}

TEST_F(BesdbCli, ContradictoryCacheFlagsAreAUsageError) {
  const std::string db = (dir_ / "tiny.besdb").string();
  ASSERT_EQ(run("create --out " + db + " --images 4 --objects 3").exit_code,
            0);
  const run_result r = run("query " + db + " --id 0 --cache --no-cache");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("contradictory"), std::string::npos) << r.err;
  EXPECT_TRUE(r.out.empty()) << r.out;
}

TEST_F(BesdbCli, CompactAutoLeavesAHealthyCorpusAlone) {
  const std::string corpus = (dir_ / "c.scrp").string();
  ASSERT_EQ(run("create --out " + corpus +
                " --format sharded --shards 2 --images 12")
                .exit_code,
            0);
  const run_result r = run("compact " + corpus + " --auto");
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("left alone: 0 tombstones of 12 records"),
            std::string::npos)
      << r.out;
}

TEST_F(BesdbCli, CompactAutoOnASegmentIsAUsageError) {
  const std::string db = (dir_ / "tiny.bseg").string();
  ASSERT_EQ(run("create --out " + db +
                " --format binary --images 4 --objects 3")
                .exit_code,
            0);
  const run_result r = run("compact " + db + " --auto");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("needs an SCRP1 corpus"), std::string::npos) << r.err;
}

// ------------------------------------------------------------- serve fleet

TEST_F(BesdbCli, ServeConnectAnswersAndSigkilledShardDegrades) {
  const std::string corpus = (dir_ / "c.scrp").string();
  ASSERT_EQ(run("create --out " + corpus +
                " --format sharded --shards 2 --images 24 --seed 11")
                .exit_code,
            0);
  const int port0 = serve_in_background(corpus, 0);
  const int port1 = serve_in_background(corpus, 1);
  ASSERT_GT(port0, 0);
  ASSERT_GT(port1, 0);
  const std::string servers = "127.0.0.1:" + std::to_string(port0) + "," +
                              "127.0.0.1:" + std::to_string(port1);
  const std::string sketch = " --sketch \"64x64: S0 2 20 3 21; S1 30 50 8 28\"";

  const run_result healthy =
      run("connect --servers " + servers + sketch + " --top-k 3");
  EXPECT_EQ(healthy.exit_code, 0);
  EXPECT_NE(healthy.out.find("shard 0: ok"), std::string::npos)
      << healthy.out << healthy.err;
  EXPECT_NE(healthy.out.find("shard 1: ok"), std::string::npos);
  EXPECT_EQ(healthy.err.find("DEGRADED"), std::string::npos) << healthy.err;

  // SIGKILL shard 1's process (the first pid appended was shard 0's).
  ASSERT_EQ(std::system(("kill -9 $(sed -n 2p '" +
                         (dir_ / "serve.pid").string() + "')")
                            .c_str()),
            0);
  const run_result degraded =
      run("connect --servers " + servers + sketch + " --top-k 3");
  EXPECT_EQ(degraded.exit_code, 0) << degraded.err;
  EXPECT_NE(degraded.out.find("shard 0: ok"), std::string::npos)
      << degraded.out;
  EXPECT_NE(degraded.out.find("shard 1: failed"), std::string::npos)
      << degraded.out;
  EXPECT_NE(degraded.err.find("DEGRADED"), std::string::npos) << degraded.err;

  // --shutdown stops the survivor; its process must actually exit.
  EXPECT_EQ(run("connect --servers 127.0.0.1:" + std::to_string(port0) +
                " --shutdown")
                .exit_code,
            0);
  bool exited = false;
  for (int spin = 0; spin < 200 && !exited; ++spin) {
    const int alive = std::system(("kill -0 $(sed -n 1p '" +
                                   (dir_ / "serve.pid").string() +
                                   "') 2>/dev/null")
                                      .c_str());
    exited = alive != 0;
    if (!exited) std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  EXPECT_TRUE(exited) << "server ignored the shutdown frame";
}

TEST_F(BesdbCli, ServeRejectsBadShardIndexAsUsage) {
  const std::string corpus = (dir_ / "c.scrp").string();
  ASSERT_EQ(run("create --out " + corpus +
                " --format sharded --shards 2 --images 8")
                .exit_code,
            0);
  // Out-of-range shard: load_shard throws invalid_argument — a runtime
  // error from the CLI's point of view (the flag is well-formed; the corpus
  // just does not have that many shards).
  EXPECT_EQ(run("serve --corpus " + corpus + " --shard 9").exit_code, 1);
}

}  // namespace
