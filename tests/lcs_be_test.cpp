#include <gtest/gtest.h>

#include <vector>

#include "core/encoder.hpp"
#include "lcs/be_lcs.hpp"
#include "util/rng.hpp"
#include "workload/scene_gen.hpp"

namespace bes {
namespace {

token B(symbol_id s, boundary_kind k) { return token::boundary(s, k); }
token Bb(symbol_id s) { return B(s, boundary_kind::begin); }
token Be(symbol_id s) { return B(s, boundary_kind::end); }
token E() { return token::dummy(); }

// Exponential oracle for the CONSTRAINED LCS: the longest common subsequence
// that never contains two adjacent dummies.
std::size_t brute_force_constrained(const std::vector<token>& q,
                                    const std::vector<token>& d) {
  std::size_t best = 0;
  const std::size_t n = q.size();
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    std::vector<token> candidate;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) candidate.push_back(q[i]);
    }
    bool constrained = true;
    for (std::size_t i = 0; i + 1 < candidate.size(); ++i) {
      if (candidate[i].is_dummy() && candidate[i + 1].is_dummy()) {
        constrained = false;
        break;
      }
    }
    if (!constrained) continue;
    std::size_t j = 0;
    for (token t : d) {
      if (j < candidate.size() && candidate[j] == t) ++j;
    }
    if (j == candidate.size()) best = std::max(best, candidate.size());
  }
  return best;
}

std::vector<token> random_tokens(rng& r, std::size_t max_len) {
  std::vector<token> out(static_cast<std::size_t>(
      r.uniform_int(0, static_cast<int>(max_len))));
  for (token& t : out) {
    const int pick = r.uniform_int(0, 4);
    if (pick == 0) {
      t = E();
    } else {
      const auto s = static_cast<symbol_id>(r.uniform_int(0, 1));
      t = pick % 2 == 1 ? Bb(s) : Be(s);
    }
  }
  return out;
}

// ------------------------------------------------------------ basic cases

TEST(BeLcs, EmptyInputsGiveZero) {
  const std::vector<token> empty;
  const std::vector<token> some = {Bb(0), E(), Be(0)};
  EXPECT_EQ(be_lcs_length(empty, some), 0u);
  EXPECT_EQ(be_lcs_length(some, empty), 0u);
}

TEST(BeLcs, IdenticalStringTakesFullLength) {
  // A well-formed BE-string has no adjacent dummies, so it is a valid
  // constrained common subsequence of itself.
  const std::vector<token> s = {E(), Bb(0), E(), Bb(1), E(),
                                Be(0), E(), Be(1), E()};
  EXPECT_EQ(be_lcs_length(s, s), s.size());
  EXPECT_EQ(be_lcs_length_exact(s, s), s.size());
}

TEST(BeLcs, ConsecutiveDummiesNeverPicked) {
  // q = E x E, d = E E: unconstrained LCS would be 2 (both dummies); the
  // constrained answer is 1.
  const std::vector<token> q = {E(), Bb(0), E()};
  const std::vector<token> d = {E(), E()};
  EXPECT_EQ(be_lcs_length(q, d), 1u);
  EXPECT_EQ(be_lcs_length_exact(q, d), 1u);
}

TEST(BeLcs, AllDummiesCollapseToOne) {
  const std::vector<token> q = {E()};
  const std::vector<token> d = {E(), E(), E()};
  EXPECT_EQ(be_lcs_length(q, d), 1u);
}

TEST(BeLcs, BeginAndEndAreDistinctSymbols) {
  const std::vector<token> q = {Bb(0)};
  const std::vector<token> d = {Be(0)};
  EXPECT_EQ(be_lcs_length(q, d), 0u);
}

TEST(BeLcs, DifferentSymbolsDoNotMatch) {
  const std::vector<token> q = {Bb(0), Be(0)};
  const std::vector<token> d = {Bb(1), Be(1)};
  EXPECT_EQ(be_lcs_length(q, d), 0u);
}

TEST(BeLcs, DummySandwichMatch) {
  // Shared shape: begin, gap, end around different middles.
  const std::vector<token> q = {Bb(0), E(), Bb(1), E(), Be(0)};
  const std::vector<token> d = {Bb(0), E(), Bb(2), E(), Be(0)};
  // Best: Bb(0) E Be(0) taking one of the dummies = 3... plus the second
  // dummy cannot join (adjacent to the first once Bb(1)/Bb(2) drop out).
  EXPECT_EQ(be_lcs_length_exact(q, d), 3u);
  EXPECT_EQ(be_lcs_length(q, d), 3u);
}

// ------------------------------------------------------------ table/sign

TEST(BeLcs, TableSignEncodesDummyTail) {
  const std::vector<token> q = {E()};
  const std::vector<token> d = {E()};
  const be_lcs_table w = be_lcs_fill(q, d);
  // Cell (1,1) holds -1: length 1, last symbol is a dummy.
  EXPECT_EQ(w.at(1, 1), -1);
}

TEST(BeLcs, TableBoundaryMatchIsPositive) {
  const std::vector<token> q = {Bb(0)};
  const std::vector<token> d = {Bb(0)};
  const be_lcs_table w = be_lcs_fill(q, d);
  EXPECT_EQ(w.at(1, 1), 1);
}

TEST(BeLcs, TableDimensions) {
  const std::vector<token> q(5, Bb(0));
  const std::vector<token> d(7, Bb(0));
  const be_lcs_table w = be_lcs_fill(q, d);
  EXPECT_EQ(w.rows(), 6u);
  EXPECT_EQ(w.cols(), 8u);
  EXPECT_EQ(w.storage_cells(), 48u);  // (m+1)(n+1) — the paper's O(mn) space
}

// ------------------------------------------------------------ traceback

TEST(BeLcs, TracebackRejectsMismatchedTable) {
  const std::vector<token> q = {Bb(0)};
  const std::vector<token> d = {Bb(0), Be(0)};
  const be_lcs_table w = be_lcs_fill(q, d);
  const std::vector<token> other(3, Bb(1));
  EXPECT_THROW((void)be_lcs_string(other, w), std::invalid_argument);
}

bool is_subsequence(const std::vector<token>& needle,
                    std::span<const token> hay) {
  std::size_t j = 0;
  for (token t : hay) {
    if (j < needle.size() && needle[j] == t) ++j;
  }
  return j == needle.size();
}

class BeLcsTraceback : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BeLcsTraceback, ReconstructionIsValidCommonSubsequence) {
  rng r(GetParam());
  const std::vector<token> q = random_tokens(r, 18);
  const std::vector<token> d = random_tokens(r, 18);
  const std::size_t length = be_lcs_length(q, d);
  const std::vector<token> s = be_lcs_string(q, d);
  EXPECT_EQ(s.size(), length);
  EXPECT_TRUE(is_subsequence(s, q));
  EXPECT_TRUE(is_subsequence(s, d));
  for (std::size_t i = 0; i + 1 < s.size(); ++i) {
    EXPECT_FALSE(s[i].is_dummy() && s[i + 1].is_dummy())
        << "adjacent dummies in reconstructed LCS";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BeLcsTraceback,
                         ::testing::Range<std::uint64_t>(0, 60));

// ------------------------------------------------------------ oracles

class BeLcsOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BeLcsOracle, ExactMatchesBruteForce) {
  rng r(GetParam());
  const std::vector<token> q = random_tokens(r, 12);
  const std::vector<token> d = random_tokens(r, 12);
  EXPECT_EQ(be_lcs_length_exact(q, d), brute_force_constrained(q, d));
}

TEST_P(BeLcsOracle, PaperVariantNeverExceedsExact) {
  rng r(GetParam() + 1000);
  const std::vector<token> q = random_tokens(r, 16);
  const std::vector<token> d = random_tokens(r, 16);
  const std::size_t paper = be_lcs_length(q, d);
  const std::size_t exact = be_lcs_length_exact(q, d);
  EXPECT_LE(paper, exact);
  // The paper variant is realizable (traceback produces that many tokens),
  // so it is also a lower bound witness.
  EXPECT_EQ(be_lcs_string(q, d).size(), paper);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BeLcsOracle,
                         ::testing::Range<std::uint64_t>(0, 80));

// On real (well-formed) BE-strings the two variants should agree nearly
// always; they must agree exactly on encoded random scenes vs themselves and
// their sub-scenes.
class BeLcsRealStrings : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BeLcsRealStrings, SubsetQueryFullyEmbeds) {
  rng r(GetParam());
  alphabet names;
  scene_params params;
  params.object_count = static_cast<std::size_t>(r.uniform_int(2, 10));
  params.symbol_pool = 6;
  const symbolic_image scene = random_scene(params, r, names);
  // Query: drop some icons, keep coordinates.
  symbolic_image query(scene.width(), scene.height());
  const auto kept = r.sample_indices(
      scene.size(), std::max<std::size_t>(1, scene.size() / 2));
  for (std::size_t k : kept) query.add(scene.icons()[k]);

  const be_string2d qs = encode(query);
  const be_string2d ds = encode(scene);
  // Paper §4: a query whose icons and relations all appear in the database
  // image is fully matched.
  EXPECT_EQ(be_lcs_length(qs.x.span(), ds.x.span()), qs.x.size());
  EXPECT_EQ(be_lcs_length(qs.y.span(), ds.y.span()), qs.y.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BeLcsRealStrings,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace bes
