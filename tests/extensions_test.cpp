// Tests for the extension modules: weighted LCS, type-i database retrieval,
// and the scene-sketch text format.
#include <gtest/gtest.h>

#include <limits>

#include "core/encoder.hpp"
#include "db/type_retrieval.hpp"
#include "lcs/be_lcs.hpp"
#include "symbolic/scene_text.hpp"
#include "util/rng.hpp"
#include "workload/query_gen.hpp"

namespace bes {
namespace {

token Bb(symbol_id s) { return token::boundary(s, boundary_kind::begin); }
token Be(symbol_id s) { return token::boundary(s, boundary_kind::end); }
token E() { return token::dummy(); }

// ------------------------------------------------------- weighted LCS

std::vector<token> random_tokens(rng& r, std::size_t max_len) {
  std::vector<token> out(
      static_cast<std::size_t>(r.uniform_int(0, static_cast<int>(max_len))));
  for (token& t : out) {
    const int pick = r.uniform_int(0, 4);
    if (pick == 0) {
      t = E();
    } else {
      const auto s = static_cast<symbol_id>(r.uniform_int(0, 1));
      t = pick % 2 == 1 ? Bb(s) : Be(s);
    }
  }
  return out;
}

// Exponential oracle for the weighted constrained objective.
double brute_force_weighted(const std::vector<token>& q,
                            const std::vector<token>& d, double w) {
  double best = 0.0;
  const std::size_t n = q.size();
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    std::vector<token> candidate;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) candidate.push_back(q[i]);
    }
    bool constrained = true;
    double gain = 0.0;
    for (std::size_t i = 0; i < candidate.size(); ++i) {
      if (candidate[i].is_dummy()) {
        gain += w;
        if (i + 1 < candidate.size() && candidate[i + 1].is_dummy()) {
          constrained = false;
          break;
        }
      } else {
        gain += 1.0;
      }
    }
    if (!constrained) continue;
    std::size_t j = 0;
    for (token t : d) {
      if (j < candidate.size() && candidate[j] == t) ++j;
    }
    if (j == candidate.size()) best = std::max(best, gain);
  }
  return best;
}

TEST(WeightedLcs, WeightOneEqualsExactLength) {
  rng r(1);
  for (int trial = 0; trial < 40; ++trial) {
    const std::vector<token> q = random_tokens(r, 14);
    const std::vector<token> d = random_tokens(r, 14);
    EXPECT_DOUBLE_EQ(be_lcs_weighted(q, d, 1.0),
                     static_cast<double>(be_lcs_length_exact(q, d)));
  }
}

TEST(WeightedLcs, WeightZeroCountsBoundaryMatchesOnly) {
  const std::vector<token> q = {E(), Bb(0), E(), Be(0), E()};
  EXPECT_DOUBLE_EQ(be_lcs_weighted(q, q, 0.0), 2.0);
}

TEST(WeightedLcs, RejectsOutOfRangeWeight) {
  const std::vector<token> q = {Bb(0)};
  EXPECT_THROW((void)be_lcs_weighted(q, q, -0.1), std::invalid_argument);
  EXPECT_THROW((void)be_lcs_weighted(q, q, 1.5), std::invalid_argument);
}

TEST(WeightedLcs, RejectsNonFiniteWeight) {
  // Regression: `weight < 0.0 || weight > 1.0` is false for NaN, which then
  // poisons every max() chain in the DP and silently scores everything 0.
  const std::vector<token> q = {Bb(0)};
  EXPECT_THROW((void)be_lcs_weighted(q, q,
                                     std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW((void)be_lcs_weighted(q, q,
                                     std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW((void)be_lcs_weighted(
                   q, q, -std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

class WeightedLcsOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeightedLcsOracle, MatchesBruteForce) {
  rng r(GetParam());
  const std::vector<token> q = random_tokens(r, 11);
  const std::vector<token> d = random_tokens(r, 11);
  for (double w : {0.0, 0.25, 0.5, 1.0}) {
    EXPECT_NEAR(be_lcs_weighted(q, d, w), brute_force_weighted(q, d, w), 1e-9)
        << "w=" << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedLcsOracle,
                         ::testing::Range<std::uint64_t>(0, 30));

TEST(WeightedLcs, MonotoneInWeight) {
  rng r(9);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<token> q = random_tokens(r, 20);
    const std::vector<token> d = random_tokens(r, 20);
    double previous = -1.0;
    for (double w : {0.0, 0.3, 0.7, 1.0}) {
      const double score = be_lcs_weighted(q, d, w);
      EXPECT_GE(score + 1e-12, previous);
      previous = score;
    }
  }
}

// ------------------------------------------------------- type retrieval

TEST(TypeRetrieval, ExactCopyRanksFirst) {
  image_database db;
  rng r(2);
  scene_params params;
  params.object_count = 6;
  params.symbol_pool = 6;
  params.unique_symbols = true;
  for (int i = 0; i < 8; ++i) {
    db.add("s" + std::to_string(i), random_scene(params, r, db.symbols()));
  }
  const auto results = type_search(db, db.record(3).image,
                                   {similarity_type::type2, 0});
  ASSERT_EQ(results.size(), db.size());
  EXPECT_EQ(results[0].id, 3u);
  EXPECT_EQ(results[0].matched, 6u);
  EXPECT_DOUBLE_EQ(results[0].fraction, 1.0);
  // Descending matched counts.
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].matched, results[i].matched);
  }
}

TEST(TypeRetrieval, TopKTruncates) {
  image_database db;
  rng r(3);
  scene_params params;
  params.object_count = 5;
  for (int i = 0; i < 10; ++i) {
    db.add("s", random_scene(params, r, db.symbols()));
  }
  EXPECT_EQ(type_search(db, db.record(0).image, {}, 3).size(), 3u);
}

TEST(TypeRetrieval, EmptyQueryScoresZero) {
  image_database db;
  rng r(4);
  scene_params params;
  db.add("s", random_scene(params, r, db.symbols()));
  const auto results = type_search(db, symbolic_image(10, 10));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].matched, 0u);
  EXPECT_DOUBLE_EQ(results[0].fraction, 0.0);
}

// ------------------------------------------------------- scene sketches

TEST(SceneText, ParsesFigure1Sketch) {
  alphabet names;
  const symbolic_image scene =
      parse_scene("12x11: A 2 6 3 9; B 4 10 1 5; C 6 8 5 7", names);
  EXPECT_EQ(scene.width(), 12);
  EXPECT_EQ(scene.height(), 11);
  ASSERT_EQ(scene.size(), 3u);
  EXPECT_EQ(scene.icons()[0].mbr, rect::checked(2, 6, 3, 9));
  EXPECT_EQ(names.name_of(scene.icons()[2].symbol), "C");
}

TEST(SceneText, RoundTrip) {
  alphabet names;
  rng r(5);
  scene_params params;
  params.object_count = 7;
  const symbolic_image scene = random_scene(params, r, names);
  alphabet names2 = names;
  EXPECT_EQ(parse_scene(scene_text(scene, names), names2), scene);
}

TEST(SceneText, EmptySceneRoundTrip) {
  alphabet names;
  const symbolic_image scene = parse_scene("10x10:", names);
  EXPECT_TRUE(scene.empty());
  EXPECT_EQ(scene_text(scene, names), "10x10:");
}

TEST(SceneText, TrailingSemicolonTolerated) {
  alphabet names;
  EXPECT_EQ(parse_scene("10x10: A 0 1 0 1;", names).size(), 1u);
}

TEST(SceneText, RejectsMalformedInput) {
  alphabet names;
  EXPECT_THROW((void)parse_scene("nocolon", names), std::invalid_argument);
  EXPECT_THROW((void)parse_scene("axb: A 0 1 0 1", names),
               std::invalid_argument);
  EXPECT_THROW((void)parse_scene("10x10: A 0 1", names), std::invalid_argument);
  EXPECT_THROW((void)parse_scene("10x10: A 0 1 0 1 9", names),
               std::invalid_argument);
  EXPECT_THROW((void)parse_scene("10x10: A 5 2 0 1", names),
               std::invalid_argument);  // inverted interval
  EXPECT_THROW((void)parse_scene("10x10: A 0 99 0 1", names),
               std::invalid_argument);  // out of domain
}

}  // namespace
}  // namespace bes
