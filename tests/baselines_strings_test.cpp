#include <gtest/gtest.h>

#include <map>

#include "baselines/b_string.hpp"
#include "baselines/c_string.hpp"
#include "baselines/g_string.hpp"
#include "baselines/two_d_string.hpp"
#include "core/encoder.hpp"
#include "geometry/allen.hpp"
#include "util/rng.hpp"
#include "workload/scene_gen.hpp"

namespace bes {
namespace {

symbolic_image random_scene_seeded(std::uint64_t seed, alphabet& names,
                                   std::size_t count = 10) {
  rng r(seed);
  scene_params params;
  params.object_count = count;
  params.symbol_pool = 6;
  return random_scene(params, r, names);
}

// --------------------------------------------------------- 2-D string

TEST(TwoDString, GroupsByCenterCoordinate) {
  alphabet names;
  symbolic_image img(20, 20);
  const symbol_id a = names.intern("A");
  const symbol_id b = names.intern("B");
  const symbol_id c = names.intern("C");
  img.add(a, rect::checked(0, 4, 0, 4));    // center x = 2
  img.add(b, rect::checked(1, 3, 6, 10));   // center x = 2 (same group)
  img.add(c, rect::checked(10, 14, 0, 4));  // center x = 12
  const two_d_string s = build_two_d_string(img);
  ASSERT_EQ(s.u.groups.size(), 2u);
  EXPECT_EQ(s.u.groups[0].size(), 2u);
  EXPECT_EQ(s.u.groups[1].size(), 1u);
  EXPECT_EQ(to_text(s.u, names), "A = B < C");
}

TEST(TwoDString, StorageCounts) {
  alphabet names;
  const symbolic_image img = random_scene_seeded(1, names, 7);
  const two_d_string s = build_two_d_string(img);
  EXPECT_EQ(s.u.symbol_count(), 7u);
  EXPECT_EQ(s.u.operator_count(), 6u);
}

TEST(TwoDString, EmptyImage) {
  const two_d_string s = build_two_d_string(symbolic_image(5, 5));
  EXPECT_TRUE(s.u.groups.empty());
  EXPECT_EQ(s.u.operator_count(), 0u);
}

// --------------------------------------------------------- G-string

TEST(GString, NoOverlapNoCut) {
  alphabet names;
  symbolic_image img(20, 20);
  img.add(names.intern("A"), rect::checked(0, 4, 0, 4));
  img.add(names.intern("B"), rect::checked(10, 14, 10, 14));
  EXPECT_EQ(g_string_cut(img.icons(), axis::x).size(), 2u);
  EXPECT_EQ(g_string_segment_count(img), 4u);
}

TEST(GString, CrossingBoundaryCutsBothSides) {
  alphabet names;
  symbolic_image img(20, 20);
  // B's begin (5) falls inside A, A's end (8) falls inside B.
  img.add(names.intern("A"), rect::checked(0, 8, 0, 4));
  img.add(names.intern("B"), rect::checked(5, 12, 0, 4));
  const auto segments = g_string_cut(img.icons(), axis::x);
  // A -> [0,5) [5,8); B -> [5,8) [8,12).
  ASSERT_EQ(segments.size(), 4u);
  EXPECT_EQ(segments[0].piece, (interval{0, 5}));
  EXPECT_EQ(segments[1].piece, (interval{5, 8}));
  EXPECT_EQ(segments[2].piece, (interval{5, 8}));
  EXPECT_EQ(segments[3].piece, (interval{8, 12}));
}

TEST(GString, PiecesTileEachObjectExactly) {
  alphabet names;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const symbolic_image img = random_scene_seeded(seed, names);
    for (axis which : {axis::x, axis::y}) {
      const auto segments = g_string_cut(img.icons(), which);
      std::map<std::size_t, int> covered;
      for (const segment& s : segments) {
        EXPECT_TRUE(s.piece.valid());
        covered[s.owner] += s.piece.length();
      }
      for (std::size_t i = 0; i < img.size(); ++i) {
        const interval side =
            which == axis::x ? img.icons()[i].mbr.x : img.icons()[i].mbr.y;
        EXPECT_EQ(covered[i], side.length());
      }
    }
  }
}

// --------------------------------------------------------- C-string

TEST(CString, NoPartialOverlapNoCut) {
  alphabet names;
  symbolic_image img(20, 20);
  img.add(names.intern("A"), rect::checked(0, 10, 0, 10));
  img.add(names.intern("B"), rect::checked(2, 8, 2, 8));  // nested: no cut
  EXPECT_EQ(c_string_cut(img.icons(), axis::x).size(), 2u);
}

TEST(CString, PartialOverlapCutsTrailingObjectOnly) {
  alphabet names;
  symbolic_image img(20, 20);
  img.add(names.intern("A"), rect::checked(0, 8, 0, 4));
  img.add(names.intern("B"), rect::checked(5, 12, 0, 4));
  const auto segments = c_string_cut(img.icons(), axis::x);
  // A stays whole; B is cut at A's end: [5,8) [8,12).
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_EQ(segments[0].piece, (interval{0, 8}));
  EXPECT_EQ(segments[1].piece, (interval{5, 8}));
  EXPECT_EQ(segments[2].piece, (interval{8, 12}));
}

TEST(CString, NeverCutsMoreThanGString) {
  alphabet names;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const symbolic_image img = random_scene_seeded(seed, names);
    EXPECT_LE(c_string_segment_count(img), g_string_segment_count(img));
    EXPECT_GE(c_string_segment_count(img), 2 * img.size());  // >= uncut
  }
}

TEST(CString, StaircaseShowsQuadraticBlowup) {
  // The classic O(n^2) worst case: a staircase of partially overlapping
  // objects; object i is cut by all earlier ends.
  alphabet names;
  const int n = 12;
  symbolic_image img(200, 200);
  for (int i = 0; i < n; ++i) {
    img.add(names.intern("S" + std::to_string(i)),
            rect::checked(2 * i, 2 * i + n + 5, 0, 5));
  }
  const auto segments = c_string_cut(img.icons(), axis::x);
  // Piece count grows quadratically: much more than 2n.
  EXPECT_GT(segments.size(), static_cast<std::size_t>(3 * n));
}

TEST(CString, PiecesTileEachObjectExactly) {
  alphabet names;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const symbolic_image img = random_scene_seeded(seed, names);
    for (axis which : {axis::x, axis::y}) {
      const auto segments = c_string_cut(img.icons(), which);
      std::map<std::size_t, int> covered;
      for (const segment& s : segments) {
        EXPECT_TRUE(s.piece.valid());
        covered[s.owner] += s.piece.length();
      }
      for (std::size_t i = 0; i < img.size(); ++i) {
        const interval side =
            which == axis::x ? img.icons()[i].mbr.x : img.icons()[i].mbr.y;
        EXPECT_EQ(covered[i], side.length());
      }
    }
  }
}

// --------------------------------------------------------- B-string

TEST(BString, MarksCoincidentBoundaries) {
  alphabet names;
  symbolic_image img(10, 10);
  const symbol_id a = names.intern("A");
  const symbol_id b = names.intern("B");
  img.add(a, rect::checked(0, 5, 0, 5));
  img.add(b, rect::checked(5, 10, 5, 10));  // B begins where A ends
  const b_string2d s = build_b_string(img);
  ASSERT_EQ(s.x.boundaries.size(), 4u);
  // A:b A:e=B:b B:e — exactly one '=' on each axis.
  EXPECT_EQ(std::count(s.x.eq_with_next.begin(), s.x.eq_with_next.end(), true),
            1);
  EXPECT_EQ(s.x.storage_units(), 5u);
}

TEST(BString, StorageIsDualOfBeString) {
  // B-string stores 2n symbols + (#coincidences); BE-string stores 2n +
  // (#distinct adjacent pairs + edge gaps). Together they partition the
  // 2n-1 adjacent pairs (plus up to 2 edge dummies for BE).
  alphabet names;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const symbolic_image img = random_scene_seeded(seed, names);
    const std::size_t n = img.size();
    const b_string2d b = build_b_string(img);
    const be_string2d be = encode(img);
    for (int side = 0; side < 2; ++side) {
      const b_string_axis& bx = side == 0 ? b.x : b.y;
      const axis_string& bex = side == 0 ? be.x : be.y;
      const std::size_t eq_ops = bx.storage_units() - 2 * n;
      const std::size_t dummies = bex.dummy_count();
      // Interior adjacent pairs: 2n-1 = eq_ops + interior dummies; BE may
      // additionally spend up to 2 edge dummies.
      const std::size_t interior_dummies =
          dummies - (bex.at(0).is_dummy() ? 1 : 0) -
          (bex.at(bex.size() - 1).is_dummy() ? 1 : 0);
      EXPECT_EQ(eq_ops + interior_dummies, 2 * n - 1);
    }
  }
}

TEST(BString, RankIntervalsAgreeAcrossModels) {
  alphabet names;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const symbolic_image img = random_scene_seeded(seed, names);
    const b_string2d b = build_b_string(img);
    const be_string2d be = encode(img);
    EXPECT_EQ(rank_intervals(be.x), rank_intervals(b.x));
    EXPECT_EQ(rank_intervals(be.y), rank_intervals(b.y));
  }
}

TEST(BString, RankIntervalsPreserveAllenRelations) {
  // Unique-symbol scenes: the rank-space intervals must stand in exactly the
  // same Allen relations as the true MBR projections.
  alphabet names;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    rng r(seed);
    scene_params params;
    params.object_count = 8;
    params.symbol_pool = 8;
    params.unique_symbols = true;
    const symbolic_image img = random_scene(params, r, names);
    const be_string2d be = encode(img);
    const auto ranked = rank_intervals(be.x);
    ASSERT_EQ(ranked.size(), img.size());
    std::map<symbol_id, interval> rank_of;
    for (const auto& [symbol, ivl] : ranked) rank_of[symbol] = ivl;
    for (std::size_t i = 0; i < img.size(); ++i) {
      for (std::size_t j = 0; j < img.size(); ++j) {
        if (i == j) continue;
        const icon& a = img.icons()[i];
        const icon& b = img.icons()[j];
        EXPECT_EQ(classify(rank_of[a.symbol], rank_of[b.symbol]),
                  classify(a.mbr.x, b.mbr.x));
      }
    }
  }
}

TEST(BString, ToTextShowsEquality) {
  alphabet names;
  symbolic_image img(10, 10);
  const symbol_id a = names.intern("A");
  const symbol_id b = names.intern("B");
  img.add(a, rect::checked(0, 5, 0, 5));
  img.add(b, rect::checked(5, 10, 5, 10));
  const b_string2d s = build_b_string(img);
  EXPECT_EQ(to_text(s.x, names), "A:b A:e = B:b B:e");
}

}  // namespace
}  // namespace bes
