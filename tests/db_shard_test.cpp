// The sharded-database equivalence suite.
//
// Contract under test: a sharded_database is a pure partitioning — for
// every kernel, thread count, shard count, and scan path, the fan-out/merge
// search returns results bit-identical to the same options over one
// unsharded database holding the same records in global-id order. Plus the
// consistent-hash ring's structural guarantees: deterministic assignment,
// full coverage, and resizes that move only the new shard's records.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "db/prefilter.hpp"
#include "db/shard.hpp"
#include "util/rng.hpp"
#include "workload/query_gen.hpp"

namespace bes {
namespace {

// A corpus with near-duplicate pairs so top-k boundaries see score ties.
image_database sibling_corpus(std::size_t bases, std::uint64_t seed = 23) {
  image_database db;
  rng r(seed);
  scene_params params;
  params.object_count = 8;
  params.symbol_pool = 10;
  for (std::size_t i = 0; i < bases; ++i) {
    const symbolic_image scene = random_scene(params, r, db.symbols());
    db.add("base" + std::to_string(i), scene);
    distortion_params sibling;
    sibling.keep_fraction = 0.8;
    sibling.jitter = 16;
    db.add("sib" + std::to_string(i), distort(scene, sibling, r, db.symbols()));
  }
  return db;
}

symbolic_image distorted_query(const image_database& db, std::uint64_t seed,
                               double keep = 0.6) {
  rng r(seed);
  distortion_params d;
  d.keep_fraction = keep;
  d.jitter = 8;
  alphabet scratch = db.symbols();
  return distort(db.record(static_cast<image_id>(seed % db.size())).image, d,
                 r, scratch);
}

constexpr std::size_t kShardCounts[] = {1, 3, 8};

// ------------------------------------------------------------------- ring

TEST(ShardRing, RejectsDegenerateParameters) {
  EXPECT_THROW(shard_ring(0), std::invalid_argument);
  EXPECT_THROW(shard_ring(3, 0), std::invalid_argument);
}

TEST(ShardRing, AssignmentIsDeterministicAndCovering) {
  const shard_ring a(8);
  const shard_ring b(8);
  std::set<std::size_t> seen;
  for (image_id id = 0; id < 2000; ++id) {
    const std::size_t s = a.shard_of(id);
    ASSERT_LT(s, 8u);
    EXPECT_EQ(s, b.shard_of(id));
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 8u) << "2000 ids left a shard empty";
}

TEST(ShardRing, SpreadIsReasonablyUniform) {
  const shard_ring ring(8);
  std::map<std::size_t, std::size_t> counts;
  constexpr image_id n = 8000;
  for (image_id id = 0; id < n; ++id) ++counts[ring.shard_of(id)];
  for (const auto& [shard, count] : counts) {
    // Expected 1000 per shard; consistent hashing with 64 vnodes wobbles,
    // but a shard at <1/4 or >2.5x of fair share means a broken ring.
    EXPECT_GT(count, n / 8 / 4) << "shard " << shard;
    EXPECT_LT(count, n / 8 * 5 / 2) << "shard " << shard;
  }
}

TEST(ShardRing, GrowingMovesOnlyOntoTheNewShard) {
  // The consistent-hashing contract: adding shard N leaves every id either
  // where it was or on the NEW shard — no lateral churn between survivors.
  for (std::size_t n : {2u, 4u, 7u}) {
    const shard_ring before(n);
    const shard_ring after(n + 1);
    std::size_t moved = 0;
    constexpr image_id ids = 4000;
    for (image_id id = 0; id < ids; ++id) {
      const std::size_t was = before.shard_of(id);
      const std::size_t now = after.shard_of(id);
      if (was != now) {
        EXPECT_EQ(now, n) << "id " << id << " churned between old shards";
        ++moved;
      }
    }
    // Expected ids/(n+1); anything under half the corpus proves it is not
    // rehash-everything, and at least one id must land on the new shard.
    EXPECT_GT(moved, 0u);
    EXPECT_LT(moved, ids / 2);
  }
}

// -------------------------------------------------------------- structure

TEST(ShardedDatabase, PartitionsRecordsWithoutLosingAny) {
  const image_database db = sibling_corpus(20);
  for (std::size_t shards : kShardCounts) {
    const sharded_database sharded = make_sharded(db, shards);
    ASSERT_EQ(sharded.size(), db.size());
    ASSERT_EQ(sharded.shard_count(), shards);

    std::size_t total = 0;
    std::set<image_id> seen;
    for (std::size_t s = 0; s < shards; ++s) {
      const auto& globals = sharded.shard_global_ids(s);
      ASSERT_EQ(globals.size(), sharded.shard_db(s).size());
      total += globals.size();
      for (std::size_t local = 0; local < globals.size(); ++local) {
        const image_id g = globals[local];
        EXPECT_TRUE(seen.insert(g).second) << "global id appears twice";
        EXPECT_EQ(sharded.shard_of(g), s);
        EXPECT_EQ(sharded.ring().shard_of(g), s);
        // The shard-local record is the global record, under a local id.
        const db_record& local_rec = sharded.shard_db(s).record(
            static_cast<image_id>(local));
        EXPECT_EQ(local_rec.name, db.record(g).name);
        EXPECT_EQ(local_rec.strings, db.record(g).strings);
      }
    }
    EXPECT_EQ(total, db.size());
    // Mirrored alphabets: master == unsharded, shards are prefixes.
    EXPECT_EQ(sharded.symbols().names(), db.symbols().names());
  }
}

TEST(ShardedDatabase, CandidatesMatchUnshardedIndex) {
  const image_database db = sibling_corpus(20);
  for (std::size_t shards : kShardCounts) {
    const sharded_database sharded = make_sharded(db, shards);
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      const symbolic_image query = distorted_query(db, seed);
      EXPECT_EQ(sharded.candidates(query), db.candidates(query))
          << "shards=" << shards << " seed=" << seed;
    }
  }
}

TEST(ShardedDatabase, PrefiltersMatchUnsharded) {
  const image_database db = sibling_corpus(20);
  const spatial_index spatial(db);
  for (std::size_t shards : kShardCounts) {
    const sharded_database sharded = make_sharded(db, shards);
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      const symbolic_image query = distorted_query(db, seed, 0.8);
      for (int pad : {0, 8, 32}) {
        EXPECT_EQ(window_candidates(sharded, query, pad),
                  window_candidates(spatial, query, pad))
            << "shards=" << shards << " pad=" << pad;
        EXPECT_EQ(combined_candidates(sharded, query, pad),
                  combined_candidates(db, spatial, query, pad))
            << "shards=" << shards << " pad=" << pad;
      }
    }
  }
}

// ------------------------------------------- search == unsharded search

class ShardEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardEquivalence, EveryKernelThreadsAndShardCount) {
  const image_database db = sibling_corpus(25, 31 + GetParam());
  const symbolic_image query = distorted_query(db, GetParam());

  std::vector<similarity_options> kernels(3);
  kernels[0] = {};                    // signed-query
  kernels[1].exact_lcs = true;        // exact-query
  kernels[2].norm = norm_kind::dice;  // signed-dice

  for (std::size_t shards : kShardCounts) {
    const sharded_database sharded = make_sharded(db, shards);
    for (const similarity_options& sim : kernels) {
      for (unsigned threads : {1u, 4u}) {
        for (bool pruning : {false, true}) {
          query_options options;
          options.top_k = 5;
          options.min_score = 0.3;
          options.use_index = false;
          options.histogram_pruning = pruning;
          options.threads = threads;
          options.similarity = sim;
          search_stats flat_stats;
          search_stats shard_stats;
          EXPECT_EQ(search(sharded, query, options, &shard_stats),
                    search(db, query, options, &flat_stats))
              << "shards=" << shards << " threads=" << threads
              << " pruning=" << pruning << " exact=" << sim.exact_lcs;
          // Same candidate universe; accounting still partitions it.
          EXPECT_EQ(shard_stats.scanned, flat_stats.scanned);
          EXPECT_EQ(shard_stats.scored + shard_stats.pruned,
                    shard_stats.scanned);
        }
      }
    }
  }
}

TEST_P(ShardEquivalence, IndexPathAndTransformInvariant) {
  const image_database db = sibling_corpus(15, 47 + GetParam());
  const symbolic_image query = distorted_query(db, GetParam(), 0.8);
  for (std::size_t shards : kShardCounts) {
    const sharded_database sharded = make_sharded(db, shards);
    {
      query_options indexed;  // inverted-index path, defaults
      EXPECT_EQ(search(sharded, query, indexed), search(db, query, indexed))
          << "shards=" << shards;
    }
    {
      query_options invariant;
      invariant.use_index = false;
      invariant.transform_invariant = true;
      invariant.threads = 2;
      EXPECT_EQ(search(sharded, query, invariant), search(db, query, invariant))
          << "shards=" << shards;
    }
  }
}

TEST_P(ShardEquivalence, ExplicitCandidateSets) {
  const image_database db = sibling_corpus(20, 7 + GetParam());
  const spatial_index spatial(db);
  const symbolic_image query = distorted_query(db, GetParam(), 0.8);
  const be_string2d strings = encode(query);
  const std::vector<image_id> candidates =
      combined_candidates(db, spatial, query, 16);
  for (std::size_t shards : kShardCounts) {
    const sharded_database sharded = make_sharded(db, shards);
    for (bool pruning : {false, true}) {
      query_options options;
      options.top_k = 5;
      options.histogram_pruning = pruning;
      EXPECT_EQ(search_candidates(sharded, strings, candidates, options),
                search_candidates(db, strings, candidates, options))
          << "shards=" << shards << " pruning=" << pruning;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardEquivalence,
                         ::testing::Range<std::uint64_t>(0, 6));

TEST(ShardEquivalence, CandidateIdsAreRangeChecked) {
  const image_database db = sibling_corpus(5);
  const sharded_database sharded = make_sharded(db, 3);
  const symbolic_image query = distorted_query(db, 1);
  const be_string2d strings = encode(query);
  const std::vector<image_id> bogus = {0, static_cast<image_id>(db.size())};
  EXPECT_THROW((void)search_candidates(sharded, strings, bogus),
               std::out_of_range);
}

// ---------------------------------------------------------------- batches

TEST(ShardedBatch, MatchesPerQueryAndUnshardedBatch) {
  const image_database db = sibling_corpus(15);
  std::vector<symbolic_image> queries;
  for (std::uint64_t s = 0; s < 6; ++s) {
    queries.push_back(distorted_query(db, s));
  }
  for (std::size_t shards : kShardCounts) {
    const sharded_database sharded = make_sharded(db, shards);
    for (bool pruning : {false, true}) {
      for (unsigned threads : {1u, 4u}) {
        query_options options;
        options.top_k = 5;
        options.use_index = false;
        options.histogram_pruning = pruning;
        options.threads = threads;
        std::vector<search_stats> stats;
        const auto batched = search_batch(sharded, queries, options, &stats);
        const auto flat = search_batch(db, queries, options);
        ASSERT_EQ(batched.size(), queries.size());
        ASSERT_EQ(stats.size(), queries.size());
        for (std::size_t i = 0; i < queries.size(); ++i) {
          EXPECT_EQ(batched[i], flat[i])
              << "query " << i << " shards=" << shards
              << " pruning=" << pruning << " threads=" << threads;
          EXPECT_EQ(batched[i], search(sharded, queries[i], options))
              << "query " << i << " shards=" << shards;
          EXPECT_EQ(stats[i].scored + stats[i].pruned, stats[i].scanned);
        }
      }
    }
  }
}

TEST(ShardedBatch, EmptyBatchAndEmptyDatabase) {
  const sharded_database empty(4);
  EXPECT_EQ(empty.size(), 0u);
  std::vector<search_stats> stats;
  EXPECT_TRUE(
      search_batch(empty, std::span<const symbolic_image>{}, {}, &stats)
          .empty());
  EXPECT_TRUE(stats.empty());

  const image_database db = sibling_corpus(3);
  const symbolic_image query = distorted_query(db, 1);
  EXPECT_TRUE(search(empty, query).empty());
}

}  // namespace
}  // namespace bes
