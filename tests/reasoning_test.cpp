#include <gtest/gtest.h>

#include "core/encoder.hpp"
#include "reasoning/allen_algebra.hpp"
#include "reasoning/query_lang.hpp"
#include "util/rng.hpp"
#include "workload/scene_gen.hpp"

namespace bes {
namespace {

// ------------------------------------------------------------- algebra

TEST(AllenAlgebra, SingletonAndContains) {
  const relation_set s = singleton(allen_relation::meets);
  EXPECT_TRUE(contains(s, allen_relation::meets));
  EXPECT_FALSE(contains(s, allen_relation::before));
  EXPECT_EQ(count(s), 1);
  EXPECT_EQ(count(full_relation_set), allen_relation_count);
}

TEST(AllenAlgebra, KnownCompositions) {
  // before ; before = {before} — a classic entry.
  EXPECT_EQ(compose(allen_relation::before, allen_relation::before),
            singleton(allen_relation::before));
  // equals is the identity of composition.
  for (int i = 0; i < allen_relation_count; ++i) {
    const auto r = static_cast<allen_relation>(i);
    EXPECT_EQ(compose(allen_relation::equals, r), singleton(r));
    EXPECT_EQ(compose(r, allen_relation::equals), singleton(r));
  }
  // during ; during = {during}.
  EXPECT_EQ(compose(allen_relation::during, allen_relation::during),
            singleton(allen_relation::during));
  // meets ; met_by includes several possibilities (e.g. equals, overlaps...).
  EXPECT_GT(count(compose(allen_relation::meets, allen_relation::met_by)), 1);
}

TEST(AllenAlgebra, CompositionIsSoundOnRandomTriples) {
  // For random interval triples, the observed r(a,c) must always be inside
  // compose(r(a,b), r(b,c)).
  rng r(1);
  for (int trial = 0; trial < 2000; ++trial) {
    auto make = [&] {
      const int lo = r.uniform_int(0, 20);
      return interval{lo, lo + r.uniform_int(1, 10)};
    };
    const interval a = make();
    const interval b = make();
    const interval c = make();
    EXPECT_TRUE(
        contains(compose(classify(a, b), classify(b, c)), classify(a, c)));
  }
}

TEST(AllenAlgebra, ConverseOfCompositionLaw) {
  // (R ; S)^-1 == S^-1 ; R^-1 — the fundamental algebra identity.
  for (int i = 0; i < allen_relation_count; ++i) {
    for (int j = 0; j < allen_relation_count; ++j) {
      const auto ri = static_cast<allen_relation>(i);
      const auto rj = static_cast<allen_relation>(j);
      EXPECT_EQ(converse(compose(ri, rj)),
                compose(singleton(inverse(rj)), singleton(inverse(ri))));
    }
  }
}

TEST(AllenAlgebra, SetCompositionIsUnionOfPointwise) {
  const relation_set ab =
      singleton(allen_relation::before) | singleton(allen_relation::meets);
  const relation_set bc = singleton(allen_relation::during);
  EXPECT_EQ(compose(ab, bc),
            static_cast<relation_set>(
                compose(allen_relation::before, allen_relation::during) |
                compose(allen_relation::meets, allen_relation::during)));
}

TEST(AllenAlgebra, ToStringListsMembers) {
  const relation_set s =
      singleton(allen_relation::before) | singleton(allen_relation::equals);
  EXPECT_EQ(to_string(s), "{before, equals}");
  EXPECT_EQ(to_string(empty_relation_set), "{}");
}

// ------------------------------------------------------------- predicates

TEST(Predicates, DirectionalSemantics) {
  const rect a = rect::checked(0, 4, 0, 4);
  const rect b = rect::checked(6, 9, 0, 4);
  EXPECT_TRUE(holds(spatial_predicate::left_of, a, b));
  EXPECT_FALSE(holds(spatial_predicate::left_of, b, a));
  EXPECT_TRUE(holds(spatial_predicate::right_of, b, a));
  EXPECT_TRUE(holds(spatial_predicate::disjoint_from, a, b));
  EXPECT_FALSE(holds(spatial_predicate::overlaps, a, b));
}

TEST(Predicates, VerticalSemanticsYUp) {
  const rect low = rect::checked(0, 4, 0, 3);
  const rect high = rect::checked(0, 4, 5, 8);
  EXPECT_TRUE(holds(spatial_predicate::above, high, low));
  EXPECT_TRUE(holds(spatial_predicate::below, low, high));
  EXPECT_FALSE(holds(spatial_predicate::above, low, high));
}

TEST(Predicates, ContainmentAndEquality) {
  const rect outer = rect::checked(0, 10, 0, 10);
  const rect inner = rect::checked(2, 5, 2, 5);
  EXPECT_TRUE(holds(spatial_predicate::inside, inner, outer));
  EXPECT_TRUE(holds(spatial_predicate::contains, outer, inner));
  EXPECT_TRUE(holds(spatial_predicate::same_place, outer, outer));
  EXPECT_FALSE(holds(spatial_predicate::same_place, outer, inner));
}

TEST(Predicates, MeetsEdges) {
  const rect a = rect::checked(0, 4, 0, 4);
  const rect b = rect::checked(4, 8, 0, 4);
  EXPECT_TRUE(holds(spatial_predicate::meets_x, a, b));
  EXPECT_FALSE(holds(spatial_predicate::meets_x, b, a));
  const rect below_rect = rect::checked(0, 4, 0, 2);
  const rect above_rect = rect::checked(0, 4, 2, 5);
  EXPECT_TRUE(holds(spatial_predicate::meets_y, below_rect, above_rect));
}

TEST(Predicates, NameRoundTrip) {
  for (int i = 0; i < spatial_predicate_count; ++i) {
    const auto p = static_cast<spatial_predicate>(i);
    const auto parsed = predicate_from_name(to_string(p));
    ASSERT_TRUE(parsed.has_value()) << to_string(p);
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(predicate_from_name("sideways-of").has_value());
}

TEST(Predicates, RankBoxesPreserveDirectionalTruth) {
  // Spatial reasoning from the BE-string alone: predicates evaluated on
  // rank boxes agree with the geometric MBRs (unique-symbol scenes).
  alphabet names;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    rng r(seed);
    scene_params params;
    params.object_count = 6;
    params.symbol_pool = 6;
    params.unique_symbols = true;
    const symbolic_image scene = random_scene(params, r, names);
    const be_string2d strings = encode(scene);
    for (std::size_t i = 0; i < scene.size(); ++i) {
      for (std::size_t j = 0; j < scene.size(); ++j) {
        if (i == j) continue;
        const icon& a = scene.icons()[i];
        const icon& b = scene.icons()[j];
        const auto boxes = rank_boxes(strings, a.symbol, b.symbol);
        ASSERT_TRUE(boxes.has_value());
        for (int p = 0; p < spatial_predicate_count; ++p) {
          const auto predicate = static_cast<spatial_predicate>(p);
          EXPECT_EQ(holds(predicate, boxes->a, boxes->b),
                    holds(predicate, a.mbr, b.mbr))
              << to_string(predicate);
        }
      }
    }
  }
}

TEST(Predicates, RankBoxesAmbiguousForDuplicates) {
  alphabet names;
  const symbol_id a = names.intern("A");
  const symbol_id b = names.intern("B");
  symbolic_image scene(20, 20);
  scene.add(a, rect::checked(0, 3, 0, 3));
  scene.add(a, rect::checked(10, 13, 10, 13));  // second A -> ambiguous
  scene.add(b, rect::checked(5, 8, 5, 8));
  EXPECT_FALSE(rank_boxes(encode(scene), a, b).has_value());
}

// ------------------------------------------------------------- query lang

TEST(QueryLang, ParsesConjunctions) {
  const spatial_query q =
      parse_query("A left-of B & B inside C and A overlaps C");
  ASSERT_EQ(q.clauses.size(), 3u);
  EXPECT_EQ(q.clauses[0],
            (query_clause{"A", spatial_predicate::left_of, "B"}));
  EXPECT_EQ(q.clauses[1], (query_clause{"B", spatial_predicate::inside, "C"}));
  EXPECT_EQ(q.variables(), (std::vector<std::string>{"A", "B", "C"}));
}

TEST(QueryLang, RejectsMalformedQueries) {
  EXPECT_THROW((void)parse_query(""), std::invalid_argument);
  EXPECT_THROW((void)parse_query("A left-of"), std::invalid_argument);
  EXPECT_THROW((void)parse_query("A sideways-of B"), std::invalid_argument);
  EXPECT_THROW((void)parse_query("A left-of B B inside C"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_query("A left-of B &"), std::invalid_argument);
  EXPECT_THROW((void)parse_query("A left-of A"), std::invalid_argument);
}

symbolic_image intro_scene(alphabet& names) {
  // A on the left, B on the right, C spanning the top.
  symbolic_image img(100, 100);
  img.add(names.intern("A"), rect::checked(5, 25, 10, 40));
  img.add(names.intern("B"), rect::checked(70, 95, 10, 40));
  img.add(names.intern("C"), rect::checked(0, 100, 60, 90));
  return img;
}

TEST(QueryLang, PaperIntroExample) {
  alphabet names;
  const symbolic_image img = intro_scene(names);
  EXPECT_TRUE(matches(parse_query("A left-of B"), img, names));
  EXPECT_FALSE(matches(parse_query("B left-of A"), img, names));
  EXPECT_TRUE(matches(parse_query("C above A & C above B"), img, names));
}

TEST(QueryLang, PartialSatisfactionCounts) {
  alphabet names;
  const symbolic_image img = intro_scene(names);
  const spatial_query q = parse_query("A left-of B & B left-of A");
  EXPECT_EQ(satisfied_clauses(q, img, names), 1u);
  EXPECT_FALSE(matches(q, img, names));
}

TEST(QueryLang, UnknownSymbolFailsItsClausesOnly) {
  alphabet names;
  const symbolic_image img = intro_scene(names);
  const spatial_query q = parse_query("A left-of B & A left-of Z");
  EXPECT_EQ(satisfied_clauses(q, img, names), 1u);
}

TEST(QueryLang, DuplicateSymbolsPickConsistentInstances) {
  alphabet names;
  const symbol_id a = names.intern("A");
  const symbol_id b = names.intern("B");
  symbolic_image img(100, 100);
  img.add(a, rect::checked(0, 10, 0, 10));    // left A
  img.add(a, rect::checked(80, 90, 0, 10));   // right A
  img.add(b, rect::checked(40, 50, 0, 10));   // middle B
  // One A is left of B AND (the same A) below nothing... use two clauses
  // that force choosing DIFFERENT instances consistently:
  EXPECT_TRUE(matches(parse_query("A left-of B"), img, names));
  EXPECT_TRUE(matches(parse_query("A right-of B"), img, names));
  // But a single A cannot be both left and right of B.
  EXPECT_EQ(
      satisfied_clauses(parse_query("A left-of B & A right-of B"), img, names),
      1u);
}

TEST(QueryLang, SearchStructuredRanksByClauseCount) {
  image_database db;
  const symbolic_image good = intro_scene(db.symbols());
  symbolic_image half(100, 100);
  half.add(db.symbols().id_of("A"), rect::checked(5, 25, 10, 40));
  half.add(db.symbols().id_of("B"), rect::checked(70, 95, 10, 40));
  // no C
  symbolic_image none(100, 100);
  none.add(db.symbols().id_of("B"), rect::checked(0, 10, 0, 10));
  db.add("good", good);
  db.add("half", half);
  db.add("none", none);

  const spatial_query q = parse_query("A left-of B & C above A");
  const auto ranked = search_structured(db, q);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].id, 0u);
  EXPECT_EQ(ranked[0].satisfied, 2u);
  EXPECT_EQ(ranked[1].id, 1u);
  EXPECT_EQ(ranked[1].satisfied, 1u);
  EXPECT_EQ(ranked[2].satisfied, 0u);

  const auto full_only = search_structured(db, q, true);
  ASSERT_EQ(full_only.size(), 1u);
  EXPECT_EQ(full_only[0].id, 0u);
}

}  // namespace
}  // namespace bes
