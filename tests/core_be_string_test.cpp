#include <gtest/gtest.h>

#include "core/be_string.hpp"

namespace bes {
namespace {

token Bb(symbol_id s) { return token::boundary(s, boundary_kind::begin); }
token Be(symbol_id s) { return token::boundary(s, boundary_kind::end); }
token E() { return token::dummy(); }

// ---------------------------------------------------------------- token

TEST(Token, DummyIdentity) {
  EXPECT_TRUE(token::dummy().is_dummy());
  EXPECT_FALSE(Bb(0).is_dummy());
  EXPECT_EQ(token::dummy(), token::dummy());
  EXPECT_NE(token::dummy(), Bb(0));
}

TEST(Token, BoundaryEqualityIsSymbolAndKind) {
  EXPECT_EQ(Bb(3), Bb(3));
  EXPECT_NE(Bb(3), Be(3));
  EXPECT_NE(Bb(3), Bb(4));
}

TEST(Token, RoleSwap) {
  EXPECT_EQ(Bb(7).role_swapped(), Be(7));
  EXPECT_EQ(Be(7).role_swapped(), Bb(7));
  EXPECT_TRUE(E().role_swapped().is_dummy());
}

TEST(Token, CanonicalOrder) {
  EXPECT_LT(Bb(1), Be(1));  // begin before end for the same symbol
  EXPECT_LT(Be(1), Bb(2));  // symbol dominates
}

TEST(Token, FlippedKind) {
  EXPECT_EQ(flipped(boundary_kind::begin), boundary_kind::end);
  EXPECT_EQ(flipped(boundary_kind::end), boundary_kind::begin);
}

TEST(Token, HashDistinguishesRoles) {
  const std::hash<token> h;
  EXPECT_NE(h(Bb(1)), h(Be(1)));
  EXPECT_EQ(h(E()), h(token::dummy()));
}

// ---------------------------------------------------------------- axis

TEST(AxisString, CountsSplitDummiesAndBoundaries) {
  const axis_string s(std::vector<token>{E(), Bb(0), E(), Be(0), E()});
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.dummy_count(), 3u);
  EXPECT_EQ(s.boundary_count(), 2u);
  EXPECT_FALSE(s.empty());
}

TEST(AxisString, EmptyIsWellFormed) {
  EXPECT_TRUE(axis_string{}.well_formed());
}

TEST(AxisString, SingleDummyIsWellFormed) {
  EXPECT_TRUE(axis_string(std::vector<token>{E()}).well_formed());
}

TEST(AxisString, AdjacentDummiesAreMalformed) {
  EXPECT_FALSE(axis_string(std::vector<token>{E(), E()}).well_formed());
  EXPECT_FALSE(
      axis_string(std::vector<token>{Bb(0), E(), E(), Be(0)}).well_formed());
}

TEST(AxisString, UnbalancedBoundariesAreMalformed) {
  // begin without end
  EXPECT_FALSE(axis_string(std::vector<token>{Bb(0)}).well_formed());
  // end before begin
  EXPECT_FALSE(
      axis_string(std::vector<token>{Be(0), E(), Bb(0)}).well_formed());
  // counts differ
  EXPECT_FALSE(
      axis_string(std::vector<token>{Bb(0), E(), Be(0), E(), Be(0)})
          .well_formed());
}

TEST(AxisString, InterleavedInstancesAreWellFormed) {
  // Two instances of symbol 0: b b e e (nested) and b e b e (sequential).
  EXPECT_TRUE(axis_string(std::vector<token>{Bb(0), E(), Bb(0), E(), Be(0),
                                             E(), Be(0)})
                  .well_formed());
  EXPECT_TRUE(axis_string(std::vector<token>{Bb(0), E(), Be(0), Bb(0), E(),
                                             Be(0)})
                  .well_formed());
}

TEST(AxisString, MixedSymbolsBalanceIndependently) {
  // Symbol 0 balanced, symbol 1 not.
  EXPECT_FALSE(axis_string(std::vector<token>{Bb(0), Bb(1), E(), Be(0)})
                   .well_formed());
}

TEST(AxisString, AtThrowsOutOfRange) {
  const axis_string s(std::vector<token>{E()});
  EXPECT_NO_THROW((void)s.at(0));
  EXPECT_THROW((void)s.at(1), std::out_of_range);
}

// ---------------------------------------------------------------- 2d

TEST(BeString2d, TotalsAndWellFormedness) {
  const axis_string good(std::vector<token>{Bb(0), E(), Be(0)});
  const axis_string bad(std::vector<token>{E(), E()});
  const be_string2d both_good{good, good};
  EXPECT_EQ(both_good.total_tokens(), 6u);
  EXPECT_TRUE(both_good.well_formed());
  EXPECT_FALSE((be_string2d{good, bad}.well_formed()));
  EXPECT_FALSE((be_string2d{bad, good}.well_formed()));
}

TEST(BeString2d, StructuralEquality) {
  const axis_string a(std::vector<token>{Bb(0), E(), Be(0)});
  const axis_string b(std::vector<token>{Bb(1), E(), Be(1)});
  EXPECT_EQ((be_string2d{a, b}), (be_string2d{a, b}));
  EXPECT_NE((be_string2d{a, b}), (be_string2d{b, a}));
}

}  // namespace
}  // namespace bes
