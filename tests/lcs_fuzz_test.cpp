// Differential fuzzing of the LCS kernels.
//
// Three implementations answer length queries: the paper's signed-table DP
// (Algorithm 2, both as the full-table be_lcs_fill and as the rolling
// two-row kernel behind be_lcs_length), and the exact two-layer DP. This
// suite drives them against each other over seeded adversarial token
// strings — tiny alphabet, dense repeats, dummy runs — which is exactly the
// tie-pattern territory where the sign trick could in principle diverge
// from the exact optimum and where the rolling kernel's argument
// transposition could in principle change the signed heuristic's answer.
// Measured: no divergence anywhere (2M+ pairs offline, >1000 pairs here);
// if one ever appears, pin it as a fixture in tests/support and document it.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/encoder.hpp"
#include "lcs/be_lcs.hpp"
#include "util/rng.hpp"
#include "workload/scene_gen.hpp"

namespace bes {
namespace {

token Bb(symbol_id s) { return token::boundary(s, boundary_kind::begin); }
token Be(symbol_id s) { return token::boundary(s, boundary_kind::end); }

// Adversarial generator: up to `max_len` tokens over `symbols` distinct
// icons plus the dummy, dummy-heavy so the constrained rule is exercised.
std::vector<token> random_tokens(rng& r, std::size_t max_len, int symbols) {
  std::vector<token> out(
      static_cast<std::size_t>(r.uniform_int(0, static_cast<int>(max_len))));
  for (token& t : out) {
    const int pick = r.uniform_int(0, 4);
    if (pick == 0) {
      t = token::dummy();
    } else {
      const auto s = static_cast<symbol_id>(r.uniform_int(0, symbols - 1));
      t = pick % 2 == 1 ? Bb(s) : Be(s);
    }
  }
  return out;
}

// ---------------------------------------------- signed vs exact (paper F1)

class SignedVsExactFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SignedVsExactFuzz, PaperSignTrickMatchesExactDp) {
  // 8 pairs per seed x 150 seeds = 1200 differential pairs.
  rng r(GetParam());
  for (int round = 0; round < 8; ++round) {
    const int symbols = 2 + static_cast<int>(GetParam() % 3);
    const std::vector<token> q = random_tokens(r, 20, symbols);
    const std::vector<token> d = random_tokens(r, 20, symbols);
    const std::size_t paper = be_lcs_length(q, d);
    const std::size_t exact = be_lcs_length_exact(q, d);
    ASSERT_EQ(paper, exact)
        << "sign-trick divergence at seed " << GetParam() << " round "
        << round << " — pin this pair as a tests/support fixture and "
        << "document it (header of lcs/be_lcs.hpp)";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SignedVsExactFuzz,
                         ::testing::Range<std::uint64_t>(0, 150));

// ------------------------------------- rolling kernels vs the seed table

class RollingVsTableFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RollingVsTableFuzz, RollingLengthMatchesFullTableFill) {
  // The rolling kernel transposes its arguments to keep the scratch row
  // along the shorter string; the full-table fill never does. Agreement
  // here is what licenses the transposition.
  rng r(GetParam() + 500);
  for (int round = 0; round < 6; ++round) {
    const std::vector<token> q = random_tokens(r, 24, 2);
    const std::vector<token> d = random_tokens(r, 24, 2);
    const be_lcs_table w = be_lcs_fill(q, d);
    const auto table_len =
        static_cast<std::size_t>(std::abs(w.at(q.size(), d.size())));
    EXPECT_EQ(be_lcs_length(q, d), table_len);
    EXPECT_EQ(be_lcs_length(d, q), table_len) << "orientation asymmetry";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RollingVsTableFuzz,
                         ::testing::Range<std::uint64_t>(0, 60));

// ----------------------------------------------- early-exit band contract

class BoundedKernelFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundedKernelFuzz, BandIsAdmissible) {
  // Contract: result >= true length always; result == true length whenever
  // the true length >= min_needed (equivalently whenever result >=
  // min_needed). Fuzz it across the whole threshold range on both kernels.
  rng r(GetParam() + 9000);
  lcs_context ctx;
  for (int round = 0; round < 5; ++round) {
    const std::vector<token> q = random_tokens(r, 22, 3);
    const std::vector<token> d = random_tokens(r, 22, 3);
    const std::size_t paper = be_lcs_length(q, d, ctx);
    const std::size_t exact = be_lcs_length_exact(q, d, ctx);
    for (std::size_t needed = 0; needed <= std::min(q.size(), d.size()) + 2;
         ++needed) {
      const std::size_t bp = be_lcs_length_bounded(q, d, needed, ctx);
      const std::size_t bx = be_lcs_length_exact_bounded(q, d, needed, ctx);
      EXPECT_GE(bp, paper) << "bounded below true at threshold " << needed;
      EXPECT_GE(bx, exact) << "bounded below true at threshold " << needed;
      EXPECT_EQ(bp >= needed, paper >= needed);
      EXPECT_EQ(bx >= needed, exact >= needed);
      if (paper >= needed) {
        EXPECT_EQ(bp, paper);
      }
      if (exact >= needed) {
        EXPECT_EQ(bx, exact);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundedKernelFuzz,
                         ::testing::Range<std::uint64_t>(0, 40));

// -------------------------------------- registered kernels vs the scalar

// Directed shapes that historically break bit-packed DPs: lengths that
// straddle 64-bit word boundaries, unbroken dummy runs (the constraint's
// worst case), and single-symbol alphabets (maximal match-mask density).
std::vector<token> shaped_tokens(rng& r, std::size_t len, int shape) {
  std::vector<token> out(len);
  for (std::size_t i = 0; i < out.size(); ++i) {
    switch (shape) {
      case 0:  // all dummies
        out[i] = token::dummy();
        break;
      case 1:  // one symbol, begin/end/dummy mix
        out[i] = r.uniform_int(0, 3) == 0 ? token::dummy()
                 : r.uniform_int(0, 1) == 0 ? Bb(0)
                                            : Be(0);
        break;
      default:  // small alphabet, dummy-heavy
        out[i] = r.uniform_int(0, 2) == 0
                     ? token::dummy()
                     : Bb(static_cast<symbol_id>(r.uniform_int(0, 2)));
        break;
    }
  }
  return out;
}

class KernelDispatchFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KernelDispatchFuzz, EveryRegisteredKernelMatchesScalar) {
  // Differential fuzz of the CPU-dispatch registry: every registered kernel
  // (scalar, bit-parallel, AVX2 where compiled+supported) must be
  // bit-identical to the scalar reference on the signed, exact, and
  // weighted entry points, with lengths crossing the 64-cell word packing
  // of the bit-parallel variant.
  const lcs_kernel* scalar = find_lcs_kernel("scalar");
  ASSERT_NE(scalar, nullptr);
  lcs_context ref(*scalar);
  rng r(GetParam() * 31 + 17);
  constexpr std::size_t kLens[] = {1, 7, 63, 64, 65, 127, 128};
  for (const std::size_t len : kLens) {
    for (int shape = 0; shape < 3; ++shape) {
      const std::vector<token> q = shaped_tokens(r, len, shape);
      const std::vector<token> d =
          shaped_tokens(r, 1 + len / (1 + static_cast<std::size_t>(
                                              r.uniform_int(0, 2))),
                        shape);
      const std::size_t paper = be_lcs_length(q, d, ref);
      const std::size_t exact = be_lcs_length_exact(q, d, ref);
      const double weighted = be_lcs_weighted(q, d, 0.5, ref);
      for (const lcs_kernel& k : registered_lcs_kernels()) {
        lcs_context ctx(k);
        EXPECT_EQ(be_lcs_length(q, d, ctx), paper)
            << "kernel " << k.name << " len " << len << " shape " << shape;
        EXPECT_EQ(be_lcs_length_exact(q, d, ctx), exact)
            << "kernel " << k.name << " len " << len << " shape " << shape;
        EXPECT_DOUBLE_EQ(be_lcs_weighted(q, d, 0.5, ctx), weighted)
            << "kernel " << k.name << " len " << len << " shape " << shape;
      }
    }
  }
}

TEST_P(KernelDispatchFuzz, BandContractHoldsAroundTrueLength) {
  // The early-exit band's contract, probed exactly where it bites: at
  // min_needed of the true length and one either side, for every kernel.
  // (The bit-parallel banded path bails with a DIFFERENT admissible bound
  // than the scalar signed one may, so assert the contract, not equality.)
  rng r(GetParam() * 131 + 7);
  for (int round = 0; round < 4; ++round) {
    const std::vector<token> q = random_tokens(r, 70, 2);
    const std::vector<token> d = random_tokens(r, 70, 2);
    for (const lcs_kernel& k : registered_lcs_kernels()) {
      lcs_context ctx(k);
      const std::size_t exact = be_lcs_length_exact(q, d, ctx);
      for (int delta = -1; delta <= 1; ++delta) {
        if (static_cast<long>(exact) + delta < 1) continue;
        const std::size_t needed = exact + static_cast<std::size_t>(delta);
        const std::size_t bounded =
            be_lcs_length_exact_bounded(q, d, needed, ctx);
        EXPECT_GE(bounded, exact) << "kernel " << k.name;
        EXPECT_EQ(bounded >= needed, exact >= needed) << "kernel " << k.name;
        if (exact >= needed) {
          EXPECT_EQ(bounded, exact) << "kernel " << k.name;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelDispatchFuzz,
                         ::testing::Range<std::uint64_t>(0, 30));

TEST(KernelDispatch, RegistryAlwaysHasScalarFirst) {
  // The registry is ordered by ascending preference with the portable
  // scalar reference always present; BES_LCS_KERNEL=scalar must therefore
  // resolve on every machine.
  const auto kernels = registered_lcs_kernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_EQ(kernels.front().name, "scalar");
  EXPECT_NE(find_lcs_kernel("bitparallel"), nullptr);
  EXPECT_EQ(find_lcs_kernel("no-such-kernel"), nullptr);
  // The active kernel is one of the registered ones.
  const lcs_kernel& active = active_lcs_kernel();
  bool found = false;
  for (const lcs_kernel& k : kernels) found |= &k == &active;
  EXPECT_TRUE(found);
}

// ----------------------------------------------- scoring context hygiene

TEST(LcsContext, ReuseAcrossMixedSizesStaysCorrect) {
  // Interleave calls of wildly different sizes through ONE context; stale
  // scratch from a larger earlier call must never bleed into a later one.
  rng r(4242);
  lcs_context ctx;
  for (int round = 0; round < 200; ++round) {
    const std::size_t max_len = round % 3 == 0 ? 60 : 6;
    const std::vector<token> q = random_tokens(r, max_len, 2);
    const std::vector<token> d = random_tokens(r, max_len, 2);
    EXPECT_EQ(be_lcs_length(q, d, ctx), be_lcs_length_exact(q, d, ctx));
    EXPECT_DOUBLE_EQ(
        be_lcs_weighted(q, d, 1.0, ctx),
        static_cast<double>(be_lcs_length_exact(q, d, ctx)));
  }
}

TEST(LcsContext, ScratchStaysLinearInShorterString) {
  // The acceptance bar for the rolling refactor: length-only scoring over
  // an (m, n) pair touches O(min(m, n)) cells, not O(mn) like be_lcs_fill.
  alphabet names;
  rng r(7);
  scene_params params;
  params.object_count = 128;
  params.symbol_pool = 32;
  const be_string2d big = encode(random_scene(params, r, names));
  params.object_count = 8;
  const be_string2d small = encode(random_scene(params, r, names));

  // The strict linear bound is a property of the scalar rolling kernel;
  // pin it so the assertion holds regardless of the CPU-dispatched default.
  lcs_context ctx(*find_lcs_kernel("scalar"));
  (void)be_lcs_length(big.x.span(), small.x.span(), ctx);
  (void)be_lcs_length(small.x.span(), big.x.span(), ctx);
  (void)be_lcs_length_exact(big.x.span(), small.x.span(), ctx);
  const std::size_t shorter = std::min(big.x.size(), small.x.size());
  const std::size_t longer = std::max(big.x.size(), small.x.size());
  // Exact kernel needs 4 rolling rows of (shorter + 1) int32 cells; allow
  // the geometric slack of vector growth but stay far under one table row
  // per longer-string token.
  EXPECT_LE(ctx.scratch_bytes(), 4 * (shorter + 1) * sizeof(std::int32_t) * 2);
  EXPECT_LT(ctx.scratch_bytes(), longer * sizeof(std::int32_t) * (shorter + 1));

  const be_lcs_table w = be_lcs_fill(big.x.span(), small.x.span());
  EXPECT_EQ(w.storage_cells(), (big.x.size() + 1) * (small.x.size() + 1));
  EXPECT_LT(ctx.scratch_bytes(), w.storage_cells() * sizeof(std::int32_t));

  // Every registered kernel, including the bit-parallel one with its
  // per-pair match-mask table, must still stay far below the full table:
  // O(shorter / 64 * distinct-tokens) words, not O(mn) cells.
  for (const lcs_kernel& k : registered_lcs_kernels()) {
    lcs_context kctx(k);
    (void)be_lcs_length(big.x.span(), small.x.span(), kctx);
    (void)be_lcs_length_exact(big.x.span(), small.x.span(), kctx);
    (void)be_lcs_weighted(big.x.span(), small.x.span(), 0.5, kctx);
    EXPECT_LT(kctx.scratch_bytes(), w.storage_cells() * sizeof(std::int32_t))
        << "kernel " << k.name;
  }
}

// ----------------------------------------------------- encoded real scenes

TEST(SignedVsExactFuzz, EncodedScenePairsAgree) {
  // Real (well-formed) BE-strings from the scene generator, including the
  // degenerate grid-aligned ones that maximize coincident boundaries.
  alphabet names;
  rng r(11);
  for (int trial = 0; trial < 60; ++trial) {
    scene_params params;
    params.object_count = 4 + static_cast<std::size_t>(trial % 9);
    params.symbol_pool = 4;
    params.grid = trial % 2 == 0 ? 8 : 0;  // grid forces shared coordinates
    const be_string2d a = encode(random_scene(params, r, names));
    const be_string2d b = encode(random_scene(params, r, names));
    EXPECT_EQ(be_lcs_length(a.x.span(), b.x.span()),
              be_lcs_length_exact(a.x.span(), b.x.span()));
    EXPECT_EQ(be_lcs_length(a.y.span(), b.y.span()),
              be_lcs_length_exact(a.y.span(), b.y.span()));
  }
}

}  // namespace
}  // namespace bes
