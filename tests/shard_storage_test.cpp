// SCRP1 sharded-corpus persistence: streaming write, two-way load (sharded
// and flat), load_database autodetect, and the fail-closed battery over the
// manifest (every byte flip must throw) and the per-shard segments (missing
// file, lying counts, tampered payloads, truncated tails with recovery).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "db/compaction.hpp"
#include "db/shard.hpp"
#include "db/shard_storage.hpp"
#include "db/storage.hpp"
#include "util/checksum.hpp"
#include "util/rng.hpp"
#include "workload/scene_gen.hpp"

namespace bes {
namespace {

namespace fs = std::filesystem;

class ShardStorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("bes_shard_storage_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::string(::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

image_database build_db(std::size_t images, std::uint64_t seed = 11) {
  image_database db;
  rng r(seed);
  scene_params params;
  params.object_count = 6;
  params.symbol_pool = 12;
  for (std::size_t i = 0; i < images; ++i) {
    db.add("img" + std::to_string(i), random_scene(params, r, db.symbols()));
  }
  return db;
}

void expect_equal_records(const image_database& got,
                          const image_database& want) {
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(got.symbols().names(), want.symbols().names());
  EXPECT_EQ(got.tombstone_count(), want.tombstone_count());
  for (std::size_t i = 0; i < want.size(); ++i) {
    const db_record& g = got.record(static_cast<image_id>(i));
    const db_record& w = want.record(static_cast<image_id>(i));
    EXPECT_EQ(g.name, w.name) << "record " << i;
    EXPECT_EQ(g.strings, w.strings) << "record " << i;
    EXPECT_EQ(g.image.icons(), w.image.icons()) << "record " << i;
    EXPECT_EQ(got.removed(static_cast<image_id>(i)),
              want.removed(static_cast<image_id>(i)))
        << "record " << i;
  }
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return content;
}

void write_file(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

// ------------------------------------------------------------ round trips

TEST_F(ShardStorageTest, RoundTripsShardedAndFlatAcrossShardCounts) {
  const image_database db = build_db(40);
  for (std::size_t shards : {1u, 3u, 8u}) {
    const fs::path corpus = dir_ / ("c" + std::to_string(shards));
    save_sharded(db, corpus, shards);

    // Flat load: identical database, ids in global order.
    expect_equal_records(load_sharded_flat(corpus), db);

    // Sharded load: same records behind the partitioning.
    const sharded_database sharded = load_sharded_corpus(corpus);
    ASSERT_EQ(sharded.size(), db.size());
    ASSERT_EQ(sharded.shard_count(), shards);
    for (std::size_t i = 0; i < db.size(); ++i) {
      const auto id = static_cast<image_id>(i);
      EXPECT_EQ(sharded.record(id).strings, db.record(id).strings);
      EXPECT_EQ(sharded.record(id).name, db.record(id).name);
    }
    // And it matches a freshly partitioned copy, shard by shard.
    const sharded_database rebuilt = make_sharded(db, shards);
    for (std::size_t s = 0; s < shards; ++s) {
      EXPECT_EQ(sharded.shard_db(s).size(), rebuilt.shard_db(s).size());
      ASSERT_EQ(sharded.shard_global_ids(s).size(),
                rebuilt.shard_global_ids(s).size());
      for (std::size_t k = 0; k < sharded.shard_global_ids(s).size(); ++k) {
        EXPECT_EQ(sharded.shard_global_ids(s)[k],
                  rebuilt.shard_global_ids(s)[k]);
      }
    }
  }
}

TEST_F(ShardStorageTest, LoadDatabaseAutodetectsCorpusDirAndManifest) {
  const image_database db = build_db(20);
  const fs::path corpus = dir_ / "corpus";
  save_sharded(db, corpus, 3);

  EXPECT_EQ(detect_format(corpus), db_format::sharded);
  EXPECT_EQ(detect_format(corpus / shard_manifest_name), db_format::sharded);
  EXPECT_TRUE(is_sharded_corpus(corpus));
  EXPECT_TRUE(is_sharded_corpus(corpus / shard_manifest_name));

  expect_equal_records(load_database(corpus), db);
  expect_equal_records(load_database(corpus / shard_manifest_name), db);
}

TEST_F(ShardStorageTest, SaveDatabaseShardedFormatRoundTrips) {
  const image_database db = build_db(20);
  const fs::path corpus = dir_ / "corpus";
  save_database(db, corpus, db_format::sharded);
  expect_equal_records(load_database(corpus), db);
}

TEST_F(ShardStorageTest, StreamingWriterWithGrowingAlphabetMatchesBulkSave) {
  // Stream scenes one by one while the shared alphabet is still growing —
  // the symbol-delta path every shard segment must handle — and compare
  // against adding the same scenes to a database directly.
  rng r(77);
  scene_params params;
  params.object_count = 5;
  params.symbol_pool = 30;  // keeps new symbols appearing throughout
  image_database reference;
  const fs::path corpus = dir_ / "streamed";
  {
    shard_writer writer(corpus, 4);
    for (std::size_t i = 0; i < 30; ++i) {
      symbolic_image scene = random_scene(params, r, reference.symbols());
      std::string name = "s";
      name += std::to_string(i);
      const image_id global = writer.append(name, scene, reference.symbols());
      EXPECT_EQ(global, static_cast<image_id>(i));
      reference.add(std::move(name), std::move(scene));
    }
    writer.finish();
    EXPECT_EQ(writer.images_written(), 30u);
  }
  expect_equal_records(load_sharded_flat(corpus), reference);
}

TEST_F(ShardStorageTest, TinyCorpusLeavesShardsEmpty) {
  const image_database db = build_db(3);
  const fs::path corpus = dir_ / "tiny";
  save_sharded(db, corpus, 8);
  const sharded_database sharded = load_sharded_corpus(corpus);
  ASSERT_EQ(sharded.size(), 3u);
  std::size_t empty_shards = 0;
  for (std::size_t s = 0; s < 8; ++s) {
    if (sharded.shard_db(s).empty()) ++empty_shards;
  }
  EXPECT_GE(empty_shards, 5u);
  expect_equal_records(load_sharded_flat(corpus), db);
}

TEST_F(ShardStorageTest, EmptyCorpusRoundTrips) {
  const image_database db;
  const fs::path corpus = dir_ / "empty";
  save_sharded(db, corpus, 4);
  EXPECT_EQ(load_sharded_flat(corpus).size(), 0u);
  EXPECT_EQ(load_sharded_corpus(corpus).size(), 0u);
}

TEST_F(ShardStorageTest, ReshardPreservesContent) {
  const image_database db = build_db(35);
  const fs::path three = dir_ / "three";
  const fs::path five = dir_ / "five";
  save_sharded(db, three, 3);
  // A reshard is just: stream the flat view into a new writer.
  save_sharded(load_sharded_flat(three), five, 5);
  expect_equal_records(load_sharded_flat(five), db);
  EXPECT_EQ(load_sharded_corpus(five).shard_count(), 5u);
}

TEST_F(ShardStorageTest, WriterRefusesAppendAfterFinish) {
  const image_database db = build_db(2);
  shard_writer writer(dir_ / "w", 2);
  writer.append(db.record(0), db.symbols());
  writer.finish();
  EXPECT_THROW((void)writer.append(db.record(1), db.symbols()),
               std::runtime_error);
}

// ------------------------------------------------- manifest fail-closed

TEST_F(ShardStorageTest, EveryManifestByteFlipFailsClosed) {
  const image_database db = build_db(12);
  const fs::path corpus = dir_ / "corpus";
  save_sharded(db, corpus, 3);
  const fs::path manifest = corpus / shard_manifest_name;
  const std::string pristine = read_file(manifest);
  ASSERT_FALSE(pristine.empty());

  for (std::size_t at = 0; at < pristine.size(); ++at) {
    std::string tampered = pristine;
    tampered[at] = static_cast<char>(tampered[at] ^ 0x01);
    write_file(manifest, tampered);
    EXPECT_THROW((void)read_shard_manifest(corpus), std::runtime_error)
        << "flip at byte " << at << " loaded anyway";
    EXPECT_THROW((void)load_sharded_flat(corpus), std::runtime_error)
        << "flip at byte " << at;
  }
  write_file(manifest, pristine);
  expect_equal_records(load_sharded_flat(corpus), db);  // battery is sound
}

TEST_F(ShardStorageTest, TruncatedManifestFailsClosed) {
  const image_database db = build_db(10);
  const fs::path corpus = dir_ / "corpus";
  save_sharded(db, corpus, 3);
  const fs::path manifest = corpus / shard_manifest_name;
  const std::string pristine = read_file(manifest);
  for (std::size_t keep : {0u, 5u, 20u}) {
    if (keep >= pristine.size()) continue;
    write_file(manifest, pristine.substr(0, keep));
    EXPECT_THROW((void)read_shard_manifest(corpus), std::runtime_error)
        << "kept " << keep << " bytes";
  }
  // Dropping just the trailing check line must also fail.
  const std::size_t check_at = pristine.rfind("check ");
  ASSERT_NE(check_at, std::string::npos);
  write_file(manifest, pristine.substr(0, check_at));
  EXPECT_THROW((void)read_shard_manifest(corpus), std::runtime_error);
}

TEST_F(ShardStorageTest, RecomputedCheckCannotSmuggleImplausibleCounts) {
  // A CRC-valid manifest (attacker or buggy writer recomputed the check
  // line) with absurd shard/replica counts must still throw instead of
  // attempting a ~terabyte resize or an unbounded ring build.
  const image_database db = build_db(6);
  const fs::path corpus = dir_ / "corpus";
  save_sharded(db, corpus, 2);
  const fs::path manifest = corpus / shard_manifest_name;
  const std::string pristine = read_file(manifest);

  auto with_line = [&](const std::string& from, const std::string& to) {
    std::string body = pristine.substr(0, pristine.rfind("check "));
    body.replace(body.find(from), from.size(), to);
    char check[16];
    std::snprintf(check, sizeof check, "%08x",
                  crc32(body.data(), body.size()));
    body += "check ";
    body += check;
    body += '\n';
    write_file(manifest, body);
  };
  with_line("shards 2", "shards 4000000000");
  EXPECT_THROW((void)read_shard_manifest(corpus), std::runtime_error);
  with_line("replicas 64", "replicas 1000000000000");
  EXPECT_THROW((void)read_shard_manifest(corpus), std::runtime_error);

  // Unverifiable bytes after the check line are rejected too.
  std::string with_junk = pristine;
  with_junk += "shards 9\n";
  write_file(manifest, with_junk);
  EXPECT_THROW((void)read_shard_manifest(corpus), std::runtime_error);

  write_file(manifest, pristine);
  EXPECT_EQ(read_shard_manifest(corpus).shard_count, 2u);
}

TEST_F(ShardStorageTest, FailedAppendCannotFinalizeAPartialCorpus) {
  // An append that throws latches the writer: neither finish() nor the
  // destructor may write a manifest that would make the partial corpus
  // load cleanly at a smaller size.
  const image_database db = build_db(4);
  const fs::path corpus = dir_ / "w";
  {
    shard_writer writer(corpus, 2);
    writer.append(db.record(0), db.symbols());
    // Shrinking the alphabet mid-write makes the underlying segment append
    // throw deterministically.
    const alphabet empty;
    EXPECT_THROW((void)writer.append(db.record(1), empty),
                 std::runtime_error);
    EXPECT_THROW((void)writer.append(db.record(2), db.symbols()),
                 std::runtime_error);
    EXPECT_THROW(writer.finish(), std::runtime_error);
  }  // destructor must not finalize either
  EXPECT_THROW((void)read_shard_manifest(corpus), std::runtime_error);
  EXPECT_THROW((void)load_sharded_flat(corpus), std::runtime_error);
}

TEST_F(ShardStorageTest, MissingManifestOrSegmentFailsClosed) {
  const image_database db = build_db(15);
  const fs::path corpus = dir_ / "corpus";
  save_sharded(db, corpus, 3);

  // Any one segment missing: open names the problem and throws.
  const shard_manifest manifest = read_shard_manifest(corpus);
  for (const shard_manifest_entry& entry : manifest.shards) {
    const fs::path segment = corpus / entry.file;
    const std::string bytes = read_file(segment);
    fs::remove(segment);
    EXPECT_THROW((void)load_sharded_flat(corpus), std::runtime_error)
        << entry.file;
    EXPECT_THROW((void)load_sharded_corpus(corpus), std::runtime_error)
        << entry.file;
    write_file(segment, bytes);
  }

  fs::remove(corpus / shard_manifest_name);
  EXPECT_THROW((void)read_shard_manifest(corpus), std::runtime_error);
  EXPECT_FALSE(is_sharded_corpus(corpus));
}

TEST_F(ShardStorageTest, SegmentSwapFailsTheRingCheck) {
  // Two segments swapped on disk: per-file CRCs all pass, but the record
  // counts / ring assignment no longer match the manifest.
  const image_database db = build_db(20);
  const fs::path corpus = dir_ / "corpus";
  save_sharded(db, corpus, 3);
  const shard_manifest manifest = read_shard_manifest(corpus);
  // Find two shards with different counts (20 records over 3 shards always
  // has two unequal ones unless perfectly balanced; fall back to a content
  // check via the flat load otherwise).
  const fs::path a = corpus / manifest.shards[0].file;
  const fs::path b = corpus / manifest.shards[1].file;
  const std::string bytes_a = read_file(a);
  const std::string bytes_b = read_file(b);
  write_file(a, bytes_b);
  write_file(b, bytes_a);
  if (manifest.shards[0].images != manifest.shards[1].images) {
    EXPECT_THROW((void)load_sharded_flat(corpus), std::runtime_error);
  } else {
    // Equal counts load structurally, but the records come back reordered,
    // not silently identical.
    const image_database loaded = load_sharded_flat(corpus);
    bool differs = false;
    for (std::size_t i = 0; i < db.size(); ++i) {
      if (loaded.record(static_cast<image_id>(i)).name !=
          db.record(static_cast<image_id>(i)).name) {
        differs = true;
      }
    }
    EXPECT_TRUE(differs);
  }
}

TEST_F(ShardStorageTest, TamperedSegmentPayloadFailsClosed) {
  const image_database db = build_db(15, 5);
  const fs::path corpus = dir_ / "corpus";
  save_sharded(db, corpus, 3);
  const shard_manifest manifest = read_shard_manifest(corpus);
  // Flip a byte in the middle of each shard's record region.
  for (const shard_manifest_entry& entry : manifest.shards) {
    if (entry.images == 0) continue;
    const fs::path segment = corpus / entry.file;
    const std::string pristine = read_file(segment);
    std::string tampered = pristine;
    tampered[pristine.size() / 2] =
        static_cast<char>(tampered[pristine.size() / 2] ^ 0x40);
    write_file(segment, tampered);
    EXPECT_THROW((void)load_sharded_flat(corpus), std::runtime_error)
        << entry.file;
    write_file(segment, pristine);
  }
}

TEST_F(ShardStorageTest, TruncatedShardRecoversItsValidPrefix) {
  const image_database db = build_db(30, 9);
  const fs::path corpus = dir_ / "corpus";
  save_sharded(db, corpus, 3);
  const shard_manifest manifest = read_shard_manifest(corpus);
  // Cut the largest shard's segment roughly in half (inside the records).
  std::size_t victim = 0;
  for (std::size_t s = 1; s < manifest.shards.size(); ++s) {
    if (manifest.shards[s].images > manifest.shards[victim].images) victim = s;
  }
  ASSERT_GT(manifest.shards[victim].images, 1u);
  const fs::path segment = corpus / manifest.shards[victim].file;
  const std::string pristine = read_file(segment);
  write_file(segment, pristine.substr(0, pristine.size() / 2));

  // Strict: fail closed.
  EXPECT_THROW((void)load_sharded_flat(corpus), std::runtime_error);

  // Recovery: the surviving records load, every one CRC-verified, and the
  // other shards lose nothing.
  segment_read_options recover;
  recover.recover_tail = true;
  const image_database salvaged = load_sharded_flat(corpus, recover);
  EXPECT_LT(salvaged.size(), db.size());
  EXPECT_GT(salvaged.size(), 0u);
  // Every salvaged record matches some original record by name + strings.
  for (const db_record& rec : salvaged.records()) {
    bool found = false;
    for (const db_record& orig : db.records()) {
      if (orig.name == rec.name && orig.strings == rec.strings) found = true;
    }
    EXPECT_TRUE(found) << rec.name;
  }
  const sharded_database resharded = load_sharded_corpus(corpus, recover);
  EXPECT_EQ(resharded.size(), salvaged.size());
}

// ------------------------------------------------- tombstones + compaction

image_database build_db_with_deletes(std::size_t images,
                                     std::uint64_t seed = 11) {
  image_database db = build_db(images, seed);
  for (std::size_t i = 2; i < images; i += 5) {
    if (!db.remove(static_cast<image_id>(i))) std::abort();
  }
  return db;
}

TEST_F(ShardStorageTest, ShardedCorpusRoundTripsTombstones) {
  const image_database db = build_db_with_deletes(25);
  ASSERT_GT(db.tombstone_count(), 0u);
  const fs::path corpus = dir_ / "corpus";
  save_sharded(db, corpus, 3);

  // Flat load: every record back, dead ones tombstoned again.
  expect_equal_records(load_sharded_flat(corpus), db);

  // Sharded load: per-shard tombstone counts sum to the corpus total.
  const sharded_database sharded = load_sharded_corpus(corpus);
  EXPECT_EQ(sharded.tombstone_count(), db.tombstone_count());
  EXPECT_EQ(sharded.live_size(), db.live_size());
  for (std::size_t i = 0; i < db.size(); ++i) {
    const auto id = static_cast<image_id>(i);
    EXPECT_EQ(sharded.record(id).removed_at != 0, db.removed(id))
        << "global " << i;
  }

  // Per-shard solo load (the shard-server path): each shard re-applies
  // exactly its own deletes.
  std::size_t tombstones = 0;
  for (std::size_t s = 0; s < 3; ++s) {
    const loaded_shard shard = load_shard(corpus, s);
    tombstones += shard.db.tombstone_count();
    for (std::size_t local = 0; local < shard.db.size(); ++local) {
      EXPECT_EQ(shard.db.removed(static_cast<image_id>(local)),
                db.removed(shard.global_ids[local]));
    }
  }
  EXPECT_EQ(tombstones, db.tombstone_count());
}

TEST_F(ShardStorageTest, ReshardPreservesTombstones) {
  const image_database db = build_db_with_deletes(30, 17);
  const fs::path three = dir_ / "three";
  const fs::path five = dir_ / "five";
  save_sharded(db, three, 3);
  reshard(three, five, 5);
  expect_equal_records(load_sharded_flat(five), db);
  EXPECT_EQ(load_sharded_corpus(five).tombstone_count(), db.tombstone_count());
}

TEST_F(ShardStorageTest, CompactCorpusFoldsTombstonesAndMergesShards) {
  const image_database db = build_db_with_deletes(30, 23);
  const fs::path corpus = dir_ / "corpus";
  save_sharded(db, corpus, 6);

  compaction_policy policy;
  policy.min_live_per_shard = 8;  // 24 live / 8 = 3 shards
  const compaction_stats stats = compact_corpus(corpus, policy);
  EXPECT_TRUE(stats.compacted);
  EXPECT_EQ(stats.records_before, db.size());
  EXPECT_EQ(stats.tombstones_folded, db.tombstone_count());
  EXPECT_EQ(stats.records_after, db.live_size());
  EXPECT_EQ(stats.shards_before, 6u);
  EXPECT_EQ(stats.shards_after, 3u);
  EXPECT_LT(stats.bytes_after, stats.bytes_before);

  // The compacted corpus holds exactly the live records, re-densified, in
  // the original live order, across the merged shard count.
  const image_database compacted = load_sharded_flat(corpus);
  EXPECT_EQ(compacted.tombstone_count(), 0u);
  ASSERT_EQ(compacted.size(), db.live_size());
  std::size_t next = 0;
  for (std::size_t i = 0; i < db.size(); ++i) {
    const auto id = static_cast<image_id>(i);
    if (db.removed(id)) continue;
    const auto new_id = static_cast<image_id>(next++);
    EXPECT_EQ(compacted.record(new_id).name, db.record(id).name);
    EXPECT_EQ(compacted.record(new_id).strings, db.record(id).strings);
  }
  EXPECT_EQ(load_sharded_corpus(corpus).shard_count(), 3u);
  // No swap debris.
  EXPECT_FALSE(fs::exists(dir_ / "corpus.compact-tmp"));
  EXPECT_FALSE(fs::exists(dir_ / "corpus.compact-old"));
}

TEST_F(ShardStorageTest, CompactCorpusPolicyLeavesHealthyCorpusAlone) {
  image_database db = build_db(20, 29);
  ASSERT_TRUE(db.remove(4));  // 1 dead of 20 = 5% dead
  const fs::path corpus = dir_ / "corpus";
  save_sharded(db, corpus, 3);
  const std::string manifest_before =
      read_file(corpus / shard_manifest_name);

  compaction_policy policy;
  policy.min_dead_fraction = 0.25;
  const compaction_stats stats = compact_corpus(corpus, policy);
  EXPECT_FALSE(stats.compacted);
  EXPECT_EQ(stats.bytes_after, stats.bytes_before);
  // Untouched on disk, tombstone intact.
  EXPECT_EQ(read_file(corpus / shard_manifest_name), manifest_before);
  EXPECT_EQ(load_sharded_flat(corpus).tombstone_count(), 1u);

  // A no-tombstone corpus is also left alone under the default policy.
  const fs::path clean = dir_ / "clean";
  save_sharded(build_db(10, 31), clean, 2);
  EXPECT_FALSE(compact_corpus(clean).compacted);
}

// --------------------------------------------- maintenance (compact --auto)

TEST(MaintenancePolicy, ShouldCompactHonorsBothGates) {
  const maintenance_policy policy{.max_dead_fraction = 0.25,
                                  .min_tombstones = 2};
  // Below the count floor: never, no matter how dead.
  EXPECT_FALSE(should_compact({.records = 2, .tombstones = 1}, policy));
  // At the floor but under the fraction.
  EXPECT_FALSE(should_compact({.records = 20, .tombstones = 2}, policy));
  // Both gates pass (fraction compares >=).
  EXPECT_TRUE(should_compact({.records = 8, .tombstones = 2}, policy));
  EXPECT_TRUE(should_compact({.records = 4, .tombstones = 3}, policy));
  // Empty corpus defines dead_fraction as zero.
  EXPECT_FALSE(should_compact({.records = 0, .tombstones = 0}, policy));
}

TEST_F(ShardStorageTest, ReadCorpusUsageSumsFooterCounts) {
  const image_database db = build_db_with_deletes(25);  // 5 dead of 25
  const fs::path corpus = dir_ / "corpus";
  save_sharded(db, corpus, 3);

  const corpus_usage usage = read_corpus_usage(corpus);
  EXPECT_EQ(usage.records, 25u);
  EXPECT_EQ(usage.tombstones, 5u);
  EXPECT_DOUBLE_EQ(usage.dead_fraction(), 0.2);
}

TEST_F(ShardStorageTest, MaybeCompactLeavesAHealthyCorpusUntouched) {
  const image_database db = build_db_with_deletes(25);  // 20% dead
  const fs::path corpus = dir_ / "corpus";
  save_sharded(db, corpus, 3);
  const std::string manifest_before =
      read_file(corpus / shard_manifest_name);

  const compaction_stats stats =
      maybe_compact_corpus(corpus, {.max_dead_fraction = 0.25});
  EXPECT_FALSE(stats.compacted);
  EXPECT_EQ(stats.records_before, 25u);
  EXPECT_EQ(stats.records_after, 25u);
  EXPECT_EQ(stats.tombstones_folded, 5u);  // observed, not folded
  EXPECT_EQ(stats.bytes_after, stats.bytes_before);
  EXPECT_EQ(read_file(corpus / shard_manifest_name), manifest_before);
  EXPECT_EQ(load_sharded_flat(corpus).tombstone_count(), 5u);
}

TEST_F(ShardStorageTest, MaybeCompactFiresOnceTheCorpusIsDeadEnough) {
  const image_database db = build_db_with_deletes(25);  // 20% dead
  const fs::path corpus = dir_ / "corpus";
  save_sharded(db, corpus, 3);

  // 20% >= 15%: maintenance fires, and compact_corpus must not re-veto on
  // its own (default 0.0 would pass anyway; this pins the zeroing contract).
  const compaction_stats stats =
      maybe_compact_corpus(corpus, {.max_dead_fraction = 0.15},
                           {.min_dead_fraction = 0.5});
  EXPECT_TRUE(stats.compacted);
  EXPECT_EQ(stats.records_before, 25u);
  EXPECT_EQ(stats.tombstones_folded, 5u);
  EXPECT_EQ(stats.records_after, 20u);

  const image_database compacted = load_sharded_flat(corpus);
  EXPECT_EQ(compacted.size(), 20u);
  EXPECT_EQ(compacted.tombstone_count(), 0u);
}

TEST_F(ShardStorageTest, MaybeCompactHonorsTheTombstoneCountFloor) {
  image_database db = build_db(4, 53);
  ASSERT_TRUE(db.remove(1));  // 25% dead, but only ONE tombstone
  const fs::path corpus = dir_ / "corpus";
  save_sharded(db, corpus, 2);

  const compaction_stats stats = maybe_compact_corpus(
      corpus, {.max_dead_fraction = 0.25, .min_tombstones = 2});
  EXPECT_FALSE(stats.compacted);
  EXPECT_EQ(load_sharded_flat(corpus).tombstone_count(), 1u);
}

TEST_F(ShardStorageTest, RepairRollsBackATornRewrite) {
  const image_database db = build_db_with_deletes(15, 37);
  const fs::path corpus = dir_ / "corpus";
  save_sharded(db, corpus, 2);

  // A crash mid-rewrite: tmp exists but holds no CRC-valid manifest.
  const fs::path tmp = dir_ / "corpus.compact-tmp";
  fs::create_directories(tmp);
  write_file(tmp / "shard-0000.bseg", "BSEG1\ntorn");
  EXPECT_TRUE(repair_compaction(corpus));
  EXPECT_FALSE(fs::exists(tmp));
  expect_equal_records(load_sharded_flat(corpus), db);
  // Idempotent: a healthy corpus repairs to a no-op.
  EXPECT_FALSE(repair_compaction(corpus));
}

TEST_F(ShardStorageTest, RepairRollsForwardACompletedRewrite) {
  const image_database db = build_db_with_deletes(15, 41);
  const fs::path corpus = dir_ / "corpus";
  save_sharded(db, corpus, 2);

  // A crash after the rewrite finished but before the swap: tmp is a
  // complete corpus (manifest written) holding the folded records.
  image_database folded;
  for (const std::string& name : db.symbols().names()) {
    folded.symbols().intern(name);
  }
  for (const db_record& rec : db.records()) {
    if (rec.removed_at != 0) continue;
    folded.add_encoded(rec.name, rec.image, rec.strings, rec.histograms);
  }
  save_sharded(folded, dir_ / "corpus.compact-tmp", 2);

  EXPECT_TRUE(repair_compaction(corpus));
  EXPECT_FALSE(fs::exists(dir_ / "corpus.compact-tmp"));
  EXPECT_FALSE(fs::exists(dir_ / "corpus.compact-old"));
  expect_equal_records(load_sharded_flat(corpus), folded);
}

TEST_F(ShardStorageTest, RepairRecoversEveryMidSwapCrashState) {
  const image_database db = build_db_with_deletes(15, 43);
  const fs::path corpus = dir_ / "corpus";
  const fs::path tmp = dir_ / "corpus.compact-tmp";
  const fs::path old = dir_ / "corpus.compact-old";

  // Crash between rename(corpus -> old) and rename(tmp -> corpus): the
  // replacement is complete at tmp, the source parked at old.
  save_sharded(db, tmp, 2);
  save_sharded(db, old, 2);
  ASSERT_FALSE(fs::exists(corpus));
  EXPECT_TRUE(repair_compaction(corpus));
  expect_equal_records(load_sharded_flat(corpus), db);
  EXPECT_FALSE(fs::exists(tmp));
  EXPECT_FALSE(fs::exists(old));

  // Crash after the swap, before cleanup: only the parked copy remains.
  save_sharded(db, old, 2);
  EXPECT_TRUE(repair_compaction(corpus));
  EXPECT_FALSE(fs::exists(old));
  expect_equal_records(load_sharded_flat(corpus), db);

  // Only the parked copy and no corpus at all: restore it.
  fs::rename(corpus, old);
  EXPECT_TRUE(repair_compaction(corpus));
  EXPECT_TRUE(fs::exists(corpus));
  EXPECT_FALSE(fs::exists(old));
  expect_equal_records(load_sharded_flat(corpus), db);
}

TEST_F(ShardStorageTest, CompactCorpusRepairsAnInterruptedRunFirst) {
  const image_database db = build_db_with_deletes(20, 47);
  const fs::path corpus = dir_ / "corpus";
  save_sharded(db, corpus, 2);
  // Torn debris from an earlier crashed compaction.
  const fs::path tmp = dir_ / "corpus.compact-tmp";
  fs::create_directories(tmp);
  write_file(tmp / "junk", "not a corpus");

  const compaction_stats stats = compact_corpus(corpus);
  EXPECT_TRUE(stats.compacted);
  EXPECT_EQ(stats.tombstones_folded, db.tombstone_count());
  EXPECT_EQ(load_sharded_flat(corpus).size(), db.live_size());
  EXPECT_FALSE(fs::exists(tmp));
}

}  // namespace
}  // namespace bes
