// The result-cache equivalence suite (cache_smoke label; runs under the
// ASan and TSan CI jobs).
//
// Contract under test: search_cached is invisible in the answer — for every
// kernel, option set, thread count, and shard count {1, 3, 8}, a cached
// search returns results bit-identical to the matching uncached search,
// whether the request is a miss, a pure hit, or a delta refresh, and
// whether the database is quiesced or mid-ingest. Delta refresh must score
// only the appended suffix (O(appended), never the corpus), and a forged
// "fresh" stamp on a stale entry must produce answers the equality checks
// catch — the negative control proving the suite has teeth.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/encoder.hpp"
#include "db/query.hpp"
#include "db/result_cache.hpp"
#include "db/shard.hpp"
#include "net/loopback.hpp"
#include "support/test_support.hpp"

namespace bes {
namespace {

struct scene_pool {
  alphabet symbols;
  std::vector<symbolic_image> scenes;

  explicit scene_pool(std::size_t count, std::uint64_t seed = 41) {
    testsupport::scene_opts opts;
    opts.object_count = 5;
    opts.symbol_pool = 6;
    scenes.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      scenes.push_back(testsupport::make_scene(seed + i, symbols, opts));
    }
  }
};

image_database build_db(const scene_pool& pool, std::size_t count) {
  image_database db;
  for (const std::string& name : pool.symbols.names()) {
    db.symbols().intern(name);
  }
  for (std::size_t i = 0; i < count; ++i) {
    db.add("img" + std::to_string(i), pool.scenes[i]);
  }
  return db;
}

sharded_database build_sharded(const scene_pool& pool, std::size_t count,
                               std::size_t shards) {
  sharded_database db(shards);
  for (const std::string& name : pool.symbols.names()) {
    db.symbols().intern(name);
  }
  for (std::size_t i = 0; i < count; ++i) {
    db.add("img" + std::to_string(i), pool.scenes[i]);
  }
  return db;
}

// The equivalence matrix: both scoring kernels, indexed and exhaustive
// scans, pruning, thresholds, transform invariance, unlimited k, and a
// parallel inner scan.
std::vector<std::pair<std::string, query_options>> option_matrix() {
  std::vector<std::pair<std::string, query_options>> matrix;
  {
    query_options o;
    o.top_k = 5;
    matrix.emplace_back("topk", o);
  }
  {
    query_options o;
    o.use_index = false;
    o.top_k = 5;
    matrix.emplace_back("exhaustive", o);
  }
  {
    query_options o;
    o.top_k = 8;
    o.min_score = 0.3;
    o.histogram_pruning = true;
    matrix.emplace_back("thresholded+pruned", o);
  }
  {
    query_options o;
    o.top_k = 5;
    o.similarity.exact_lcs = true;
    matrix.emplace_back("exact-lcs", o);
  }
  {
    query_options o;
    o.top_k = 5;
    o.transform_invariant = true;
    matrix.emplace_back("transform-invariant", o);
  }
  {
    query_options o;
    o.top_k = 0;  // unlimited: the whole ranking must be cached exactly
    matrix.emplace_back("unlimited", o);
  }
  {
    query_options o;
    o.use_index = false;
    o.top_k = 5;
    o.threads = 2;
    matrix.emplace_back("threaded", o);
  }
  return matrix;
}

// ------------------------------------------------------------- store unit

TEST(CacheStore, CapacityZeroThrows) {
  result_cache_options options;
  options.capacity = 0;
  EXPECT_THROW(result_cache cache(options), std::invalid_argument);
}

TEST(CacheStore, EvictsAndCountsOnceOverCapacity) {
  result_cache_options options;
  options.capacity = 2;
  options.shards = 1;
  result_cache cache(options);
  const scene_pool pool(3);
  query_options qopts;
  for (std::size_t i = 0; i < 3; ++i) {
    const be_string2d strings = encode(pool.scenes[i]);
    const cache_key key =
        make_cache_key(strings, distinct_symbols(pool.scenes[i]), qopts,
                       cache_scope::flat, 1, 0);
    cache.put(key, cache_entry{});
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().insertions, 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().evictions, 1u) << "clear() must not count evictions";
}

TEST(CacheStore, ReReferencedEntrySurvivesAOneOffBurst) {
  result_cache_options options;
  options.capacity = 4;
  options.shards = 1;
  options.protected_fraction = 0.5;
  result_cache cache(options);
  const scene_pool pool(8);
  query_options qopts;
  auto key_of = [&](std::size_t i) {
    return make_cache_key(encode(pool.scenes[i]),
                          distinct_symbols(pool.scenes[i]), qopts,
                          cache_scope::flat, 1, 0);
  };
  cache.put(key_of(0), cache_entry{});
  ASSERT_TRUE(cache.find(key_of(0)).has_value());  // promote to protected
  for (std::size_t i = 1; i < 8; ++i) {
    cache.put(key_of(i), cache_entry{});  // one-off burst through probation
  }
  EXPECT_TRUE(cache.find(key_of(0)).has_value())
      << "the segmented LRU let a one-off burst flush the hot entry";
}

// --------------------------------------------------- flat equivalence

TEST(CacheSearch, FlatMissThenHitBitIdenticalForEveryConfig) {
  const scene_pool pool(24);
  image_database db = build_db(pool, 20);
  for (const auto& [label, options] : option_matrix()) {
    result_cache cache;
    for (const std::size_t q : {20u, 21u, 22u}) {
      const symbolic_image& query = pool.scenes[q];
      const auto expected = search(db, query, options);

      search_stats miss;
      EXPECT_EQ(search_cached(db, cache, query, options, &miss), expected)
          << label << " q" << q;
      EXPECT_EQ(miss.cache_misses, 1u) << label;
      EXPECT_EQ(miss.cache_hits, 0u) << label;

      search_stats hit;
      EXPECT_EQ(search_cached(db, cache, query, options, &hit), expected)
          << label << " q" << q << " (repeat)";
      EXPECT_EQ(hit.cache_hits, 1u) << label;
      EXPECT_EQ(hit.scanned, 0u) << label << ": a pure hit must not scan";
      EXPECT_EQ(hit.scored, 0u) << label;
    }
  }
}

TEST(CacheSearch, ShardedMissThenHitBitIdenticalForEveryConfig) {
  const scene_pool pool(24);
  const image_database flat = build_db(pool, 20);
  for (const std::size_t shards : {1u, 3u, 8u}) {
    sharded_database db = build_sharded(pool, 20, shards);
    for (const auto& [label, options] : option_matrix()) {
      result_cache cache;
      for (const std::size_t q : {20u, 22u}) {
        const symbolic_image& query = pool.scenes[q];
        const auto expected = search(db, query, options);
        EXPECT_EQ(expected, search(flat, query, options))
            << label << " shards=" << shards;

        search_stats miss;
        EXPECT_EQ(search_cached(db, cache, query, options, &miss), expected)
            << label << " shards=" << shards;
        EXPECT_EQ(miss.cache_misses, 1u) << label;

        search_stats hit;
        EXPECT_EQ(search_cached(db, cache, query, options, &hit), expected)
            << label << " shards=" << shards << " (repeat)";
        EXPECT_EQ(hit.cache_hits, 1u) << label;
        EXPECT_EQ(hit.scanned, 0u) << label;
      }
    }
  }
}

TEST(CacheSearch, BatchMatchesCachedSingles) {
  const scene_pool pool(26);
  sharded_database db = build_sharded(pool, 20, 3);
  const std::vector<symbolic_image> queries = {pool.scenes[20],
                                               pool.scenes[23]};
  query_options options;
  options.top_k = 6;
  const auto batch = search_batch(db, queries, options);
  ASSERT_EQ(batch.size(), queries.size());
  result_cache cache;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    // Miss pass then hit pass, both equal to the batch row.
    EXPECT_EQ(search_cached(db, cache, queries[i], options), batch[i]);
    EXPECT_EQ(search_cached(db, cache, queries[i], options), batch[i]);
  }
}

TEST(CacheSearch, ThreadCountIsExcludedFromTheKey) {
  const scene_pool pool(18);
  image_database db = build_db(pool, 16);
  query_options one;
  one.use_index = false;
  one.top_k = 5;
  query_options four = one;
  four.threads = 4;

  result_cache cache;
  const auto first = search_cached(db, cache, pool.scenes[16], one);
  search_stats stats;
  const auto second = search_cached(db, cache, pool.scenes[16], four, &stats);
  EXPECT_EQ(first, second);
  EXPECT_EQ(stats.cache_hits, 1u)
      << "results are thread-count-invariant; the key must not fragment on "
         "threads";
}

TEST(CacheSearch, TransformSiblingsShareOneEntry) {
  const scene_pool pool(18);
  image_database db = build_db(pool, 16);
  query_options options;
  options.top_k = 5;
  options.transform_invariant = true;

  const symbolic_image& query = pool.scenes[16];
  result_cache cache;
  const auto base = search_cached(db, cache, query, options);
  EXPECT_EQ(base, search(db, query, options));
  EXPECT_EQ(cache.size(), 1u);

  for (const dihedral t : all_dihedral) {
    const symbolic_image sibling = apply(t, query);
    search_stats stats;
    const auto got = search_cached(db, cache, sibling, options, &stats);
    EXPECT_EQ(stats.cache_hits, 1u)
        << "orientation " << static_cast<int>(t) << " missed the shared entry";
    const auto expected = search(db, sibling, options);
    ASSERT_EQ(got.size(), expected.size()) << static_cast<int>(t);
    for (std::size_t i = 0; i < got.size(); ++i) {
      // Ids and scores are frame-independent and must match a fresh scan
      // exactly; the reported transform element may legitimately differ for
      // symmetric queries (several elements realize the same score).
      EXPECT_EQ(got[i].id, expected[i].id) << static_cast<int>(t);
      EXPECT_EQ(got[i].score, expected[i].score) << static_cast<int>(t);
    }
  }
  EXPECT_EQ(cache.size(), 1u)
      << "sibling orientations must not create fresh entries";
}

// ----------------------------------------------------------- delta refresh

TEST(CacheDelta, FlatRefreshScoresOnlyTheAppendedSuffix) {
  const scene_pool pool(40);
  image_database db = build_db(pool, 24);
  query_options options;
  options.use_index = false;  // suffix size is exact for the full scan path
  options.top_k = 5;
  const symbolic_image& query = pool.scenes[36];

  result_cache cache;
  (void)search_cached(db, cache, query, options);

  const std::size_t appended = 4;
  for (std::size_t i = 0; i < appended; ++i) {
    db.add("late" + std::to_string(i), pool.scenes[24 + i]);
  }

  search_stats stats;
  const auto refreshed = search_cached(db, cache, query, options, &stats);
  EXPECT_EQ(refreshed, search(db, query, options))
      << "delta refresh changed the answer";
  EXPECT_EQ(stats.cache_delta_refreshes, 1u);
  EXPECT_EQ(stats.cache_delta_rescored, appended)
      << "refresh must score exactly the appended records";
  EXPECT_EQ(stats.scanned, appended)
      << "refresh scanned more than the appended suffix";
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);

  // The refreshed entry is stored back: an immediate repeat is a pure hit.
  search_stats hit;
  EXPECT_EQ(search_cached(db, cache, query, options, &hit), refreshed);
  EXPECT_EQ(hit.cache_hits, 1u);
}

TEST(CacheDelta, ShardedRefreshScoresOnlyTheAppendedSuffix) {
  const scene_pool pool(40);
  sharded_database db = build_sharded(pool, 24, 3);
  query_options options;
  options.use_index = false;
  options.top_k = 5;
  const symbolic_image& query = pool.scenes[36];

  result_cache cache;
  (void)search_cached(db, cache, query, options);
  const std::size_t appended = 5;
  for (std::size_t i = 0; i < appended; ++i) {
    db.add("late" + std::to_string(i), pool.scenes[24 + i]);
  }

  search_stats stats;
  const auto refreshed = search_cached(db, cache, query, options, &stats);
  EXPECT_EQ(refreshed, search(db, query, options));
  EXPECT_EQ(stats.cache_delta_refreshes, 1u);
  EXPECT_EQ(stats.cache_delta_rescored, appended);
}

TEST(CacheDelta, StalenessBudgetFallsBackToAFullScan) {
  const scene_pool pool(40);
  image_database db = build_db(pool, 16);
  query_options options;
  options.top_k = 5;
  result_cache_options copts;
  copts.max_delta_records = 2;  // tiny budget: 3 appends must overflow it
  result_cache cache(copts);
  const symbolic_image& query = pool.scenes[36];

  (void)search_cached(db, cache, query, options);
  for (std::size_t i = 0; i < 3; ++i) {
    db.add("late" + std::to_string(i), pool.scenes[16 + i]);
  }
  search_stats stats;
  EXPECT_EQ(search_cached(db, cache, query, options, &stats),
            search(db, query, options));
  EXPECT_EQ(stats.cache_misses, 1u) << "past the budget the refresh must be "
                                       "a full-scan miss";
  EXPECT_EQ(stats.cache_delta_refreshes, 0u);
}

TEST(CacheDelta, CompleteEntrySurvivesADeletionWithoutAFullScan) {
  const scene_pool pool(24);
  image_database db = build_db(pool, 16);
  query_options options;
  options.top_k = 0;  // complete: the entry holds the ENTIRE ranking
  options.use_index = false;
  const symbolic_image& query = pool.scenes[20];

  result_cache cache;
  const auto before = search_cached(db, cache, query, options);
  ASSERT_FALSE(before.empty());
  ASSERT_TRUE(db.remove(before.front().id));

  search_stats stats;
  const auto after = search_cached(db, cache, query, options, &stats);
  EXPECT_EQ(after, search(db, query, options));
  EXPECT_EQ(stats.cache_delta_refreshes, 1u)
      << "a complete entry must absorb deletions as a (empty-suffix) delta";
  EXPECT_EQ(stats.scanned, 0u) << "nothing was appended, nothing to scan";
  for (const query_result& r : after) EXPECT_NE(r.id, before.front().id);
}

TEST(CacheDelta, IncompleteEntryFallsBackToAFullScanOnDeletion) {
  const scene_pool pool(24);
  image_database db = build_db(pool, 16);
  query_options options;
  options.top_k = 3;  // truncated: a deletion may promote a hidden runner-up
  options.use_index = false;
  const symbolic_image& query = pool.scenes[20];

  result_cache cache;
  const auto before = search_cached(db, cache, query, options);
  ASSERT_EQ(before.size(), 3u) << "need a full (truncated) top-k";
  ASSERT_TRUE(db.remove(before.front().id));

  search_stats stats;
  const auto after = search_cached(db, cache, query, options, &stats);
  EXPECT_EQ(after, search(db, query, options))
      << "the promoted runner-up must appear";
  EXPECT_EQ(stats.cache_misses, 1u)
      << "an incomplete entry cannot answer past a deletion without a rescan";
}

// --------------------------------------------------------- negative control

// THE NEGATIVE CONTROL: forge an entry's cuts forward without rescanning —
// exactly what a staleness bug in the refresh logic would do — and confirm
// the cached answer now DIFFERS from the uncached truth. If this test ever
// starts failing (cached == uncached despite the forgery), the equivalence
// assertions above have lost their power to catch staleness bugs.
TEST(CacheNegativeControl, ForgedFreshnessProducesADetectablyWrongAnswer) {
  const scene_pool pool(24);
  image_database db = build_db(pool, 16);
  query_options options;
  options.top_k = 5;
  const symbolic_image& query = pool.scenes[20];

  result_cache cache;
  (void)search_cached(db, cache, query, options);

  // A guaranteed new top hit: the query scene itself (similarity 1.0).
  db.add("the-query-itself", query);
  const db_snapshot now = db.snapshot();

  const cache_key key =
      make_cache_key(encode(query), distinct_symbols(query), options,
                     cache_scope::flat, 1, 0);
  ASSERT_TRUE(cache.debug_mutate(key, [&](cache_entry& entry) {
    entry.cuts = {cache_cut{now.visible, now.epoch}};  // forged: no rescan
  }));

  search_stats stats;
  const auto forged = search_cached(db, cache, query, options, &stats);
  EXPECT_EQ(stats.cache_hits, 1u) << "the forgery must look like a pure hit";
  EXPECT_NE(forged, search(db, query, options))
      << "a stale entry served as fresh produced the CORRECT answer — the "
         "equivalence suite would miss a real staleness bug";
}

// ------------------------------------------------------------ racing ingest

constexpr std::size_t race_total = 72;
constexpr std::size_t race_initial = 24;
constexpr std::size_t race_readers = 3;
constexpr std::size_t race_iterations = 12;

bool delete_after(std::size_t i, image_id* victim) {
  if (i % 3 != 0) return false;
  *victim = static_cast<image_id>((i * 7) % i);
  return true;
}

// Readers share ONE cache and run pinned cached searches while a writer
// races adds + removes; every recorded (snapshot, results) pair must equal
// the pinned UNCACHED search at the same snapshot, replayed after the dust
// settles. TSan-green by construction: the cache is internally locked, the
// snapshots pin visibility.
TEST(CacheRace, FlatCachedSearchesMatchPinnedUncachedUnderIngest) {
  const scene_pool pool(race_total + 2, 43);
  std::vector<be_string2d> query_strings;
  std::vector<std::vector<symbol_id>> query_symbols;
  for (std::size_t q = 0; q < 2; ++q) {
    query_strings.push_back(encode(pool.scenes[race_total + q]));
    query_symbols.push_back(distinct_symbols(pool.scenes[race_total + q]));
  }
  query_options options;
  options.top_k = 6;

  image_database db = build_db(pool, race_initial);
  result_cache cache;

  struct sample {
    db_snapshot snap;
    std::size_t query = 0;
    std::vector<query_result> results;
  };
  std::vector<std::vector<sample>> samples(race_readers);
  std::vector<std::thread> readers;
  readers.reserve(race_readers);
  for (std::size_t r = 0; r < race_readers; ++r) {
    readers.emplace_back([&, r] {
      for (std::size_t it = 0; it < race_iterations; ++it) {
        sample s;
        s.query = (r + it) % 2;
        s.snap = db.snapshot();
        s.results = search_cached(s.snap, cache, query_strings[s.query],
                                  query_symbols[s.query], options);
        samples[r].push_back(std::move(s));
      }
    });
  }
  std::thread writer([&] {
    for (std::size_t i = race_initial; i < race_total; ++i) {
      db.add("img" + std::to_string(i), pool.scenes[i]);
      image_id victim = 0;
      if (delete_after(i, &victim)) (void)db.remove(victim);
    }
  });
  writer.join();
  for (std::thread& t : readers) t.join();

  for (const auto& reader_samples : samples) {
    for (const sample& s : reader_samples) {
      EXPECT_EQ(s.results, search(s.snap, query_strings[s.query],
                                  query_symbols[s.query], options))
          << "snapshot visible=" << s.snap.visible
          << " epoch=" << s.snap.epoch;
    }
  }
}

void sharded_cache_race(std::size_t shard_count) {
  const scene_pool pool(race_total + 2, 47);
  std::vector<be_string2d> query_strings;
  std::vector<std::vector<symbol_id>> query_symbols;
  for (std::size_t q = 0; q < 2; ++q) {
    query_strings.push_back(encode(pool.scenes[race_total + q]));
    query_symbols.push_back(distinct_symbols(pool.scenes[race_total + q]));
  }
  query_options options;
  options.top_k = 6;

  sharded_database db = build_sharded(pool, race_initial, shard_count);
  result_cache cache;

  struct sample {
    sharded_snapshot snap;
    std::size_t query = 0;
    std::vector<query_result> results;
  };
  std::vector<std::vector<sample>> samples(race_readers);
  std::vector<std::thread> readers;
  readers.reserve(race_readers);
  for (std::size_t r = 0; r < race_readers; ++r) {
    readers.emplace_back([&, r] {
      for (std::size_t it = 0; it < race_iterations; ++it) {
        sample s;
        s.query = (r + it) % 2;
        s.snap = db.snapshot();
        s.results = search_cached(db, s.snap, cache, query_strings[s.query],
                                  query_symbols[s.query], options);
        samples[r].push_back(std::move(s));
      }
    });
  }
  std::thread writer([&] {
    for (std::size_t i = race_initial; i < race_total; ++i) {
      db.add("img" + std::to_string(i), pool.scenes[i]);
      image_id victim = 0;
      if (delete_after(i, &victim)) (void)db.remove(victim);
    }
  });
  writer.join();
  for (std::thread& t : readers) t.join();

  for (const auto& reader_samples : samples) {
    for (const sample& s : reader_samples) {
      EXPECT_EQ(s.results, search(db, s.snap, query_strings[s.query],
                                  query_symbols[s.query], options))
          << "shards=" << shard_count;
    }
  }
}

TEST(CacheRace, ShardedCachedSearchesMatchPinnedUncachedThreeShards) {
  sharded_cache_race(3);
}

TEST(CacheRace, ShardedCachedSearchesMatchPinnedUncachedEightShards) {
  sharded_cache_race(8);
}

// ------------------------------------------------------- coordinator cache

TEST(CacheCoordinator, LoopbackHitsServeTheGatheredUnionExactly) {
  const scene_pool pool(20);
  const image_database flat = build_db(pool, 16);
  const sharded_database sharded = make_sharded(flat, 3);
  net::coordinator_options copts;
  copts.cache_entries = 64;
  net::loopback_cluster cluster(sharded, {}, copts);

  const symbolic_image& query = pool.scenes[17];
  const be_string2d strings = encode(query);
  const std::vector<symbol_id> symbols = distinct_symbols(query);
  query_options qopts;
  qopts.top_k = 5;

  const net::remote_result first = cluster.front().search(strings, symbols,
                                                          qopts);
  EXPECT_EQ(first.results, search(flat, query, qopts));
  EXPECT_EQ(first.stats.cache_misses, 1u);

  const net::remote_result second = cluster.front().search(strings, symbols,
                                                           qopts);
  EXPECT_EQ(second.results, first.results) << "a hit must be bit-identical";
  EXPECT_EQ(second.stats.cache_hits, 1u);
  EXPECT_EQ(second.stats.scanned, 0u) << "a hit must not touch the shards";

  // A SHALLOWER request is served from the same union (any k <= gathered_k).
  query_options shallow = qopts;
  shallow.top_k = 3;
  const net::remote_result third = cluster.front().search(strings, symbols,
                                                          shallow);
  EXPECT_EQ(third.results, search(flat, query, shallow));
  EXPECT_EQ(third.stats.cache_hits, 1u);

  // A DEEPER request cannot be: it re-scatters (counted as a refresh) with
  // the cached union seeding the gossip floor, and must still be exact.
  query_options deep = qopts;
  deep.top_k = 9;
  const net::remote_result fourth = cluster.front().search(strings, symbols,
                                                           deep);
  EXPECT_EQ(fourth.results, search(flat, query, deep));
  EXPECT_EQ(fourth.stats.cache_delta_refreshes, 1u);

  EXPECT_GE(cluster.front().cache_stats().hits, 2u);
  cluster.front().invalidate_cache();
  const net::remote_result fifth = cluster.front().search(strings, symbols,
                                                          qopts);
  EXPECT_EQ(fifth.results, first.results);
  EXPECT_EQ(fifth.stats.cache_misses, 1u) << "invalidate must drop entries";
}

}  // namespace
}  // namespace bes
