// The wire-path fuzz battery: a live shard server fed corrupt bytes, and a
// coordinator scattered across byzantine peers. The invariants, both
// directions:
//
//  * the server never crashes, never wedges, and stays able to answer a
//    well-behaved connection after every abuse;
//  * the coordinator never hangs past its deadline and never returns a
//    silently-wrong answer — a shard it cannot trust is reported failed /
//    timed out while the surviving shards' contribution stays exact.
//
// Every single-byte flip must be caught: the frame header CRC covers the
// header (so a flipped length cannot drive a huge read), the payload CRC
// covers the payload, and everything decoded afterwards is range-checked.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <optional>
#include <thread>
#include <vector>

#include "core/encoder.hpp"
#include "db/database.hpp"
#include "db/shard.hpp"
#include "net/coordinator.hpp"
#include "net/framing.hpp"
#include "net/loopback.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "util/checksum.hpp"
#include "util/rng.hpp"
#include "workload/query_gen.hpp"
#include "workload/scene_gen.hpp"

namespace bes {
namespace {

image_database small_corpus(std::size_t images = 12, std::uint64_t seed = 5) {
  image_database db;
  rng r(seed);
  scene_params params;
  params.object_count = 6;
  params.symbol_pool = 8;
  for (std::size_t i = 0; i < images; ++i) {
    db.add("scene" + std::to_string(i), random_scene(params, r, db.symbols()));
  }
  return db;
}

net::net_time soon() { return net::deadline_in(5000); }

// A full healthy session: handshake, then a symbols round-trip. This is the
// "server still alive and sane" probe run after every abuse.
::testing::AssertionResult server_is_healthy(std::uint16_t port,
                                             std::size_t expect_symbols) {
  try {
    net::tcp_socket sock = net::tcp_socket::connect("127.0.0.1", port, 2000);
    net::write_frame(sock, net::encode(net::hello_msg{}));
    const auto hello = net::read_frame(sock, soon());
    if (!hello) return ::testing::AssertionFailure() << "no hello_ok";
    (void)net::decode_hello_ok(*hello);
    net::write_frame(sock, net::frame{net::frame_type::symbols_req, {}});
    const auto symbols = net::read_frame(sock, soon());
    if (!symbols) return ::testing::AssertionFailure() << "no symbols reply";
    const net::symbols_msg msg = net::decode_symbols(*symbols);
    if (msg.names.size() != expect_symbols) {
      return ::testing::AssertionFailure()
             << "symbol table shrank to " << msg.names.size();
    }
    return ::testing::AssertionSuccess();
  } catch (const net::net_error& e) {
    return ::testing::AssertionFailure() << "probe failed: " << e.what();
  }
}

// Drains whatever the server says until it hangs up; the abuse tests only
// require that this terminates (no wedge) without the process dying.
void drain_until_close(net::tcp_socket& sock) {
  try {
    while (net::read_frame(sock, soon()).has_value()) {
    }
  } catch (const net::net_error&) {
    // Error frame cut short / connection reset: also a clean outcome.
  }
}

class CorruptionBattery : public ::testing::Test {
 protected:
  CorruptionBattery() : db_(small_corpus()) {
    ids_.resize(db_.size());
    for (std::size_t i = 0; i < ids_.size(); ++i) {
      ids_[i] = static_cast<image_id>(i);
    }
    net::server_options options;
    options.max_payload = 1u << 16;  // small cap: oversized tests stay cheap
    server_ = std::make_unique<net::shard_server>(db_, ids_, 0, options);
  }

  image_database db_;
  std::vector<image_id> ids_;
  std::unique_ptr<net::shard_server> server_;
};

TEST_F(CorruptionBattery, RandomGarbageNeverWedgesTheServer) {
  rng r(99);
  for (int round = 0; round < 24; ++round) {
    net::tcp_socket sock =
        net::tcp_socket::connect("127.0.0.1", server_->port(), 2000);
    std::vector<std::uint8_t> junk(
        static_cast<std::size_t>(r.uniform_int(1, 512)));
    for (auto& b : junk) b = static_cast<std::uint8_t>(r.uniform_int(0, 255));
    try {
      sock.send_all(junk.data(), junk.size());
    } catch (const net::net_error&) {
      // Server already hung up on earlier junk in this burst — fine.
    }
    drain_until_close(sock);
  }
  EXPECT_TRUE(server_is_healthy(server_->port(), db_.symbols().size()));
}

TEST_F(CorruptionBattery, EverySingleByteFlipIsCaught) {
  // A correct session prefix (hello) followed by a query frame with one
  // byte flipped — sweep a deterministic sample of positions across header
  // and payload. The server must refuse the frame (error + hangup is the
  // contract; never a scan of a misread query).
  net::query_msg qm;
  qm.query_id = 7;
  qm.options.top_k = 3;
  const symbolic_image scene = db_.record(0).image;
  qm.query = encode(scene);
  qm.query_symbols = distinct_symbols(scene);
  const std::vector<std::uint8_t> wire = net::encode_frame(net::encode(qm));

  for (std::size_t pos = 0; pos < wire.size();
       pos += (pos < net::frame_header_bytes ? 1 : 7)) {
    net::tcp_socket sock =
        net::tcp_socket::connect("127.0.0.1", server_->port(), 2000);
    net::write_frame(sock, net::encode(net::hello_msg{}));
    const auto hello = net::read_frame(sock, soon());
    ASSERT_TRUE(hello.has_value()) << "flip at " << pos;

    std::vector<std::uint8_t> bad = wire;
    bad[pos] ^= 0x40;
    sock.send_all(bad.data(), bad.size());
    // Expect an error frame, then EOF; a RESULT here would mean the server
    // trusted a corrupt frame.
    try {
      auto reply = net::read_frame(sock, soon());
      while (reply.has_value()) {
        EXPECT_NE(reply->type, net::frame_type::result) << "flip at " << pos;
        reply = net::read_frame(sock, soon());
      }
    } catch (const net::net_error&) {
    }
  }
  EXPECT_TRUE(server_is_healthy(server_->port(), db_.symbols().size()));
}

TEST_F(CorruptionBattery, TruncatedFramesJustHangUp) {
  const std::vector<std::uint8_t> wire =
      net::encode_frame(net::encode(net::cancel_msg{3}));
  for (const std::size_t keep : {std::size_t{3}, std::size_t{15},
                                 net::frame_header_bytes, wire.size() - 1}) {
    net::tcp_socket sock =
        net::tcp_socket::connect("127.0.0.1", server_->port(), 2000);
    net::write_frame(sock, net::encode(net::hello_msg{}));
    ASSERT_TRUE(net::read_frame(sock, soon()).has_value());
    sock.send_all(wire.data(), keep);
    sock.close();
  }
  EXPECT_TRUE(server_is_healthy(server_->port(), db_.symbols().size()));
}

TEST_F(CorruptionBattery, OversizedDeclaredLengthIsRefusedNotAllocated) {
  // A CRC-valid header declaring a payload over the server's cap: the
  // framing layer must throw on the header alone. The client never sends
  // the payload, so a server that "just tried to read it" would sit here
  // forever and fail the healthy-probe timeout.
  net::tcp_socket sock =
      net::tcp_socket::connect("127.0.0.1", server_->port(), 2000);
  net::write_frame(sock, net::encode(net::hello_msg{}));
  ASSERT_TRUE(net::read_frame(sock, soon()).has_value());

  std::vector<std::uint8_t> header(net::frame_header_bytes, 0);
  const std::uint32_t type =
      static_cast<std::uint32_t>(net::frame_type::query);
  const std::uint32_t huge = 1u << 30;
  std::memcpy(header.data(), &type, 4);
  std::memcpy(header.data() + 4, &huge, 4);
  const std::uint8_t no_payload = 0;
  const std::uint32_t payload_crc = crc32(&no_payload, 0);
  std::memcpy(header.data() + 8, &payload_crc, 4);
  const std::uint32_t header_crc = crc32(header.data(), 12);
  std::memcpy(header.data() + 12, &header_crc, 4);
  sock.send_all(header.data(), header.size());
  drain_until_close(sock);
  EXPECT_TRUE(server_is_healthy(server_->port(), db_.symbols().size()));
}

// ------------------------------------------------- byzantine shard servers

// One-connection fake servers impersonating a shard, each a different way
// of being broken. They run on a plain thread and stop after one client.
class byzantine {
 public:
  enum class mode {
    silent,           // accepts, reads, never answers (hung process)
    garbage,          // answers the handshake with random bytes
    die_after_hello,  // handshake ok, then the process "is SIGKILLed":
                      // the socket closes abruptly on the first query
    hang_after_hello, // handshake ok, then never answers queries
  };

  explicit byzantine(mode m) : mode_(m), listener_(0) {
    thread_ = std::thread([this] { run(); });
  }
  ~byzantine() {
    listener_.close();
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] std::uint16_t port() const noexcept {
    return listener_.port();
  }

 private:
  void run() {
    try {
      net::tcp_socket sock = listener_.accept(10000);
      if (!sock.valid()) return;
      switch (mode_) {
        case mode::silent: {
          (void)net::read_frame(sock, net::deadline_in(10000));
          break;
        }
        case mode::garbage: {
          (void)net::read_frame(sock, net::deadline_in(10000));
          const std::uint8_t junk[64] = {0xDE, 0xAD, 0xBE, 0xEF};
          sock.send_all(junk, sizeof junk);
          break;
        }
        case mode::die_after_hello: {
          (void)net::read_frame(sock, net::deadline_in(10000));
          net::hello_ok_msg ok;
          net::write_frame(sock, net::encode(ok));
          (void)net::read_frame(sock, net::deadline_in(10000));  // the query
          sock.close();  // abrupt death, mid-query
          break;
        }
        case mode::hang_after_hello: {
          (void)net::read_frame(sock, net::deadline_in(10000));
          net::hello_ok_msg ok;
          net::write_frame(sock, net::encode(ok));
          // Swallow frames forever (until the test tears us down).
          while (net::read_frame(sock, net::deadline_in(10000)).has_value()) {
          }
          break;
        }
      }
    } catch (const net::net_error&) {
      // Fake server torn down / peer gave up: the point was the abuse.
    }
  }

  mode mode_;
  net::tcp_listener listener_;
  std::thread thread_;
};

class ByzantineCoordinator
    : public ::testing::TestWithParam<byzantine::mode> {};

TEST_P(ByzantineCoordinator, DegradesWithinDeadlineAndKeepsSurvivorsExact) {
  // Shard 0 is real; shard 1 is broken in the parameterized way. The
  // coordinator must come back before ~the deadline with shard 0's exact
  // contribution and shard 1 reported failed or timed out.
  const image_database flat = small_corpus(14);
  const sharded_database sharded = make_sharded(flat, 1);
  net::loopback_cluster real(sharded);
  byzantine fake(GetParam());

  net::coordinator_options options;
  options.connect_timeout_ms = 500;
  options.default_deadline_ms = 2000;
  net::coordinator coord(
      {net::endpoint{"127.0.0.1", real.server(0).port()},
       net::endpoint{"127.0.0.1", fake.port()}},
      options);

  query_options qopts;
  qopts.top_k = 5;
  const symbolic_image query = flat.record(1).image;

  const auto start = std::chrono::steady_clock::now();
  const net::remote_result remote =
      coord.search(encode(query), distinct_symbols(query), qopts);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  EXPECT_LT(elapsed.count(), 5000) << "coordinator overshot its deadline";
  EXPECT_TRUE(remote.stats.degraded);
  ASSERT_EQ(remote.stats.shard_statuses.size(), 2u);
  EXPECT_EQ(remote.stats.shard_statuses[0].state, shard_scan_state::ok);
  EXPECT_TRUE(
      remote.stats.shard_statuses[1].state == shard_scan_state::failed ||
      remote.stats.shard_statuses[1].state == shard_scan_state::timed_out)
      << "byzantine shard ended "
      << to_string(remote.stats.shard_statuses[1].state);

  // Never silently wrong: the answer is exactly the real shard's.
  EXPECT_EQ(remote.results, search(flat, query, qopts));
}

INSTANTIATE_TEST_SUITE_P(AllModes, ByzantineCoordinator,
                         ::testing::Values(byzantine::mode::silent,
                                           byzantine::mode::garbage,
                                           byzantine::mode::die_after_hello,
                                           byzantine::mode::hang_after_hello));

TEST(ByzantineRecovery, CoordinatorReconnectsAfterAServerRestarts) {
  // Kill a real server mid-conversation (stop() closes its sockets the way
  // a dead process would), then bring a fresh one up on the SAME data and
  // point a new query at it: the link must re-handshake transparently.
  const image_database flat = small_corpus(14);
  std::vector<image_id> ids(flat.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<image_id>(i);
  }
  net::server_options sopts;
  auto server = std::make_unique<net::shard_server>(flat, ids, 0, sopts);
  const std::uint16_t port = server->port();

  net::coordinator_options copts;
  copts.connect_timeout_ms = 500;
  copts.default_deadline_ms = 2000;
  net::coordinator coord({net::endpoint{"127.0.0.1", port}}, copts);

  query_options qopts;
  qopts.top_k = 5;
  const symbolic_image query = flat.record(2).image;
  const std::vector<query_result> expected = search(flat, query, qopts);

  EXPECT_EQ(coord.search(encode(query), distinct_symbols(query), qopts).results,
            expected);

  server->stop();
  const net::remote_result dead =
      coord.search(encode(query), distinct_symbols(query), qopts);
  EXPECT_TRUE(dead.stats.degraded);
  EXPECT_TRUE(dead.results.empty());

  // Same port, fresh process-equivalent.
  net::server_options reuse;
  reuse.port = port;
  server = std::make_unique<net::shard_server>(flat, ids, 0, reuse);
  const net::remote_result back =
      coord.search(encode(query), distinct_symbols(query), qopts);
  EXPECT_FALSE(back.stats.degraded);
  EXPECT_EQ(back.results, expected);
}

}  // namespace
}  // namespace bes
