#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "lcs/classic_lcs.hpp"

namespace bes {
namespace {

std::vector<char> chars(const std::string& s) {
  return std::vector<char>(s.begin(), s.end());
}

// Exponential oracle: longest subsequence of a that is also one of b.
std::size_t brute_force_lcs(const std::vector<char>& a,
                            const std::vector<char>& b) {
  std::size_t best = 0;
  const std::size_t n = a.size();
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    std::vector<char> candidate;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) candidate.push_back(a[i]);
    }
    // Subsequence check against b.
    std::size_t j = 0;
    for (char c : b) {
      if (j < candidate.size() && candidate[j] == c) ++j;
    }
    if (j == candidate.size()) best = std::max(best, candidate.size());
  }
  return best;
}

TEST(ClassicLcs, CormenTextbookExample) {
  const auto a = chars("ABCBDAB");
  const auto b = chars("BDCABA");
  EXPECT_EQ(lcs_length<char>(a, b), 4u);
}

TEST(ClassicLcs, EmptyInputs) {
  const std::vector<char> empty;
  const auto a = chars("ABC");
  EXPECT_EQ(lcs_length<char>(empty, a), 0u);
  EXPECT_EQ(lcs_length<char>(a, empty), 0u);
  EXPECT_EQ(lcs_length<char>(empty, empty), 0u);
}

TEST(ClassicLcs, IdenticalStrings) {
  const auto a = chars("XYZZY");
  EXPECT_EQ(lcs_length<char>(a, a), a.size());
}

TEST(ClassicLcs, DisjointAlphabets) {
  EXPECT_EQ(lcs_length<char>(chars("AAAA"), chars("BBBB")), 0u);
}

TEST(ClassicLcs, SymmetricLength) {
  const auto a = chars("AGGTAB");
  const auto b = chars("GXTXAYB");
  EXPECT_EQ(lcs_length<char>(a, b), lcs_length<char>(b, a));
  EXPECT_EQ(lcs_length<char>(a, b), 4u);  // GTAB
}

TEST(ClassicLcs, StringReconstructionIsValidAndMaximal) {
  const auto a = chars("ABCBDAB");
  const auto b = chars("BDCABA");
  const auto s = lcs_string<char>(a, b);
  EXPECT_EQ(s.size(), 4u);
  // s must be a subsequence of both.
  for (const auto& host : {a, b}) {
    std::size_t j = 0;
    for (char c : host) {
      if (j < s.size() && s[j] == c) ++j;
    }
    EXPECT_EQ(j, s.size());
  }
}

class ClassicLcsRandom : public ::testing::TestWithParam<int> {};

TEST_P(ClassicLcsRandom, MatchesBruteForce) {
  std::mt19937 gen(static_cast<unsigned>(GetParam()));
  std::uniform_int_distribution<int> len(0, 10);
  std::uniform_int_distribution<int> sym(0, 2);
  std::vector<char> a(static_cast<std::size_t>(len(gen)));
  std::vector<char> b(static_cast<std::size_t>(len(gen)));
  for (char& c : a) c = static_cast<char>('A' + sym(gen));
  for (char& c : b) c = static_cast<char>('A' + sym(gen));
  EXPECT_EQ(lcs_length<char>(a, b), brute_force_lcs(a, b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassicLcsRandom, ::testing::Range(0, 40));

}  // namespace
}  // namespace bes
