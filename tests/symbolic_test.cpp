#include <gtest/gtest.h>

#include "symbolic/alphabet.hpp"
#include "symbolic/symbolic_image.hpp"

namespace bes {
namespace {

// ---------------------------------------------------------------- alphabet

TEST(Alphabet, InternIsIdempotent) {
  alphabet a;
  const symbol_id id = a.intern("chair");
  EXPECT_EQ(a.intern("chair"), id);
  EXPECT_EQ(a.size(), 1u);
}

TEST(Alphabet, IdsAreDense) {
  alphabet a;
  EXPECT_EQ(a.intern("a"), 0u);
  EXPECT_EQ(a.intern("b"), 1u);
  EXPECT_EQ(a.intern("c"), 2u);
}

TEST(Alphabet, RoundTripNames) {
  alphabet a;
  const symbol_id id = a.intern("table");
  EXPECT_EQ(a.name_of(id), "table");
  EXPECT_EQ(a.id_of("table"), id);
  EXPECT_TRUE(a.knows("table"));
  EXPECT_FALSE(a.knows("lamp"));
}

TEST(Alphabet, UnknownLookupsThrow) {
  alphabet a;
  EXPECT_THROW((void)a.id_of("ghost"), std::out_of_range);
  EXPECT_THROW((void)a.name_of(0), std::out_of_range);
}

TEST(Alphabet, RejectsInvalidNames) {
  alphabet a;
  EXPECT_THROW((void)a.intern(""), std::invalid_argument);
  EXPECT_THROW((void)a.intern("has space"), std::invalid_argument);
  EXPECT_THROW((void)a.intern("has:colon"), std::invalid_argument);
  EXPECT_THROW((void)a.intern("has,comma"), std::invalid_argument);
  EXPECT_THROW((void)a.intern("(paren"), std::invalid_argument);
  // The dummy symbol name is reserved.
  EXPECT_THROW((void)a.intern("E"), std::invalid_argument);
}

TEST(Alphabet, ValidSymbolNamePredicate) {
  EXPECT_TRUE(valid_symbol_name("A"));
  EXPECT_TRUE(valid_symbol_name("obj_1-x"));
  EXPECT_FALSE(valid_symbol_name("E"));
  EXPECT_FALSE(valid_symbol_name(""));
}

// ---------------------------------------------------------------- image

TEST(SymbolicImage, RejectsBadDomain) {
  EXPECT_THROW(symbolic_image(0, 5), std::invalid_argument);
  EXPECT_THROW(symbolic_image(5, -1), std::invalid_argument);
}

TEST(SymbolicImage, AddValidatesMbr) {
  symbolic_image img(10, 10);
  EXPECT_NO_THROW(img.add(0, rect::checked(0, 10, 0, 10)));
  EXPECT_THROW(img.add(0, rect{interval{3, 3}, interval{0, 1}}),
               std::invalid_argument);
  EXPECT_THROW(img.add(0, rect::checked(0, 11, 0, 5)), std::invalid_argument);
  EXPECT_THROW(img.add(0, rect{interval{-1, 2}, interval{0, 5}}),
               std::invalid_argument);
}

TEST(SymbolicImage, RemoveKeepsOrder) {
  symbolic_image img(10, 10);
  img.add(0, rect::checked(0, 1, 0, 1));
  img.add(1, rect::checked(1, 2, 1, 2));
  img.add(2, rect::checked(2, 3, 2, 3));
  img.remove(1);
  ASSERT_EQ(img.size(), 2u);
  EXPECT_EQ(img.icons()[0].symbol, 0u);
  EXPECT_EQ(img.icons()[1].symbol, 2u);
  EXPECT_THROW(img.remove(5), std::out_of_range);
}

TEST(SymbolicImage, DisjointDetection) {
  symbolic_image img(10, 10);
  img.add(0, rect::checked(0, 3, 0, 3));
  img.add(1, rect::checked(5, 8, 5, 8));
  EXPECT_TRUE(img.disjoint());
  img.add(2, rect::checked(2, 6, 2, 6));
  EXPECT_FALSE(img.disjoint());
}

TEST(SymbolicImage, GeometricTransformSwapsDomain) {
  symbolic_image img(10, 6);
  img.add(0, rect::checked(1, 4, 2, 5));
  const symbolic_image rotated = apply(dihedral::rot90, img);
  EXPECT_EQ(rotated.width(), 6);
  EXPECT_EQ(rotated.height(), 10);
  ASSERT_EQ(rotated.size(), 1u);
  // rot90: (x,y) -> (y, W-x): x' = [2,5), y' = [10-4, 10-1) = [6,9).
  EXPECT_EQ(rotated.icons()[0].mbr, rect::checked(2, 5, 6, 9));
}

TEST(SymbolicImage, TransformRoundTrip) {
  symbolic_image img(10, 6);
  img.add(0, rect::checked(1, 4, 2, 5));
  img.add(1, rect::checked(0, 10, 0, 1));
  for (dihedral t : all_dihedral) {
    EXPECT_EQ(apply(inverse(t), apply(t, img)), img) << to_string(t);
  }
}

TEST(SymbolicImage, EqualityIsStructural) {
  symbolic_image a(5, 5);
  symbolic_image b(5, 5);
  EXPECT_EQ(a, b);
  a.add(0, rect::checked(0, 1, 0, 1));
  EXPECT_NE(a, b);
  b.add(0, rect::checked(0, 1, 0, 1));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace bes
