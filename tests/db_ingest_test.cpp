// Live ingest (epoch snapshots + tombstones): snapshot visibility, remove
// semantics, tombstone-aware stats accounting, the add_encoded strong
// guarantee, and the write-while-scanning torture battery — adds and
// deletes racing pinned searches across scan kernels, thread counts, and
// shard counts {1, 3, 8}, with every racing result checked bit-identical
// against a quiesced rebuild of the database at the snapshot's epoch. Runs
// under the ASan and TSan CI jobs (ingest_smoke label).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "core/encoder.hpp"
#include "db/query.hpp"
#include "db/shard.hpp"
#include "support/test_support.hpp"

namespace bes {
namespace {

// A deterministic pool of scenes over one shared alphabet: every image and
// every query is built before any thread starts, so the torture threads
// never race on alphabet interning.
struct scene_pool {
  alphabet symbols;
  std::vector<symbolic_image> scenes;

  explicit scene_pool(std::size_t count, std::uint64_t seed = 7) {
    testsupport::scene_opts opts;
    opts.object_count = 5;
    opts.symbol_pool = 6;
    scenes.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      scenes.push_back(testsupport::make_scene(seed + i, symbols, opts));
    }
  }
};

image_database build_db(const scene_pool& pool, std::size_t count) {
  image_database db;
  for (const std::string& name : pool.symbols.names()) {
    db.symbols().intern(name);
  }
  for (std::size_t i = 0; i < count; ++i) {
    db.add("img" + std::to_string(i), pool.scenes[i]);
  }
  return db;
}

// The deterministic delete schedule both tortures and their quiesced
// rebuilds share: after add i (i >= initial), remove id (i * 7) % i when
// i % 3 == 0. Repeats are no-ops (remove returns false).
bool delete_after(std::size_t i, image_id* victim) {
  if (i % 3 != 0) return false;
  *victim = static_cast<image_id>((i * 7) % i);
  return true;
}

// ------------------------------------------------------ snapshot semantics

TEST(IngestSnapshot, PinsVisibilityAgainstLaterAdds) {
  const scene_pool pool(12);
  image_database db = build_db(pool, 8);
  const db_snapshot snap = db.snapshot();
  const auto before = search(snap, pool.scenes[2]);
  for (std::size_t i = 8; i < 12; ++i) {
    db.add("late" + std::to_string(i), pool.scenes[i]);
  }
  // The pinned view never sees the late adds; the live view does.
  EXPECT_EQ(search(snap, pool.scenes[2]), before);
  query_options all;
  all.top_k = 0;
  EXPECT_EQ(search(db, pool.scenes[2], all).size(), 12u);
  search_stats stats;
  query_options exhaustive;
  exhaustive.use_index = false;
  exhaustive.top_k = 0;
  (void)search(snap, pool.scenes[2], exhaustive, &stats);
  // Records published after the watermark are excluded from scanned.
  EXPECT_EQ(stats.scanned, 8u);
}

TEST(IngestSnapshot, PinsTombstonesAgainstLaterRemoves) {
  const scene_pool pool(8);
  image_database db = build_db(pool, 8);
  const db_snapshot snap = db.snapshot();
  const auto before = search(snap, pool.scenes[3]);
  ASSERT_TRUE(db.remove(3));
  EXPECT_EQ(search(snap, pool.scenes[3]), before)
      << "a remove after the snapshot leaked into the pinned view";
  // A fresh view hides it.
  const auto after = search(db, pool.scenes[3]);
  for (const query_result& r : after) EXPECT_NE(r.id, 3u);
}

TEST(IngestRemove, SemanticsAndAccounting) {
  const scene_pool pool(6);
  image_database db = build_db(pool, 6);
  EXPECT_EQ(db.tombstone_count(), 0u);
  EXPECT_EQ(db.live_size(), 6u);
  EXPECT_TRUE(db.remove(2));
  EXPECT_FALSE(db.remove(2)) << "double remove must report false";
  EXPECT_FALSE(db.remove(99)) << "unknown id must report false";
  EXPECT_TRUE(db.removed(2));
  EXPECT_NE(db.removed_epoch(2), 0u);
  EXPECT_EQ(db.tombstone_count(), 1u);
  EXPECT_EQ(db.live_size(), 5u);
  // The record stays addressable (persistence still writes it).
  EXPECT_EQ(db.record(2).name, "img2");
}

TEST(IngestStats, TombstonedCandidatesCountAsPrunedNotScored) {
  const scene_pool pool(10);
  image_database db = build_db(pool, 10);
  ASSERT_TRUE(db.remove(1));
  ASSERT_TRUE(db.remove(4));
  ASSERT_TRUE(db.remove(7));

  query_options exhaustive;
  exhaustive.use_index = false;
  exhaustive.top_k = 0;
  search_stats stats;
  const auto results = search(db, pool.scenes[0], exhaustive, &stats);
  // scanned == scored + pruned, with the three tombstoned candidates
  // scanned AND pruned — never scored.
  EXPECT_EQ(stats.scanned, 10u);
  EXPECT_EQ(stats.scored, 7u);
  EXPECT_EQ(stats.pruned, 3u);
  EXPECT_EQ(stats.scanned, stats.scored + stats.pruned);
  for (const query_result& r : results) {
    EXPECT_FALSE(db.removed(r.id));
  }

  // The invariant holds on the pruned path too (pruned then absorbs both
  // histogram-bound skips and tombstones).
  query_options pruned;
  pruned.histogram_pruning = true;
  pruned.top_k = 3;
  search_stats pstats;
  (void)search(db, pool.scenes[0], pruned, &pstats);
  EXPECT_EQ(pstats.scanned, pstats.scored + pstats.pruned);
  EXPECT_GE(pstats.pruned, 3u) << "tombstones must count into pruned";
}

// ------------------------------------- add_encoded strong guarantee (bugfix)

TEST(IngestAddEncoded, UnknownSymbolThrowsAndLeavesDatabaseUnchanged) {
  const scene_pool pool(4);
  image_database db = build_db(pool, 4);
  const auto baseline = search(db, pool.scenes[0]);
  const std::size_t size_before = db.size();
  const std::uint64_t epoch_before = db.epoch();

  // A picture encoded against a BIGGER alphabet: its strings reference a
  // symbol id the target database never interned.
  alphabet bigger;
  for (const std::string& name : pool.symbols.names()) bigger.intern(name);
  symbolic_image alien(32, 32);
  alien.add(bigger.intern("alien-symbol"), rect::checked(2, 9, 3, 11));
  be_string2d strings = encode(alien);

  EXPECT_THROW(
      (void)db.add_encoded("alien", alien, std::move(strings)),
      std::invalid_argument);
  // Strong guarantee: no phantom record, no phantom posting, no epoch tick.
  EXPECT_EQ(db.size(), size_before);
  EXPECT_EQ(db.epoch(), epoch_before);
  EXPECT_EQ(search(db, pool.scenes[0]), baseline);
  // The database stays fully usable.
  const image_id id = db.add("after", pool.scenes[3]);
  EXPECT_EQ(id, size_before);
}

TEST(IngestReserve, OverflowThrowsLengthErrorAndDatabaseStaysUsable) {
  const scene_pool pool(3);
  image_database db = build_db(pool, 2);
  EXPECT_THROW(db.reserve(std::numeric_limits<std::size_t>::max()),
               std::length_error);
  // A sane reserve (records AND posting lists) then a working add.
  db.reserve(64, pool.symbols.size());
  const image_id id = db.add("post-reserve", pool.scenes[2]);
  EXPECT_EQ(id, 2u);
  EXPECT_EQ(search(db, pool.scenes[2]).front().id, id);
}

// ------------------------------------------------------ sharded equivalence

TEST(IngestSharded, RemoveMatchesFlatDatabase) {
  const scene_pool pool(20);
  image_database flat = build_db(pool, 20);
  sharded_database sharded(3);
  for (const std::string& name : pool.symbols.names()) {
    sharded.symbols().intern(name);
  }
  for (std::size_t i = 0; i < 20; ++i) {
    sharded.add("img" + std::to_string(i), pool.scenes[i]);
  }
  for (const image_id id : {2u, 7u, 13u, 19u}) {
    ASSERT_TRUE(flat.remove(id));
    ASSERT_TRUE(sharded.remove(id));
  }
  EXPECT_FALSE(sharded.remove(7));
  EXPECT_EQ(sharded.tombstone_count(), 4u);
  EXPECT_EQ(sharded.live_size(), 16u);

  for (const std::size_t q : {0u, 5u, 13u}) {
    query_options options;
    options.top_k = 0;
    EXPECT_EQ(search(sharded, pool.scenes[q], options),
              search(flat, pool.scenes[q], options))
        << "query " << q;
  }
}

TEST(IngestSharded, SnapshotPinsAllShards) {
  const scene_pool pool(18);
  sharded_database db(3);
  for (const std::string& name : pool.symbols.names()) {
    db.symbols().intern(name);
  }
  for (std::size_t i = 0; i < 12; ++i) {
    db.add("img" + std::to_string(i), pool.scenes[i]);
  }
  const sharded_snapshot snap = db.snapshot();
  const auto before = search(db, snap, pool.scenes[4]);
  for (std::size_t i = 12; i < 18; ++i) {
    db.add("late" + std::to_string(i), pool.scenes[i]);
  }
  ASSERT_TRUE(db.remove(4));
  EXPECT_EQ(search(db, snap, pool.scenes[4]), before);
  // Shard-count mismatch fails loudly.
  sharded_snapshot wrong;
  wrong.shards.resize(2);
  EXPECT_THROW((void)search(db, wrong, pool.scenes[4]),
               std::invalid_argument);
}

// ------------------------------------------------- write-while-scan torture
//
// One writer races adds + removes against reader threads that pin
// snapshots and search; after the threads join, every recorded (snapshot,
// results) pair is replayed against a freshly built database quiesced in
// exactly the snapshot's state. Results must match bit for bit.

struct torture_sample {
  std::uint64_t visible = 0;
  std::uint64_t epoch = 0;
  std::size_t query = 0;
  std::vector<query_result> results;
  search_stats stats;
};

// The scan configurations the readers rotate through: plain indexed scan,
// exhaustive scan, and the histogram-pruned kernel, across 1- and 2-thread
// inner scans.
std::vector<query_options> torture_configs() {
  std::vector<query_options> configs;
  {
    query_options plain;  // indexed scan kernel
    plain.top_k = 6;
    configs.push_back(plain);
  }
  {
    query_options exhaustive;  // full-scan kernel
    exhaustive.use_index = false;
    exhaustive.top_k = 6;
    configs.push_back(exhaustive);
  }
  {
    query_options pruned;  // histogram-bound pruning kernel
    pruned.histogram_pruning = true;
    pruned.top_k = 6;
    configs.push_back(pruned);
  }
  {
    query_options threaded;  // parallel inner scan
    threaded.use_index = false;
    threaded.top_k = 6;
    threaded.threads = 2;
    configs.push_back(threaded);
  }
  return configs;
}

constexpr std::size_t torture_total = 96;
constexpr std::size_t torture_initial = 32;
constexpr std::size_t torture_queries = 2;
constexpr std::size_t torture_readers = 3;
constexpr std::size_t torture_iterations = 10;

TEST(IngestTorture, FlatSearchesMatchQuiescedRebuildAtSameEpoch) {
  const scene_pool pool(torture_total + torture_queries, 23);
  const std::vector<query_options> configs = torture_configs();

  for (std::size_t c = 0; c < configs.size(); ++c) {
    const query_options& options = configs[c];
    image_database db = build_db(pool, torture_initial);

    std::vector<std::vector<torture_sample>> samples(torture_readers);
    std::vector<std::thread> readers;
    readers.reserve(torture_readers);
    for (std::size_t r = 0; r < torture_readers; ++r) {
      readers.emplace_back([&, r] {
        for (std::size_t it = 0; it < torture_iterations; ++it) {
          torture_sample sample;
          sample.query = (r + it) % torture_queries;
          const db_snapshot snap = db.snapshot();
          sample.visible = snap.visible;
          sample.epoch = snap.epoch;
          sample.results = search(
              snap, pool.scenes[torture_total + sample.query], options,
              &sample.stats);
          samples[r].push_back(std::move(sample));
        }
      });
    }
    std::thread writer([&] {
      for (std::size_t i = torture_initial; i < torture_total; ++i) {
        db.add("img" + std::to_string(i), pool.scenes[i]);
        image_id victim = 0;
        if (delete_after(i, &victim)) (void)db.remove(victim);
      }
    });
    writer.join();
    for (std::thread& t : readers) t.join();

    for (const auto& reader_samples : samples) {
      for (const torture_sample& sample : reader_samples) {
        // scanned == scored + pruned must hold mid-race too.
        EXPECT_EQ(sample.stats.scanned,
                  sample.stats.scored + sample.stats.pruned)
            << "config " << c;
        // Quiesced rebuild at the snapshot's exact state: the first
        // `visible` records, with every remove at epoch <= the snapshot's
        // re-applied. Epochs tick once per remove, so the filter is exact.
        image_database rebuilt;
        for (const std::string& name : pool.symbols.names()) {
          rebuilt.symbols().intern(name);
        }
        for (std::uint64_t id = 0; id < sample.visible; ++id) {
          rebuilt.add(db.record(static_cast<image_id>(id)).name,
                      db.record(static_cast<image_id>(id)).image);
        }
        for (std::uint64_t id = 0; id < sample.visible; ++id) {
          const std::uint64_t at =
              db.removed_epoch(static_cast<image_id>(id));
          if (at != 0 && at <= sample.epoch) {
            ASSERT_TRUE(rebuilt.remove(static_cast<image_id>(id)));
          }
        }
        EXPECT_EQ(sample.results,
                  search(rebuilt, pool.scenes[torture_total + sample.query],
                         options))
            << "config " << c << " snapshot at visible=" << sample.visible
            << " epoch=" << sample.epoch;
      }
    }
  }
}

// Sharded torture: per-shard snapshots are captured at one instant but
// shard watermarks advance independently, so the quiesced oracle filters
// per shard — local visibility cut, local tombstone epoch — and rescores
// the surviving GLOBAL candidates on a tombstone-free rebuild.
void sharded_torture(std::size_t shard_count) {
  const scene_pool pool(torture_total + torture_queries, 29);
  std::vector<be_string2d> query_strings;
  for (std::size_t q = 0; q < torture_queries; ++q) {
    query_strings.push_back(encode(pool.scenes[torture_total + q]));
  }

  struct sharded_sample {
    sharded_snapshot snap;
    std::size_t query = 0;
    std::vector<query_result> results;
    search_stats stats;
  };

  const std::vector<query_options> configs = torture_configs();
  for (std::size_t c = 0; c < configs.size(); ++c) {
    const query_options& options = configs[c];
    sharded_database db(shard_count);
    for (const std::string& name : pool.symbols.names()) {
      db.symbols().intern(name);
    }
    for (std::size_t i = 0; i < torture_initial; ++i) {
      db.add("img" + std::to_string(i), pool.scenes[i]);
    }

    std::vector<std::vector<sharded_sample>> samples(torture_readers);
    std::vector<std::thread> readers;
    readers.reserve(torture_readers);
    for (std::size_t r = 0; r < torture_readers; ++r) {
      readers.emplace_back([&, r] {
        for (std::size_t it = 0; it < torture_iterations; ++it) {
          sharded_sample sample;
          sample.query = (r + it) % torture_queries;
          sample.snap = db.snapshot();
          sample.results = search(
              db, sample.snap, pool.scenes[torture_total + sample.query],
              options, &sample.stats);
          samples[r].push_back(std::move(sample));
        }
      });
    }
    std::thread writer([&] {
      for (std::size_t i = torture_initial; i < torture_total; ++i) {
        db.add("img" + std::to_string(i), pool.scenes[i]);
        image_id victim = 0;
        if (delete_after(i, &victim)) (void)db.remove(victim);
      }
    });
    writer.join();
    for (std::thread& t : readers) t.join();

    // The tombstone-free oracle: every record, flat, global-id order.
    image_database oracle = build_db(pool, torture_total);

    for (const auto& reader_samples : samples) {
      for (const sharded_sample& sample : reader_samples) {
        EXPECT_EQ(sample.stats.scanned,
                  sample.stats.scored + sample.stats.pruned)
            << "config " << c << " shards " << shard_count;
        // The live global candidates under this snapshot: shard s exposes
        // its first shards[s].visible locals, minus removes at epochs <=
        // shards[s].epoch (removed_at is the SHARD-local epoch).
        std::vector<image_id> live;
        std::vector<std::uint64_t> seen(shard_count, 0);
        for (std::uint64_t g = 0; g < db.size(); ++g) {
          const auto id = static_cast<image_id>(g);
          const std::size_t s = db.ring().shard_of(id);
          if (seen[s] >= sample.snap.shards[s].visible) continue;
          ++seen[s];
          const db_record& rec = db.record(id);
          if (rec.removed_at == 0 ||
              rec.removed_at > sample.snap.shards[s].epoch) {
            live.push_back(id);
          }
        }
        EXPECT_EQ(sample.results,
                  search_candidates(oracle, query_strings[sample.query],
                                    live, options))
            << "config " << c << " shards " << shard_count;
      }
    }
  }
}

TEST(IngestTorture, ShardedSearchesMatchQuiescedOracleThreeShards) {
  sharded_torture(3);
}

TEST(IngestTorture, ShardedSearchesMatchQuiescedOracleEightShards) {
  sharded_torture(8);
}

// Batch searches capture ONE snapshot for the whole batch: every query in
// the batch observes the same instant even while the writer races.
TEST(IngestTorture, BatchObservesOneConsistentSnapshot) {
  const scene_pool pool(64 + 2, 31);
  sharded_database db(3);
  for (const std::string& name : pool.symbols.names()) {
    db.symbols().intern(name);
  }
  for (std::size_t i = 0; i < 24; ++i) {
    db.add("img" + std::to_string(i), pool.scenes[i]);
  }
  const std::vector<symbolic_image> queries = {pool.scenes[64],
                                               pool.scenes[65]};
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (std::size_t i = 24; i < 64; ++i) {
      db.add("img" + std::to_string(i), pool.scenes[i]);
      image_id victim = 0;
      if (delete_after(i, &victim)) (void)db.remove(victim);
    }
    done.store(true);
  });
  query_options options;
  options.top_k = 5;
  while (!done.load()) {
    const auto batch = search_batch(db, queries, options);
    ASSERT_EQ(batch.size(), queries.size());
  }
  writer.join();
  // Quiesced: batch results equal per-query searches exactly.
  const auto batch = search_batch(db, queries, options);
  EXPECT_EQ(batch[0], search(db, queries[0], options));
  EXPECT_EQ(batch[1], search(db, queries[1], options));
}

}  // namespace
}  // namespace bes
