// The tier-1 retrieval-quality regression gate (ISSUE 3 tentpole): rebuild
// the seeded eval corpus with the params recorded in the committed
// eval/baseline.json, run the full configuration matrix through db/query,
// and fail if any metric drops below baseline minus tolerance or any
// pruned/prefilter cell diverges from the exhaustive scan beyond its
// documented recall budget. A speed PR that trades recall for throughput
// fails here, by name and by number.
//
// Regenerate the baseline after an INTENTIONAL quality change (and say so in
// the PR) — the committed corpus params are reused automatically:
//   besdb eval --baseline eval/baseline.json --update-baseline
#include <gtest/gtest.h>

#include "eval/corpus.hpp"
#include "eval/harness.hpp"
#include "eval/report.hpp"

#ifndef BES_EVAL_BASELINE_PATH
#error "build must define BES_EVAL_BASELINE_PATH (see tests/CMakeLists.txt)"
#endif

namespace bes {
namespace {

const json_value& committed_baseline() {
  static const json_value baseline = read_json_file(BES_EVAL_BASELINE_PATH);
  return baseline;
}

// One harness run per process, shared by every test below.
const eval_report& fresh_report() {
  static const eval_report report = [] {
    const eval_corpus_params params =
        report_from_json(committed_baseline()).params;
    const eval_corpus corpus = build_eval_corpus(params, 4);
    const auto matrix = default_eval_matrix(4);
    return run_eval(corpus, matrix);
  }();
  return report;
}

TEST(EvalRegression, MatchesCommittedBaseline) {
  const gate_result gate =
      check_against_baseline(fresh_report(), committed_baseline());
  for (const std::string& failure : gate.failures) {
    ADD_FAILURE() << failure;
  }
  EXPECT_TRUE(gate.pass);
}

TEST(EvalRegression, BaselineDocumentsEveryCellsRecall) {
  // Every pruned/prefilter matrix cell must be in the committed baseline
  // with its recall-vs-exhaustive and budget; the combined prefilter's loss
  // in particular is part of the repo's documented contract.
  const json_value& baseline = committed_baseline();
  bool combined_seen = false;
  for (const json_value& cell : baseline.get("cells").as_array()) {
    const std::string& path = cell.get("path").as_string();
    const double recall = cell.get("recall_vs_exhaustive").as_number();
    const double budget = cell.get("recall_budget").as_number();
    EXPECT_GE(recall, 1.0 - budget) << cell.get("name").as_string();
    if (path == "combined") combined_seen = true;
  }
  EXPECT_TRUE(combined_seen)
      << "baseline must document the combined prefilter's recall loss";
  for (scan_path path : {scan_path::pruned, scan_path::rtree,
                         scan_path::combined, scan_path::index}) {
    bool found = false;
    for (const json_value& cell : baseline.get("cells").as_array()) {
      if (cell.get("path").as_string() == to_string(path)) found = true;
    }
    EXPECT_TRUE(found) << "no baseline cell for path " << to_string(path);
  }
}

// The negative control demanded by the acceptance criteria: the gate must
// actually fire when quality regresses. Perturb each gated metric in turn
// and check the failure is caught and names the right cell.
TEST(EvalRegression, GateFailsWhenAMetricIsDegraded) {
  const json_value& baseline = committed_baseline();
  const eval_report& report = fresh_report();
  const double tolerance = baseline.get("tolerance").as_number();
  struct perturbation {
    const char* metric;
    void (*apply)(eval_cell_metrics&, double);
  };
  const perturbation perturbations[] = {
      {"p_at_1", [](eval_cell_metrics& m, double d) { m.p_at_1 -= d; }},
      {"p_at_10", [](eval_cell_metrics& m, double d) { m.p_at_10 -= d; }},
      {"mrr", [](eval_cell_metrics& m, double d) { m.mrr -= d; }},
      {"ndcg_at_10",
       [](eval_cell_metrics& m, double d) { m.ndcg_at_10 -= d; }},
      {"recall_vs_exhaustive",
       [](eval_cell_metrics& m, double d) { m.recall_vs_exhaustive -= d; }},
  };
  for (const perturbation& p : perturbations) {
    eval_report degraded = report;
    // Degrade only the first cell, well past the tolerance.
    p.apply(degraded.cells[0].metrics, tolerance + 0.05);
    const gate_result gate = check_against_baseline(degraded, baseline);
    EXPECT_FALSE(gate.pass) << p.metric;
    ASSERT_FALSE(gate.failures.empty()) << p.metric;
    EXPECT_NE(gate.failures[0].find(degraded.cells[0].config.name()),
              std::string::npos)
        << "failure should name the degraded cell: " << gate.failures[0];
  }
}

TEST(EvalRegression, GateFailsWhenPruningStopsFiring) {
  // The pruning gate (ISSUE 5 satellite): zero out the pruned counts of a
  // serial pruning cell — results intact, speedup gone — and the gate must
  // fail naming that cell, even though every rank metric still matches.
  const json_value& baseline = committed_baseline();
  bool floor_seen = false;
  for (const json_value& cell : baseline.get("cells").as_array()) {
    if (cell.find("pruned_floor") != nullptr) floor_seen = true;
  }
  ASSERT_TRUE(floor_seen)
      << "baseline must gate at least one serial pruning cell";
  ASSERT_NE(baseline.find("pruning_tolerance"), nullptr);

  eval_report degraded = fresh_report();
  std::string victim;
  for (eval_cell_result& cell : degraded.cells) {
    if (cell.config.path == scan_path::pruned && cell.config.threads == 1 &&
        cell.config.shards == 0 && cell.metrics.pruned > 0) {
      cell.metrics.pruned = 0;  // the pruner silently stopped engaging
      victim = cell.config.name();
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  const gate_result gate = check_against_baseline(degraded, baseline);
  EXPECT_FALSE(gate.pass);
  bool named = false;
  for (const std::string& failure : gate.failures) {
    if (failure.find(victim) != std::string::npos &&
        failure.find("pruned_fraction") != std::string::npos) {
      named = true;
    }
  }
  EXPECT_TRUE(named) << "no failure named the dead pruner cell " << victim;
}

TEST(EvalRegression, BaselineCoversShardedAndBatchPrefilterCells) {
  // The sharded fan-out and the batch combined-prefilter path are part of
  // the gated matrix: a regression in either fails the committed gate.
  const json_value& baseline = committed_baseline();
  bool sharded_seen = false;
  bool combined_batch_seen = false;
  for (const json_value& cell : baseline.get("cells").as_array()) {
    if (const json_value* shards = cell.find("shards");
        shards != nullptr && shards->as_number() > 0) {
      sharded_seen = true;
    }
    if (cell.get("path").as_string() == "combined" &&
        cell.get("batch").as_bool()) {
      combined_batch_seen = true;
    }
  }
  EXPECT_TRUE(sharded_seen) << "no sharded cell in the committed baseline";
  EXPECT_TRUE(combined_batch_seen)
      << "no batch combined-prefilter cell in the committed baseline";
}

TEST(EvalRegression, GateFailsWhenPrefilterOvershootsItsBudget) {
  const json_value& baseline = committed_baseline();
  eval_report degraded = fresh_report();
  bool found = false;
  for (eval_cell_result& cell : degraded.cells) {
    if (cell.config.path == scan_path::combined ||
        cell.config.path == scan_path::rtree) {
      cell.metrics.recall_vs_exhaustive = 0.0;  // catastrophic recall loss
      found = true;
    }
  }
  ASSERT_TRUE(found);
  const gate_result gate = check_against_baseline(degraded, baseline);
  EXPECT_FALSE(gate.pass);
}

}  // namespace
}  // namespace bes
