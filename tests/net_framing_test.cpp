// The wire-format suite: frame round-trips over a real loopback socket,
// then the corruption battery — every flipped header byte, a flipped
// payload byte, truncation at each boundary, oversized declared lengths,
// and unknown frame types must surface as frame_error/net_error, never as
// a hang, a crash, or a silently-misread frame. The protocol codec half
// round-trips every message struct and rejects malformed payloads.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/be_string.hpp"
#include "core/token.hpp"
#include "geometry/dihedral.hpp"
#include "net/framing.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "util/checksum.hpp"

namespace bes::net {
namespace {

// A connected loopback socket pair: `a` is the connecting side, `b` the
// accepted side. Accept runs on the listener after connect is in flight
// (loopback connects complete against the backlog, so this never blocks).
struct socket_pair {
  tcp_socket a;
  tcp_socket b;
};

socket_pair make_pair() {
  tcp_listener listener(0);
  socket_pair pair;
  pair.a = tcp_socket::connect("127.0.0.1", listener.port(), 2000);
  pair.b = listener.accept(2000);
  EXPECT_TRUE(pair.a.valid());
  EXPECT_TRUE(pair.b.valid());
  return pair;
}

net_time soon() { return deadline_in(5000); }

// ------------------------------------------------------------- frame I/O

TEST(Framing, RoundTripsFramesBackToBack) {
  socket_pair pair = make_pair();
  const frame ping{frame_type::ping, {}};
  const frame err{frame_type::error, {1, 2, 3, 4, 250, 0}};
  write_frame(pair.a, ping);
  write_frame(pair.a, err);

  const auto got1 = read_frame(pair.b, soon());
  ASSERT_TRUE(got1.has_value());
  EXPECT_EQ(got1->type, frame_type::ping);
  EXPECT_TRUE(got1->payload.empty());

  const auto got2 = read_frame(pair.b, soon());
  ASSERT_TRUE(got2.has_value());
  EXPECT_EQ(got2->type, frame_type::error);
  EXPECT_EQ(got2->payload, err.payload);
}

TEST(Framing, CleanCloseOnFrameBoundaryIsNullopt) {
  socket_pair pair = make_pair();
  write_frame(pair.a, frame{frame_type::pong, {9}});
  pair.a.close();
  const auto got = read_frame(pair.b, soon());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, frame_type::pong);
  EXPECT_FALSE(read_frame(pair.b, soon()).has_value());
}

TEST(Framing, EveryFlippedHeaderByteIsRejected) {
  // The header carries its own CRC over bytes [0, 12); flipping any of the
  // 16 bytes must break either that CRC or the CRC field itself — the
  // declared length is never trusted from a damaged header.
  const std::vector<std::uint8_t> good =
      encode_frame(frame{frame_type::ping, {42}});
  ASSERT_GE(good.size(), frame_header_bytes);
  for (std::size_t i = 0; i < frame_header_bytes; ++i) {
    socket_pair pair = make_pair();
    std::vector<std::uint8_t> bad = good;
    bad[i] ^= 0x20;
    pair.a.send_all(bad.data(), bad.size());
    EXPECT_THROW((void)read_frame(pair.b, soon()), frame_error)
        << "header byte " << i;
  }
}

TEST(Framing, EveryFlippedPayloadByteIsRejected) {
  const frame f{frame_type::error, {0x10, 0x20, 0x30, 0x40, 0x50}};
  const std::vector<std::uint8_t> good = encode_frame(f);
  for (std::size_t i = frame_header_bytes; i < good.size(); ++i) {
    socket_pair pair = make_pair();
    std::vector<std::uint8_t> bad = good;
    bad[i] ^= 0x01;
    pair.a.send_all(bad.data(), bad.size());
    EXPECT_THROW((void)read_frame(pair.b, soon()), frame_error)
        << "payload byte " << (i - frame_header_bytes);
  }
}

TEST(Framing, TruncationAtEveryBoundaryIsAnError) {
  // A peer dying mid-frame is an I/O failure (net_error), not a clean
  // close: truncate after 1 header byte, mid-header, after the full header,
  // and mid-payload.
  const std::vector<std::uint8_t> good =
      encode_frame(frame{frame_type::error, {1, 2, 3, 4}});
  for (const std::size_t keep :
       {std::size_t{1}, std::size_t{8}, frame_header_bytes,
        frame_header_bytes + 2}) {
    socket_pair pair = make_pair();
    pair.a.send_all(good.data(), keep);
    pair.a.close();
    EXPECT_THROW((void)read_frame(pair.b, soon()), net_error)
        << "kept " << keep << " bytes";
  }
}

TEST(Framing, OversizedDeclaredLengthIsRejectedBeforeAllocation) {
  // A CRC-valid header may still declare a payload beyond the cap (a
  // hostile peer, or skewed limits). read_frame must throw on the header
  // alone — no payload bytes are ever sent here, so a non-throwing path
  // would block forever instead.
  const frame big{frame_type::symbols,
                  std::vector<std::uint8_t>(1024, 0xAB)};
  const std::vector<std::uint8_t> wire = encode_frame(big);
  socket_pair pair = make_pair();
  pair.a.send_all(wire.data(), frame_header_bytes);
  EXPECT_THROW((void)read_frame(pair.b, soon(), /*max_payload=*/512),
               frame_error);
}

TEST(Framing, UnknownFrameTypeIsRejected) {
  EXPECT_FALSE(known_frame_type(0));
  EXPECT_FALSE(known_frame_type(999));
  EXPECT_TRUE(known_frame_type(static_cast<std::uint32_t>(frame_type::hello)));
  EXPECT_TRUE(
      known_frame_type(static_cast<std::uint32_t>(frame_type::symbols)));

  // Hand-build a frame with type 999 and valid CRCs: the framing layer must
  // reject it even though every checksum passes.
  std::vector<std::uint8_t> wire = encode_frame(frame{frame_type::ping, {}});
  const std::uint32_t bogus_type = 999;
  std::memcpy(wire.data(), &bogus_type, 4);
  const std::uint32_t header_crc = crc32(wire.data(), 12);
  std::memcpy(wire.data() + 12, &header_crc, 4);
  socket_pair pair = make_pair();
  pair.a.send_all(wire.data(), wire.size());
  EXPECT_THROW((void)read_frame(pair.b, soon()), frame_error);
}

TEST(Framing, ReadHonorsDeadline) {
  socket_pair pair = make_pair();
  const net_time deadline = deadline_in(80);
  EXPECT_THROW((void)read_frame(pair.b, deadline), net_error);
  // The failed read must not have consumed anything it shouldn't: a frame
  // sent afterwards still parses.
  write_frame(pair.a, frame{frame_type::ping, {}});
  const auto got = read_frame(pair.b, soon());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, frame_type::ping);
}

// -------------------------------------------------------- protocol codec

be_string2d tiny_query() {
  be_string2d s;
  s.x = axis_string({token::boundary(0, boundary_kind::begin), token::dummy(),
                     token::boundary(0, boundary_kind::end)});
  s.y = axis_string({token::boundary(1, boundary_kind::begin),
                     token::boundary(1, boundary_kind::end)});
  return s;
}

TEST(Protocol, HelloRoundTrip) {
  const hello_msg m;
  const hello_msg back = decode_hello(encode(m));
  EXPECT_EQ(back.magic, protocol_magic);
  EXPECT_EQ(back.version, protocol_version);

  hello_msg wrong;
  wrong.magic = 0xDEADBEEF;
  EXPECT_THROW((void)decode_hello(encode(wrong)), frame_error);
}

TEST(Protocol, HelloOkRoundTrip) {
  hello_ok_msg m;
  m.shard = 7;
  m.images = 123456789012345ull;
  m.symbols = 42;
  const hello_ok_msg back = decode_hello_ok(encode(m));
  EXPECT_EQ(back.version, m.version);
  EXPECT_EQ(back.shard, m.shard);
  EXPECT_EQ(back.images, m.images);
  EXPECT_EQ(back.symbols, m.symbols);
}

TEST(Protocol, QueryRoundTripPreservesEveryOption) {
  query_msg m;
  m.query_id = 0x1122334455667788ull;
  m.deadline_ms = 1500;
  m.floor = 0.625;
  m.options.top_k = 5;
  m.options.min_score = 0.25;
  m.options.transform_invariant = true;
  m.options.use_index = false;
  m.options.histogram_pruning = true;
  m.options.threads = 3;
  m.options.similarity.exact_lcs = true;
  m.query = tiny_query();
  m.query_symbols = {0, 1, 99};

  const query_msg back = decode_query(encode(m));
  EXPECT_EQ(back.query_id, m.query_id);
  EXPECT_EQ(back.deadline_ms, m.deadline_ms);
  EXPECT_EQ(back.floor, m.floor);
  EXPECT_EQ(back.options.top_k, m.options.top_k);
  EXPECT_EQ(back.options.min_score, m.options.min_score);
  EXPECT_EQ(back.options.transform_invariant, m.options.transform_invariant);
  EXPECT_EQ(back.options.use_index, m.options.use_index);
  EXPECT_EQ(back.options.histogram_pruning, m.options.histogram_pruning);
  EXPECT_EQ(back.options.threads, m.options.threads);
  EXPECT_EQ(back.options.similarity.exact_lcs, m.options.similarity.exact_lcs);
  EXPECT_EQ(back.query.x, m.query.x);
  EXPECT_EQ(back.query.y, m.query.y);
  EXPECT_EQ(back.query_symbols, m.query_symbols);
}

TEST(Protocol, ThresholdCancelRoundTrip) {
  threshold_msg t;
  t.query_id = 31;
  t.floor = 0.875;
  const threshold_msg tb = decode_threshold(encode(t));
  EXPECT_EQ(tb.query_id, t.query_id);
  EXPECT_EQ(tb.floor, t.floor);

  cancel_msg c;
  c.query_id = 32;
  EXPECT_EQ(decode_cancel(encode(c)).query_id, c.query_id);
}

TEST(Protocol, ResultRoundTripPreservesResultsAndStats) {
  result_msg m;
  m.query_id = 77;
  m.status = query_status::expired;
  m.results.push_back({3, 1.0, dihedral::identity});
  m.results.push_back({9, 0.5, dihedral::rot180});
  m.results.push_back({1, 0.25, dihedral::transpose});
  m.stats.scanned = 100;
  m.stats.scored = 60;
  m.stats.pruned = 40;
  m.stats.band_rejected = 11;
  m.stats.candidates_generated = 140;

  const result_msg back = decode_result(encode(m));
  EXPECT_EQ(back.query_id, m.query_id);
  EXPECT_EQ(back.status, m.status);
  EXPECT_EQ(back.results, m.results);
  EXPECT_EQ(back.stats.scanned, m.stats.scanned);
  EXPECT_EQ(back.stats.scored, m.stats.scored);
  EXPECT_EQ(back.stats.pruned, m.stats.pruned);
  EXPECT_EQ(back.stats.band_rejected, m.stats.band_rejected);
  EXPECT_EQ(back.stats.candidates_generated, m.stats.candidates_generated);
}

TEST(Protocol, ErrorAndSymbolsRoundTrip) {
  error_msg e;
  e.query_id = 5;
  e.message = "shard on fire";
  const error_msg eb = decode_error(encode(e));
  EXPECT_EQ(eb.query_id, e.query_id);
  EXPECT_EQ(eb.message, e.message);

  symbols_msg s;
  s.names = {"A", "B", "road", "house"};
  EXPECT_EQ(decode_symbols(encode(s)).names, s.names);
}

TEST(Protocol, DecodersRejectWrongFrameType) {
  const frame f = encode(cancel_msg{4});
  EXPECT_THROW((void)decode_threshold(f), frame_error);
  EXPECT_THROW((void)decode_result(f), frame_error);
  EXPECT_THROW((void)decode_hello(f), frame_error);
}

TEST(Protocol, TrailingBytesAreRejected) {
  frame f = encode(cancel_msg{4});
  f.payload.push_back(0);
  EXPECT_THROW((void)decode_cancel(f), frame_error);
}

TEST(Protocol, TruncatedPayloadsAreRejected) {
  // Every proper prefix of a valid query payload must decode to an error,
  // never to a silently-short message.
  query_msg m;
  m.query = tiny_query();
  m.query_symbols = {0, 1};
  const frame full = encode(m);
  for (std::size_t keep = 0; keep < full.payload.size(); ++keep) {
    frame cut{full.type,
              {full.payload.begin(),
               full.payload.begin() + static_cast<std::ptrdiff_t>(keep)}};
    EXPECT_THROW((void)decode_query(cut), frame_error) << "kept " << keep;
  }
}

TEST(Protocol, OutOfRangeEnumsAreRejected) {
  // Flag byte > 1 (transform_invariant lives right after top_k + min_score).
  {
    frame f = encode(query_msg{});
    f.payload[8 + 4 + 8 + 8 + 8] = 2;
    EXPECT_THROW((void)decode_query(f), frame_error);
  }
  // status byte > rejected, and a dihedral byte >= 8.
  {
    result_msg m;
    m.results = {{1, 1.0, dihedral::identity}};
    frame f = encode(m);
    f.payload[8] = 4;  // status
    EXPECT_THROW((void)decode_result(f), frame_error);
  }
  {
    result_msg m;
    m.results = {{1, 1.0, dihedral::identity}};
    frame f = encode(m);
    f.payload[8 + 1 + 4 + 4 + 8] = 8;  // the one result's dihedral
    EXPECT_THROW((void)decode_result(f), frame_error);
  }
}

TEST(Protocol, CorruptCollectionCountsAreRejectedNotAllocated) {
  // A huge token count with no bytes behind it must fail the up-front
  // bounds check instead of driving a giant reserve.
  payload_writer w;
  w.u32(0xFFFFFFF0u);
  const std::vector<std::uint8_t> payload = std::move(w).take();
  payload_reader r(payload);
  EXPECT_THROW((void)r.tokens(), frame_error);
  payload_reader r2(payload);
  EXPECT_THROW((void)r2.symbol_ids(), frame_error);
}

TEST(Protocol, DummyAndBoundaryTokensSurviveTheWire) {
  be_string2d s;
  s.x = axis_string({token::dummy(), token::boundary(0x7FFFFFFE >> 1,
                                                     boundary_kind::end)});
  s.y = axis_string(std::vector<token>{});
  query_msg m;
  m.query = s;
  const query_msg back = decode_query(encode(m));
  EXPECT_TRUE(back.query.x.at(0).is_dummy());
  EXPECT_EQ(back.query.x.at(1).symbol(), 0x7FFFFFFEu >> 1);
  EXPECT_EQ(back.query.x.at(1).kind(), boundary_kind::end);
  EXPECT_TRUE(back.query.y.empty());
}

}  // namespace
}  // namespace bes::net
