#include <gtest/gtest.h>

#include "core/encoder.hpp"
#include "util/rng.hpp"
#include "workload/query_gen.hpp"
#include "workload/scene_gen.hpp"

namespace bes {
namespace {

TEST(SceneGen, RespectsCountAndDomain) {
  rng r(1);
  alphabet names;
  scene_params params;
  params.width = 100;
  params.height = 80;
  params.object_count = 15;
  params.max_extent = 30;
  const symbolic_image scene = random_scene(params, r, names);
  EXPECT_EQ(scene.size(), 15u);
  for (const icon& obj : scene.icons()) {
    EXPECT_GE(obj.mbr.x.lo, 0);
    EXPECT_LE(obj.mbr.x.hi, 100);
    EXPECT_GE(obj.mbr.y.lo, 0);
    EXPECT_LE(obj.mbr.y.hi, 80);
    EXPECT_GE(obj.mbr.x.length(), params.min_extent);
    EXPECT_LE(obj.mbr.x.length(), params.max_extent);
  }
}

TEST(SceneGen, DeterministicGivenSeed) {
  alphabet names1;
  alphabet names2;
  rng r1(42);
  rng r2(42);
  scene_params params;
  EXPECT_EQ(random_scene(params, r1, names1), random_scene(params, r2, names2));
}

TEST(SceneGen, DisjointModeProducesDisjointScenes) {
  rng r(2);
  alphabet names;
  scene_params params;
  params.object_count = 10;
  params.max_extent = 20;
  params.disjoint = true;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(random_scene(params, r, names).disjoint());
  }
}

TEST(SceneGen, DisjointImpossibleThrows) {
  rng r(3);
  alphabet names;
  scene_params params;
  params.width = 16;
  params.height = 16;
  params.min_extent = 12;
  params.max_extent = 16;
  params.object_count = 10;  // cannot fit 10 disjoint 12x12 in 16x16
  params.disjoint = true;
  EXPECT_THROW((void)random_scene(params, r, names), std::runtime_error);
}

TEST(SceneGen, UniqueSymbolsDistinct) {
  rng r(4);
  alphabet names;
  scene_params params;
  params.object_count = 9;
  params.symbol_pool = 9;
  params.unique_symbols = true;
  const symbolic_image scene = random_scene(params, r, names);
  std::vector<symbol_id> symbols;
  for (const icon& obj : scene.icons()) symbols.push_back(obj.symbol);
  std::sort(symbols.begin(), symbols.end());
  EXPECT_EQ(std::adjacent_find(symbols.begin(), symbols.end()), symbols.end());
}

TEST(SceneGen, UniqueSymbolsNeedsBigPool) {
  rng r(5);
  alphabet names;
  scene_params params;
  params.object_count = 5;
  params.symbol_pool = 3;
  params.unique_symbols = true;
  EXPECT_THROW((void)random_scene(params, r, names), std::invalid_argument);
}

TEST(SceneGen, GridModeSnapsBoundaries) {
  rng r(6);
  alphabet names;
  scene_params params;
  params.object_count = 12;
  params.grid = 16;
  const symbolic_image scene = random_scene(params, r, names);
  for (const icon& obj : scene.icons()) {
    EXPECT_EQ(obj.mbr.x.lo % 16, 0);
    EXPECT_EQ(obj.mbr.y.lo % 16, 0);
    EXPECT_EQ(obj.mbr.x.length() % 16, 0);
  }
}

TEST(SceneGen, GridScenesCompressBetter) {
  // Grid alignment produces coincident boundaries, shrinking the BE-string.
  alphabet names;
  rng r1(7);
  rng r2(7);
  scene_params loose;
  loose.object_count = 30;
  scene_params grid = loose;
  grid.grid = 32;
  const auto s_loose = encode(random_scene(loose, r1, names));
  const auto s_grid = encode(random_scene(grid, r2, names));
  EXPECT_LT(s_grid.total_tokens(), s_loose.total_tokens());
}

TEST(SceneGen, ZeroObjects) {
  rng r(8);
  alphabet names;
  scene_params params;
  params.object_count = 0;
  EXPECT_TRUE(random_scene(params, r, names).empty());
}

TEST(SceneGen, BadExtentsThrow) {
  rng r(9);
  alphabet names;
  scene_params params;
  params.min_extent = 10;
  params.max_extent = 5;
  EXPECT_THROW((void)random_scene(params, r, names), std::invalid_argument);
  scene_params huge;
  huge.max_extent = 10000;
  EXPECT_THROW((void)random_scene(huge, r, names), std::invalid_argument);
}

// ---------------------------------------------------------------- distort

TEST(QueryGen, KeepFractionBounds) {
  rng r(10);
  alphabet names;
  scene_params params;
  params.object_count = 10;
  const symbolic_image scene = random_scene(params, r, names);
  distortion_params d;
  d.keep_fraction = 0.5;
  const symbolic_image query = distort(scene, d, r, names);
  EXPECT_EQ(query.size(), 5u);
}

TEST(QueryGen, KeepFractionAtLeastOne) {
  rng r(11);
  alphabet names;
  symbolic_image scene(32, 32);
  scene.add(names.intern("A"), rect::checked(0, 4, 0, 4));
  distortion_params d;
  d.keep_fraction = 0.01;
  EXPECT_EQ(distort(scene, d, r, names).size(), 1u);
}

TEST(QueryGen, RejectsBadKeepFraction) {
  rng r(12);
  alphabet names;
  symbolic_image scene(32, 32);
  scene.add(names.intern("A"), rect::checked(0, 4, 0, 4));
  distortion_params d;
  d.keep_fraction = 0.0;
  EXPECT_THROW((void)distort(scene, d, r, names), std::invalid_argument);
  d.keep_fraction = 1.5;
  EXPECT_THROW((void)distort(scene, d, r, names), std::invalid_argument);
}

TEST(QueryGen, JitterPreservesSizeAndDomain) {
  rng r(13);
  alphabet names;
  scene_params params;
  params.object_count = 8;
  const symbolic_image scene = random_scene(params, r, names);
  distortion_params d;
  d.jitter = 10;
  const symbolic_image query = distort(scene, d, r, names);
  ASSERT_EQ(query.size(), scene.size());
  // Sizes preserved (order of kept icons follows original order).
  for (std::size_t i = 0; i < query.size(); ++i) {
    EXPECT_EQ(query.icons()[i].mbr.x.length(),
              scene.icons()[i].mbr.x.length());
    EXPECT_EQ(query.icons()[i].mbr.y.length(),
              scene.icons()[i].mbr.y.length());
    EXPECT_GE(query.icons()[i].mbr.x.lo, 0);
    EXPECT_LE(query.icons()[i].mbr.x.hi, scene.width());
  }
}

TEST(QueryGen, DecoysAdded) {
  rng r(14);
  alphabet names;
  scene_params params;
  params.object_count = 6;
  const symbolic_image scene = random_scene(params, r, names);
  distortion_params d;
  d.decoys = 3;
  d.decoy_shape.max_extent = 16;
  EXPECT_EQ(distort(scene, d, r, names).size(), 9u);
}

TEST(QueryGen, TransformChangesDomainConsistently) {
  rng r(15);
  alphabet names;
  scene_params params;
  params.width = 64;
  params.height = 32;
  params.object_count = 5;
  params.max_extent = 20;
  const symbolic_image scene = random_scene(params, r, names);
  distortion_params d;
  d.transform = dihedral::rot90;
  const symbolic_image query = distort(scene, d, r, names);
  EXPECT_EQ(query.width(), 32);
  EXPECT_EQ(query.height(), 64);
}

TEST(QueryGen, IdentityDistortionIsExactCopy) {
  rng r(16);
  alphabet names;
  scene_params params;
  params.object_count = 7;
  const symbolic_image scene = random_scene(params, r, names);
  distortion_params d;  // defaults: keep all, no jitter, no decoys
  const symbolic_image query = distort(scene, d, r, names);
  EXPECT_EQ(query, scene);
}

}  // namespace
}  // namespace bes
